#![warn(missing_docs)]

//! # rrs-flat — deterministic flat hash tables for the hot path
//!
//! The simulator's determinism rule (`rrs-lint`'s `unordered-iter`) bans
//! `std::collections::HashMap` because its iteration order depends on a
//! per-process random seed. PR 2 therefore moved all per-row bookkeeping
//! onto `BTreeMap`, which is deterministic but pays a pointer-chasing
//! logarithmic probe on every activation — the dominant cost of the
//! per-activation pipeline at paper scale (128 K rows × 32 banks).
//!
//! [`FlatMap`] wins the speed back without giving up determinism:
//!
//! * **open addressing** over one contiguous slot array — a lookup is one
//!   multiply, one mask, and a short linear probe, no allocation and no
//!   pointer chasing;
//! * a **fixed multiplicative hash** (no `RandomState`): the table's layout
//!   is a pure function of the insertion history, so iteration order is
//!   deterministic across runs, machines, and threads;
//! * **backward-shift deletion** (no tombstones): probe chains stay short
//!   under the install/evict churn of Misra-Gries tracking and epoch
//!   drains, and the layout after a removal is again history-determined.
//!
//! Iteration visits slots in index order. That order is deterministic but
//! *hash-shaped*, so callers must only fold order-independent reductions
//! over it (counts, minima over totally ordered keys) — exactly how the
//! trackers and the hammer model consume it. Keys are `u64`; multi-field
//! keys (e.g. a DRAM `RowAddr`) pack into one word at the call site.

/// One occupied slot: key plus value.
type Entry<V> = (u64, V);

/// A deterministic open-addressing hash map with `u64` keys.
///
/// # Example
///
/// ```
/// use rrs_flat::FlatMap;
///
/// let mut m: FlatMap<u64> = FlatMap::new();
/// *m.get_or_insert_with(7, || 0) += 1;
/// assert_eq!(m.get(7), Some(&1));
/// assert_eq!(m.remove(7), Some(1));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlatMap<V> {
    /// Power-of-two slot array (empty until the first insert).
    slots: Vec<Option<Entry<V>>>,
    len: usize,
}

/// Fibonacci multiplicative hashing: odd constant ≈ 2^64/φ. The high bits
/// are the best-mixed, so the mask is applied after a right shift chosen
/// from the table size.
#[inline]
fn spread(key: u64) -> u64 {
    (key ^ (key >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl<V> FlatMap<V> {
    /// Smallest capacity allocated on first insert.
    const MIN_CAPACITY: usize = 16;

    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        FlatMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates a map pre-sized to hold `n` entries without growing.
    pub fn with_capacity(n: usize) -> Self {
        let mut m = FlatMap::new();
        if n > 0 {
            m.allocate((n * 2 + 1).next_power_of_two().max(Self::MIN_CAPACITY));
        }
        m
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-array size (0 before the first insert).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len().wrapping_sub(1)
    }

    /// Home slot of `key` for the current table size.
    #[inline]
    fn home(&self, key: u64) -> usize {
        // The shift keeps the well-mixed high bits; slots.len() is a power
        // of two ≥ 16, so `leading_zeros + 1` is a valid shift (< 64).
        (spread(key) >> (self.slots.len().leading_zeros() + 1)) as usize & self.mask()
    }

    /// Index of `key`'s slot, if present.
    #[inline]
    fn find_index(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            match self.slots.get(i) {
                Some(Some((k, _))) if *k == key => return Some(i),
                Some(Some(_)) => i = (i + 1) & mask,
                _ => return None,
            }
        }
    }

    /// Shared reference to the value stored for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let i = self.find_index(key)?;
        self.slots.get(i)?.as_ref().map(|(_, v)| v)
    }

    /// Exclusive reference to the value stored for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find_index(key)?;
        self.slots.get_mut(i)?.as_mut().map(|(_, v)| v)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find_index(key).is_some()
    }

    fn allocate(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        self.slots.clear();
        self.slots.resize_with(capacity, || None);
    }

    /// Doubles the table, reinserting entries in slot order (a deterministic
    /// function of the old layout, hence of the insertion history).
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(Self::MIN_CAPACITY);
        let old = std::mem::take(&mut self.slots);
        self.allocate(new_cap);
        let mask = self.mask();
        for (key, value) in old.into_iter().flatten() {
            let mut i = self.home(key);
            while let Some(slot) = self.slots.get_mut(i) {
                if slot.is_none() {
                    *slot = Some((key, value));
                    break;
                }
                i = (i + 1) & mask;
            }
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        // Grow at 1/2 load: the hot structures are miss-dominated (every
        // untracked row probes to an empty slot before installing), and
        // unsuccessful linear-probe searches degrade steeply past half
        // load (~18 expected probes at 7/8 versus ~2 at 1/2). Trading 2×
        // slot memory for short chains is the right call for tables whose
        // lookups outnumber their entries a thousandfold.
        if self.slots.is_empty() || (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let Some(slot) = self.slots.get_mut(i) else {
                return None; // unreachable: probing a power-of-two table
            };
            match slot {
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & mask,
                None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Exclusive reference to `key`'s value, inserting `default()` first if
    /// the key is absent (the hot-path equivalent of `entry().or_insert`).
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if self.find_index(key).is_none() {
            self.insert(key, default());
        }
        // The key is now guaranteed present; route the (infallible) misses
        // through a dangling placeholder insert to stay panic-free.
        let i = self.find_index(key).unwrap_or(0);
        match self.slots.get_mut(i).and_then(|s| s.as_mut()) {
            Some((_, v)) => v,
            None => unreachable!("key was just inserted"),
        }
    }

    /// Removes `key`, returning its value. Uses backward-shift deletion:
    /// the vacated slot is refilled by sliding later probe-chain members
    /// back, so no tombstones accumulate.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find_index(key)?;
        let taken = self.slots.get_mut(hole)?.take().map(|(_, v)| v);
        self.len -= 1;
        let mask = self.mask();
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            let Some(Some((k, _))) = self.slots.get(j) else {
                break; // empty slot terminates the probe chain
            };
            let home = self.home(*k);
            // Shift j back into the hole iff j's key may not be reached
            // from its home once the hole exists between them: i.e. the
            // hole lies cyclically within [home, j).
            let dist_home = j.wrapping_sub(home) & mask;
            let dist_hole = j.wrapping_sub(hole) & mask;
            if dist_home >= dist_hole {
                let moved = self.slots.get_mut(j).and_then(|s| s.take());
                if let Some(slot) = self.slots.get_mut(hole) {
                    *slot = moved;
                }
                hole = j;
            }
        }
        taken
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Retains only entries for which `keep` returns `true`. Removal order
    /// is slot order (deterministic); the surviving layout is rebuilt, so
    /// probe chains stay canonical.
    pub fn retain(&mut self, mut keep: impl FnMut(u64, &mut V) -> bool) {
        let old = std::mem::take(&mut self.slots);
        let cap = old.len();
        self.len = 0;
        self.allocate(cap.max(Self::MIN_CAPACITY));
        for (key, mut value) in old.into_iter().flatten() {
            if keep(key, &mut value) {
                self.insert(key, value);
            }
        }
    }

    /// Iterates over `(key, &value)` in slot order — deterministic, but
    /// hash-shaped: fold only order-independent reductions over it.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Iterates over values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(_, v)| v))
    }
}

/// A deterministic set of `u64` keys over the same open-addressing layout.
///
/// # Example
///
/// ```
/// use rrs_flat::FlatSet;
///
/// let mut s = FlatSet::new();
/// assert!(s.insert(3));
/// assert!(!s.insert(3), "second insert reports already-present");
/// assert!(s.contains(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlatSet {
    map: FlatMap<()>,
}

impl FlatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        FlatSet {
            map: FlatMap::new(),
        }
    }

    /// Inserts `key`; returns `true` if it was newly added.
    pub fn insert(&mut self, key: u64) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(key)
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(key).is_some()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every key, keeping the allocation.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates over keys in slot order (deterministic, hash-shaped).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.map.iter().map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = FlatMap::new();
        assert_eq!(m.insert(10, "a"), None);
        assert_eq!(m.insert(10, "b"), Some("a"));
        assert_eq!(m.get(10), Some(&"b"));
        assert_eq!(m.remove(10), Some("b"));
        assert_eq!(m.remove(10), None);
        assert!(m.is_empty());
    }

    #[test]
    fn empty_map_lookups_do_not_allocate() {
        let m: FlatMap<u64> = FlatMap::new();
        assert_eq!(m.capacity(), 0);
        assert_eq!(m.get(5), None);
        assert!(!m.contains_key(5));
    }

    #[test]
    fn get_or_insert_with_behaves_like_entry() {
        let mut m: FlatMap<u64> = FlatMap::new();
        *m.get_or_insert_with(3, || 10) += 1;
        *m.get_or_insert_with(3, || 999) += 1;
        assert_eq!(m.get(3), Some(&12));
    }

    #[test]
    fn growth_keeps_every_entry() {
        let mut m = FlatMap::new();
        for k in 0..10_000u64 {
            m.insert(k * 7919, k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k * 7919), Some(&k), "key {k}");
        }
    }

    #[test]
    fn backward_shift_deletion_preserves_probe_chains() {
        // Interleaved insert/remove churn: every lookup must stay correct.
        let mut m = FlatMap::new();
        let mut reference = BTreeMap::new();
        let mut x = 0xDEADBEEFu64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 33) % 512; // small key space -> heavy churn
            if x.is_multiple_of(3) {
                assert_eq!(m.remove(key), reference.remove(&key), "remove {key}");
            } else {
                assert_eq!(m.insert(key, x), reference.insert(key, x), "insert {key}");
            }
            assert_eq!(m.len(), reference.len());
        }
        for (&k, v) in &reference {
            assert_eq!(m.get(k), Some(v));
        }
    }

    #[test]
    fn iteration_matches_contents_and_is_deterministic() {
        let build = || {
            let mut m = FlatMap::new();
            for k in [9u64, 1, 300, 77, 12, 5000] {
                m.insert(k, k * 2);
            }
            m.remove(300);
            m
        };
        let a: Vec<_> = build().iter().map(|(k, &v)| (k, v)).collect();
        let b: Vec<_> = build().iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(a, b, "layout is a pure function of history");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![(1, 2), (9, 18), (12, 24), (77, 154), (5000, 10000)]
        );
    }

    #[test]
    fn retain_filters_and_rebuilds() {
        let mut m = FlatMap::new();
        for k in 0..100u64 {
            m.insert(k, k);
        }
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 50);
        assert!(m.contains_key(42));
        assert!(!m.contains_key(43));
        // Still fully functional after the rebuild.
        m.insert(43, 1);
        assert_eq!(m.get(43), Some(&1));
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut m = FlatMap::new();
        for k in 0..1000u64 {
            m.insert(k, ());
        }
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.get(3), None);
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let mut m = FlatMap::with_capacity(100);
        let cap = m.capacity();
        for k in 0..100u64 {
            m.insert(k, ());
        }
        assert_eq!(m.capacity(), cap, "pre-sized map must not grow");
    }

    #[test]
    fn extreme_keys_are_fine() {
        let mut m = FlatMap::new();
        for k in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            m.insert(k, k);
        }
        for k in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            assert_eq!(m.get(k), Some(&k));
        }
    }

    #[test]
    fn set_wraps_map() {
        let mut s = FlatSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
        s.insert(1);
        s.clear();
        assert!(s.is_empty());
    }
}
