//! The Randomized Row-Swap engine: tracker + indirection + random swaps
//! (§4 of the paper).
//!
//! [`BankRrs`] is the per-bank unit (the paper provisions an HRT and RIT per
//! bank, Table 5); [`Rrs`] aggregates one unit per bank of a
//! [`DramGeometry`] and exposes the row-address-level API that a memory
//! controller consumes:
//!
//! 1. every access resolves through the RIT ([`Rrs::resolve`]),
//! 2. every activation feeds the tracker ([`Rrs::on_activation`]), which may
//!    return swap directives the controller must execute and charge.

use rrs_dram::geometry::{DramGeometry, RowAddr};

use crate::detector::{DetectorConfig, SwapDetector};
use crate::prng::PrinceCtrRng;
use crate::rit::{PhysicalSwap, RitError, RowIndirectionTable};
use crate::swap::SwapMode;
use crate::tracker::{CatTracker, HotRowTracker, TrackerConfig};

/// Paper default: `T_RH / T_RRS` (the `k` of §5.3; Table 4 selects k = 6).
pub const DEFAULT_K: u64 = 6;

/// Configuration of the RRS engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrsConfig {
    /// The Row Hammer threshold being defended against.
    pub t_rh: u64,
    /// Swap threshold `T_RRS`: a row is swapped at every multiple.
    pub t_rrs: u64,
    /// Rows per bank (the randomization space, `N` in §5.3).
    pub rows_per_bank: u64,
    /// Maximum activations per bank per epoch (`ACT_max`).
    pub act_max: u64,
    /// Tracker entry budget (derived: `ceil(act_max / t_rrs)`).
    pub tracker_entries: usize,
    /// RIT tuple capacity (derived: `2 × tracker_entries`, §4.5).
    pub rit_tuples: usize,
    /// Extra controller latency of the RIT lookup on every access
    /// (§4.7: "We add a 4-cycle latency for RIT access").
    pub rit_lookup_cycles: u64,
    /// PRNG / hash seed.
    pub seed: u128,
    /// Physical exchange mechanism.
    pub swap_mode: SwapMode,
    /// Optional attack-detection co-design (§5.3.2 footnote 2).
    pub detector: Option<DetectorConfig>,
}

impl RrsConfig {
    /// The paper's design point: `T_RH` = 4.8 K, `T_RRS` = 800,
    /// 1700 tracker entries, 3400 RIT tuples, 128 K rows per bank (§4.5).
    pub fn asplos22() -> Self {
        Self::for_threshold(4_800, 1_360_000, 128 * 1024)
    }

    /// Derives a secure configuration for an arbitrary Row Hammer threshold
    /// (the procedure behind Figure 10: "We adapt the parameters of our
    /// design for each threshold to maintain security").
    ///
    /// `T_RRS = T_RH / 6`, tracker entries `= ceil(ACT_max / T_RRS)`, RIT
    /// tuples `= 2 ×` tracker entries.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `t_rh < DEFAULT_K`.
    pub fn for_threshold(t_rh: u64, act_max: u64, rows_per_bank: u64) -> Self {
        assert!(t_rh >= DEFAULT_K, "T_RH too small");
        assert!(act_max > 0 && rows_per_bank > 0, "degenerate geometry");
        let t_rrs = t_rh / DEFAULT_K;
        let tracker_entries = act_max.div_ceil(t_rrs) as usize;
        RrsConfig {
            t_rh,
            t_rrs,
            rows_per_bank,
            act_max,
            tracker_entries,
            rit_tuples: 2 * tracker_entries,
            rit_lookup_cycles: 4,
            seed: 0x5252_535f_5345_4544, // "RRS_SEED"
            swap_mode: SwapMode::Buffered,
            detector: None,
        }
    }

    /// Overrides the PRNG/hash seed.
    pub fn with_seed(mut self, seed: u128) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the attack-detection extension.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = Some(detector);
        self
    }

    /// Selects the physical exchange mechanism.
    pub fn with_swap_mode(mut self, mode: SwapMode) -> Self {
        self.swap_mode = mode;
        self
    }

    /// The `k = T_RH / T_RRS` security parameter of §5.3.
    pub fn k(&self) -> u64 {
        self.t_rh / self.t_rrs
    }

    /// Tracker configuration implied by this design point.
    pub fn tracker_config(&self) -> TrackerConfig {
        TrackerConfig {
            entries: self.tracker_entries,
            threshold: self.t_rrs,
        }
    }
}

impl Default for RrsConfig {
    fn default() -> Self {
        Self::asplos22()
    }
}

/// A physical operation the memory controller must execute (and charge
/// channel-blocking time for) as a result of an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrsAction {
    /// Exchange the contents of two physical rows (a fresh swap or re-swap).
    Swap(PhysicalSwap),
    /// Exchange restoring an evicted row home (lazy RIT drain).
    Unswap(PhysicalSwap),
    /// The attack detector flagged this row; §5.3.2 fn.2 escalates with a
    /// preemptive refresh of the entire DRAM.
    Alarm {
        /// The logical row whose swap count crossed the alarm threshold.
        row: u64,
    },
}

/// Per-bank statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankRrsStats {
    /// Swaps issued over the unit's lifetime.
    pub swaps: u64,
    /// Un-swaps from RIT evictions.
    pub unswaps: u64,
    /// Swaps issued in the current epoch.
    pub epoch_swaps: u64,
    /// Destination re-generations because the first random pick was in the
    /// HRT/RIT (§4.4 predicts < 1% need more than one retry).
    pub destination_retries: u64,
    /// Swaps abandoned because the RIT was full of locked entries (must be
    /// zero when the configuration honours the paper's sizing rule).
    pub capacity_stalls: u64,
}

/// The RRS engine of a single bank: hot-row tracker, RIT, and the
/// PRINCE-CTR destination generator.
///
/// Generic over the tracking mechanism (§4.2: RRS "can be implemented with
/// any tracking mechanism"); the default is the paper's scalable
/// Misra-Gries [`CatTracker`]. See [`crate::tracker::CbfTracker`] for the
/// counting-Bloom-filter alternative used by the ablation benches.
#[derive(Debug, Clone)]
pub struct BankRrs<T: HotRowTracker = CatTracker> {
    config: RrsConfig,
    tracker: T,
    rit: RowIndirectionTable,
    prng: PrinceCtrRng,
    detector: Option<SwapDetector>,
    stats: BankRrsStats,
}

impl BankRrs<CatTracker> {
    /// Creates a unit with the paper's Misra-Gries tracker. `bank_index`
    /// diversifies seeds across banks.
    pub fn new(config: RrsConfig, bank_index: u64) -> Self {
        Self::with_tracker(config, bank_index, CatTracker::new(config.tracker_config()))
    }
}

impl<T: HotRowTracker> BankRrs<T> {
    /// Creates a unit driven by an arbitrary tracking mechanism.
    pub fn with_tracker(config: RrsConfig, bank_index: u64, tracker: T) -> Self {
        let seed = config.seed ^ ((bank_index as u128) << 64);
        BankRrs {
            config,
            tracker,
            rit: RowIndirectionTable::new(config.rit_tuples, seed ^ RIT_SEED_TAG),
            prng: PrinceCtrRng::new(seed),
            detector: config.detector.map(SwapDetector::new),
            stats: BankRrsStats::default(),
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &RrsConfig {
        &self.config
    }

    /// Adopts a shared telemetry spine, forwarding it to the tracker and
    /// the RIT (all banks share the `hrt.*` / `cat.*` / `rit.tlb.*`
    /// aggregate counters by name).
    pub fn attach_telemetry(&mut self, telemetry: &rrs_telemetry::Telemetry) {
        self.tracker.attach_telemetry(telemetry);
        self.rit.attach_telemetry(telemetry);
    }

    /// Physical row currently holding logical `row` (§4.1 steps ①–③).
    pub fn resolve(&self, row: u64) -> u64 {
        self.rit.resolve(row)
    }

    /// Read access to the tracker (for inspection/ablation).
    pub fn tracker(&self) -> &T {
        &self.tracker
    }

    /// Read access to the RIT.
    pub fn rit(&self) -> &RowIndirectionTable {
        &self.rit
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BankRrsStats {
        self.stats
    }

    /// Records one activation of logical `row`; returns the physical
    /// operations the controller must now perform, in order.
    pub fn on_activation(&mut self, row: u64) -> Vec<RrsAction> {
        let verdict = self.tracker.record_access(row);
        if !verdict.swap_due {
            return Vec::new();
        }
        let mut actions = Vec::with_capacity(2);
        // Make room: a swap can consume up to two tuples (§4.5).
        while self.rit.tuples_in_use() + 2 > self.rit.tuple_capacity() {
            let pick = self.prng.next_u64();
            match self.rit.evict_one(pick) {
                Some(ps) => {
                    self.stats.unswaps += 1;
                    actions.push(RrsAction::Unswap(ps));
                }
                None => {
                    // All entries locked: cannot swap safely. With the
                    // paper's sizing this is unreachable; record and bail.
                    self.stats.capacity_stalls += 1;
                    return actions;
                }
            }
        }
        let dest = match self.pick_destination(row) {
            Some(d) => d,
            None => {
                self.stats.capacity_stalls += 1;
                return actions;
            }
        };
        match self.rit.swap(row, dest) {
            Ok(ps) => {
                self.stats.swaps += 1;
                self.stats.epoch_swaps += 1;
                actions.push(RrsAction::Swap(ps));
                if let Some(det) = &mut self.detector {
                    if det.record_swap(row) {
                        actions.push(RrsAction::Alarm { row });
                    }
                }
            }
            Err(RitError::CapacityExhausted) | Err(RitError::DegenerateSwap(_)) => {
                self.stats.capacity_stalls += 1;
            }
            Err(RitError::TableConflict) => {
                // Astronomically rare per Figure 9; treat as a stall.
                self.stats.capacity_stalls += 1;
            }
        }
        actions
    }

    /// Picks a random destination row "from all the rows in the bank",
    /// excluding rows tracked by the HRT and rows under swap in the RIT
    /// (§4.4); regenerates on collision.
    fn pick_destination(&mut self, row: u64) -> Option<u64> {
        const MAX_RETRIES: u32 = 64;
        for attempt in 0..MAX_RETRIES {
            let d = self.prng.next_below(self.config.rows_per_bank);
            if d != row && !self.tracker.contains(d) && !self.rit.involves(d) {
                if attempt > 0 {
                    self.stats.destination_retries += attempt as u64;
                }
                return Some(d);
            }
        }
        None
    }

    /// Epoch boundary: reset the tracker (§4.1), unlock RIT entries for
    /// lazy drain (§4.3), reset per-epoch counters. Returns the number of
    /// swaps performed in the ending epoch.
    pub fn end_epoch(&mut self) -> u64 {
        self.tracker.reset();
        self.rit.end_epoch();
        if let Some(det) = &mut self.detector {
            det.end_epoch();
        }
        std::mem::take(&mut self.stats.epoch_swaps)
    }
}

/// Seed-diversification tag for the RIT hash keys ("RIT_TAG").
const RIT_SEED_TAG: u128 = 0x0052_4954_5f54_4147;

/// System-wide RRS: one [`BankRrs`] per bank of a geometry.
#[derive(Debug, Clone)]
pub struct Rrs {
    config: RrsConfig,
    geometry: DramGeometry,
    banks: Vec<BankRrs>,
}

impl Rrs {
    /// Creates an engine covering every bank of `geometry`.
    pub fn new(config: RrsConfig, geometry: DramGeometry) -> Self {
        let banks = (0..geometry.total_banks())
            .map(|i| BankRrs::new(config, i as u64))
            .collect();
        Rrs {
            config,
            geometry,
            banks,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RrsConfig {
        &self.config
    }

    /// Adopts a shared telemetry spine across every bank unit.
    pub fn attach_telemetry(&mut self, telemetry: &rrs_telemetry::Telemetry) {
        for b in &mut self.banks {
            b.attach_telemetry(telemetry);
        }
    }

    /// The geometry the engine covers.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    fn unit(&self, addr: RowAddr) -> &BankRrs {
        // lint: allow(index-panic) — `bank_index` is `< geometry.total_banks()` by construction and `banks` has exactly that length
        &self.banks[addr.bank_index(&self.geometry)]
    }

    fn unit_mut(&mut self, addr: RowAddr) -> &mut BankRrs {
        // lint: allow(index-panic) — `bank_index` is `< geometry.total_banks()` by construction and `banks` has exactly that length
        &mut self.banks[addr.bank_index(&self.geometry)]
    }

    /// Resolves a logical row address to the physical row currently holding
    /// it (identity unless swapped).
    pub fn resolve(&self, addr: RowAddr) -> RowAddr {
        // lint: allow(narrow-cast) — the RIT only maps rows previously fed in from this bank's u32 row space, so the resolved row fits
        addr.with_row(self.unit(addr).resolve(addr.row.0 as u64) as u32)
    }

    /// Records one activation at `addr` (the *logical* address the
    /// controller received); returns physical operations to execute, with
    /// row ids scoped to `addr`'s bank.
    pub fn on_activation(&mut self, addr: RowAddr) -> Vec<RrsAction> {
        self.unit_mut(addr).on_activation(addr.row.0 as u64)
    }

    /// Extra per-access controller latency (the RIT lookup).
    pub fn access_latency(&self) -> u64 {
        self.config.rit_lookup_cycles
    }

    /// Epoch boundary across all banks; returns total swaps in the epoch.
    pub fn end_epoch(&mut self) -> u64 {
        self.banks.iter_mut().map(|b| b.end_epoch()).sum()
    }

    /// Per-bank units, for inspection.
    pub fn banks(&self) -> &[BankRrs] {
        &self.banks
    }

    /// Aggregate statistics over all banks.
    pub fn total_stats(&self) -> BankRrsStats {
        let mut total = BankRrsStats::default();
        for b in &self.banks {
            total.swaps += b.stats.swaps;
            total.unswaps += b.stats.unswaps;
            total.epoch_swaps += b.stats.epoch_swaps;
            total.destination_retries += b.stats.destination_retries;
            total.capacity_stalls += b.stats.capacity_stalls;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RrsConfig {
        // T_RH = 60, T_RRS = 10, small bank for fast tests.
        RrsConfig::for_threshold(60, 1_000, 1_024)
    }

    #[test]
    fn asplos22_derives_paper_parameters() {
        let c = RrsConfig::asplos22();
        assert_eq!(c.t_rrs, 800);
        assert_eq!(c.tracker_entries, 1700);
        assert_eq!(c.rit_tuples, 3400);
        assert_eq!(c.k(), 6);
        assert_eq!(c.rit_lookup_cycles, 4);
    }

    #[test]
    fn figure10_design_points_scale() {
        for (t_rh, t_rrs, entries) in [
            (1_200u64, 200u64, 6_800usize),
            (2_400, 400, 3_400),
            (4_800, 800, 1_700),
            (9_600, 1_600, 850),
            (19_200, 3_200, 425),
        ] {
            let c = RrsConfig::for_threshold(t_rh, 1_360_000, 128 * 1024);
            assert_eq!(c.t_rrs, t_rrs, "T_RRS for T_RH={t_rh}");
            assert_eq!(c.tracker_entries, entries, "entries for T_RH={t_rh}");
        }
    }

    #[test]
    fn no_swap_below_threshold() {
        let mut b = BankRrs::new(small_config(), 0);
        for _ in 0..9 {
            assert!(b.on_activation(7).is_empty());
        }
        assert_eq!(b.stats().swaps, 0);
    }

    #[test]
    fn swap_fires_at_threshold_and_redirects() {
        let mut b = BankRrs::new(small_config(), 0);
        let mut actions = Vec::new();
        for _ in 0..10 {
            actions = b.on_activation(7);
        }
        assert_eq!(b.stats().swaps, 1);
        let swap = actions
            .iter()
            .find_map(|a| match a {
                RrsAction::Swap(ps) => Some(*ps),
                _ => None,
            })
            .expect("swap action at threshold");
        // Row 7 was at home, so the exchange involves physical row 7.
        assert!(swap.row_a == 7 || swap.row_b == 7);
        let new_loc = b.resolve(7);
        assert_ne!(new_loc, 7, "row must be displaced after swap");
    }

    #[test]
    fn repeated_hammering_causes_reswaps_to_fresh_locations() {
        let mut b = BankRrs::new(small_config(), 0);
        let mut locations = vec![b.resolve(7)];
        for _ in 0..50 {
            b.on_activation(7);
            let loc = b.resolve(7);
            if loc != *locations.last().unwrap() {
                locations.push(loc);
            }
        }
        // 50 activations at T=10 -> 5 swaps, each to a new location.
        assert_eq!(b.stats().swaps, 5);
        assert_eq!(locations.len(), 6);
        // Invariant 2: every destination was distinct from all prior homes
        // of this row in the epoch (fresh, <T-activated rows).
        let mut sorted = locations.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), locations.len(), "revisited a location");
    }

    #[test]
    fn destination_never_in_tracker_or_rit() {
        let mut b = BankRrs::new(small_config(), 0);
        // Hammer several rows to populate tracker and RIT.
        for round in 0..30u64 {
            for row in 0..5 {
                for _ in 0..2 {
                    b.on_activation(row + round % 3);
                }
            }
        }
        for (logical, physical) in b.rit().iter().collect::<Vec<_>>() {
            assert_ne!(logical, physical);
        }
        b.rit().check_invariants();
    }

    #[test]
    fn end_epoch_resets_tracker_and_unlocks_rit() {
        let mut b = BankRrs::new(small_config(), 0);
        for _ in 0..10 {
            b.on_activation(3);
        }
        assert_eq!(b.stats().epoch_swaps, 1);
        let epoch_swaps = b.end_epoch();
        assert_eq!(epoch_swaps, 1);
        assert_eq!(b.stats().epoch_swaps, 0);
        assert!(b.tracker().is_empty());
        assert_eq!(b.rit().locked_count(), 0);
        // Mapping persists across the epoch (no bulk unswap, §4.3).
        assert_ne!(b.resolve(3), 3);
    }

    #[test]
    fn detector_alarm_is_emitted_via_actions() {
        let cfg = small_config().with_detector(DetectorConfig {
            swaps_per_row_alarm: 2,
        });
        let mut b = BankRrs::new(cfg, 0);
        let mut alarms = 0;
        for _ in 0..20 {
            for a in b.on_activation(9) {
                if matches!(a, RrsAction::Alarm { row: 9 }) {
                    alarms += 1;
                }
            }
        }
        assert_eq!(alarms, 1, "alarm at the second same-row swap");
    }

    #[test]
    fn multi_bank_rrs_isolates_banks() {
        let geom = DramGeometry::tiny_test();
        let mut rrs = Rrs::new(small_config(), geom);
        let a = RowAddr::new(0, 0, 0, 7);
        let b = RowAddr::new(0, 0, 1, 7);
        for _ in 0..10 {
            rrs.on_activation(a);
        }
        // Bank 0's row 7 swapped; bank 1's row 7 untouched.
        assert_ne!(rrs.resolve(a), a);
        assert_eq!(rrs.resolve(b), b);
        assert_eq!(rrs.total_stats().swaps, 1);
    }

    #[test]
    fn resolve_preserves_bank_coordinates() {
        let geom = DramGeometry::tiny_test();
        let mut rrs = Rrs::new(small_config(), geom);
        let a = RowAddr::new(0, 0, 1, 3);
        for _ in 0..10 {
            rrs.on_activation(a);
        }
        let r = rrs.resolve(a);
        assert_eq!(r.channel, a.channel);
        assert_eq!(r.bank, a.bank);
        assert_ne!(r.row, a.row);
    }

    #[test]
    fn rrs_works_with_a_cbf_tracker() {
        // §4.2: RRS composes with any tracking mechanism. A CBF-tracked
        // unit must still swap a hammered row away within T_RRS-ish
        // activations (the CBF never underestimates).
        let cfg = small_config();
        let tracker = crate::tracker::CbfTracker::new(cfg.t_rrs, 1_024, 3, 0xCBF);
        let mut b = BankRrs::with_tracker(cfg, 0, tracker);
        for _ in 0..10 {
            b.on_activation(7);
        }
        assert!(
            b.stats().swaps >= 1,
            "CBF-tracked RRS must swap the hot row"
        );
        assert_ne!(b.resolve(7), 7);
    }

    #[test]
    fn capacity_stall_is_counted_not_panicking() {
        // A pathologically tiny RIT (1 tuple) cannot hold any swap's two
        // tuples; the engine must degrade gracefully.
        let mut cfg = small_config();
        cfg.rit_tuples = 1;
        let mut b = BankRrs::new(cfg, 0);
        for _ in 0..10 {
            b.on_activation(4);
        }
        assert_eq!(b.stats().swaps, 0);
        assert!(b.stats().capacity_stalls > 0);
    }
}
