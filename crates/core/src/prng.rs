//! Cryptographically strong pseudo-random numbers from PRINCE in CTR mode.
//!
//! §4.4 of the paper: "The random swap destinations are generated using a
//! hardware pseudo-random-number-generator (PRNG). This is accomplished by a
//! low-latency cipher (64-bit PRINCE cipher has < 2ns latency) in CTR-mode
//! with a 64-bit cycle counter as input."
//!
//! [`PrinceCtrRng`] is exactly that construction. It is deterministic given
//! its key and starting counter, which keeps every simulation reproducible.

use crate::prince::Prince;

/// A deterministic PRNG: PRINCE encryptions of an incrementing counter.
#[derive(Debug, Clone)]
pub struct PrinceCtrRng {
    cipher: Prince,
    counter: u64,
}

impl PrinceCtrRng {
    /// Creates a generator from a 128-bit key, starting at counter 0.
    pub fn new(key: u128) -> Self {
        PrinceCtrRng {
            cipher: Prince::new(key),
            counter: 0,
        }
    }

    /// Creates a generator with an explicit starting counter (e.g. a cycle
    /// count, as in the hardware design).
    pub fn with_counter(key: u128, counter: u64) -> Self {
        PrinceCtrRng {
            cipher: Prince::new(key),
            counter,
        }
    }

    /// The next counter value that will be encrypted.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.cipher.encrypt(self.counter);
        self.counter = self.counter.wrapping_add(1);
        out
    }

    /// Returns a uniformly distributed value in `0..bound` using rejection
    /// sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Rejection zone: values >= floor(2^64 / bound) * bound are biased.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_key_and_counter() {
        let mut a = PrinceCtrRng::new(0x1234);
        let mut b = PrinceCtrRng::new(0x1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_diverge() {
        let mut a = PrinceCtrRng::new(1);
        let mut b = PrinceCtrRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn counter_advances() {
        let mut r = PrinceCtrRng::with_counter(7, 100);
        assert_eq!(r.counter(), 100);
        r.next_u64();
        assert_eq!(r.counter(), 101);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = PrinceCtrRng::new(42);
        for bound in [1u64, 2, 3, 7, 128, 131_072, u64::MAX] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges_uniformly() {
        let mut r = PrinceCtrRng::new(9);
        let mut counts = [0u32; 8];
        let n = 8_000;
        for _ in 0..n {
            counts[r.next_below(8) as usize] += 1;
        }
        // Each bucket should hold ~1000; allow generous 3-sigma-ish slack.
        for (i, &c) in counts.iter().enumerate() {
            assert!((850..=1150).contains(&c), "bucket {i} = {c}");
        }
    }

    #[test]
    fn next_bool_matches_probability_roughly() {
        let mut r = PrinceCtrRng::new(77);
        let hits = (0..10_000).filter(|_| r.next_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        PrinceCtrRng::new(0).next_below(0);
    }

    #[test]
    fn bit_balance_is_reasonable() {
        // Across 64k outputs, each bit position should be ~50% ones.
        let mut r = PrinceCtrRng::new(0xfeed);
        let mut ones = [0u32; 64];
        let n = 4096;
        for _ in 0..n {
            let v = r.next_u64();
            for (bit, c) in ones.iter_mut().enumerate() {
                *c += ((v >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in ones.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((0.45..=0.55).contains(&frac), "bit {bit}: {frac}");
        }
    }
}
