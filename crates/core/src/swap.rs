//! Swap engine: performs and accounts row-swap operations (§4.4).
//!
//! Each channel is equipped with two row-sized SRAM swap buffers. Swapping
//! rows X and Y streams X→Buffer1, Y→Buffer2, Buffer1→Y, Buffer2→X — four
//! row transfers of ≈365 ns each, ≈1.46 µs per swap, during which the
//! channel can serve no other request. The engine also supports the
//! RowClone-accelerated variant discussed in §8.1, which replaces the
//! buffered streaming with in-DRAM row copies.

use rrs_dram::timing::{Cycle, TimingParams};
use rrs_telemetry::{Counter, Event, Telemetry};

/// How row contents are physically exchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapMode {
    /// Stream through per-channel SRAM swap buffers (the paper's design).
    #[default]
    Buffered,
    /// RowClone-style in-DRAM copy (§8.1: "DRAM-based techniques for faster
    /// copying of rows, such as RowClone, which could considerably reduce
    /// the row-swap latency"). Modeled as one row-cycle per transfer.
    RowClone,
}

/// Statistics of one swap engine (one channel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Completed row swaps (including re-swaps).
    pub swaps: u64,
    /// Un-swaps caused by RIT evictions.
    pub unswaps: u64,
    /// Total channel-blocking cycles spent swapping.
    pub busy_cycles: Cycle,
    /// Swaps in the current epoch.
    pub epoch_swaps: u64,
}

/// The per-channel swap engine: latency model and accounting.
#[derive(Debug, Clone)]
pub struct SwapEngine {
    mode: SwapMode,
    swap_cost: Cycle,
    stats: SwapStats,
    busy_until: Cycle,
    telemetry: Telemetry,
    swaps_published: Counter,
    unswaps_published: Counter,
}

impl SwapEngine {
    /// Creates an engine for rows of `row_bytes` under `timing`.
    pub fn new(timing: &TimingParams, row_bytes: usize, mode: SwapMode) -> Self {
        let swap_cost = match mode {
            SwapMode::Buffered => timing.row_swap_cycles(row_bytes),
            // Four in-DRAM copies, each bounded by one row cycle.
            SwapMode::RowClone => 4 * timing.t_rc,
        };
        let telemetry = Telemetry::new();
        SwapEngine {
            mode,
            swap_cost,
            stats: SwapStats::default(),
            busy_until: 0,
            swaps_published: telemetry.counter("swap_engine.swaps"),
            unswaps_published: telemetry.counter("swap_engine.unswaps"),
            telemetry,
        }
    }

    /// Adopts a shared telemetry spine: publishes `swap_engine.*` counters
    /// and, when tracing, [`Event::SwapStart`] / [`Event::SwapDone`] /
    /// [`Event::Unswap`] via the row-aware recording methods. The
    /// [`SwapStats`] ledger stays the accounting source of truth (the
    /// ghost-state audit checks it); the spine mirrors it for export.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.swaps_published = telemetry.counter("swap_engine.swaps");
        self.unswaps_published = telemetry.counter("swap_engine.unswaps");
        self.telemetry = telemetry.clone();
    }

    /// The configured exchange mechanism.
    pub fn mode(&self) -> SwapMode {
        self.mode
    }

    /// Channel-blocking cycles of one swap operation.
    pub fn swap_cost(&self) -> Cycle {
        self.swap_cost
    }

    /// Cycle until which the channel is blocked by in-flight swaps.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Records one swap starting no earlier than `now`; returns the cycle
    /// at which the channel becomes free again.
    pub fn record_swap(&mut self, now: Cycle) -> Cycle {
        self.stats.swaps += 1;
        self.stats.epoch_swaps += 1;
        self.swaps_published.inc();
        let free = self.block(now);
        self.debug_audit();
        free
    }

    /// [`SwapEngine::record_swap`] with the bank and row pair known, so the
    /// swap's start and completion appear on the event trace.
    pub fn record_swap_of(&mut self, now: Cycle, bank: u64, row_a: u64, row_b: u64) -> Cycle {
        // Untraced (the hot path): exactly `record_swap`, no extra work.
        if !self.telemetry.tracing() {
            return self.record_swap(now);
        }
        let start = now.max(self.busy_until);
        let free = self.record_swap(now);
        self.telemetry.emit(Event::SwapStart {
            at: start,
            bank,
            row_a,
            row_b,
        });
        self.telemetry.emit(Event::SwapDone {
            at: free,
            bank,
            row_a,
            row_b,
        });
        free
    }

    /// Records one un-swap (RIT eviction) starting no earlier than `now`.
    pub fn record_unswap(&mut self, now: Cycle) -> Cycle {
        self.stats.unswaps += 1;
        self.unswaps_published.inc();
        let free = self.block(now);
        self.debug_audit();
        free
    }

    /// [`SwapEngine::record_unswap`] with the bank and row pair known, so
    /// the restore appears on the event trace.
    pub fn record_unswap_of(&mut self, now: Cycle, bank: u64, row_a: u64, row_b: u64) -> Cycle {
        // Untraced (the hot path): exactly `record_unswap`, no extra work.
        if !self.telemetry.tracing() {
            return self.record_unswap(now);
        }
        let start = now.max(self.busy_until);
        let free = self.record_unswap(now);
        self.telemetry.emit(Event::Unswap {
            at: start,
            bank,
            row_a,
            row_b,
        });
        free
    }

    /// Debug-build ghost audit of the accounting identity
    /// `busy_cycles = (swaps + unswaps) × swap_cost`; free in release.
    fn debug_audit(&self) {
        #[cfg(debug_assertions)]
        {
            if let Err(e) = crate::audit::SwapAudit::verify(self) {
                panic!("swap-engine ghost-state audit failed: {e}");
            }
        }
    }

    /// Test-only corruption: skews the busy-cycle ledger so the accounting
    /// identity the audit checks no longer holds.
    #[doc(hidden)]
    pub fn corrupt_busy_cycles_for_test(&mut self) {
        self.stats.busy_cycles += 1;
    }

    fn block(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.busy_until);
        self.busy_until = start + self.swap_cost;
        self.stats.busy_cycles += self.swap_cost;
        self.busy_until
    }

    /// Resets the per-epoch swap counter, returning the epoch's count.
    pub fn end_epoch(&mut self) -> u64 {
        std::mem::take(&mut self.stats.epoch_swaps)
    }

    /// Fraction of `elapsed` cycles spent swapping (1 − duty cycle term).
    pub fn busy_fraction(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.stats.busy_cycles as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingParams {
        TimingParams::ddr4_3200()
    }

    #[test]
    fn buffered_swap_costs_about_1_46us() {
        let e = SwapEngine::new(&timing(), 8 * 1024, SwapMode::Buffered);
        let us = timing().cycles_to_ns(e.swap_cost()) / 1000.0;
        assert!((1.4..1.5).contains(&us), "swap = {us} µs");
    }

    #[test]
    fn rowclone_is_much_faster() {
        let buffered = SwapEngine::new(&timing(), 8 * 1024, SwapMode::Buffered);
        let rowclone = SwapEngine::new(&timing(), 8 * 1024, SwapMode::RowClone);
        assert!(rowclone.swap_cost() * 4 < buffered.swap_cost());
    }

    #[test]
    fn swaps_serialize_on_the_channel() {
        let mut e = SwapEngine::new(&timing(), 8 * 1024, SwapMode::Buffered);
        let f1 = e.record_swap(0);
        let f2 = e.record_swap(0); // requested while busy
        assert_eq!(f2, f1 + e.swap_cost());
        assert_eq!(e.stats().swaps, 2);
        assert_eq!(e.stats().busy_cycles, 2 * e.swap_cost());
    }

    #[test]
    fn swap_plus_unswap_costs_about_2_9us() {
        let mut e = SwapEngine::new(&timing(), 8 * 1024, SwapMode::Buffered);
        e.record_swap(0);
        let free = e.record_unswap(0);
        let us = timing().cycles_to_ns(free) / 1000.0;
        assert!((2.8..3.0).contains(&us), "swap+unswap = {us} µs");
        assert_eq!(e.stats().unswaps, 1);
    }

    #[test]
    fn epoch_counter_resets_but_totals_persist() {
        let mut e = SwapEngine::new(&timing(), 8 * 1024, SwapMode::Buffered);
        e.record_swap(0);
        e.record_swap(0);
        assert_eq!(e.end_epoch(), 2);
        assert_eq!(e.stats().epoch_swaps, 0);
        assert_eq!(e.stats().swaps, 2);
    }

    #[test]
    fn busy_fraction_matches_duty_cycle_model() {
        // §5.3.1: at T=800, swapping every T activations keeps the bank busy
        // 2.9 µs per 800 * 45 ns = 36 µs -> duty cycle ≈ 0.925.
        let t = timing();
        let mut e = SwapEngine::new(&t, 8 * 1024, SwapMode::Buffered);
        let rounds = 100u64;
        let mut now = 0;
        for _ in 0..rounds {
            now += 800 * t.t_rc; // attacker hammers T activations
            now = e.record_swap(now);
            now = e.record_unswap(now);
        }
        let duty = 1.0 - e.busy_fraction(now);
        assert!((0.90..0.95).contains(&duty), "duty cycle = {duty}");
    }
}
