//! A small, fast, dependency-free deterministic RNG (xoshiro256++).
//!
//! The workload generators, attack schedules, and Monte-Carlo models all
//! need a seedable general-purpose generator. The hardware-modelled swap
//! randomness keeps using [`crate::prng::PrinceCtrRng`] (the paper's PRINCE
//! CTR construction); this module serves the *simulation harness* side,
//! where statistical quality and speed matter but cipher fidelity does not.
//!
//! Determinism contract: the output sequence for a given seed is part of
//! the repository's reproducibility surface — campaign results are only
//! byte-stable across runs because this generator is.

/// SplitMix64 step — used for seeding and for hashing seeds together.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes two 64-bit values into one — for deriving per-cell/per-core seeds.
#[inline]
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(32);
    let x = splitmix64(&mut s);
    splitmix64(&mut s) ^ x
}

/// xoshiro256++ deterministic generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)` via rejection sampling (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform draw in `[lo, hi)` for `usize` ranges.
    #[inline]
    pub fn next_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_stays_in_unit_interval_and_fills_it() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 0.01 && max > 0.99, "poor coverage: [{min}, {max}]");
    }

    #[test]
    fn bounded_draws_are_in_range_and_roughly_uniform() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn mix_seed_decorrelates() {
        assert_ne!(mix_seed(1, 2), mix_seed(2, 1));
        assert_ne!(mix_seed(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::seed_from_u64(0).next_below(0);
    }
}
