//! The PRINCE low-latency 64-bit block cipher (Borghoff et al., ASIACRYPT
//! 2012).
//!
//! The RRS paper (§4.4) generates swap destinations with "a low-latency
//! cipher (64-bit PRINCE cipher has < 2ns latency) in CTR-mode", and its
//! Collision Avoidance Tables index with "independent hashes … constructed
//! using a low latency cipher with different keys" (§6.1, following MIRAGE).
//! This module is a complete software implementation of that cipher: the
//! full 12-round α-reflective construction with FX-style whitening.
//!
//! The implementation is validated against the published test vectors from
//! the PRINCE paper's appendix (see the tests).
//!
//! # Example
//!
//! ```
//! use rrs_core::prince::Prince;
//!
//! let cipher = Prince::new(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff);
//! let ct = cipher.encrypt(42);
//! assert_eq!(cipher.decrypt(ct), 42);
//! ```

/// The PRINCE α constant (also the last round constant). The round
/// constants satisfy `RC[i] ^ RC[11-i] == ALPHA`, which gives the cipher its
/// reflection property: decryption equals encryption under a related key.
pub const ALPHA: u64 = 0xc0ac29b7c97c50dd;

/// Round constants `RC0..RC11` (digits of π).
const RC: [u64; 12] = [
    0x0000000000000000,
    0x13198a2e03707344,
    0xa4093822299f31d0,
    0x082efa98ec4e6c89,
    0x452821e638d01377,
    0xbe5466cf34e90c6c,
    0x7ef84f78fd955cb1,
    0x85840851f1ac43aa,
    0xc882d32f25323c54,
    0x64a51195e0e3610d,
    0xd3b5a399ca0c2399,
    0xc0ac29b7c97c50dd,
];

/// The PRINCE S-box.
const SBOX: [u8; 16] = [
    0xB, 0xF, 0x3, 0x2, 0xA, 0xC, 0x9, 0x1, 0x6, 0x7, 0x8, 0x0, 0xE, 0x5, 0xD, 0x4,
];

/// The inverse S-box.
const SBOX_INV: [u8; 16] = [
    0xB, 0x7, 0x3, 0x2, 0xF, 0xD, 0x8, 0x9, 0xA, 0x6, 0x4, 0x0, 0x5, 0xE, 0xC, 0x1,
];

/// ShiftRows nibble permutation: output nibble `i` (0 = most significant)
/// takes input nibble `SR[i]`, exactly the AES ShiftRows pattern on a 4×4
/// nibble matrix filled in row-major order.
const SR: [usize; 16] = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11];

/// Inverse ShiftRows permutation.
const SR_INV: [usize; 16] = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3];

/// Builds the 64 input-parity masks of the involutive `M'` matrix.
///
/// `M'` is block-diagonal: `diag(M̂0, M̂1, M̂1, M̂0)`, where each `M̂k` is a
/// 16×16 binary matrix assembled from the 4×4 blocks `m0..m3` (`mi` is the
/// identity with row `i` zeroed):
///
/// ```text
/// M̂0 = [m0 m1 m2 m3; m1 m2 m3 m0; m2 m3 m0 m1; m3 m0 m1 m2]
/// M̂1 = [m1 m2 m3 m0; m2 m3 m0 m1; m3 m0 m1 m2; m0 m1 m2 m3]
/// ```
///
/// Bit 0 in the spec is the most significant bit of the `u64`.
const fn build_m_prime_masks() -> [u64; 64] {
    let mut masks = [0u64; 64];
    let mut out = 0usize;
    while out < 64 {
        let chunk = out / 16; // which 16-bit chunk (0..4)
        let hat = if chunk == 0 || chunk == 3 { 0 } else { 1 };
        let r = out % 16; // row within the 16x16 M̂ matrix
        let block_row = r / 4; // which block row (0..4)
        let bit_in_block = r % 4; // row within the 4x4 m block
        let mut mask = 0u64;
        let mut block_col = 0usize;
        while block_col < 4 {
            // Block at (block_row, block_col) of M̂hat is m_{(block_row +
            // block_col + hat) mod 4}; m_k is identity-with-row-k-zeroed, so
            // it contributes input bit `bit_in_block` of the column group
            // unless k == bit_in_block.
            let k = (block_row + block_col + hat) % 4;
            if k != bit_in_block {
                let in_bit = chunk * 16 + block_col * 4 + bit_in_block;
                mask |= 1u64 << (63 - in_bit);
            }
            block_col += 1;
        }
        masks[out] = mask;
        out += 1;
    }
    masks
}

/// Precomputed parity masks for the `M'` layer.
const M_PRIME_MASKS: [u64; 64] = build_m_prime_masks();

/// Transpose of `M'`: `cols[i]` is the output pattern toggled when input
/// bit `i` (spec order, 0 = MSB) is set. Because `M'` is linear over GF(2),
/// `M'(x) = XOR of cols[i] over set bits of x`.
const fn build_m_prime_cols() -> [u64; 64] {
    let mut cols = [0u64; 64];
    let mut o = 0;
    while o < 64 {
        let mask = M_PRIME_MASKS[o];
        let mut i = 0;
        while i < 64 {
            if mask & (1u64 << (63 - i)) != 0 {
                cols[i] |= 1u64 << (63 - o);
            }
            i += 1;
        }
        o += 1;
    }
    cols
}

const M_PRIME_COLS: [u64; 64] = build_m_prime_cols();

/// Byte-indexed XOR tables: `M_PRIME_BYTES[b][v]` is the combined column
/// contribution of byte `b` (0 = most significant) holding value `v`.
const fn build_m_prime_bytes() -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    let mut b = 0;
    while b < 8 {
        let mut v: usize = 1;
        while v < 256 {
            let lsb = v & v.wrapping_neg();
            let rest = v ^ lsb;
            let k = lsb.trailing_zeros() as usize; // bit within the byte, 0 = LSB
            let i = b * 8 + (7 - k); // spec bit index
            t[b][v] = t[b][rest] ^ M_PRIME_COLS[i];
            v += 1;
        }
        b += 1;
    }
    t
}

const M_PRIME_BYTES: [[u64; 256]; 8] = build_m_prime_bytes();

/// Byte-level S-box tables (two nibbles per lookup).
const fn build_sbox_bytes(sbox: &[u8; 16]) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut v = 0;
    while v < 256 {
        t[v] = (sbox[v >> 4] << 4) | sbox[v & 0xF];
        v += 1;
    }
    t
}

const SBOX_BYTES: [u8; 256] = build_sbox_bytes(&SBOX);
const SBOX_INV_BYTES: [u8; 256] = build_sbox_bytes(&SBOX_INV);

#[inline]
fn apply_sbox_bytes(state: u64, table: &[u8; 256]) -> u64 {
    state.to_be_bytes().into_iter().fold(0u64, |out, b| {
        // lint: allow(index-panic) — a u8 index into a 256-entry table is always in bounds
        (out << 8) | u64::from(table[b as usize])
    })
}

/// Const-evaluable `M'` (XOR of output columns over set input bits); the
/// runtime path uses the byte tables, this exists to build fused tables.
const fn m_prime_const(x: u64) -> u64 {
    let mut out = 0u64;
    let mut i = 0;
    while i < 64 {
        if x & (1u64 << (63 - i)) != 0 {
            out ^= M_PRIME_COLS[i];
        }
        i += 1;
    }
    out
}

/// Const-evaluable nibble permutation (same semantics as the former
/// runtime `permute_nibbles`, retained in the tests for cross-checking).
const fn permute_nibbles_const(state: u64, perm: &[usize; 16]) -> u64 {
    let mut out = 0u64;
    let mut i = 0;
    while i < 16 {
        let nib = (state >> (60 - 4 * perm[i])) & 0xF;
        out |= nib << (60 - 4 * i);
        i += 1;
    }
    out
}

/// Fused forward-round tables: `T_FWD[b][v]` is `SR(M'(S(v at byte b)))`.
/// The S-box is byte-local and `M'`/`SR` are linear over GF(2), so a full
/// forward round body is the XOR of eight lookups instead of three passes.
const fn build_round_fwd() -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    let mut b = 0;
    while b < 8 {
        let mut v = 0;
        while v < 256 {
            t[b][v] = permute_nibbles_const(M_PRIME_BYTES[b][SBOX_BYTES[v] as usize], &SR);
            v += 1;
        }
        b += 1;
    }
    t
}

const T_FWD: [[u64; 256]; 8] = build_round_fwd();

/// Fused backward-round linear tables: `T_BWD[b][v]` is
/// `M'(SR⁻¹(v at byte b))`. A backward round is eight lookups followed by
/// one byte-table inverse S-box pass.
const fn build_round_bwd() -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    let mut b = 0;
    while b < 8 {
        let mut v = 0;
        while v < 256 {
            let placed = (v as u64) << ((7 - b) * 8);
            t[b][v] = m_prime_const(permute_nibbles_const(placed, &SR_INV));
            v += 1;
        }
        b += 1;
    }
    t
}

const T_BWD: [[u64; 256]; 8] = build_round_bwd();

/// Fused middle-layer tables: `T_MID[b][v]` is `M'(S(v at byte b))` — the
/// composition of the byte S-box and the `M'` byte tables.
const fn build_round_mid() -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    let mut b = 0;
    while b < 8 {
        let mut v = 0;
        while v < 256 {
            t[b][v] = M_PRIME_BYTES[b][SBOX_BYTES[v] as usize];
            v += 1;
        }
        b += 1;
    }
    t
}

const T_MID: [[u64; 256]; 8] = build_round_mid();

/// XORs the eight per-byte table lookups for `state` — the linear part of
/// one fused round.
#[inline]
fn fused_round(state: u64, tables: &[[u64; 256]; 8]) -> u64 {
    let mut out = 0u64;
    for (table, byte) in tables.iter().zip(state.to_be_bytes()) {
        // A u8 index into a 256-entry table is always in bounds, so the
        // `.get` never misses and the fallback is unreachable.
        out ^= table.get(usize::from(byte)).copied().unwrap_or(0);
    }
    out
}

/// The PRINCE block cipher with a fixed 128-bit key.
///
/// The per-round keys `RC[i] ^ k1` are expanded once at construction
/// (`rks`), so the per-block work is pure table lookups and XORs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prince {
    k0: u64,
    k0_prime: u64,
    k1: u64,
    rks: [u64; 12],
}

impl Prince {
    /// Creates a cipher from a 128-bit key `k0 || k1` (`k0` in the high
    /// 64 bits, per the PRINCE paper's key expansion).
    pub fn new(key: u128) -> Self {
        let k0 = (key >> 64) as u64;
        let k1 = key as u64;
        Self::from_parts(k0, k0.rotate_right(1) ^ (k0 >> 63), k1)
    }

    /// Builds a cipher from explicit subkeys, expanding the round-key
    /// schedule. `new` and the α-reflected cipher in `decrypt` both funnel
    /// through here.
    fn from_parts(k0: u64, k0_prime: u64, k1: u64) -> Self {
        let mut rks = [0u64; 12];
        for (rk, rc) in rks.iter_mut().zip(RC) {
            *rk = rc ^ k1;
        }
        Prince {
            k0,
            k0_prime,
            k1,
            rks,
        }
    }

    /// The whitening keys and core key `(k0, k0', k1)`.
    pub fn subkeys(&self) -> (u64, u64, u64) {
        (self.k0, self.k0_prime, self.k1)
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt(&self, plaintext: u64) -> u64 {
        let mut s = plaintext ^ self.k0 ^ self.rks[0];
        for rk in self.rks.iter().take(6).skip(1) {
            s = fused_round(s, &T_FWD) ^ rk;
        }
        s = apply_sbox_bytes(fused_round(s, &T_MID), &SBOX_INV_BYTES);
        for rk in self.rks.iter().take(11).skip(6) {
            s = apply_sbox_bytes(fused_round(s ^ rk, &T_BWD), &SBOX_INV_BYTES);
        }
        s ^ self.rks[11] ^ self.k0_prime
    }

    /// Decrypts one 64-bit block.
    ///
    /// Uses the α-reflection property: `D(k0, k0', k1) = E(k0', k0, k1 ^ α)`.
    pub fn decrypt(&self, ciphertext: u64) -> u64 {
        Self::from_parts(self.k0_prime, self.k0, self.k1 ^ ALPHA).encrypt(ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference `M'` straight off the byte tables (the fused tables are
    /// checked against this below).
    fn m_prime(state: u64) -> u64 {
        let mut out = 0u64;
        for (table, byte) in M_PRIME_BYTES.iter().zip(state.to_be_bytes()) {
            out ^= table[byte as usize];
        }
        out
    }

    /// Reference nibble-at-a-time S-box layer.
    fn apply_sbox(state: u64, sbox: &[u8; 16]) -> u64 {
        let mut out = 0u64;
        for i in 0..16 {
            let nib = ((state >> (60 - 4 * i)) & 0xF) as usize;
            out |= (sbox[nib] as u64) << (60 - 4 * i);
        }
        out
    }

    /// Reference runtime nibble permutation.
    fn permute_nibbles(state: u64, perm: &[usize; 16]) -> u64 {
        let mut out = 0u64;
        for (i, &src) in perm.iter().enumerate() {
            let nib = (state >> (60 - 4 * src)) & 0xF;
            out |= nib << (60 - 4 * i);
        }
        out
    }

    /// Test vectors from the PRINCE paper (Borghoff et al. 2012, Appendix A).
    const VECTORS: &[(u64, u64, u64, u64)] = &[
        // (k0, k1, plaintext, ciphertext)
        (0, 0, 0, 0x818665aa0d02dfda),
        (0, 0, 0xffffffffffffffff, 0x604ae6ca03c20ada),
        (0xffffffffffffffff, 0, 0, 0x9fb51935fc3df524),
        (0, 0xffffffffffffffff, 0, 0x78a54cbe737bb7ef),
        (
            0,
            0xfedcba9876543210,
            0x0123456789abcdef,
            0xae25ad3ca8fa9ccf,
        ),
    ];

    fn cipher(k0: u64, k1: u64) -> Prince {
        Prince::new(((k0 as u128) << 64) | k1 as u128)
    }

    #[test]
    fn published_test_vectors() {
        for &(k0, k1, pt, ct) in VECTORS {
            let c = cipher(k0, k1);
            assert_eq!(
                c.encrypt(pt),
                ct,
                "encrypt failed for k0={k0:016x} k1={k1:016x} pt={pt:016x}"
            );
        }
    }

    #[test]
    fn decrypt_inverts_encrypt_on_vectors() {
        for &(k0, k1, pt, ct) in VECTORS {
            let c = cipher(k0, k1);
            assert_eq!(c.decrypt(ct), pt);
        }
    }

    #[test]
    fn round_trip_random_blocks() {
        let c = Prince::new(0xdeadbeef_cafebabe_01234567_89abcdef);
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..1000 {
            // Cheap LCG to vary inputs.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            assert_eq!(c.decrypt(c.encrypt(x)), x);
        }
    }

    #[test]
    fn m_prime_is_involution() {
        let mut x = 7u64;
        for _ in 0..200 {
            x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(13);
            assert_eq!(m_prime(m_prime(x)), x);
        }
    }

    #[test]
    fn const_helpers_match_reference() {
        let mut x = 3u64;
        for _ in 0..200 {
            x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
            assert_eq!(m_prime_const(x), m_prime(x));
            assert_eq!(permute_nibbles_const(x, &SR), permute_nibbles(x, &SR));
            assert_eq!(
                permute_nibbles_const(x, &SR_INV),
                permute_nibbles(x, &SR_INV)
            );
        }
    }

    #[test]
    fn fused_rounds_match_unfused_composition() {
        let mut s = 0x0123_4567_89ab_cdefu64;
        for _ in 0..500 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Forward round body: S → M' → SR.
            let fwd = permute_nibbles(m_prime(apply_sbox(s, &SBOX)), &SR);
            assert_eq!(fused_round(s, &T_FWD), fwd, "forward round at {s:016x}");
            // Backward round linear part: SR⁻¹ → M' (S⁻¹ applied after).
            let bwd = m_prime(permute_nibbles(s, &SR_INV));
            assert_eq!(fused_round(s, &T_BWD), bwd, "backward round at {s:016x}");
            // Middle layer: S → M' (S⁻¹ applied after).
            let mid = m_prime(apply_sbox(s, &SBOX));
            assert_eq!(fused_round(s, &T_MID), mid, "middle layer at {s:016x}");
        }
    }

    #[test]
    fn shift_rows_permutations_are_inverse() {
        for i in 0..16 {
            assert_eq!(SR_INV[SR[i]], i);
            assert_eq!(SR[SR_INV[i]], i);
        }
    }

    #[test]
    fn sboxes_are_inverse() {
        for i in 0..16u8 {
            assert_eq!(SBOX_INV[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn round_constants_satisfy_alpha_reflection() {
        for i in 0..12 {
            assert_eq!(RC[i] ^ RC[11 - i], ALPHA);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Prince::new(1);
        let b = Prince::new(2);
        assert_ne!(a.encrypt(0), b.encrypt(0));
    }

    #[test]
    fn encryption_diffuses_single_bit_flips() {
        // Flipping any single input bit should change roughly half the
        // output bits (avalanche); require at least 16 of 64 for all bits.
        let c = Prince::new(0x0f0e0d0c0b0a0908_0706050403020100);
        let base = c.encrypt(0x0123456789abcdef);
        for bit in 0..64 {
            let flipped = c.encrypt(0x0123456789abcdef ^ (1u64 << bit));
            let dist = (base ^ flipped).count_ones();
            assert!(dist >= 16, "bit {bit}: hamming distance only {dist}");
        }
    }
}
