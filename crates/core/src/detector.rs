//! Attack detection co-design (§5.3.2, footnote 2).
//!
//! "A trivial mechanism to detect an attack on RRS is to count the number of
//! swaps in 64 ms for each swapped row as a successful attack requires
//! repetitive swaps in 64 ms on one row. When an imminent attack on RRS is
//! flagged, a preemptive refresh of the entire DRAM can prevent the attack,
//! thus providing higher security than RRS alone."
//!
//! [`SwapDetector`] implements that mechanism as an optional extension to
//! the base design. Benign workloads essentially never re-swap the same row
//! within an epoch (Figure 5: tens of swaps across thousands of rows), so a
//! small per-row alarm threshold catches the §5.3 swap-chasing attack with
//! no false positives in practice.

use rrs_flat::FlatMap;

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Swaps of the *same* row within one epoch that trigger an alarm.
    pub swaps_per_row_alarm: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // A successful attack needs k = T_RH / T_RRS = 6 same-row swaps in
        // one epoch; alarming at 3 flags it long before completion.
        DetectorConfig {
            swaps_per_row_alarm: 3,
        }
    }
}

/// Counts per-row swaps within the current epoch and raises alarms.
#[derive(Debug, Clone, Default)]
pub struct SwapDetector {
    config: DetectorConfig,
    swaps_this_epoch: FlatMap<u32>,
    alarms: u64,
}

impl SwapDetector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        SwapDetector {
            config,
            swaps_this_epoch: FlatMap::new(),
            alarms: 0,
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Records that `row` was swapped; returns `true` if this row's swap
    /// count just reached the alarm threshold.
    pub fn record_swap(&mut self, row: u64) -> bool {
        let c = self.swaps_this_epoch.get_or_insert_with(row, || 0);
        *c += 1;
        if *c == self.config.swaps_per_row_alarm {
            self.alarms += 1;
            true
        } else {
            false
        }
    }

    /// Swaps recorded for `row` this epoch.
    pub fn swaps_of(&self, row: u64) -> u32 {
        self.swaps_this_epoch.get(row).copied().unwrap_or(0)
    }

    /// Lifetime alarm count.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Clears per-epoch counters.
    pub fn end_epoch(&mut self) {
        self.swaps_this_epoch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alarm_fires_exactly_at_threshold() {
        let mut d = SwapDetector::new(DetectorConfig {
            swaps_per_row_alarm: 3,
        });
        assert!(!d.record_swap(5));
        assert!(!d.record_swap(5));
        assert!(d.record_swap(5));
        // Only once per threshold crossing.
        assert!(!d.record_swap(5));
        assert_eq!(d.alarms(), 1);
        assert_eq!(d.swaps_of(5), 4);
    }

    #[test]
    fn distinct_rows_do_not_alarm() {
        let mut d = SwapDetector::new(DetectorConfig::default());
        for row in 0..1000u64 {
            assert!(!d.record_swap(row), "benign spread must not alarm");
        }
        assert_eq!(d.alarms(), 0);
    }

    #[test]
    fn epoch_end_resets_counts() {
        let mut d = SwapDetector::new(DetectorConfig {
            swaps_per_row_alarm: 2,
        });
        d.record_swap(9);
        d.end_epoch();
        assert_eq!(d.swaps_of(9), 0);
        assert!(!d.record_swap(9));
        assert!(d.record_swap(9));
    }

    #[test]
    fn default_threshold_is_below_attack_requirement() {
        // k = 6 same-row swaps complete an attack; default must be < 6.
        let d = DetectorConfig::default();
        assert!(d.swaps_per_row_alarm < 6);
    }
}
