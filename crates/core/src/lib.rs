#![warn(missing_docs)]

//! # rrs-core — Randomized Row-Swap
//!
//! From-scratch implementation of the mechanism proposed in *Randomized
//! Row-Swap: Mitigating Row Hammer by Breaking Spatial Correlation between
//! Aggressor and Victim Rows* (Saileshwar, Wang, Qureshi, Nair — ASPLOS
//! 2022):
//!
//! * [`tracker`] — the Misra-Gries Hot-Row Tracker (HRT, §4.2), in both the
//!   CAM reference form and the scalable CAT form with SetMin counters
//!   (§6.4);
//! * [`rit`] — the Row Indirection Table (RIT, §4.3/§6.3) with lock bits and
//!   lazy epoch draining;
//! * [`cat`] — the Collision Avoidance Table (§6.1–6.2), the conflict-free
//!   associative substrate both structures share;
//! * [`prince`] / [`prng`] — the PRINCE low-latency cipher and the CTR-mode
//!   PRNG that generates swap destinations (§4.4);
//! * [`swap`] — the swap-buffer engine and its latency model (§4.4);
//! * [`rrs`] — the assembled engine: [`Rrs`] (system-wide) and [`BankRrs`]
//!   (per bank);
//! * [`detector`] — the optional attack-detection co-design (§5.3.2 fn. 2);
//! * [`audit`] — debug-gated ghost-state audits of the RIT permutation,
//!   CAT occupancy, and swap-accounting invariants.
//!
//! # Quick start
//!
//! ```
//! use rrs_core::{Rrs, RrsConfig, RrsAction};
//! use rrs_dram::geometry::{DramGeometry, RowAddr};
//!
//! // A small design point: T_RH = 60 ⇒ swap every T_RRS = 10 activations.
//! let config = RrsConfig::for_threshold(60, 1_000, 1_024);
//! let mut rrs = Rrs::new(config, DramGeometry::tiny_test());
//!
//! let aggressor = RowAddr::new(0, 0, 0, 7);
//! let mut swapped = false;
//! for _ in 0..10 {
//!     for action in rrs.on_activation(aggressor) {
//!         if let RrsAction::Swap(_) = action {
//!             swapped = true;
//!         }
//!     }
//! }
//! assert!(swapped);
//! // The hammered row no longer lives at its home location.
//! assert_ne!(rrs.resolve(aggressor), aggressor);
//! ```

pub mod audit;
pub mod cat;
pub mod detector;
pub mod prince;
pub mod prng;
pub mod rit;
pub mod rng;
pub mod rrs;
pub mod swap;
pub mod tracker;

pub use audit::{AuditError, CatAudit, RitAudit, SwapAudit};
pub use cat::{Cat, CatConfig, CatConflict};
pub use detector::{DetectorConfig, SwapDetector};
pub use prince::Prince;
pub use prng::PrinceCtrRng;
pub use rit::{PhysicalSwap, RitError, RowIndirectionTable};
pub use rng::DetRng;
pub use rrs::{BankRrs, BankRrsStats, Rrs, RrsAction, RrsConfig, DEFAULT_K};
pub use swap::{SwapEngine, SwapMode, SwapStats};
pub use tracker::{
    AccessVerdict, CamTracker, CatTracker, CbfTracker, HotRowTracker, TrackerConfig,
};
