//! Collision Avoidance Table (CAT): a scalable, conflict-free associative
//! structure (§6.1–6.2 of the paper, inspired by MIRAGE).
//!
//! A CAT stores up to a target capacity `C` of tagged entries across two
//! set-associative tables indexed by *independent* keyed hashes (PRINCE with
//! different keys). Each table has `S` sets of `D + E` ways, where
//! `D = C / 2S` demand ways are provisioned for capacity and `E` extra ways
//! absorb skew. Installs go to the less-loaded of the entry's two candidate
//! sets; with `E = 6` extra ways the probability that both candidate sets
//! are full before global capacity is reached is so small that the paper
//! calls the structure conflict-free (Figure 9: ~10³⁰ installs). If a
//! conflict nonetheless occurs, a single-depth Cuckoo relocation (moving one
//! resident entry to its alternate set) resolves it, as in MIRAGE-Lite.
//!
//! The CAT never evicts on its own: capacity policy belongs to the client
//! (the Misra-Gries tracker replaces its minimum-count entry; the RIT evicts
//! a random unlocked tuple).

use std::fmt;

use rrs_flat::FlatMap;

use crate::prince::Prince;

/// Shape of a CAT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatConfig {
    /// Sets per table (must be a power of two).
    pub sets: usize,
    /// Demand ways per set (`D`): `capacity = 2 * sets * demand_ways`.
    pub demand_ways: usize,
    /// Extra ways per set (`E`) for conflict avoidance; the paper uses 6.
    pub extra_ways: usize,
    /// Seed from which the two table hash keys are derived.
    pub hash_seed: u128,
}

impl CatConfig {
    /// The paper's RIT shape: 2 tables × 256 sets × 20 ways
    /// (≈14 demand + 6 extra), target capacity 6800 entries (§6.3).
    pub fn rit_asplos22() -> Self {
        CatConfig {
            sets: 256,
            demand_ways: 14,
            extra_ways: 6,
            hash_seed: 0x5249_5400_CA7C_A700, // "RIT" tagged seed
        }
    }

    /// The paper's tracker shape: 2 tables × 64 sets × 20 ways (§6.4),
    /// target capacity 1700 entries.
    pub fn tracker_asplos22() -> Self {
        CatConfig {
            sets: 64,
            demand_ways: 14,
            extra_ways: 6,
            hash_seed: 0x5452_4143_4b45_5200, // "TRACKER" tagged seed
        }
    }

    /// Smallest power-of-two-set CAT that holds `capacity` entries with at
    /// most `max_demand_ways` demand ways per set, plus `extra_ways`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_demand_ways` is zero.
    pub fn for_capacity(capacity: usize, max_demand_ways: usize, extra_ways: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(max_demand_ways > 0, "demand ways must be positive");
        let mut sets = 1usize;
        while 2 * sets * max_demand_ways < capacity {
            sets *= 2;
        }
        let demand_ways = capacity.div_ceil(2 * sets);
        CatConfig {
            sets,
            demand_ways,
            extra_ways,
            hash_seed: 0xCA7_CA7,
        }
    }

    /// Total ways per set (`D + E`).
    pub fn ways(&self) -> usize {
        self.demand_ways + self.extra_ways
    }

    /// Target capacity `C = 2 * S * D`.
    pub fn capacity(&self) -> usize {
        2 * self.sets * self.demand_ways
    }

    /// Total physical slots `2 * S * (D + E)`.
    pub fn slots(&self) -> usize {
        2 * self.sets * self.ways()
    }

    /// Overrides the hash seed (used to make structures independent).
    pub fn with_seed(mut self, seed: u128) -> Self {
        self.hash_seed = seed;
        self
    }
}

/// Error returned when an install finds both candidate sets full and Cuckoo
/// relocation cannot free a slot — the event Figure 9 shows to be
/// astronomically rare with 6 extra ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatConflict {
    /// The tag that could not be installed.
    pub tag: u64,
}

impl fmt::Display for CatConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CAT conflict: both candidate sets full for tag {:#x}",
            self.tag
        )
    }
}

impl std::error::Error for CatConflict {}

#[derive(Debug, Clone)]
struct Slot<V> {
    tag: u64,
    value: V,
}

/// Location of an entry inside the CAT: `(table, set, way)`.
pub type SlotIndex = (usize, usize, usize);

/// The Collision Avoidance Table.
///
/// # Example
///
/// ```
/// use rrs_core::cat::{Cat, CatConfig};
///
/// let mut cat: Cat<u32> = Cat::new(CatConfig::tracker_asplos22());
/// cat.insert(0x1234, 7)?;
/// assert_eq!(cat.get(0x1234), Some(&7));
/// if let Some(v) = cat.get_mut(0x1234) {
///     *v += 1;
/// }
/// assert_eq!(cat.remove(0x1234), Some(8));
/// # Ok::<(), rrs_core::cat::CatConflict>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cat<V> {
    config: CatConfig,
    hashers: [Prince; 2],
    /// `tables[t][set * ways + way]`.
    tables: [Vec<Option<Slot<V>>>; 2],
    /// Tag → packed `(table, set, way)` mirror of the slot arrays, so a
    /// lookup costs one flat-map probe instead of two PRINCE hashes plus a
    /// 2 × ways scan. Hits verify against the authoritative slot tag; the
    /// slot arrays remain the source of truth.
    index: FlatMap<u64>,
    /// `occupied[table][set]`: valid-slot count of the set, kept exact on
    /// every place/take so install-time occupancy checks are O(1) instead
    /// of a `ways`-slot scan per candidate set.
    occupied: [Vec<u8>; 2],
    len: usize,
    /// Lifetime count of installs that needed Cuckoo relocation.
    relocations: u64,
}

/// Packs a [`SlotIndex`] into one word for the lookup index (`set` and
/// `way` are bounded far below 2²⁴ by any constructible config).
#[inline]
fn pack_loc((table, set, way): SlotIndex) -> u64 {
    ((table as u64) << 48) | ((set as u64) << 24) | way as u64
}

/// Inverse of [`pack_loc`].
#[inline]
fn unpack_loc(packed: u64) -> SlotIndex {
    (
        (packed >> 48) as usize,
        ((packed >> 24) & 0xFF_FFFF) as usize,
        (packed & 0xFF_FFFF) as usize,
    )
}

impl<V> Cat<V> {
    /// Creates an empty CAT.
    ///
    /// # Panics
    ///
    /// Panics if `config.sets` is not a power of two.
    pub fn new(config: CatConfig) -> Self {
        assert!(
            config.sets.is_power_of_two(),
            "CAT sets must be a power of two"
        );
        let slots_per_table = config.sets * config.ways();
        let mut t0 = Vec::with_capacity(slots_per_table);
        let mut t1 = Vec::with_capacity(slots_per_table);
        t0.resize_with(slots_per_table, || None);
        t1.resize_with(slots_per_table, || None);
        Cat {
            config,
            hashers: [
                Prince::new(config.hash_seed ^ 0x0123_4567_89ab_cdef),
                Prince::new(config.hash_seed ^ 0xfedc_ba98_7654_3210_0000_0000_0000_0001),
            ],
            tables: [t0, t1],
            index: FlatMap::new(),
            occupied: [vec![0; config.sets], vec![0; config.sets]],
            len: 0,
            relocations: 0,
        }
    }

    /// The configuration this CAT was built with.
    pub fn config(&self) -> &CatConfig {
        &self.config
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the CAT holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Target capacity (demand slots).
    pub fn capacity(&self) -> usize {
        self.config.capacity()
    }

    /// Lifetime count of installs that required a Cuckoo relocation.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    /// Set index of `tag` in table `t`.
    pub fn set_of(&self, table: usize, tag: u64) -> usize {
        (self.hasher(table).encrypt(tag) as usize) & (self.config.sets - 1)
    }

    /// The hasher of table `t` (any `t > 1` aliases table 1; callers only
    /// ever pass 0 or 1).
    fn hasher(&self, table: usize) -> &Prince {
        if table == 0 {
            &self.hashers[0]
        } else {
            &self.hashers[1]
        }
    }

    /// The slot storage of table `t`.
    fn table(&self, table: usize) -> &[Option<Slot<V>>] {
        if table == 0 {
            &self.tables[0]
        } else {
            &self.tables[1]
        }
    }

    fn table_mut(&mut self, table: usize) -> &mut Vec<Option<Slot<V>>> {
        if table == 0 {
            &mut self.tables[0]
        } else {
            &mut self.tables[1]
        }
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        let w = self.config.ways();
        set * w..(set + 1) * w
    }

    /// The `D + E` slots of one set (empty slice for an out-of-range set,
    /// which no in-range hash ever produces).
    fn set_slots(&self, table: usize, set: usize) -> &[Option<Slot<V>>] {
        self.table(table).get(self.slot_range(set)).unwrap_or(&[])
    }

    fn set_slots_mut(&mut self, table: usize, set: usize) -> &mut [Option<Slot<V>>] {
        let range = self.slot_range(set);
        self.table_mut(table).get_mut(range).unwrap_or(&mut [])
    }

    /// Locates `tag` through the flat index — zero hashes on the common
    /// path. The indexed location is verified against the slot's own tag,
    /// so a stale or corrupted index entry reads as a miss, exactly like
    /// the original two-set scan.
    fn find(&self, tag: u64) -> Option<SlotIndex> {
        let (t, set, way) = unpack_loc(*self.index.get(tag)?);
        let slot = self.set_slots(t, set).get(way)?.as_ref()?;
        if slot.tag == tag {
            Some((t, set, way))
        } else {
            None
        }
    }

    /// The pre-index lookup: hash into both candidate sets and scan their
    /// ways. Kept as the differential reference for the index
    /// ([`crate::audit::CatAudit`] and the property tests compare against
    /// it).
    #[doc(hidden)]
    pub fn find_by_scan(&self, tag: u64) -> Option<SlotIndex> {
        for t in 0..2 {
            let set = self.set_of(t, tag);
            for (way, slot) in self.set_slots(t, set).iter().enumerate() {
                if slot.as_ref().is_some_and(|s| s.tag == tag) {
                    return Some((t, set, way));
                }
            }
        }
        None
    }

    /// Whether `tag` is present.
    pub fn contains(&self, tag: u64) -> bool {
        self.find(tag).is_some()
    }

    /// Location `(table, set, way)` of `tag`, if present. Clients that
    /// maintain per-set metadata (the tracker's SetMin counters, §6.4) use
    /// this to know which set an update touched.
    pub fn locate(&self, tag: u64) -> Option<SlotIndex> {
        self.find(tag)
    }

    /// Shared reference to the value stored for `tag`.
    pub fn get(&self, tag: u64) -> Option<&V> {
        let (t, set, way) = self.find(tag)?;
        self.set_slots(t, set).get(way)?.as_ref().map(|s| &s.value)
    }

    /// Exclusive reference to the value stored for `tag`.
    pub fn get_mut(&mut self, tag: u64) -> Option<&mut V> {
        let (t, set, way) = self.find(tag)?;
        self.set_slots_mut(t, set)
            .get_mut(way)?
            .as_mut()
            .map(|s| &mut s.value)
    }

    fn invalid_ways_in(&self, table: usize, set: usize) -> usize {
        let valid = self
            .occupied
            .get(table)
            .and_then(|v| v.get(set))
            .copied()
            .map_or(0, usize::from);
        let invalid = self.config.ways().saturating_sub(valid);
        debug_assert_eq!(
            invalid,
            self.set_slots(table, set)
                .iter()
                .filter(|s| s.is_none())
                .count(),
            "occupancy counter out of sync with the slot array"
        );
        invalid
    }

    /// Adjusts one set's occupancy counter by `delta` (every slot
    /// place/take funnels through here).
    fn bump_occupied(&mut self, table: usize, set: usize, delta: i8) {
        if let Some(occ) = self.occupied.get_mut(table).and_then(|v| v.get_mut(set)) {
            *occ = occ.wrapping_add_signed(delta);
        }
    }

    /// Installs `tag -> value`, choosing the less-loaded of its two
    /// candidate sets (§6.1). Does **not** enforce the capacity target —
    /// capacity policy is the caller's (evict first, then install).
    ///
    /// # Errors
    ///
    /// Returns [`CatConflict`] if both candidate sets are physically full
    /// and single-depth Cuckoo relocation cannot make room.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `tag` is already present (callers must use
    /// [`Cat::get_mut`] to update existing entries).
    pub fn insert(&mut self, tag: u64, value: V) -> Result<SlotIndex, CatConflict> {
        debug_assert!(!self.contains(tag), "duplicate CAT install of {tag:#x}");
        let s0 = self.set_of(0, tag);
        let s1 = self.set_of(1, tag);
        let inv0 = self.invalid_ways_in(0, s0);
        let inv1 = self.invalid_ways_in(1, s1);
        let (table, set) = if inv0 >= inv1 { (0, s0) } else { (1, s1) };
        if inv0 == 0 && inv1 == 0 {
            // Conflict: attempt single-depth Cuckoo relocation à la
            // MIRAGE-Lite: move one resident of either candidate set to its
            // alternate set in the other table.
            if let Some((t, set)) = self.try_relocate(s0, s1) {
                self.relocations += 1;
                return self.place(t, set, tag, value).ok_or(CatConflict { tag });
            }
            return Err(CatConflict { tag });
        }
        self.place(table, set, tag, value)
            .ok_or(CatConflict { tag })
    }

    fn try_relocate(&mut self, s0: usize, s1: usize) -> Option<(usize, usize)> {
        for (t, set) in [(0, s0), (1, s1)] {
            let other = 1 - t;
            for way in 0..self.config.ways() {
                let resident_tag = match self.set_slots(t, set).get(way) {
                    Some(Some(s)) => s.tag,
                    _ => continue,
                };
                let alt_set = self.set_of(other, resident_tag);
                if self.invalid_ways_in(other, alt_set) > 0 {
                    let taken = self
                        .set_slots_mut(t, set)
                        .get_mut(way)
                        .and_then(|s| s.take());
                    if let Some(slot) = taken {
                        self.bump_occupied(t, set, -1);
                        self.len -= 1;
                        // The alternate set was just checked to have room,
                        // so this place() cannot fail.
                        self.place(other, alt_set, slot.tag, slot.value)?;
                        return Some((t, set));
                    }
                }
            }
        }
        None
    }

    /// Writes `tag -> value` into the first free way of `(table, set)`, or
    /// returns `None` (without storing) if the set is physically full —
    /// callers check occupancy first, so `None` means a caller bug and
    /// surfaces as a [`CatConflict`] rather than a panic.
    fn place(&mut self, table: usize, set: usize, tag: u64, value: V) -> Option<SlotIndex> {
        let slots = self.set_slots_mut(table, set);
        let way = slots.iter().position(|s| s.is_none())?;
        *slots.get_mut(way)? = Some(Slot { tag, value });
        self.index.insert(tag, pack_loc((table, set, way)));
        self.bump_occupied(table, set, 1);
        self.len += 1;
        Some((table, set, way))
    }

    /// Removes `tag`, returning its value.
    pub fn remove(&mut self, tag: u64) -> Option<V> {
        self.remove_entry(tag).map(|(_, value)| value)
    }

    /// Removes `tag`, returning its (former) location together with its
    /// value — one index probe instead of the `locate` + `remove` pair
    /// callers that repair per-set metadata would otherwise pay.
    pub fn remove_entry(&mut self, tag: u64) -> Option<(SlotIndex, V)> {
        let (t, set, way) = self.find(tag)?;
        let slot = self.set_slots_mut(t, set).get_mut(way)?.take()?;
        self.index.remove(tag);
        self.bump_occupied(t, set, -1);
        self.len -= 1;
        Some(((t, set, way), slot.value))
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for t in &mut self.tables {
            for s in t.iter_mut() {
                *s = None;
            }
        }
        for occ in &mut self.occupied {
            occ.iter_mut().for_each(|o| *o = 0);
        }
        self.index.clear();
        self.len = 0;
    }

    /// Iterates over `(tag, &value)` in an arbitrary but deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.tables
            .iter()
            .flat_map(|t| t.iter())
            .filter_map(|s| s.as_ref().map(|s| (s.tag, &s.value)))
    }

    /// Iterates over the entries of one set of one table.
    pub fn set_iter(&self, table: usize, set: usize) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.set_slots(table, set)
            .iter()
            .filter_map(|s| s.as_ref().map(|s| (s.tag, &s.value)))
    }

    /// Test-only corruption: inflates the cached length without touching
    /// any slot, so the occupancy audit must flag the mismatch.
    #[doc(hidden)]
    pub fn corrupt_len_for_test(&mut self) {
        self.len = self.len.wrapping_add(1);
    }

    /// Test-only corruption: rewrites the tag of the first occupied slot in
    /// place (bypassing the keyed hashes), so the entry becomes unfindable.
    /// Returns `false` if the CAT is empty.
    #[doc(hidden)]
    pub fn corrupt_first_tag_for_test(&mut self, new_tag: u64) -> bool {
        for t in &mut self.tables {
            for s in t.iter_mut() {
                if let Some(slot) = s.as_mut() {
                    slot.tag = new_tag;
                    return true;
                }
            }
        }
        false
    }

    /// Test-only corruption: drops `tag` from the flat lookup index while
    /// leaving its slot resident, so the index-coherence audit must flag
    /// the divergence. Returns `false` if `tag` was not indexed.
    #[doc(hidden)]
    pub fn corrupt_index_for_test(&mut self, tag: u64) -> bool {
        self.index.remove(tag).is_some()
    }

    /// Picks the `n`-th valid entry in slot order, wrapping around; `None`
    /// when empty. Combined with a random `n` this implements the random
    /// eviction candidate selection of §6.1.
    pub fn nth_entry(&self, n: usize) -> Option<(u64, &V)> {
        if self.len == 0 {
            return None;
        }
        self.iter().nth(n % self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cat<u32> {
        Cat::new(CatConfig {
            sets: 8,
            demand_ways: 2,
            extra_ways: 2,
            hash_seed: 12345,
        })
    }

    #[test]
    fn insert_get_remove_round_trip() -> Result<(), CatConflict> {
        let mut cat = small();
        cat.insert(100, 7)?;
        assert_eq!(cat.get(100), Some(&7));
        *cat.get_mut(100).expect("tag 100 was just inserted") = 9;
        assert_eq!(cat.remove(100), Some(9));
        assert!(cat.get(100).is_none());
        assert!(cat.is_empty());
        Ok(())
    }

    #[test]
    fn fills_to_physical_slots_without_conflict_mostly() {
        // With power-of-two-choices balancing, a small CAT comfortably holds
        // its demand capacity.
        let mut cat = small();
        let cap = cat.capacity();
        for tag in 0..cap as u64 {
            cat.insert(tag, 0)
                .expect("demand-capacity install conflicted");
        }
        assert_eq!(cat.len(), cap);
    }

    #[test]
    fn conflict_is_reported_when_truly_full() -> Result<(), CatConflict> {
        let mut cat: Cat<u32> = Cat::new(CatConfig {
            sets: 1,
            demand_ways: 1,
            extra_ways: 0,
            hash_seed: 1,
        });
        // Only 2 physical slots exist (1 set × 1 way × 2 tables).
        cat.insert(1, 0)?;
        cat.insert(2, 0)?;
        let err = cat.insert(3, 0).expect_err("third install must conflict");
        assert_eq!(err.tag, 3);
        assert!(err.to_string().contains("conflict"));
        Ok(())
    }

    #[test]
    fn lookup_misses_return_none() {
        let cat = small();
        assert_eq!(cat.get(42), None);
        assert!(!cat.contains(42));
    }

    #[test]
    fn iter_sees_all_entries() -> Result<(), CatConflict> {
        let mut cat = small();
        for tag in 0..10u64 {
            cat.insert(tag, tag as u32 * 2)?;
        }
        let mut items: Vec<_> = cat.iter().map(|(t, &v)| (t, v)).collect();
        items.sort();
        assert_eq!(items.len(), 10);
        assert_eq!(items[3], (3, 6));
        Ok(())
    }

    #[test]
    fn nth_entry_wraps() -> Result<(), CatConflict> {
        let mut cat = small();
        cat.insert(5, 50)?;
        assert_eq!(cat.nth_entry(0).map(|(t, _)| t), Some(5));
        assert_eq!(cat.nth_entry(7).map(|(t, _)| t), Some(5));
        let empty = small();
        assert!(empty.nth_entry(0).is_none());
        Ok(())
    }

    #[test]
    fn hashes_differ_between_tables() {
        let cat = small();
        // For a random tag population the two indices must not be identical
        // everywhere (independent hashes).
        let diff = (0..64u64)
            .filter(|&t| cat.set_of(0, t) != cat.set_of(1, t))
            .count();
        assert!(diff > 32, "only {diff}/64 tags had distinct indices");
    }

    #[test]
    fn clear_empties_everything() -> Result<(), CatConflict> {
        let mut cat = small();
        for tag in 0..6u64 {
            cat.insert(tag, 0)?;
        }
        cat.clear();
        assert!(cat.is_empty());
        assert!(!cat.contains(3));
        Ok(())
    }

    #[test]
    fn for_capacity_builds_adequate_shape() {
        let cfg = CatConfig::for_capacity(1700, 14, 6);
        assert!(cfg.capacity() >= 1700);
        assert!(cfg.sets.is_power_of_two());
        assert!(cfg.demand_ways <= 14);
        assert_eq!(cfg.extra_ways, 6);

        let rit = CatConfig::for_capacity(6800, 14, 6);
        assert!(rit.capacity() >= 6800);
    }

    #[test]
    fn paper_shapes_match_section6() {
        let t = CatConfig::tracker_asplos22();
        assert_eq!((t.sets, t.ways()), (64, 20));
        assert!(t.capacity() >= 1700);
        let r = CatConfig::rit_asplos22();
        assert_eq!((r.sets, r.ways()), (256, 20));
        assert!(r.capacity() >= 6800);
        // Total slot counts match Table 5: 2x64x20 and 2x256x20.
        assert_eq!(t.slots(), 2 * 64 * 20);
        assert_eq!(r.slots(), 2 * 256 * 20);
    }

    #[test]
    fn cuckoo_relocation_rescues_conflicts() {
        // Tiny CAT where conflicts are easy to hit: verify that when insert
        // succeeds after both sets were full, a relocation was performed.
        let mut cat: Cat<u32> = Cat::new(CatConfig {
            sets: 2,
            demand_ways: 1,
            extra_ways: 0,
            hash_seed: 3,
        });
        let mut installed = 0u64;
        for tag in 0..1000u64 {
            match cat.insert(tag, 0) {
                Ok(_) => installed += 1,
                Err(_) => break,
            }
        }
        // 4 physical slots; we can never hold more than 4.
        assert!(installed <= 4);
        assert_eq!(cat.len() as u64, installed);
    }

    #[test]
    fn index_agrees_with_scan_under_churn() {
        // Heavy insert/remove churn, including Cuckoo relocations: the flat
        // index must agree with the authoritative two-set scan on every
        // lookup, hit or miss.
        let mut cat: Cat<u64> = Cat::new(CatConfig {
            sets: 4,
            demand_ways: 2,
            extra_ways: 1,
            hash_seed: 99,
        });
        let mut x = 0x1234_5678u64;
        for step in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let tag = (x >> 33) % 64;
            if cat.contains(tag) {
                assert_eq!(cat.remove(tag), Some(tag), "step {step}");
            } else {
                let _ = cat.insert(tag, tag);
            }
            for probe in 0..64u64 {
                assert_eq!(
                    cat.locate(probe),
                    cat.find_by_scan(probe),
                    "step {step}, probe {probe}"
                );
            }
        }
        assert!(cat.relocations() > 0, "churn never exercised relocation");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _: Cat<u32> = Cat::new(CatConfig {
            sets: 3,
            demand_ways: 1,
            extra_ways: 0,
            hash_seed: 0,
        });
    }
}
