//! Ghost-state audits: debug-gated checkers that verify the structural
//! invariants the paper's security argument rests on (§5.2, §6).
//!
//! Each audit is a *pure observer*: it walks a structure's state and
//! returns `Err(AuditError)` on the first inconsistency, without mutating
//! anything. Three audits are provided:
//!
//! * [`RitAudit`] — the Row Indirection Table must always encode a sparse
//!   *permutation*: forward and reverse maps the same size, no stored
//!   identities, no physical row claimed twice, and each direction the
//!   exact inverse of the other (§4.3: "the RIT stores tuples ⟨X,Y⟩" —
//!   a tuple is one displaced row *and* its inverse).
//! * [`CatAudit`] — a Collision Avoidance Table's cached length must match
//!   its occupied slots, no tag may be resident twice, and every resident
//!   tag must sit in one of the two sets its keyed hashes select (§6.1) —
//!   a misplaced tag would be unfindable and silently leak a slot.
//! * [`SwapAudit`] — the swap engine's latency accounting must balance:
//!   `busy_cycles = (swaps + unswaps) × swap_cost` (§4.4's fixed-cost
//!   model) and per-epoch counters can never exceed lifetime totals.
//!
//! In debug builds the mutating operations of [`RowIndirectionTable`] and
//! [`SwapEngine`] invoke their audit automatically (sampled, so property
//! tests stay fast); release builds pay nothing. Tests can also call the
//! audits directly — see `crates/core/tests/audits.rs`, which includes
//! negative tests driving each audit over deliberately corrupted state.

use std::fmt;

use crate::cat::Cat;
use crate::rit::RowIndirectionTable;
use crate::swap::SwapEngine;

/// The first inconsistency an audit found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Forward and reverse RIT maps hold different numbers of entries.
    RitSizeMismatch {
        /// Entries in the forward (logical → physical) map.
        forward: usize,
        /// Entries in the reverse (physical → logical) map.
        reverse: usize,
    },
    /// A logical row is mapped to itself; identities must not be stored.
    RitIdentityMapping {
        /// The offending row.
        row: u64,
    },
    /// Two logical rows claim the same physical location — the mapping is
    /// not injective, so one row's contents would be unreachable.
    RitDuplicatePhysical {
        /// The physical row claimed twice.
        physical: u64,
    },
    /// A forward entry has no matching reverse entry (or vice versa).
    RitInverseBroken {
        /// The displaced logical row.
        logical: u64,
        /// The physical location the forward map claims for it.
        physical: u64,
    },
    /// More rows are displaced than the configured tuple budget.
    RitOverCapacity {
        /// Displaced rows currently recorded.
        in_use: usize,
        /// The configured tuple capacity.
        capacity: usize,
    },
    /// A CAT's cached `len` disagrees with its occupied slot count.
    CatLenMismatch {
        /// The cached length.
        len: usize,
        /// Occupied slots actually found.
        occupied: usize,
    },
    /// The same tag is resident in more than one slot.
    CatDuplicateTag {
        /// The duplicated tag.
        tag: u64,
    },
    /// A resident tag sits in a set its keyed hash does not select, so
    /// lookups can never find it.
    CatMisplacedTag {
        /// The misplaced tag.
        tag: u64,
        /// Table the tag was found in.
        table: usize,
        /// Set the tag was found in.
        set: usize,
        /// Set the table's hash actually selects for this tag.
        expected_set: usize,
    },
    /// The swap engine's busy-cycle total does not equal
    /// `(swaps + unswaps) × swap_cost`.
    SwapAccountingMismatch {
        /// Recorded busy cycles.
        busy_cycles: u64,
        /// What the operation counts imply.
        expected: u64,
    },
    /// The per-epoch swap counter exceeds the lifetime swap total.
    SwapEpochExceedsTotal {
        /// Swaps recorded this epoch.
        epoch_swaps: u64,
        /// Lifetime swaps.
        swaps: u64,
    },
    /// The CAT's flat lookup index disagrees with an authoritative two-set
    /// scan for a resident tag — the hot-path lookup and the slot arrays
    /// have diverged.
    CatIndexIncoherent {
        /// The tag the index mishandles.
        tag: u64,
    },
    /// A resolve-TLB line caches a value the underlying CATs contradict —
    /// an invalidation was missed.
    RitTlbIncoherent {
        /// The cached key (logical row for the forward direction, physical
        /// row for the reverse direction).
        key: u64,
        /// The value the TLB serves.
        cached: u64,
        /// What the authoritative CAT lookup returns.
        actual: u64,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::RitSizeMismatch { forward, reverse } => write!(
                f,
                "RIT forward map has {forward} entries but reverse has {reverse}"
            ),
            AuditError::RitIdentityMapping { row } => {
                write!(f, "RIT stores identity mapping for row {row}")
            }
            AuditError::RitDuplicatePhysical { physical } => {
                write!(f, "RIT maps two logical rows to physical row {physical}")
            }
            AuditError::RitInverseBroken { logical, physical } => write!(
                f,
                "RIT forward entry {logical} -> {physical} has no consistent inverse"
            ),
            AuditError::RitOverCapacity { in_use, capacity } => {
                write!(
                    f,
                    "RIT holds {in_use} tuples, over its budget of {capacity}"
                )
            }
            AuditError::CatLenMismatch { len, occupied } => {
                write!(f, "CAT caches len {len} but {occupied} slots are occupied")
            }
            AuditError::CatDuplicateTag { tag } => {
                write!(f, "CAT holds tag {tag:#x} in more than one slot")
            }
            AuditError::CatMisplacedTag {
                tag,
                table,
                set,
                expected_set,
            } => write!(
                f,
                "CAT tag {tag:#x} resides in table {table} set {set}, but hashes to set \
                 {expected_set}"
            ),
            AuditError::SwapAccountingMismatch {
                busy_cycles,
                expected,
            } => write!(
                f,
                "swap engine reports {busy_cycles} busy cycles; operation counts imply {expected}"
            ),
            AuditError::SwapEpochExceedsTotal { epoch_swaps, swaps } => write!(
                f,
                "swap engine epoch counter ({epoch_swaps}) exceeds lifetime swaps ({swaps})"
            ),
            AuditError::CatIndexIncoherent { tag } => {
                write!(
                    f,
                    "CAT flat index disagrees with slot scan for tag {tag:#x}"
                )
            }
            AuditError::RitTlbIncoherent {
                key,
                cached,
                actual,
            } => write!(
                f,
                "RIT resolve-TLB caches {key} -> {cached}, but the CATs say {actual}"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// Verifies that a [`RowIndirectionTable`] encodes a sparse permutation.
pub struct RitAudit;

impl RitAudit {
    /// Checks every RIT invariant; returns the first violation found.
    ///
    /// # Errors
    ///
    /// Any `Rit*` variant of [`AuditError`], or a `Cat*` variant from
    /// auditing the two underlying CAT structures.
    pub fn verify(rit: &RowIndirectionTable) -> Result<(), AuditError> {
        CatAudit::verify(rit.forward_cat())?;
        CatAudit::verify(rit.reverse_cat())?;

        let forward = rit.forward_cat().len();
        let reverse = rit.reverse_cat().len();
        if forward != reverse {
            return Err(AuditError::RitSizeMismatch { forward, reverse });
        }
        if forward > rit.tuple_capacity() {
            return Err(AuditError::RitOverCapacity {
                in_use: forward,
                capacity: rit.tuple_capacity(),
            });
        }

        let mut seen_physical = std::collections::BTreeSet::new();
        for (logical, physical) in rit.iter() {
            if logical == physical {
                return Err(AuditError::RitIdentityMapping { row: logical });
            }
            if !seen_physical.insert(physical) {
                return Err(AuditError::RitDuplicatePhysical { physical });
            }
            if rit.reverse_cat().get(physical) != Some(&logical) {
                return Err(AuditError::RitInverseBroken { logical, physical });
            }
        }
        // Sizes match and every forward entry has a distinct reverse
        // partner, so the reverse map cannot hold dangling extras — but a
        // reverse entry could still point at a logical row whose forward
        // entry names a *different* physical location.
        for (physical, &logical) in rit.reverse_cat().iter() {
            if rit.resolve_uncached(logical) != physical {
                return Err(AuditError::RitInverseBroken { logical, physical });
            }
        }
        // Resolve-TLB coherence: every cached line must agree with the
        // authoritative (uncached) lookup — a disagreement means a mutation
        // skipped its invalidation.
        for (direction, key, cached) in rit.tlb_entries() {
            let actual = if direction == 0 {
                rit.resolve_uncached(key)
            } else {
                rit.occupant_uncached(key)
            };
            if cached != actual {
                return Err(AuditError::RitTlbIncoherent {
                    key,
                    cached,
                    actual,
                });
            }
        }
        Ok(())
    }
}

/// Verifies a [`Cat`]'s occupancy accounting and hash placement.
pub struct CatAudit;

impl CatAudit {
    /// Checks every CAT invariant; returns the first violation found.
    ///
    /// # Errors
    ///
    /// Any `Cat*` variant of [`AuditError`].
    pub fn verify<V>(cat: &Cat<V>) -> Result<(), AuditError> {
        let sets = cat.config().sets;
        let mut occupied = 0usize;
        let mut seen_tags = std::collections::BTreeSet::new();
        for table in 0..2 {
            for set in 0..sets {
                for (tag, _) in cat.set_iter(table, set) {
                    occupied += 1;
                    if !seen_tags.insert(tag) {
                        return Err(AuditError::CatDuplicateTag { tag });
                    }
                    let expected_set = cat.set_of(table, tag);
                    if expected_set != set {
                        return Err(AuditError::CatMisplacedTag {
                            tag,
                            table,
                            set,
                            expected_set,
                        });
                    }
                }
            }
        }
        if occupied != cat.len() {
            return Err(AuditError::CatLenMismatch {
                len: cat.len(),
                occupied,
            });
        }
        // Flat-index coherence: the indexed lookup must agree with the
        // authoritative two-set scan for every resident tag (a stale or
        // missing index entry makes a live entry unfindable on the hot
        // path).
        for (tag, _) in cat.iter() {
            if cat.locate(tag) != cat.find_by_scan(tag) {
                return Err(AuditError::CatIndexIncoherent { tag });
            }
        }
        Ok(())
    }
}

/// Verifies a [`SwapEngine`]'s latency accounting.
pub struct SwapAudit;

impl SwapAudit {
    /// Checks the swap engine's accounting; returns the first violation.
    ///
    /// # Errors
    ///
    /// Any `Swap*` variant of [`AuditError`].
    pub fn verify(engine: &SwapEngine) -> Result<(), AuditError> {
        let stats = engine.stats();
        let ops = stats.swaps + stats.unswaps;
        let expected = ops * engine.swap_cost();
        if stats.busy_cycles != expected {
            return Err(AuditError::SwapAccountingMismatch {
                busy_cycles: stats.busy_cycles,
                expected,
            });
        }
        if stats.epoch_swaps > stats.swaps {
            return Err(AuditError::SwapEpochExceedsTotal {
                epoch_swaps: stats.epoch_swaps,
                swaps: stats.swaps,
            });
        }
        Ok(())
    }
}
