//! Hot-Row Tracker (HRT): Misra-Gries frequent-element tracking of row
//! activations (§4.2, following Graphene).
//!
//! The Misra-Gries tracker guarantees (Invariant 1, §5.2) that any row whose
//! true activation count reaches a multiple of the swap threshold `T` within
//! the tracking window has a counter value at least that large, provided the
//! tracker has `N > W/T - 1` entries, where `W` is the maximum number of
//! activations in the window. For the paper's parameters
//! (`W = ACT_max ≈ 1.36 M`, `T = 800`) that is 1700 entries per bank.
//!
//! Two implementations are provided behind the [`HotRowTracker`] trait:
//!
//! * [`CamTracker`] — the straightforward content-addressable-memory
//!   formulation used by Graphene; exact but unscalable in hardware beyond a
//!   few dozen entries (§6). It serves as the reference model.
//! * [`CatTracker`] — the paper's scalable design (§6.4): entries live in a
//!   [`Cat`], and per-set *SetMin* counters avoid the fully-associative
//!   minimum search that the Misra-Gries replacement rule needs.
//!
//! Both are deterministic and behave identically on any access sequence
//! (modulo which minimum-count entry is replaced on ties), which the tests
//! exploit for differential testing.

use rrs_flat::FlatMap;
use rrs_telemetry::{Counter, Event, Telemetry};

use crate::cat::{Cat, CatConfig};

/// What the tracker concluded about one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessVerdict {
    /// The row's estimated activation count just crossed a multiple of the
    /// swap threshold: the mitigation must act (swap, for RRS).
    pub swap_due: bool,
    /// The tracker's (over-)estimate of the row's activation count, or the
    /// spill counter if the row is untracked.
    pub estimated_count: u64,
}

/// Common interface of hot-row trackers.
pub trait HotRowTracker {
    /// Records one activation of `row` and reports whether mitigation is due.
    fn record_access(&mut self, row: u64) -> AccessVerdict;

    /// Whether `row` currently has a tracker entry.
    fn contains(&self, row: u64) -> bool;

    /// The tracked (over-)estimated count for `row`, if present.
    fn count_of(&self, row: u64) -> Option<u64>;

    /// Number of tracked rows.
    fn len(&self) -> usize;

    /// Whether no rows are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current spill-counter value.
    fn spill(&self) -> u64;

    /// Clears all state at the end of a tracking window (§4.1: "The HRT is
    /// reset at the end of every epoch").
    fn reset(&mut self);

    /// Adopts a shared telemetry spine: register `hrt.*` counters and emit
    /// [`Event::HrtInstall`] / [`Event::HrtEvict`] when tracing. The
    /// default keeps a tracker unobserved (zero overhead).
    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let _ = telemetry;
    }
}

/// Shared Misra-Gries bookkeeping parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerConfig {
    /// Entry budget `N` (1700 for the paper's T=800 at ACT_max=1.36 M).
    pub entries: usize,
    /// Swap threshold `T` (`T_RRS`); a verdict fires at every multiple.
    pub threshold: u64,
}

impl TrackerConfig {
    /// Entries needed to guarantee detection: `N = ceil(W / T)`, which
    /// satisfies the Misra-Gries bound `N > W/T - 1` (§5.2).
    pub fn for_window(max_activations: u64, threshold: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        TrackerConfig {
            entries: max_activations.div_ceil(threshold) as usize,
            threshold,
        }
    }
}

/// Reference Misra-Gries tracker over a content-addressable table.
///
/// Counts live in a deterministic [`FlatMap`]; the replacement rule picks
/// the minimum of the total order `(count, row)`, which is independent of
/// iteration order, so the flat table changes nothing observable.
#[derive(Debug, Clone)]
pub struct CamTracker {
    config: TrackerConfig,
    counts: FlatMap<u64>,
    spill: u64,
}

impl CamTracker {
    /// Creates an empty tracker.
    pub fn new(config: TrackerConfig) -> Self {
        CamTracker {
            config,
            counts: FlatMap::new(),
            spill: 0,
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    fn min_entry(&self) -> Option<(u64, u64)> {
        self.counts
            .iter()
            .map(|(row, &count)| (row, count))
            .min_by_key(|&(row, count)| (count, row))
    }
}

impl HotRowTracker for CamTracker {
    fn record_access(&mut self, row: u64) -> AccessVerdict {
        let t = self.config.threshold;
        if let Some(c) = self.counts.get_mut(row) {
            *c += 1;
            return AccessVerdict {
                swap_due: *c % t == 0,
                estimated_count: *c,
            };
        }
        if self.counts.len() < self.config.entries {
            let c = self.spill + 1;
            self.counts.insert(row, c);
            return AccessVerdict {
                swap_due: c.is_multiple_of(t),
                estimated_count: c,
            };
        }
        let Some((min_row, min_count)) = self.min_entry() else {
            // Degenerate `entries == 0` shape: everything spills.
            self.spill += 1;
            return AccessVerdict {
                swap_due: false,
                estimated_count: self.spill,
            };
        };
        if self.spill < min_count {
            self.spill += 1;
            AccessVerdict {
                swap_due: false,
                estimated_count: self.spill,
            }
        } else {
            // spill == min: replace the minimum entry (Figure 3).
            self.counts.remove(min_row);
            let c = self.spill + 1;
            self.counts.insert(row, c);
            AccessVerdict {
                swap_due: c.is_multiple_of(t),
                estimated_count: c,
            }
        }
    }

    fn contains(&self, row: u64) -> bool {
        self.counts.contains_key(row)
    }

    fn count_of(&self, row: u64) -> Option<u64> {
        self.counts.get(row).copied()
    }

    fn len(&self) -> usize {
        self.counts.len()
    }

    fn spill(&self) -> u64 {
        self.spill
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.spill = 0;
    }
}

/// The paper's scalable tracker: Misra-Gries over a [`Cat`] with per-set
/// SetMin counters (§6.4).
///
/// # Example
///
/// ```
/// use rrs_core::tracker::{CatTracker, HotRowTracker, TrackerConfig};
///
/// let mut hrt = CatTracker::new(TrackerConfig::for_window(1_360_000, 800));
/// let mut fired = false;
/// for _ in 0..800 {
///     fired |= hrt.record_access(42).swap_due;
/// }
/// assert!(fired, "the 800th activation triggers a swap");
/// ```
#[derive(Debug, Clone)]
pub struct CatTracker {
    config: TrackerConfig,
    cat: Cat<u64>,
    /// `set_min[table][set]`: minimum counter among valid entries of the
    /// set, `u64::MAX` when the set is empty. "On access, install, and
    /// invalidation in a set, the SetMin is recomputed" (§6.4).
    set_min: [Vec<u64>; 2],
    /// Cached minimum over the whole `set_min` array, kept exact on every
    /// slot write so the per-miss global-minimum query is O(1) instead of
    /// an O(sets) scan (the hot-path cost §6.4's SetMin array was built to
    /// avoid in hardware).
    min_cache: u64,
    /// Number of `set_min` slots currently equal to `min_cache`; a full
    /// rescan is needed only when the last one rises.
    sets_at_min: usize,
    /// Eviction scan cursor: no `(table, set)` strictly before this
    /// position (row-major over the `set_min` array) holds `min_cache`, so
    /// the victim search can start here instead of at `(0, 0)` and still
    /// pick the *same* first-at-minimum set the full scan would.
    min_scan_hint: (usize, usize),
    spill: u64,
    /// Installs abandoned because both CAT candidate sets were full —
    /// astronomically rare with the paper's 6 extra ways (Figure 9); the
    /// tracker degrades to spill-counting instead of failing.
    conflicts: u64,
    telemetry: Telemetry,
    installs: Counter,
    evicts: Counter,
    cat_relocations: Counter,
}

impl CatTracker {
    /// Creates a tracker whose CAT is shaped for `config.entries` with the
    /// paper's 6 extra ways.
    pub fn new(config: TrackerConfig) -> Self {
        let cat_cfg =
            CatConfig::for_capacity(config.entries.max(1), 14, 6).with_seed(0x5452_4143_4b45_5200);
        Self::with_cat_config(config, cat_cfg)
    }

    /// Creates a tracker over an explicitly shaped CAT.
    pub fn with_cat_config(config: TrackerConfig, cat_cfg: CatConfig) -> Self {
        let sets = cat_cfg.sets;
        let telemetry = Telemetry::new();
        CatTracker {
            config,
            cat: Cat::new(cat_cfg),
            set_min: [vec![u64::MAX; sets], vec![u64::MAX; sets]],
            min_cache: u64::MAX,
            sets_at_min: 2 * sets,
            min_scan_hint: (0, 0),
            spill: 0,
            conflicts: 0,
            installs: telemetry.counter("hrt.installs"),
            evicts: telemetry.counter("hrt.evicts"),
            cat_relocations: telemetry.counter("cat.relocations"),
            telemetry,
        }
    }

    /// Installs abandoned to CAT conflicts (0 with the paper's sizing).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// The tracker's configuration.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// The underlying CAT's shape (for storage accounting).
    pub fn cat_config(&self) -> &CatConfig {
        self.cat.config()
    }

    fn recompute_set_min(&mut self, table: usize, set: usize) {
        let m = self
            .cat
            .set_iter(table, set)
            .map(|(_, &c)| c)
            .min()
            .unwrap_or(u64::MAX);
        self.write_set_min(table, set, m);
    }

    /// Writes one `set_min` slot and maintains the `min_cache` /
    /// `sets_at_min` mirror exactly (every slot mutation funnels through
    /// here, so `min_cache == min(set_min)` is an invariant). Slots are
    /// never below the cached minimum, so the three cases are exhaustive.
    fn write_set_min(&mut self, table: usize, set: usize, m: u64) {
        let Some(slot) = self.set_min.get_mut(table).and_then(|v| v.get_mut(set)) else {
            return;
        };
        let old = *slot;
        *slot = m;
        if m < self.min_cache {
            // Every slot is >= the old minimum, so this one is now the
            // unique (and first) position at the new minimum.
            self.min_cache = m;
            self.sets_at_min = 1;
            self.min_scan_hint = (table, set);
        } else if m == self.min_cache {
            if old > self.min_cache {
                self.sets_at_min += 1;
            }
            self.min_scan_hint = self.min_scan_hint.min((table, set));
        } else if old == self.min_cache {
            self.sets_at_min -= 1;
            if self.sets_at_min == 0 {
                self.refresh_min_cache();
            }
        }
    }

    /// Full rescan of the SetMin array; only reached when the last slot at
    /// the cached minimum rises (rare — amortized O(1) per eviction).
    fn refresh_min_cache(&mut self) {
        self.min_cache = self
            .set_min
            .iter()
            .flat_map(|v| v.iter())
            .copied()
            .min()
            .unwrap_or(u64::MAX);
        self.sets_at_min = 0;
        self.min_scan_hint = (0, 0);
        for (t, mins) in self.set_min.iter().enumerate() {
            for (s, &m) in mins.iter().enumerate() {
                if m == self.min_cache {
                    if self.sets_at_min == 0 {
                        self.min_scan_hint = (t, s);
                    }
                    self.sets_at_min += 1;
                }
            }
        }
    }

    /// Global minimum counter. Hardware scans the SetMin array (2 × sets
    /// values, not a fully-associative search — the point of §6.4); the
    /// model additionally caches that scan's result, invalidated precisely
    /// on SetMin writes, so the per-miss query is O(1).
    fn global_min(&self) -> u64 {
        debug_assert_eq!(
            self.min_cache,
            self.set_min
                .iter()
                .flat_map(|v| v.iter())
                .copied()
                .min()
                .unwrap_or(u64::MAX),
            "min_cache out of sync with the SetMin array"
        );
        self.min_cache
    }

    fn evict_one_min(&mut self, min: u64) {
        if self.try_evict_min(min) {
            return;
        }
        // SetMin metadata can go stale when a CAT install Cuckoo-relocated
        // an entry between sets (hardware recomputes SetMin on every
        // install/invalidation, §6.4 — relocation is both at once). Repair
        // all sets and retry with the refreshed global minimum.
        self.rebuild_set_min();
        let min = self.global_min();
        if min == u64::MAX || self.try_evict_min(min) {
            return;
        }
        unreachable!("rebuilt set_min must be locatable");
    }

    fn try_evict_min(&mut self, min: u64) -> bool {
        // Find a minimum-count victim first (immutably), then mutate: the
        // victim is the first entry at `min` in the first set (row-major)
        // whose SetMin equals `min`. The scan cursor lets the search start
        // past the prefix known to hold no at-minimum set — same victim,
        // without re-walking the whole SetMin array every eviction.
        #[cfg(debug_assertions)]
        for (t, mins) in self.set_min.iter().enumerate() {
            for (s, &m) in mins.iter().enumerate() {
                if (t, s) < self.min_scan_hint {
                    debug_assert_ne!(m, self.min_cache, "stale eviction scan cursor");
                }
            }
        }
        let start = if min == self.min_cache {
            self.min_scan_hint
        } else {
            (0, 0)
        };
        let mut first_at_min = None;
        let mut victim = None;
        'scan: for (t, mins) in self.set_min.iter().enumerate().skip(start.0) {
            let skip = if t == start.0 { start.1 } else { 0 };
            for (s, &m) in mins.iter().enumerate().skip(skip) {
                if m != min {
                    continue;
                }
                if first_at_min.is_none() {
                    first_at_min = Some((t, s));
                }
                if let Some((tag, _)) = self.cat.set_iter(t, s).find(|(_, &c)| c == min) {
                    victim = Some(tag);
                    break 'scan;
                }
            }
        }
        if min == self.min_cache {
            // Positions scanned over held values != min, so the first
            // at-minimum position seen is the new safe scan start.
            if let Some(pos) = first_at_min {
                self.min_scan_hint = pos;
            }
        }
        let Some(tag) = victim else { return false };
        let Some((loc, _)) = self.cat.remove_entry(tag) else {
            return false;
        };
        self.recompute_set_min(loc.0, loc.1);
        self.evicts.inc();
        if self.telemetry.tracing() {
            self.telemetry.emit(Event::HrtEvict {
                at: self.telemetry.now(),
                row: tag,
                count: min,
            });
        }
        true
    }

    fn rebuild_set_min(&mut self) {
        let sets = self.cat.config().sets;
        for t in 0..2 {
            for s in 0..sets {
                self.recompute_set_min(t, s);
            }
        }
    }

    /// Installs an entry; on the (designed-away) CAT conflict the tracker
    /// degrades gracefully: the access is absorbed by the spill counter,
    /// preserving the Misra-Gries over-estimation invariant (the spill
    /// counter over-approximates every untracked row).
    fn install(&mut self, row: u64, count: u64) -> bool {
        let relocations_before = self.cat.relocations();
        match self.cat.insert(row, count) {
            Ok((table, set, _)) => {
                let old = self
                    .set_min
                    .get(table)
                    .and_then(|v| v.get(set))
                    .copied()
                    .unwrap_or(u64::MAX);
                self.write_set_min(table, set, old.min(count));
                self.installs.inc();
                let moves = self.cat.relocations() - relocations_before;
                self.cat_relocations.add(moves);
                if self.telemetry.tracing() {
                    let at = self.telemetry.now();
                    self.telemetry.emit(Event::HrtInstall { at, row, count });
                    if moves > 0 {
                        self.telemetry.emit(Event::CatRelocation { at, moves });
                    }
                }
                true
            }
            Err(_) => {
                self.conflicts += 1;
                self.spill = self.spill.max(count);
                false
            }
        }
    }

    /// Misra-Gries handling of an activation of an untracked row: install
    /// while below budget, otherwise bump the spill counter or replace a
    /// minimum-count entry (Figure 3).
    fn record_miss(&mut self, row: u64) -> AccessVerdict {
        let t = self.config.threshold;
        if self.cat.len() < self.config.entries {
            let c = self.spill + 1;
            self.install(row, c);
            return AccessVerdict {
                swap_due: c.is_multiple_of(t),
                estimated_count: c,
            };
        }
        let min = self.global_min();
        if self.spill < min {
            self.spill += 1;
            AccessVerdict {
                swap_due: false,
                estimated_count: self.spill,
            }
        } else {
            self.evict_one_min(min);
            let c = self.spill + 1;
            self.install(row, c);
            AccessVerdict {
                swap_due: c.is_multiple_of(t),
                estimated_count: c,
            }
        }
    }
}

impl HotRowTracker for CatTracker {
    fn record_access(&mut self, row: u64) -> AccessVerdict {
        let t = self.config.threshold;
        if let Some((table, set, _)) = self.cat.locate(row) {
            let Some(c) = self.cat.get_mut(row).map(|c| {
                *c += 1;
                *c
            }) else {
                // `locate` found the tag, so `get_mut` resolves it too; fall
                // back to a fresh-install path if the tables ever disagree.
                return self.record_miss(row);
            };
            // The increment can only raise the set minimum.
            let prev_min = self.set_min.get(table).and_then(|v| v.get(set)).copied();
            if prev_min == Some(c - 1) {
                self.recompute_set_min(table, set);
            }
            return AccessVerdict {
                swap_due: c % t == 0,
                estimated_count: c,
            };
        }
        self.record_miss(row)
    }

    fn contains(&self, row: u64) -> bool {
        self.cat.contains(row)
    }

    fn count_of(&self, row: u64) -> Option<u64> {
        self.cat.get(row).copied()
    }

    fn len(&self) -> usize {
        self.cat.len()
    }

    fn spill(&self) -> u64 {
        self.spill
    }

    fn reset(&mut self) {
        self.cat.clear();
        let mut slots = 0;
        for v in &mut self.set_min {
            v.iter_mut().for_each(|m| *m = u64::MAX);
            slots += v.len();
        }
        self.min_cache = u64::MAX;
        self.sets_at_min = slots;
        self.min_scan_hint = (0, 0);
        self.spill = 0;
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        // Registration is idempotent by name, so every per-bank tracker
        // shares the same aggregate counters.
        self.installs = telemetry.counter("hrt.installs");
        self.evicts = telemetry.counter("hrt.evicts");
        self.cat_relocations = telemetry.counter("cat.relocations");
        self.telemetry = telemetry.clone();
    }
}

/// A counting-Bloom-filter hot-row tracker — the "any tracking mechanism"
/// demonstration (§4.2: "RRS is a mitigating action and not a specific
/// tracking technique, therefore it can be implemented with any tracking
/// mechanism").
///
/// Unlike Misra-Gries, a CBF never *underestimates* a row's count (every
/// activation increments all of the row's buckets), so Invariant 1 is
/// preserved: a row crossing a multiple of `T` always fires. The cost is
/// aliasing: rows sharing buckets with hot rows fire spuriously, so a
/// CBF-tracked RRS performs *more* swaps than the Misra-Gries design at
/// equal security — the trade-off the ablation benches quantify.
#[derive(Debug, Clone)]
pub struct CbfTracker {
    threshold: u64,
    counters: Vec<u32>,
    hashers: Vec<crate::prince::Prince>,
    /// Rows whose minimum bucket count reached the threshold (for
    /// `contains` / destination exclusion and `len`).
    hot: std::collections::BTreeSet<u64>,
}

impl CbfTracker {
    /// Creates a CBF tracker with `counters` buckets and `hashes` hash
    /// functions, firing at every multiple of `threshold`.
    pub fn new(threshold: u64, counters: usize, hashes: usize, seed: u128) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        assert!(counters > 0 && hashes > 0, "degenerate CBF shape");
        CbfTracker {
            threshold,
            counters: vec![0; counters],
            hashers: (0..hashes)
                .map(|i| crate::prince::Prince::new(seed ^ ((i as u128 + 1) << 96)))
                .collect(),
            hot: std::collections::BTreeSet::new(),
        }
    }

    fn estimate(&self, row: u64) -> u64 {
        self.hashers
            .iter()
            .map(|h| {
                let idx = (h.encrypt(row) as usize) % self.counters.len();
                u64::from(self.counters.get(idx).copied().unwrap_or(0))
            })
            .min()
            .unwrap_or(0)
    }
}

impl HotRowTracker for CbfTracker {
    fn record_access(&mut self, row: u64) -> AccessVerdict {
        let m = self.counters.len();
        for h in &self.hashers {
            let idx = (h.encrypt(row) as usize) % m;
            if let Some(c) = self.counters.get_mut(idx) {
                *c = c.saturating_add(1);
            }
        }
        let est = self.estimate(row);
        if est >= self.threshold {
            self.hot.insert(row);
        }
        AccessVerdict {
            swap_due: est.is_multiple_of(self.threshold),
            estimated_count: est,
        }
    }

    fn contains(&self, row: u64) -> bool {
        self.hot.contains(&row)
    }

    fn count_of(&self, row: u64) -> Option<u64> {
        let est = self.estimate(row);
        (est > 0).then_some(est)
    }

    fn len(&self) -> usize {
        self.hot.len()
    }

    fn spill(&self) -> u64 {
        0
    }

    fn reset(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.hot.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn cfg(entries: usize, threshold: u64) -> TrackerConfig {
        TrackerConfig { entries, threshold }
    }

    #[test]
    fn config_matches_paper_sizing() {
        // ACT_max = 1.36 M, T = 800 -> 1700 entries (§4.5).
        let c = TrackerConfig::for_window(1_360_000, 800);
        assert_eq!(c.entries, 1700);
    }

    #[test]
    fn figure3_walkthrough_cam() {
        // Reproduces the paper's Figure 3 example with a 3-entry tracker:
        // state {A:6, X:3, Y:9}, spill = 2.
        let mut t = CamTracker::new(cfg(3, 1000));
        t.counts.insert(0xA, 6);
        t.counts.insert(0x5, 3); // Row-X
        t.counts.insert(0x9, 9);
        t.spill = 2;
        // Row-A arrives: present, 6 -> 7.
        t.record_access(0xA);
        assert_eq!(t.count_of(0xA), Some(7));
        // Row-B arrives: absent, min (3) > spill (2): spill -> 3.
        t.record_access(0xB);
        assert_eq!(t.spill(), 3);
        assert!(!t.contains(0xB));
        // Row-C arrives: absent, min (3) == spill (3): replace Row-X,
        // install C with count = spill + 1 = 4.
        t.record_access(0xC);
        assert!(!t.contains(0x5));
        assert_eq!(t.count_of(0xC), Some(4));
    }

    #[test]
    fn swap_due_fires_at_every_multiple() {
        let mut t = CamTracker::new(cfg(4, 10));
        let mut fires = 0;
        for _ in 0..35 {
            if t.record_access(7).swap_due {
                fires += 1;
            }
        }
        assert_eq!(fires, 3); // at counts 10, 20, 30
    }

    #[test]
    fn cam_and_cat_agree_on_hot_rows() {
        // Differential test: a skewed access pattern must yield identical
        // counts for hot rows in both implementations.
        let mut cam = CamTracker::new(cfg(16, 50));
        let mut cat = CatTracker::new(cfg(16, 50));
        let mut x = 12345u64;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 4 hot rows get half the traffic; the rest is scattered.
            let row = if i % 2 == 0 {
                i % 4
            } else {
                100 + (x >> 33) % 1000
            };
            cam.record_access(row);
            cat.record_access(row);
        }
        for hot in 0..4u64 {
            assert_eq!(
                cam.count_of(hot),
                cat.count_of(hot),
                "hot row {hot} diverged"
            );
        }
        assert_eq!(cam.spill(), cat.spill());
    }

    #[test]
    fn misra_gries_overestimates_true_counts() {
        // Invariant: a tracked row's counter never underestimates its true
        // activation count.
        let mut t = CatTracker::new(cfg(8, 100));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 999u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let row = (x >> 48) % 40;
            *truth.entry(row).or_insert(0) += 1;
            t.record_access(row);
        }
        for (&row, &true_count) in &truth {
            if let Some(est) = t.count_of(row) {
                assert!(
                    est >= true_count.min(est),
                    "row {row}: est {est} < truth {true_count}"
                );
            }
        }
    }

    #[test]
    fn guaranteed_detection_at_threshold() {
        // With N = ceil(W/T) entries, every row reaching T true accesses in
        // a window of W total accesses must fire swap_due (Invariant 1).
        let w = 10_000u64;
        let t_thresh = 100u64;
        let config = TrackerConfig::for_window(w, t_thresh);
        let mut tracker = CatTracker::new(config);
        let mut fired = false;
        let mut x = 5u64;
        let mut issued = 0u64;
        let mut hot_accesses = 0u64;
        while issued < w {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if issued.is_multiple_of(7) && hot_accesses < t_thresh {
                hot_accesses += 1;
                fired |= tracker.record_access(42).swap_due;
            } else {
                tracker.record_access(1000 + (x >> 40));
            }
            issued += 1;
        }
        assert_eq!(hot_accesses, t_thresh);
        assert!(fired, "row with T accesses was not flagged");
    }

    #[test]
    fn never_exceeds_entry_budget() {
        let mut t = CatTracker::new(cfg(32, 10));
        for row in 0..10_000u64 {
            t.record_access(row);
        }
        assert!(t.len() <= 32);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = CatTracker::new(cfg(8, 10));
        for row in 0..100u64 {
            t.record_access(row % 10);
        }
        assert!(!t.is_empty());
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.spill(), 0);
        assert_eq!(t.count_of(3), None);
        // And it works normally afterwards.
        let v = t.record_access(3);
        assert_eq!(v.estimated_count, 1);
    }

    #[test]
    fn spill_only_grows_until_reset() {
        let mut t = CamTracker::new(cfg(2, 1000));
        let mut last = 0;
        for row in 0..500u64 {
            t.record_access(row);
            assert!(t.spill() >= last);
            last = t.spill();
        }
        assert!(last > 0);
    }

    #[test]
    fn undersized_cat_degrades_to_spill_not_panic() {
        // Failure injection: a CAT with zero extra ways *will* conflict;
        // the tracker must absorb the loss via the spill counter (keeping
        // the over-estimation invariant) rather than panic.
        let cat_cfg = CatConfig {
            sets: 2,
            demand_ways: 2,
            extra_ways: 0,
            hash_seed: 0xBAD,
        };
        let mut t = CatTracker::with_cat_config(
            TrackerConfig {
                entries: 8,
                threshold: 100,
            },
            cat_cfg,
        );
        for row in 0..500u64 {
            t.record_access(row);
        }
        assert!(t.conflicts() > 0, "0 extra ways must conflict");
        // Over-estimation survives: spill bounds every untracked row.
        assert!(t.spill() > 0);
    }

    #[test]
    fn cbf_tracker_never_underestimates() {
        let mut t = CbfTracker::new(10, 256, 3, 0xCBF);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 3u64;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let row = (x >> 48) % 100;
            *truth.entry(row).or_insert(0) += 1;
            t.record_access(row);
        }
        for (&row, &c) in &truth {
            assert!(
                t.count_of(row).unwrap_or(0) >= c,
                "row {row}: CBF estimate below truth"
            );
        }
    }

    #[test]
    fn cbf_tracker_fires_at_threshold() {
        let mut t = CbfTracker::new(10, 1024, 3, 0xCBF);
        let mut fires = 0;
        for _ in 0..25 {
            if t.record_access(7).swap_due {
                fires += 1;
            }
        }
        assert!(fires >= 2, "fired {fires} times in 25 accesses at T=10");
        assert!(t.contains(7));
        assert!(!t.contains(8));
    }

    #[test]
    fn cbf_tracker_reset_clears() {
        let mut t = CbfTracker::new(5, 128, 2, 1);
        for _ in 0..10 {
            t.record_access(3);
        }
        assert!(t.contains(3));
        t.reset();
        assert!(!t.contains(3));
        assert_eq!(t.count_of(3), None);
        assert!(t.is_empty());
    }

    #[test]
    fn setmin_tracks_global_minimum() {
        let mut t = CatTracker::new(cfg(8, 1000));
        for row in 0..8u64 {
            for _ in 0..=row {
                t.record_access(row);
            }
        }
        // Row 0 has count 1 (installed at spill 0 + 1), the global min.
        assert_eq!(t.global_min(), 1);
        // Bump row 0 a lot; min moves to row 1's count (2).
        for _ in 0..10 {
            t.record_access(0);
        }
        assert_eq!(t.global_min(), 2);
    }
}
