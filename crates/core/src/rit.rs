//! Row Indirection Table (RIT): the remapping structure consulted on every
//! memory access (§4.3, §6.3).
//!
//! The RIT records which rows are currently swapped. We model it as a
//! sparse *permutation* of the rows of a bank, held as two keyed-hash CAT
//! structures: a **forward** map (logical row → physical row it currently
//! occupies) and a **reverse** map (physical row → logical row occupying
//! it). A paper "tuple" ⟨X,Y⟩ corresponds to one displaced logical row
//! (one forward plus one reverse entry); the paper's 3400-tuple capacity is
//! therefore a budget of 3400 simultaneously displaced rows, stored across
//! `2 × 256 × 20` slots (Table 5).
//!
//! Epoch discipline follows §4.3 exactly:
//!
//! * entries installed in the current epoch carry a **lock bit** and cannot
//!   be evicted until the epoch ends;
//! * the table is never bulk-reset — stale entries drain lazily, evicted
//!   (and their rows un-swapped) only when capacity demands it;
//! * evicting an entry restores the row to its home location via a physical
//!   row-swap, whose cost the caller accounts.

use std::cell::Cell;
use std::fmt;

use rrs_telemetry::{Counter, Telemetry};

use crate::cat::{Cat, CatConfig};

/// Entries per resolve-TLB direction (direct-mapped, power of two).
const TLB_ENTRIES: usize = 1024;

/// Index mask for the direct-mapped TLB.
const TLB_MASK: u64 = TLB_ENTRIES as u64 - 1;

/// Tag marking an empty TLB entry. Row ids never reach `u64::MAX` (they are
/// bounded by rows-per-bank), and a key equal to the sentinel is simply
/// never cached, so the sentinel cannot alias a real row.
const TLB_EMPTY: u64 = u64::MAX;

/// One direction of the resolve-TLB: a direct-mapped array of
/// `(key, value)` pairs with interior mutability, so lookups through
/// `&self` can fill it. Purely a cache — the CATs stay authoritative, and
/// every mutation invalidates the affected lines precisely.
#[derive(Debug, Clone)]
struct ResolveTlb {
    lines: Vec<Cell<(u64, u64)>>,
    hits: Counter,
    misses: Counter,
}

impl ResolveTlb {
    fn new(hits: Counter, misses: Counter) -> Self {
        ResolveTlb {
            lines: vec![Cell::new((TLB_EMPTY, 0)); TLB_ENTRIES],
            hits,
            misses,
        }
    }

    /// Cached value for `key`, or `None` on a miss (counted).
    #[inline]
    fn lookup(&self, key: u64) -> Option<u64> {
        let line = self.lines.get((key & TLB_MASK) as usize)?;
        let (tag, value) = line.get();
        if tag == key {
            self.hits.inc();
            Some(value)
        } else {
            self.misses.inc();
            None
        }
    }

    /// Fills `key -> value` after a miss.
    #[inline]
    fn fill(&self, key: u64, value: u64) {
        if key == TLB_EMPTY {
            return;
        }
        if let Some(line) = self.lines.get((key & TLB_MASK) as usize) {
            line.set((key, value));
        }
    }

    /// Drops the line that could cache `key`.
    #[inline]
    fn invalidate(&mut self, key: u64) {
        if let Some(line) = self.lines.get((key & TLB_MASK) as usize) {
            line.set((TLB_EMPTY, 0));
        }
    }

    /// The occupied `(key, value)` pairs, for the coherence audit.
    fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.lines
            .iter()
            .map(Cell::get)
            .filter(|&(tag, _)| tag != TLB_EMPTY)
    }
}

/// A physical exchange of two DRAM rows' contents, to be executed (and
/// charged) by the memory controller / swap engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalSwap {
    /// One physical row id.
    pub row_a: u64,
    /// The other physical row id.
    pub row_b: u64,
}

/// Errors from RIT operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RitError {
    /// The table is at tuple capacity and no unlocked entry can be evicted.
    /// §5.4 sizes the RIT so this cannot happen under the tracker's swap
    /// rate; hitting it means a configuration bug.
    CapacityExhausted,
    /// A CAT install conflicted (both candidate sets full) — astronomically
    /// rare with 6 extra ways (Figure 9).
    TableConflict,
    /// A swap was requested between a row and itself.
    DegenerateSwap(u64),
}

impl fmt::Display for RitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RitError::CapacityExhausted => {
                write!(f, "RIT at capacity with all entries locked")
            }
            RitError::TableConflict => write!(f, "RIT CAT conflict: extra ways exhausted"),
            RitError::DegenerateSwap(r) => write!(f, "cannot swap row {r} with itself"),
        }
    }
}

impl std::error::Error for RitError {}

#[derive(Debug, Clone, Copy)]
pub(crate) struct ForwardEntry {
    pub(crate) physical: u64,
    pub(crate) locked: bool,
}

/// The Row Indirection Table of one bank.
///
/// # Example
///
/// ```
/// use rrs_core::rit::RowIndirectionTable;
///
/// let mut rit = RowIndirectionTable::new(16, 0x5EED);
/// rit.swap(10, 20)?;
/// assert_eq!(rit.resolve(10), 20);
/// assert_eq!(rit.occupant(10), 20);
/// # Ok::<(), rrs_core::rit::RitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RowIndirectionTable {
    forward: Cat<ForwardEntry>,
    reverse: Cat<u64>,
    tuple_capacity: usize,
    /// Direct-mapped cache in front of [`RowIndirectionTable::resolve`].
    tlb_fwd: ResolveTlb,
    /// Direct-mapped cache in front of [`RowIndirectionTable::occupant`].
    tlb_rev: ResolveTlb,
    /// Mutation counter driving the sampled debug-build ghost audit.
    #[cfg(debug_assertions)]
    audit_tick: u64,
}

impl RowIndirectionTable {
    /// Creates an RIT with the given displaced-row (tuple) capacity,
    /// shaping each direction's CAT with the paper's 6 extra ways.
    pub fn new(tuple_capacity: usize, hash_seed: u128) -> Self {
        let fwd_cfg = CatConfig::for_capacity(tuple_capacity.max(1), 14, 6).with_seed(hash_seed);
        let rev_cfg = CatConfig::for_capacity(tuple_capacity.max(1), 14, 6)
            .with_seed(hash_seed ^ 0x0052_4556_4552_5345_u128); // "REVERSE" tag
                                                                // Counters start on a null spine (zero overhead); a controller that
                                                                // wants them on its registry calls `attach_telemetry`.
        let telemetry = Telemetry::new();
        RowIndirectionTable {
            forward: Cat::new(fwd_cfg),
            reverse: Cat::new(rev_cfg),
            tuple_capacity,
            tlb_fwd: ResolveTlb::new(
                telemetry.counter("rit.tlb.hits"),
                telemetry.counter("rit.tlb.misses"),
            ),
            tlb_rev: ResolveTlb::new(
                telemetry.counter("rit.tlb.hits"),
                telemetry.counter("rit.tlb.misses"),
            ),
            #[cfg(debug_assertions)]
            audit_tick: 0,
        }
    }

    /// Adopts a shared telemetry spine: the `rit.tlb.*` hit/miss counters
    /// are re-registered there (idempotent by name, so every bank's RIT
    /// shares the same aggregate counters).
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let hits = telemetry.counter("rit.tlb.hits");
        let misses = telemetry.counter("rit.tlb.misses");
        self.tlb_fwd.hits = hits.clone();
        self.tlb_fwd.misses = misses.clone();
        self.tlb_rev.hits = hits;
        self.tlb_rev.misses = misses;
    }

    /// The forward (logical → physical) CAT, for the ghost-state audit.
    pub(crate) fn forward_cat(&self) -> &Cat<ForwardEntry> {
        &self.forward
    }

    /// The reverse (physical → logical) CAT, for the ghost-state audit.
    pub(crate) fn reverse_cat(&self) -> &Cat<u64> {
        &self.reverse
    }

    /// Sampled debug-build ghost audit: every mutation ticks the counter,
    /// and the full permutation check runs on the first and every 64th
    /// mutation so property tests keep their cost near-linear. The counter
    /// itself only exists in debug builds, so release builds pay nothing —
    /// not even the increment.
    #[inline]
    fn maybe_audit(&mut self) {
        #[cfg(debug_assertions)]
        {
            self.audit_tick = self.audit_tick.wrapping_add(1);
            if self.audit_tick == 1 || self.audit_tick.is_multiple_of(64) {
                if let Err(e) = crate::audit::RitAudit::verify(self) {
                    panic!("RIT ghost-state audit failed: {e}");
                }
            }
        }
    }

    /// The occupied resolve-TLB lines as `(direction, key, value)`, for the
    /// ghost-state audit's coherence check (`direction` 0 = forward/resolve,
    /// 1 = reverse/occupant).
    pub(crate) fn tlb_entries(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.tlb_fwd
            .entries()
            .map(|(k, v)| (0, k, v))
            .chain(self.tlb_rev.entries().map(|(k, v)| (1, k, v)))
    }

    /// Test-only corruption: force-fills a forward resolve-TLB line with a
    /// value the CATs contradict, so the TLB-coherence audit must flag it.
    #[doc(hidden)]
    pub fn corrupt_tlb_for_test(&mut self, logical: u64, physical: u64) {
        self.tlb_fwd.fill(logical, physical);
    }

    /// Test-only corruption: installs a forward entry with no reverse
    /// partner, breaking the permutation property the audit guards.
    #[doc(hidden)]
    pub fn corrupt_forward_for_test(&mut self, logical: u64, physical: u64) {
        let _ = self.forward.insert(
            logical,
            ForwardEntry {
                physical,
                locked: false,
            },
        );
    }

    /// Maximum number of simultaneously displaced rows.
    pub fn tuple_capacity(&self) -> usize {
        self.tuple_capacity
    }

    /// Number of currently displaced rows (paper: tuples in use).
    pub fn tuples_in_use(&self) -> usize {
        self.forward.len()
    }

    /// Whether the table is at capacity.
    pub fn is_full(&self) -> bool {
        self.tuples_in_use() >= self.tuple_capacity
    }

    /// The CAT shapes, for storage accounting.
    pub fn cat_configs(&self) -> (&CatConfig, &CatConfig) {
        (self.forward.config(), self.reverse.config())
    }

    /// Physical row currently holding logical row `logical` (§4.1 step ②/③:
    /// redirect if present, original location otherwise).
    ///
    /// Served from the resolve-TLB when possible; misses consult the
    /// forward CAT and fill the cache.
    pub fn resolve(&self, logical: u64) -> u64 {
        if let Some(physical) = self.tlb_fwd.lookup(logical) {
            return physical;
        }
        let physical = self.resolve_uncached(logical);
        self.tlb_fwd.fill(logical, physical);
        physical
    }

    /// `resolve` straight off the forward CAT, bypassing the TLB. The
    /// differential tests and the ghost audit compare the cached path
    /// against this.
    #[doc(hidden)]
    pub fn resolve_uncached(&self, logical: u64) -> u64 {
        self.forward
            .get(logical)
            .map(|e| e.physical)
            .unwrap_or(logical)
    }

    /// Logical row currently residing at physical location `physical`.
    ///
    /// Served from the resolve-TLB when possible; misses consult the
    /// reverse CAT and fill the cache.
    pub fn occupant(&self, physical: u64) -> u64 {
        if let Some(logical) = self.tlb_rev.lookup(physical) {
            return logical;
        }
        let logical = self.occupant_uncached(physical);
        self.tlb_rev.fill(physical, logical);
        logical
    }

    /// `occupant` straight off the reverse CAT, bypassing the TLB.
    #[doc(hidden)]
    pub fn occupant_uncached(&self, physical: u64) -> u64 {
        self.reverse.get(physical).copied().unwrap_or(physical)
    }

    /// Whether `row` is involved in any live mapping, as either a displaced
    /// logical row or an occupied physical location. Swap destinations must
    /// exclude such rows (§4.4).
    pub fn involves(&self, row: u64) -> bool {
        self.forward.contains(row) || self.reverse.contains(row)
    }

    /// Whether `logical` is displaced from its home location.
    pub fn is_displaced(&self, logical: u64) -> bool {
        self.forward.contains(logical)
    }

    /// Removes the forward/reverse pair of `logical`, if any.
    fn clear_mapping(&mut self, logical: u64) {
        self.tlb_fwd.invalidate(logical);
        if let Some(old) = self.forward.remove(logical) {
            self.reverse.remove(old.physical);
            self.tlb_rev.invalidate(old.physical);
        }
    }

    /// Installs `logical -> physical` (skipping identities). The caller must
    /// have cleared any stale pair for `logical` *and* any stale reverse
    /// entry for `physical` first.
    fn put_mapping(&mut self, logical: u64, physical: u64, locked: bool) -> Result<(), RitError> {
        if logical == physical {
            return Ok(()); // back home: identity mappings are not stored
        }
        self.tlb_fwd.invalidate(logical);
        self.tlb_rev.invalidate(physical);
        self.forward
            .insert(logical, ForwardEntry { physical, locked })
            .map_err(|_| RitError::TableConflict)?;
        self.reverse
            .insert(physical, logical)
            .map_err(|_| RitError::TableConflict)?;
        Ok(())
    }

    /// Records a swap of the *contents* of the physical locations currently
    /// holding logical rows `x` and `y`, locking the new mappings for the
    /// rest of the epoch. Returns the physical exchange the controller must
    /// perform.
    ///
    /// # Errors
    ///
    /// * [`RitError::DegenerateSwap`] if `x == y`.
    /// * [`RitError::CapacityExhausted`] if recording the swap would exceed
    ///   tuple capacity (callers should evict first via
    ///   [`RowIndirectionTable::evict_one`]).
    /// * [`RitError::TableConflict`] on CAT conflicts.
    pub fn swap(&mut self, x: u64, y: u64) -> Result<PhysicalSwap, RitError> {
        if x == y {
            return Err(RitError::DegenerateSwap(x));
        }
        let px = self.resolve(x);
        let py = self.resolve(y);
        // Worst case this creates two new displaced rows.
        let new_tuples = usize::from(!self.is_displaced(x) && py != x)
            + usize::from(!self.is_displaced(y) && px != y);
        if self.tuples_in_use() + new_tuples > self.tuple_capacity {
            return Err(RitError::CapacityExhausted);
        }
        self.clear_mapping(x);
        self.clear_mapping(y);
        self.put_mapping(x, py, true)?;
        self.put_mapping(y, px, true)?;
        self.maybe_audit();
        Ok(PhysicalSwap {
            row_a: px,
            row_b: py,
        })
    }

    /// Evicts one unlocked entry to make room, un-swapping its row back to
    /// its home location (lazy drain, §4.3). `pick` provides randomness for
    /// victim selection (e.g. a PRNG draw).
    ///
    /// Returns the physical exchange performed, or `None` if nothing is
    /// evictable (all entries locked or table empty).
    pub fn evict_one(&mut self, pick: u64) -> Option<PhysicalSwap> {
        let len = self.forward.len();
        if len == 0 {
            return None;
        }
        // Scan from a random starting entry and take the first eligible
        // victim: equivalent to a uniform pick over a rotation of the
        // candidate order, without paying a lookup per resident entry.
        let start = (pick as usize) % len;
        let victim = self
            .forward
            .iter()
            .skip(start)
            .chain(self.forward.iter().take(start))
            .find(|(logical, e)| {
                if e.locked {
                    return false;
                }
                // The occupant of this row's home must also be evictable,
                // because un-swapping displaces it.
                let z = self.occupant(*logical);
                z == *logical || self.forward.get(z).map(|ze| !ze.locked).unwrap_or(true)
            })
            .map(|(logical, _)| logical)?;
        // The victim was validated as non-degenerate and unlocked just
        // above, so this unswap cannot fail; if the impossible happens we
        // report "nothing evictable" instead of unwinding mid-simulation
        // (the RitAudit ghost checker would flag the inconsistency).
        self.unswap(victim).ok()
    }

    /// Un-swaps `logical` back to its home location. The row currently at
    /// `logical`'s home moves to `logical`'s old position; both mappings are
    /// updated (and removed if they become identities). The moved partner's
    /// lock state is preserved.
    pub fn unswap(&mut self, logical: u64) -> Result<PhysicalSwap, RitError> {
        let p = self.resolve(logical);
        if p == logical {
            return Err(RitError::DegenerateSwap(logical));
        }
        // z currently occupies `logical`'s home slot.
        let z = self.occupant(logical);
        let z_locked = self.forward.get(z).map(|e| e.locked).unwrap_or(false);
        self.clear_mapping(logical);
        if z != logical {
            self.clear_mapping(z);
            self.put_mapping(z, p, z_locked)?;
        }
        self.maybe_audit();
        Ok(PhysicalSwap {
            row_a: p,
            row_b: logical,
        })
    }

    /// Ends the epoch: clears every lock bit so stale entries become
    /// evictable (§4.3). The mappings themselves are retained.
    pub fn end_epoch(&mut self) {
        let tags: Vec<u64> = self.forward.iter().map(|(t, _)| t).collect();
        for t in tags {
            if let Some(e) = self.forward.get_mut(t) {
                e.locked = false;
            }
        }
        // Epoch boundaries are rare: run the full ghost audit every time.
        #[cfg(debug_assertions)]
        {
            if let Err(e) = crate::audit::RitAudit::verify(self) {
                panic!("RIT ghost-state audit failed at epoch end: {e}");
            }
        }
    }

    /// Number of locked (current-epoch) entries.
    pub fn locked_count(&self) -> usize {
        self.forward.iter().filter(|(_, e)| e.locked).count()
    }

    /// Iterates over `(logical, physical)` mappings.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.forward.iter().map(|(l, e)| (l, e.physical))
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics if the forward and reverse maps are inconsistent, if any
    /// identity mapping is stored, or if the permutation is not injective.
    pub fn check_invariants(&self) {
        assert_eq!(self.forward.len(), self.reverse.len(), "map sizes differ");
        let mut seen_phys = std::collections::BTreeSet::new();
        for (logical, e) in self.forward.iter() {
            assert_ne!(logical, e.physical, "identity mapping stored");
            assert!(
                seen_phys.insert(e.physical),
                "physical row {} claimed twice",
                e.physical
            );
            assert_eq!(
                self.reverse.get(e.physical),
                Some(&logical),
                "reverse map out of sync for logical {logical}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rit(cap: usize) -> RowIndirectionTable {
        RowIndirectionTable::new(cap, 0xABCD)
    }

    #[test]
    fn unmapped_rows_resolve_to_themselves() {
        let r = rit(16);
        assert_eq!(r.resolve(5), 5);
        assert_eq!(r.occupant(5), 5);
        assert!(!r.involves(5));
    }

    #[test]
    fn swap_creates_symmetric_mapping() -> Result<(), RitError> {
        let mut r = rit(16);
        let ps = r.swap(10, 20)?;
        assert_eq!((ps.row_a, ps.row_b), (10, 20));
        assert_eq!(r.resolve(10), 20);
        assert_eq!(r.resolve(20), 10);
        assert_eq!(r.occupant(10), 20);
        assert_eq!(r.occupant(20), 10);
        assert_eq!(r.tuples_in_use(), 2);
        r.check_invariants();
        Ok(())
    }

    #[test]
    fn reswap_builds_a_cycle_correctly() -> Result<(), RitError> {
        // x swapped with y, then x re-swapped with fresh a: x must end up at
        // a's home, a at x's previous location (y's home), y unchanged.
        let mut r = rit(16);
        r.swap(1, 2)?;
        let ps = r.swap(1, 3)?;
        // Physical exchange is between x's current location (2) and 3.
        assert_eq!((ps.row_a, ps.row_b), (2, 3));
        assert_eq!(r.resolve(1), 3);
        assert_eq!(r.resolve(3), 2);
        assert_eq!(r.resolve(2), 1);
        r.check_invariants();
        Ok(())
    }

    #[test]
    fn swap_back_removes_identity_mappings() -> Result<(), RitError> {
        let mut r = rit(16);
        r.swap(1, 2)?;
        r.swap(1, 2)?; // swap back
        assert_eq!(r.tuples_in_use(), 0);
        assert_eq!(r.resolve(1), 1);
        r.check_invariants();
        Ok(())
    }

    #[test]
    fn degenerate_swap_rejected() {
        let mut r = rit(16);
        assert_eq!(r.swap(7, 7), Err(RitError::DegenerateSwap(7)));
    }

    #[test]
    fn capacity_is_enforced() -> Result<(), RitError> {
        let mut r = rit(4);
        r.swap(1, 2)?;
        r.swap(3, 4)?;
        assert!(r.is_full());
        assert_eq!(r.swap(5, 6), Err(RitError::CapacityExhausted));
        Ok(())
    }

    #[test]
    fn locked_entries_survive_eviction_requests() -> Result<(), RitError> {
        let mut r = rit(4);
        r.swap(1, 2)?;
        r.swap(3, 4)?;
        // All entries are locked (installed this epoch): nothing to evict.
        assert_eq!(r.evict_one(0), None);
        assert_eq!(r.locked_count(), 4);
        Ok(())
    }

    #[test]
    fn epoch_end_unlocks_and_allows_lazy_drain() -> Result<(), RitError> {
        let mut r = rit(4);
        r.swap(1, 2)?;
        r.swap(3, 4)?;
        r.end_epoch();
        assert_eq!(r.locked_count(), 0);
        let ps = r.evict_one(0).expect("unlocked entry must be evictable");
        // Un-swap restored someone home: two tuples disappear (pairwise).
        assert_eq!(r.tuples_in_use(), 2);
        assert!(ps.row_a != ps.row_b);
        r.check_invariants();
        // Now there is room for a new swap.
        r.swap(5, 6)?;
        r.check_invariants();
        Ok(())
    }

    #[test]
    fn unswap_of_cycle_member_keeps_permutation_consistent() -> Result<(), RitError> {
        let mut r = rit(16);
        r.swap(1, 2)?; // 1@2, 2@1
        r.swap(1, 3)?; // 1@3, 3@2, 2@1
        r.end_epoch();
        r.unswap(1)?; // 1 home; occupant of 1 (=2) moves to 3's old spot
        assert_eq!(r.resolve(1), 1);
        r.check_invariants();
        // All rows resolvable, permutation still injective.
        let mapped: Vec<_> = r.iter().collect();
        assert_eq!(mapped.len(), 2);
        Ok(())
    }

    #[test]
    fn involves_covers_both_directions() -> Result<(), RitError> {
        let mut r = rit(16);
        r.swap(1, 2)?;
        r.swap(1, 3)?; // 1@3, 3@2, 2@1
        for row in [1, 2, 3] {
            assert!(r.involves(row), "row {row}");
        }
        assert!(!r.involves(4));
        Ok(())
    }

    #[test]
    fn eviction_uses_pick_for_victim_choice() -> Result<(), RitError> {
        let mut r = rit(8);
        r.swap(1, 2)?;
        r.swap(3, 4)?;
        r.end_epoch();
        let mut c1 = r.clone();
        let a = c1.evict_one(0).expect("entry 0 evictable after epoch end");
        let mut c2 = r.clone();
        let b = c2.evict_one(1).expect("entry 1 evictable after epoch end");
        assert_ne!(a, b, "different picks should evict different tuples");
        Ok(())
    }

    #[test]
    fn many_random_swaps_keep_invariants() {
        let mut r = rit(64);
        let mut x = 42u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = x % 100;
            let b = (x >> 32) % 100;
            if a == b {
                continue;
            }
            if r.tuples_in_use() + 2 > r.tuple_capacity() {
                r.end_epoch();
                while r.tuples_in_use() + 2 > r.tuple_capacity() {
                    if r.evict_one(x).is_none() {
                        break;
                    }
                }
            }
            let _ = r.swap(a, b);
            if i % 50 == 0 {
                r.check_invariants();
            }
        }
        r.check_invariants();
    }
}
