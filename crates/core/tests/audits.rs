//! Ghost-state audit tests: positive (audits accept states reachable
//! through the public API) and negative (audits reject deliberately
//! corrupted structures, and the debug-build wiring trips on them).

use rrs_core::audit::{AuditError, CatAudit, RitAudit, SwapAudit};
use rrs_core::cat::{Cat, CatConfig};
use rrs_core::rit::RowIndirectionTable;
use rrs_core::swap::{SwapEngine, SwapMode};
use rrs_dram::timing::TimingParams;

fn small_cat() -> Cat<u32> {
    Cat::new(CatConfig {
        sets: 8,
        demand_ways: 2,
        extra_ways: 2,
        hash_seed: 0xA0D17,
    })
}

fn engine() -> SwapEngine {
    SwapEngine::new(&TimingParams::ddr4_3200(), 8 * 1024, SwapMode::Buffered)
}

#[test]
fn audits_accept_freshly_built_structures() {
    RitAudit::verify(&RowIndirectionTable::new(16, 0x5EED)).unwrap();
    CatAudit::verify(&small_cat()).unwrap();
    SwapAudit::verify(&engine()).unwrap();
}

#[test]
fn rit_audit_accepts_any_reachable_state() {
    let mut rit = RowIndirectionTable::new(32, 0xFACE);
    let mut x = 7u64;
    for _ in 0..300 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let (a, b) = (x % 50, (x >> 32) % 50);
        if a != b && rit.tuples_in_use() + 2 <= rit.tuple_capacity() {
            let _ = rit.swap(a, b);
        }
        match x % 5 {
            0 => {
                let _ = rit.evict_one(x);
            }
            1 => rit.end_epoch(),
            2 if rit.is_displaced(a) => {
                let _ = rit.unswap(a);
            }
            _ => {}
        }
        RitAudit::verify(&rit).unwrap();
    }
}

#[test]
fn cat_audit_accepts_any_reachable_state() {
    let mut cat = small_cat();
    let mut x = 99u64;
    for _ in 0..200 {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let tag = x % 40;
        if cat.contains(tag) {
            cat.remove(tag);
        } else {
            let _ = cat.insert(tag, (x >> 48) as u32);
        }
        CatAudit::verify(&cat).unwrap();
    }
}

#[test]
fn swap_audit_accepts_any_reachable_state() {
    let mut e = engine();
    let mut now = 0;
    for i in 0..50u64 {
        now = if i % 3 == 0 {
            e.record_unswap(now)
        } else {
            e.record_swap(now)
        };
        if i % 10 == 0 {
            e.end_epoch();
        }
        SwapAudit::verify(&e).unwrap();
    }
}

#[test]
fn corrupted_rit_fails_the_audit() {
    let mut rit = RowIndirectionTable::new(16, 0xBAD);
    rit.swap(1, 2).unwrap();
    RitAudit::verify(&rit).unwrap();
    // A forward entry with no reverse partner breaks the permutation.
    rit.corrupt_forward_for_test(7, 9);
    let err = RitAudit::verify(&rit).expect_err("corruption must be caught");
    assert_eq!(
        err,
        AuditError::RitSizeMismatch {
            forward: 3,
            reverse: 2
        }
    );
    assert!(err.to_string().contains("forward map"));
}

#[test]
fn corrupted_cat_len_fails_the_audit() {
    let mut cat = small_cat();
    cat.insert(42, 7).unwrap();
    CatAudit::verify(&cat).unwrap();
    cat.corrupt_len_for_test();
    let err = CatAudit::verify(&cat).expect_err("corruption must be caught");
    assert_eq!(
        err,
        AuditError::CatLenMismatch {
            len: 2,
            occupied: 1
        }
    );
}

#[test]
fn misplaced_cat_tag_fails_the_audit() {
    let mut cat = small_cat();
    cat.insert(42, 7).unwrap();
    let (table, set, _) = cat.locate(42).unwrap();
    // A tag whose hash selects a *different* set for the slot's table:
    // after the in-place rewrite the entry is unfindable by lookup.
    let bad = (0..10_000u64)
        .find(|&b| cat.set_of(table, b) != set)
        .expect("some tag must hash elsewhere");
    assert!(cat.corrupt_first_tag_for_test(bad));
    let err = CatAudit::verify(&cat).expect_err("corruption must be caught");
    assert!(
        matches!(err, AuditError::CatMisplacedTag { tag, .. } if tag == bad),
        "unexpected audit error: {err}"
    );
}

#[test]
fn stale_cat_index_fails_the_audit() {
    let mut cat = small_cat();
    cat.insert(42, 7).unwrap();
    CatAudit::verify(&cat).unwrap();
    // Drop the tag from the flat index while its slot stays resident: the
    // hot-path lookup now misses an entry the scan still finds.
    assert!(cat.corrupt_index_for_test(42));
    let err = CatAudit::verify(&cat).expect_err("corruption must be caught");
    assert_eq!(err, AuditError::CatIndexIncoherent { tag: 42 });
    assert!(err.to_string().contains("flat index"));
}

#[test]
fn stale_resolve_tlb_fails_the_audit() {
    let mut rit = RowIndirectionTable::new(16, 0xCAFE);
    rit.swap(1, 2).unwrap();
    RitAudit::verify(&rit).unwrap();
    // Cache a mapping the CATs contradict: a missed invalidation.
    rit.corrupt_tlb_for_test(1, 7);
    let err = RitAudit::verify(&rit).expect_err("corruption must be caught");
    assert_eq!(
        err,
        AuditError::RitTlbIncoherent {
            key: 1,
            cached: 7,
            actual: 2
        }
    );
    assert!(err.to_string().contains("resolve-TLB"));
}

#[test]
fn corrupted_swap_accounting_fails_the_audit() {
    let mut e = engine();
    e.record_swap(0);
    SwapAudit::verify(&e).unwrap();
    e.corrupt_busy_cycles_for_test();
    let err = SwapAudit::verify(&e).expect_err("corruption must be caught");
    assert!(matches!(err, AuditError::SwapAccountingMismatch { .. }));
    assert!(err.to_string().contains("busy cycles"));
}

/// The debug-build wiring itself must trip: a corrupted RIT panics at the
/// next epoch boundary (where the audit always runs).
#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "ghost-state audit failed")]
fn corrupted_rit_trips_debug_audit_at_epoch_end() {
    let mut rit = RowIndirectionTable::new(16, 0x1);
    rit.corrupt_forward_for_test(5, 9);
    rit.end_epoch();
}

/// Same for the swap engine, which audits after every recorded operation.
#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "ghost-state audit failed")]
fn corrupted_swap_engine_trips_debug_audit() {
    let mut e = engine();
    e.corrupt_busy_cycles_for_test();
    e.record_swap(0);
}
