//! Property-based tests (proptest) for the core RRS structures: the
//! invariants §5.2 relies on must hold for *arbitrary* access sequences,
//! not just the ones unit tests pick.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

use rrs_core::cat::{Cat, CatConfig};
use rrs_core::prince::Prince;
use rrs_core::prng::PrinceCtrRng;
use rrs_core::rit::RowIndirectionTable;
use rrs_core::tracker::{CamTracker, CatTracker, HotRowTracker, TrackerConfig};

proptest! {
    /// PRINCE is a permutation: decrypt inverts encrypt for any key/block.
    #[test]
    fn prince_round_trip(key in any::<u128>(), block in any::<u64>()) {
        let cipher = Prince::new(key);
        prop_assert_eq!(cipher.decrypt(cipher.encrypt(block)), block);
    }

    /// PRINCE is injective on distinct blocks under one key.
    #[test]
    fn prince_injective(key in any::<u128>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let cipher = Prince::new(key);
        prop_assert_ne!(cipher.encrypt(a), cipher.encrypt(b));
    }

    /// The CTR PRNG's bounded draw is always in range, for any bound.
    #[test]
    fn prng_bounded_draws(key in any::<u128>(), bound in 1u64..u64::MAX, n in 1usize..50) {
        let mut rng = PrinceCtrRng::new(key);
        for _ in 0..n {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }
}

/// Operations for the CAT model-based test.
#[derive(Debug, Clone)]
enum CatOp {
    Insert(u16, u32),
    Remove(u16),
    Lookup(u16),
}

fn cat_op() -> impl Strategy<Value = CatOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(t, v)| CatOp::Insert(t, v)),
        any::<u16>().prop_map(CatOp::Remove),
        any::<u16>().prop_map(CatOp::Lookup),
    ]
}

proptest! {
    /// Model-based: the CAT behaves exactly like a HashMap for any op
    /// sequence that stays within capacity (inserts that conflict are
    /// removed from the model too, so the two stay in lockstep).
    #[test]
    fn cat_matches_hashmap_model(ops in vec(cat_op(), 1..200)) {
        let mut cat: Cat<u32> = Cat::new(CatConfig {
            sets: 16,
            demand_ways: 4,
            extra_ways: 4,
            hash_seed: 0xC0FFEE,
        });
        let mut model: HashMap<u64, u32> = HashMap::new();
        for op in ops {
            match op {
                CatOp::Insert(tag, value) => {
                    let tag = tag as u64;
                    if !model.contains_key(&tag) && model.len() < cat.capacity()
                        && cat.insert(tag, value).is_ok() {
                            model.insert(tag, value);
                        }
                }
                CatOp::Remove(tag) => {
                    let tag = tag as u64;
                    prop_assert_eq!(cat.remove(tag), model.remove(&tag));
                }
                CatOp::Lookup(tag) => {
                    let tag = tag as u64;
                    prop_assert_eq!(cat.get(tag), model.get(&tag));
                }
            }
            prop_assert_eq!(cat.len(), model.len());
        }
    }

    /// Misra-Gries over-estimation: a tracked row's counter is always at
    /// least its true count minus nothing — i.e. `estimate >= true` —
    /// for any access sequence (Invariant 1's foundation).
    #[test]
    fn tracker_never_underestimates(rows in vec(0u64..64, 1..400)) {
        let mut tracker = CatTracker::new(TrackerConfig { entries: 8, threshold: 1_000 });
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for row in rows {
            *truth.entry(row).or_insert(0) += 1;
            tracker.record_access(row);
            if let Some(est) = tracker.count_of(row) {
                prop_assert!(
                    est >= truth[&row],
                    "row {} estimated {} < true {}", row, est, truth[&row]
                );
            }
        }
    }

    /// Misra-Gries detection guarantee (Invariant 1): with N >= W/T
    /// entries, any row that truly reaches T accesses within a W-access
    /// window fires `swap_due` at least once.
    #[test]
    fn tracker_guaranteed_detection(
        seed in any::<u64>(),
        hot_row in 0u64..1_000,
        noise_rows in 1_001u64..2_000,
    ) {
        let w = 600u64;
        let t = 30u64;
        let cfg = TrackerConfig::for_window(w, t);
        let mut tracker = CatTracker::new(cfg);
        let mut fired = false;
        let mut hot_done = 0u64;
        let mut x = seed;
        for i in 0..w {
            // Interleave exactly T hot accesses among noise.
            if i % (w / t) == 0 && hot_done < t {
                hot_done += 1;
                fired |= tracker.record_access(hot_row).swap_due;
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                tracker.record_access(noise_rows + (x >> 40));
            }
        }
        prop_assert_eq!(hot_done, t);
        prop_assert!(fired, "hot row reached T accesses without detection");
    }

    /// CAM and CAT trackers agree on hot-row counts for arbitrary streams.
    #[test]
    fn cam_and_cat_trackers_agree(rows in vec(0u64..32, 1..500)) {
        let cfg = TrackerConfig { entries: 12, threshold: 50 };
        let mut cam = CamTracker::new(cfg);
        let mut cat = CatTracker::new(cfg);
        for &row in &rows {
            cam.record_access(row);
            cat.record_access(row);
        }
        prop_assert_eq!(cam.spill(), cat.spill());
        prop_assert_eq!(cam.len(), cat.len());
        // Rows present in both have identical counts.
        for row in 0u64..32 {
            if let (Some(a), Some(b)) = (cam.count_of(row), cat.count_of(row)) {
                prop_assert_eq!(a, b, "row {} counts diverge", row);
            }
        }
    }
}

/// Operations for the RIT permutation test.
#[derive(Debug, Clone)]
enum RitOp {
    Swap(u8, u8),
    Unswap(u8),
    Evict(u64),
    EndEpoch,
}

fn rit_op() -> impl Strategy<Value = RitOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| RitOp::Swap(a, b)),
        any::<u8>().prop_map(RitOp::Unswap),
        any::<u64>().prop_map(RitOp::Evict),
        Just(RitOp::EndEpoch),
    ]
}

proptest! {
    /// The RIT is always a permutation: after any operation sequence,
    /// forward/reverse maps stay mutually consistent, injective, and free
    /// of identity entries — and resolution round-trips.
    #[test]
    fn rit_is_always_a_permutation(ops in vec(rit_op(), 1..150)) {
        let mut rit = RowIndirectionTable::new(64, 0xFACE);
        for op in ops {
            match op {
                RitOp::Swap(a, b) => {
                    if a != b && rit.tuples_in_use() + 2 <= rit.tuple_capacity() {
                        let _ = rit.swap(a as u64, b as u64);
                    }
                }
                RitOp::Unswap(a) => {
                    if rit.is_displaced(a as u64) {
                        let _ = rit.unswap(a as u64);
                    }
                }
                RitOp::Evict(pick) => {
                    let _ = rit.evict_one(pick);
                }
                RitOp::EndEpoch => rit.end_epoch(),
            }
            rit.check_invariants();
            // Round-trip: occupant(resolve(x)) == x for mapped rows.
            for (logical, physical) in rit.iter().collect::<Vec<_>>() {
                prop_assert_eq!(rit.occupant(physical), logical);
                prop_assert_eq!(rit.resolve(logical), physical);
            }
        }
    }

    /// Locked entries (current-epoch swaps) survive arbitrary eviction
    /// pressure within the same epoch.
    #[test]
    fn rit_locked_entries_survive_evictions(picks in vec(any::<u64>(), 1..50)) {
        let mut rit = RowIndirectionTable::new(16, 0xBEE);
        rit.swap(1, 2).unwrap();
        rit.swap(3, 4).unwrap();
        let mapped_before: HashSet<(u64, u64)> = rit.iter().collect();
        for pick in picks {
            let _ = rit.evict_one(pick);
        }
        let mapped_after: HashSet<(u64, u64)> = rit.iter().collect();
        prop_assert_eq!(mapped_before, mapped_after, "locked tuples were evicted");
    }
}
