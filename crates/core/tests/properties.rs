//! Property-based tests (rrs-check) for the core RRS structures: the
//! invariants §5.2 relies on must hold for *arbitrary* access sequences,
//! not just the ones unit tests pick.

use std::collections::{HashMap, HashSet};

use rrs_check::{check, Gen};
use rrs_core::audit::{CatAudit, RitAudit};
use rrs_core::cat::{Cat, CatConfig};
use rrs_core::prince::Prince;
use rrs_core::prng::PrinceCtrRng;
use rrs_core::rit::RowIndirectionTable;
use rrs_core::tracker::{CamTracker, CatTracker, HotRowTracker, TrackerConfig};

/// PRINCE is a permutation: decrypt inverts encrypt for any key/block.
#[test]
fn prince_round_trip() {
    check(|g| {
        let key = g.u128();
        let block = g.u64();
        let cipher = Prince::new(key);
        assert_eq!(cipher.decrypt(cipher.encrypt(block)), block);
    });
}

/// PRINCE is injective on distinct blocks under one key.
#[test]
fn prince_injective() {
    check(|g| {
        let key = g.u128();
        let a = g.u64();
        let b = g.u64();
        if a == b {
            return;
        }
        let cipher = Prince::new(key);
        assert_ne!(cipher.encrypt(a), cipher.encrypt(b));
    });
}

/// The CTR PRNG's bounded draw is always in range, for any bound.
#[test]
fn prng_bounded_draws() {
    check(|g| {
        let key = g.u128();
        let bound = g.u64_in(1..u64::MAX);
        let n = g.usize_in(1..50);
        let mut rng = PrinceCtrRng::new(key);
        for _ in 0..n {
            assert!(rng.next_below(bound) < bound);
        }
    });
}

/// Operations for the CAT model-based test.
#[derive(Debug, Clone)]
enum CatOp {
    Insert(u16, u32),
    Remove(u16),
    Lookup(u16),
}

fn cat_op(g: &mut Gen) -> CatOp {
    match g.below(3) {
        0 => CatOp::Insert(g.u16(), g.u32()),
        1 => CatOp::Remove(g.u16()),
        _ => CatOp::Lookup(g.u16()),
    }
}

/// Model-based: the CAT behaves exactly like a HashMap for any op
/// sequence that stays within capacity (inserts that conflict are
/// removed from the model too, so the two stay in lockstep).
#[test]
fn cat_matches_hashmap_model() {
    check(|g| {
        let ops = g.vec(1..200, cat_op);
        let mut cat: Cat<u32> = Cat::new(CatConfig {
            sets: 16,
            demand_ways: 4,
            extra_ways: 4,
            hash_seed: 0xC0FFEE,
        });
        let mut model: HashMap<u64, u32> = HashMap::new();
        for op in ops {
            match op {
                CatOp::Insert(tag, value) => {
                    let tag = tag as u64;
                    if !model.contains_key(&tag)
                        && model.len() < cat.capacity()
                        && cat.insert(tag, value).is_ok()
                    {
                        model.insert(tag, value);
                    }
                }
                CatOp::Remove(tag) => {
                    let tag = tag as u64;
                    assert_eq!(cat.remove(tag), model.remove(&tag));
                }
                CatOp::Lookup(tag) => {
                    let tag = tag as u64;
                    assert_eq!(cat.get(tag), model.get(&tag));
                }
            }
            assert_eq!(cat.len(), model.len());
        }
        // The ghost audit must agree with the model at rest.
        CatAudit::verify(&cat).unwrap();
    });
}

/// Misra-Gries over-estimation: a tracked row's counter is always at
/// least its true count minus nothing — i.e. `estimate >= true` —
/// for any access sequence (Invariant 1's foundation).
#[test]
fn tracker_never_underestimates() {
    check(|g| {
        let rows = g.vec(1..400, |g| g.u64_in(0..64));
        let mut tracker = CatTracker::new(TrackerConfig {
            entries: 8,
            threshold: 1_000,
        });
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for row in rows {
            *truth.entry(row).or_insert(0) += 1;
            tracker.record_access(row);
            if let Some(est) = tracker.count_of(row) {
                assert!(
                    est >= truth[&row],
                    "row {} estimated {} < true {}",
                    row,
                    est,
                    truth[&row]
                );
            }
        }
    });
}

/// Misra-Gries detection guarantee (Invariant 1): with N >= W/T
/// entries, any row that truly reaches T accesses within a W-access
/// window fires `swap_due` at least once.
#[test]
fn tracker_guaranteed_detection() {
    check(|g| {
        let seed = g.u64();
        let hot_row = g.u64_in(0..1_000);
        let noise_rows = g.u64_in(1_001..2_000);
        let w = 600u64;
        let t = 30u64;
        let cfg = TrackerConfig::for_window(w, t);
        let mut tracker = CatTracker::new(cfg);
        let mut fired = false;
        let mut hot_done = 0u64;
        let mut x = seed;
        for i in 0..w {
            // Interleave exactly T hot accesses among noise.
            if i % (w / t) == 0 && hot_done < t {
                hot_done += 1;
                fired |= tracker.record_access(hot_row).swap_due;
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                tracker.record_access(noise_rows + (x >> 40));
            }
        }
        assert_eq!(hot_done, t);
        assert!(fired, "hot row reached T accesses without detection");
    });
}

/// CAM and CAT trackers agree on hot-row counts for arbitrary streams.
#[test]
fn cam_and_cat_trackers_agree() {
    check(|g| {
        let rows = g.vec(1..500, |g| g.u64_in(0..32));
        let cfg = TrackerConfig {
            entries: 12,
            threshold: 50,
        };
        let mut cam = CamTracker::new(cfg);
        let mut cat = CatTracker::new(cfg);
        for &row in &rows {
            cam.record_access(row);
            cat.record_access(row);
        }
        assert_eq!(cam.spill(), cat.spill());
        assert_eq!(cam.len(), cat.len());
        // Rows present in both have identical counts.
        for row in 0u64..32 {
            if let (Some(a), Some(b)) = (cam.count_of(row), cat.count_of(row)) {
                assert_eq!(a, b, "row {} counts diverge", row);
            }
        }
    });
}

/// Operations for the RIT permutation test.
#[derive(Debug, Clone)]
enum RitOp {
    Swap(u8, u8),
    Unswap(u8),
    Evict(u64),
    EndEpoch,
}

fn rit_op(g: &mut Gen) -> RitOp {
    match g.below(4) {
        0 => RitOp::Swap(g.u8(), g.u8()),
        1 => RitOp::Unswap(g.u8()),
        2 => RitOp::Evict(g.u64()),
        _ => RitOp::EndEpoch,
    }
}

/// The RIT is always a permutation: after any operation sequence,
/// forward/reverse maps stay mutually consistent, injective, and free
/// of identity entries — and resolution round-trips.
#[test]
fn rit_is_always_a_permutation() {
    check(|g| {
        let ops = g.vec(1..150, rit_op);
        let mut rit = RowIndirectionTable::new(64, 0xFACE);
        for op in ops {
            match op {
                RitOp::Swap(a, b) => {
                    if a != b && rit.tuples_in_use() + 2 <= rit.tuple_capacity() {
                        let _ = rit.swap(a as u64, b as u64);
                    }
                }
                RitOp::Unswap(a) => {
                    if rit.is_displaced(a as u64) {
                        let _ = rit.unswap(a as u64);
                    }
                }
                RitOp::Evict(pick) => {
                    let _ = rit.evict_one(pick);
                }
                RitOp::EndEpoch => rit.end_epoch(),
            }
            rit.check_invariants();
            RitAudit::verify(&rit).unwrap();
            // Round-trip: occupant(resolve(x)) == x for mapped rows.
            for (logical, physical) in rit.iter().collect::<Vec<_>>() {
                assert_eq!(rit.occupant(physical), logical);
                assert_eq!(rit.resolve(logical), physical);
            }
        }
    });
}

/// Locked entries (current-epoch swaps) survive arbitrary eviction
/// pressure within the same epoch.
#[test]
fn rit_locked_entries_survive_evictions() {
    check(|g| {
        let picks = g.vec(1..50, |g| g.u64());
        let mut rit = RowIndirectionTable::new(16, 0xBEE);
        rit.swap(1, 2).unwrap();
        rit.swap(3, 4).unwrap();
        let mapped_before: HashSet<(u64, u64)> = rit.iter().collect();
        for pick in picks {
            let _ = rit.evict_one(pick);
        }
        let mapped_after: HashSet<(u64, u64)> = rit.iter().collect();
        assert_eq!(mapped_before, mapped_after, "locked tuples were evicted");
    });
}
