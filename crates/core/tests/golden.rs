//! Differential test: the production RRS engine (CAT tracker + CAT-backed
//! RIT + PRINCE PRNG) against a deliberately naive *golden model* that
//! implements the paper's semantics with plain `HashMap`s.
//!
//! The two implementations share the randomness (destination picks are fed
//! from the production engine's actions into the model), so every
//! observable — resolved locations, swap counts, per-location activation
//! bounds — must match exactly on arbitrary access streams.

use std::collections::HashMap;

use rrs_core::rrs::{BankRrs, RrsAction, RrsConfig};

/// The paper's semantics, written as simply as possible.
struct GoldenModel {
    t_rrs: u64,
    /// Exact per-row activation counts within the epoch.
    counts: HashMap<u64, u64>,
    /// logical -> physical (sparse permutation).
    forward: HashMap<u64, u64>,
    /// physical -> logical.
    reverse: HashMap<u64, u64>,
    swaps: u64,
}

impl GoldenModel {
    fn new(t_rrs: u64) -> Self {
        GoldenModel {
            t_rrs,
            counts: HashMap::new(),
            forward: HashMap::new(),
            reverse: HashMap::new(),
            swaps: 0,
        }
    }

    fn resolve(&self, logical: u64) -> u64 {
        self.forward.get(&logical).copied().unwrap_or(logical)
    }

    fn occupant(&self, physical: u64) -> u64 {
        self.reverse.get(&physical).copied().unwrap_or(physical)
    }

    fn set(&mut self, logical: u64, physical: u64) {
        if let Some(old) = self.forward.remove(&logical) {
            self.reverse.remove(&old);
        }
        if logical != physical {
            self.forward.insert(logical, physical);
            self.reverse.insert(physical, logical);
        }
    }

    /// Records an activation; `swap_due` means "this activation crossed a
    /// multiple of T", and `dest` is the destination the production engine
    /// chose (sharing its randomness).
    fn on_activation(&mut self, row: u64, dest: Option<u64>) {
        let c = self.counts.entry(row).or_insert(0);
        *c += 1;
        let due = (*c).is_multiple_of(self.t_rrs);
        assert_eq!(
            due,
            dest.is_some(),
            "tracker divergence at row {row} count {c}"
        );
        if let Some(dest) = dest {
            // Swap contents of the two rows' current physical locations.
            let (pa, pb) = (self.resolve(row), self.resolve(dest));
            let (oa, ob) = (self.occupant(pa), self.occupant(pb));
            debug_assert_eq!(oa, row);
            self.set(oa, pb);
            self.set(ob, pa);
            self.swaps += 1;
        }
    }

    fn end_epoch(&mut self) {
        self.counts.clear();
    }
}

/// Drives both implementations over a stream and checks equivalence.
fn differential_run(stream: impl Iterator<Item = u64>, epochs_every: usize) {
    // Large-enough RIT that lazy eviction (which the golden model does not
    // implement) never triggers.
    let mut config = RrsConfig::for_threshold(60, 100_000, 1 << 17);
    config.rit_tuples = 1 << 14;
    let mut engine = BankRrs::new(config, 0);
    let mut golden = GoldenModel::new(config.t_rrs);

    for (i, row) in stream.enumerate() {
        let actions = engine.on_activation(row);
        let mut dest = None;
        for a in &actions {
            match a {
                RrsAction::Swap(ps) => {
                    // Recover the chosen destination: the swap exchanges
                    // loc(row) with loc(dest); one side is row's current
                    // (pre-update) location per the golden model.
                    let pa = golden.resolve(row);
                    let other = if ps.row_a == pa { ps.row_b } else { ps.row_a };
                    dest = Some(golden.occupant(other));
                }
                RrsAction::Unswap(_) => panic!("RIT eviction in oversized table"),
                RrsAction::Alarm { .. } => {}
            }
        }
        golden.on_activation(row, dest);

        // Check a window of rows around the accessed one.
        for r in row.saturating_sub(2)..=row + 2 {
            assert_eq!(
                engine.resolve(r),
                golden.resolve(r),
                "resolution diverged for row {r} at step {i}"
            );
        }
        if (i + 1) % epochs_every == 0 {
            engine.end_epoch();
            golden.end_epoch();
        }
    }
    assert_eq!(engine.stats().swaps, golden.swaps, "swap counts diverged");
}

#[test]
fn hot_rows_match_golden_model() {
    // A few heavily hammered rows: every multiple of T swaps.
    let stream = (0..5_000u64).map(|i| i % 4);
    differential_run(stream, 1_200);
}

#[test]
fn mixed_stream_matches_golden_model() {
    let mut x = 42u64;
    let stream = (0..8_000u64).map(move |i| {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        if i % 3 == 0 {
            i % 5 // rotating hot set
        } else {
            100 + (x >> 45) // scattered traffic
        }
    });
    differential_run(stream, 2_500);
}

#[test]
fn epoch_resets_match_golden_model() {
    // Epoch boundaries every 97 accesses: counts reset mid-flight, the
    // persistent mappings must keep matching.
    let stream = (0..4_000u64).map(|i| i % 7);
    differential_run(stream, 97);
}

#[test]
fn golden_model_confirms_per_location_bound() {
    // Re-derive Invariant 2 through the golden model: no physical location
    // hosts more than T activations of any single logical row per epoch.
    let mut config = RrsConfig::for_threshold(60, 100_000, 1 << 17);
    config.rit_tuples = 1 << 14;
    let mut engine = BankRrs::new(config, 0);
    let mut per_location: HashMap<(u64, u64), u64> = HashMap::new(); // (logical, physical) -> acts
    for _ in 0..1_000u64 {
        let physical = engine.resolve(7);
        *per_location.entry((7, physical)).or_insert(0) += 1;
        engine.on_activation(7);
    }
    for ((logical, physical), acts) in per_location {
        assert!(
            acts <= config.t_rrs,
            "logical {logical} spent {acts} > T activations at physical {physical}"
        );
    }
}
