//! Differential property tests (rrs-check) pinning the PR5 hot-path
//! rewrites against retained reference implementations: the flat tables,
//! the CAT flat index, and the resolve-TLB must be *observationally
//! invisible* — same access sequence, same answers, same counter totals.

use std::collections::BTreeMap;

use rrs_check::check;
use rrs_core::rit::RowIndirectionTable;
use rrs_core::tracker::{CamTracker, HotRowTracker, TrackerConfig};
use rrs_flat::FlatMap;
use rrs_telemetry::Telemetry;

/// `FlatMap` agrees with `BTreeMap` on arbitrary operation sequences:
/// every query, every returned value, and the final contents (compared as
/// sorted sets — only iteration *order* may differ).
#[test]
fn flat_map_matches_btreemap() {
    check(|g| {
        let mut flat: FlatMap<u64> = FlatMap::new();
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        let ops = g.usize_in(1..120);
        for _ in 0..ops {
            // Small key domain forces collisions, tombstone reuse, and
            // growth; occasional huge keys exercise the hash spread.
            let key = if g.below(16) == 0 {
                g.u64()
            } else {
                g.below(48)
            };
            match g.below(6) {
                0 | 1 => {
                    let value = g.u64();
                    assert_eq!(flat.insert(key, value), reference.insert(key, value));
                }
                2 => {
                    assert_eq!(flat.remove(key), reference.remove(&key));
                }
                3 => {
                    let seed = g.u64();
                    let a = *flat.get_or_insert_with(key, || seed);
                    let b = *reference.entry(key).or_insert(seed);
                    assert_eq!(a, b);
                }
                4 => {
                    let keep = g.u64();
                    flat.retain(|k, v| (k ^ *v) % 3 != keep % 3);
                    reference.retain(|k, v| (k ^ *v) % 3 != keep % 3);
                }
                _ => {
                    assert_eq!(flat.get(key), reference.get(&key));
                    assert_eq!(flat.contains_key(key), reference.contains_key(&key));
                }
            }
            assert_eq!(flat.len(), reference.len());
        }
        let mut flat_entries: Vec<(u64, u64)> = flat.iter().map(|(k, &v)| (k, v)).collect();
        flat_entries.sort_unstable();
        let reference_entries: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(flat_entries, reference_entries);
    });
}

/// The resolve-TLB is a pure cache: after any sequence of swaps, unswaps,
/// evictions, and epoch ends, the cached `resolve`/`occupant` answers match
/// the uncached CAT walks for every probed row, and the hit/miss counters
/// account for exactly one event per cached call.
#[test]
fn rit_tlb_matches_uncached_resolution() {
    check(|g| {
        let telemetry = Telemetry::new();
        let mut rit = RowIndirectionTable::new(8, g.u128());
        rit.attach_telemetry(&telemetry);
        let rows = 32u64;
        let ops = g.usize_in(1..40);
        for _ in 0..ops {
            match g.below(5) {
                0 | 1 => {
                    let _ = rit.swap(g.below(rows), g.below(rows));
                }
                2 => {
                    let _ = rit.unswap(g.below(rows));
                }
                3 => {
                    let _ = rit.evict_one(g.u64());
                }
                _ => rit.end_epoch(),
            }
            // Cached and uncached paths must agree on hits *and* misses;
            // probing a row twice exercises both on the same line.
            for _ in 0..2 {
                let probe = g.below(rows + 4);
                assert_eq!(rit.resolve(probe), rit.resolve_uncached(probe));
                assert_eq!(rit.occupant(probe), rit.occupant_uncached(probe));
            }
        }
        rit.check_invariants();

        // Counter identity: every cached call lands in exactly one of
        // hits/misses (mutations above also consult the cached path, so
        // measure a clean window of known size).
        let hits = telemetry.counter("rit.tlb.hits");
        let misses = telemetry.counter("rit.tlb.misses");
        let before = hits.get() + misses.get();
        let queries = g.u64_in(1..50);
        for q in 0..queries {
            rit.resolve(q % rows);
            rit.occupant((q * 7) % rows);
        }
        assert_eq!(hits.get() + misses.get() - before, 2 * queries);
    });
}

/// Reference Misra-Gries CAM over a `BTreeMap`, mirroring the pre-flat
/// implementation verbatim (minimum over the total order `(count, row)`).
struct ReferenceCam {
    config: TrackerConfig,
    counts: BTreeMap<u64, u64>,
    spill: u64,
}

impl ReferenceCam {
    fn record_access(&mut self, row: u64) -> (bool, u64) {
        let t = self.config.threshold;
        if let Some(c) = self.counts.get_mut(&row) {
            *c += 1;
            return (*c % t == 0, *c);
        }
        if self.counts.len() < self.config.entries {
            let c = self.spill + 1;
            self.counts.insert(row, c);
            return (c.is_multiple_of(t), c);
        }
        let min = self
            .counts
            .iter()
            .map(|(&r, &c)| (r, c))
            .min_by_key(|&(r, c)| (c, r));
        let Some((min_row, min_count)) = min else {
            self.spill += 1;
            return (false, self.spill);
        };
        if self.spill < min_count {
            self.spill += 1;
            (false, self.spill)
        } else {
            self.counts.remove(&min_row);
            let c = self.spill + 1;
            self.counts.insert(row, c);
            (c.is_multiple_of(t), c)
        }
    }
}

/// The flat CAM tracker produces the same verdict stream, estimates, and
/// table contents as the ordered-map reference on arbitrary access
/// sequences — including constant min-entry replacement churn.
#[test]
fn cam_tracker_matches_btreemap_reference() {
    check(|g| {
        let config = TrackerConfig {
            entries: g.usize_in(1..8),
            threshold: g.u64_in(1..6),
        };
        let mut cam = CamTracker::new(config);
        let mut reference = ReferenceCam {
            config,
            counts: BTreeMap::new(),
            spill: 0,
        };
        let accesses = g.usize_in(1..200);
        for _ in 0..accesses {
            let row = g.below(12); // tight domain: eviction ties and churn
            let verdict = cam.record_access(row);
            let (swap_due, estimate) = reference.record_access(row);
            assert_eq!(verdict.swap_due, swap_due);
            assert_eq!(verdict.estimated_count, estimate);
            assert_eq!(cam.spill(), reference.spill);
            assert_eq!(cam.len(), reference.counts.len());
        }
        for row in 0..12 {
            assert_eq!(cam.contains(row), reference.counts.contains_key(&row));
            assert_eq!(cam.count_of(row), reference.counts.get(&row).copied());
        }
    });
}
