//! rrs-lint fixture: `wallclock` — one seeded violation, one escape.

pub fn wall_start() {
    let t = std::time::Instant::now(); // seeded violation (line 4)
    drop(t);
}

pub fn escaped_wall_start() {
    // lint: allow(wallclock) — fixture: demonstrates the documented escape
    let t = std::time::Instant::now();
    drop(t);
}
