//! rrs-lint fixture: `unordered-iter` — one seeded violation, one escape.

use std::collections::HashMap; // seeded violation (line 3)

// lint: allow(unordered-iter) — fixture: demonstrates the documented escape
use std::collections::HashSet;
