//! rrs-lint fixture: `narrow-cast` — one seeded violation, one escape.

pub fn narrows(x: u64) -> u32 {
    x as u32 // seeded violation (line 4)
}

pub fn escaped_narrows(x: u64) -> u32 {
    // lint: allow(narrow-cast) — fixture: demonstrates the documented escape
    x as u32
}
