//! rrs-lint fixture: `panic-site` — one seeded violation, one escape.

pub fn hot(v: Option<u64>) -> u64 {
    v.unwrap() // seeded violation (line 4)
}

pub fn escaped_hot(v: Option<u64>) -> u64 {
    // lint: allow(panic-site) — fixture: demonstrates the documented escape
    v.unwrap()
}
