//! rrs-lint fixture: `index-panic` — one seeded violation, one escape.

pub fn hot(t: &[u64], i: usize) -> u64 {
    t[i] // seeded violation (line 4)
}

pub fn escaped_hot(t: &[u64], i: usize) -> u64 {
    // lint: allow(index-panic) — fixture: demonstrates the documented escape
    t[i]
}
