//! Fixture tests: every rule has a file under `fixtures/` with exactly one
//! seeded violation (exact rule id + line asserted here) and one
//! allow-escaped instance that must suppress cleanly. The workspace walker
//! never visits `fixtures/`, so the shipped tree stays lint-clean.

use std::path::Path;

use rrs_lint::{lint_source, lint_workspace};

/// (rule id, crate the fixture is linted as, source, expected line).
const FIXTURES: &[(&str, &str, &str, u32)] = &[
    (
        "wallclock",
        "sim",
        include_str!("../fixtures/wallclock.rs"),
        4,
    ),
    // Linted as `bench` — not a simulation or hot-loop crate — to show the
    // determinism rule applies everywhere.
    (
        "unordered-iter",
        "bench",
        include_str!("../fixtures/unordered_iter.rs"),
        3,
    ),
    (
        "panic-site",
        "core",
        include_str!("../fixtures/panic_site.rs"),
        4,
    ),
    (
        "index-panic",
        "mem-ctrl",
        include_str!("../fixtures/index_panic.rs"),
        4,
    ),
    (
        "narrow-cast",
        "core",
        include_str!("../fixtures/narrow_cast.rs"),
        4,
    ),
];

#[test]
fn every_fixture_reports_exactly_its_seeded_violation() {
    for &(rule, crate_name, src, line) in FIXTURES {
        let violations = lint_source(crate_name, src);
        assert_eq!(
            violations.len(),
            1,
            "fixture for `{rule}` must yield exactly one violation \
             (the escape must suppress the other); got {violations:?}"
        );
        assert_eq!(violations[0].rule, rule, "wrong rule id for `{rule}`");
        assert_eq!(
            violations[0].line, line,
            "wrong line for `{rule}`: {:?}",
            violations[0]
        );
    }
}

#[test]
fn every_rule_has_a_fixture() {
    for rule in rrs_lint::ALL_RULES {
        assert!(
            FIXTURES.iter().any(|(r, ..)| r == rule),
            "rule `{rule}` has no fixture"
        );
    }
}

/// The acceptance bar for the shipped tree: `cargo run -p rrs-lint -- check`
/// exits 0, i.e. the workspace itself has zero unescaped violations.
#[test]
fn shipped_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint");
    let violations = lint_workspace(root).expect("workspace walk must succeed");
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
