//! The engine: file walking, `#[cfg(test)]` skipping, allow-annotation
//! escapes, and the workspace entry point.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed};
use crate::rules::{check, Violation};

/// A violation bound to the file it was found in.
#[derive(Debug, Clone)]
pub struct FileViolation {
    /// Path as reported (relative to the lint root).
    pub path: PathBuf,
    /// The underlying violation.
    pub violation: Violation,
}

impl std::fmt::Display for FileViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.violation.line,
            self.violation.rule,
            self.violation.message
        )
    }
}

/// Lints one source string as if it lived in crate `crate_name`.
///
/// This is the unit the engine (and the fixture tests) build on: it lexes,
/// masks `#[cfg(test)]` items, runs every applicable rule, then drops
/// violations covered by a well-formed allow annotation.
pub fn lint_source(crate_name: &str, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let skip = test_ranges(&lexed);
    let const_fn = const_fn_ranges(&lexed);
    let mut raw = Vec::new();
    check(crate_name, &lexed, &skip, &const_fn, &mut raw);
    let allows = allow_annotations(&lexed);
    raw.retain(|v| {
        !allows
            .iter()
            .any(|(line, rule)| v.rule == *rule && (v.line == *line || v.line == *line + 1))
    });
    raw.sort_by_key(|v| (v.line, v.rule));
    raw
}

/// Parses `lint: allow(<rule>) — <reason>` escapes out of comments.
/// Returns `(line, rule)` pairs; an annotation suppresses matching
/// violations on its own line and the line directly below. Annotations
/// without a reason are ignored (and therefore suppress nothing).
fn allow_annotations<'a>(lexed: &'a Lexed<'a>) -> Vec<(u32, &'a str)> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let mut rest = c.text;
        while let Some(pos) = rest.find("lint: allow(") {
            rest = &rest[pos + "lint: allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim();
            let after = rest[close + 1..].trim_start();
            // The reason is mandatory: an em-dash/hyphen followed by text.
            let has_reason = ["—", "–", "-", ":"]
                .iter()
                .any(|d| after.starts_with(d) && after[d.len()..].trim().len() >= 3);
            if !rule.is_empty() && has_reason {
                out.push((c.line, rule));
            }
            rest = after;
        }
    }
    out
}

/// Computes token-index ranges belonging to `#[cfg(test)]`-gated items
/// (inclusive), so rules never fire inside unit-test modules.
fn test_ranges(lexed: &Lexed<'_>) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" || !matches!(toks.get(i + 1), Some(t) if t.text == "[") {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Scan the attribute body to its matching `]`.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < toks.len() && depth > 0 {
            match toks[j].text {
                "[" => depth += 1,
                "]" => depth -= 1,
                "cfg" => saw_cfg = true,
                "test" => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while matches!(toks.get(j), Some(t) if t.text == "#")
            && matches!(toks.get(j + 1), Some(t) if t.text == "[")
        {
            let mut d = 1i32;
            j += 2;
            while j < toks.len() && d > 0 {
                match toks[j].text {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // Consume the gated item: up to a `;` at depth 0, or the matching
        // `}` of its first brace block.
        let mut brace = 0i32;
        let mut opened = false;
        while j < toks.len() {
            match toks[j].text {
                "{" => {
                    brace += 1;
                    opened = true;
                }
                "}" => {
                    brace -= 1;
                    if opened && brace == 0 {
                        break;
                    }
                }
                ";" if !opened => break,
                _ => {}
            }
            j += 1;
        }
        out.push((attr_start, j.min(toks.len().saturating_sub(1))));
        i = j + 1;
    }
    out
}

/// Computes token-index ranges of `const fn` bodies (inclusive). Indexing
/// inside them is exempt from `index-panic`: the workspace only calls its
/// `const fn`s in const initializers, where a bad index fails the build.
fn const_fn_ranges(lexed: &Lexed<'_>) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_const_fn = toks[i].text == "const"
            && matches!(toks.get(i + 1).map(|t| t.text), Some("fn") | Some("unsafe"))
            && (toks[i + 1].text == "fn" || matches!(toks.get(i + 2), Some(t) if t.text == "fn"));
        if !is_const_fn {
            i += 1;
            continue;
        }
        let start = i;
        // Find the body's opening brace, then its match. A `const fn` in a
        // trait may end with `;` instead — no body, nothing to exempt. The
        // `;` must be at bracket depth 0: `[u8; 16]` in the signature is not
        // an item terminator.
        let mut j = i;
        let mut sig_depth = 0i32;
        while j < toks.len() {
            match toks[j].text {
                "(" | "[" => sig_depth += 1,
                ")" | "]" => sig_depth -= 1,
                "{" => break,
                ";" if sig_depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || toks[j].text == ";" {
            i = j + 1;
            continue;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        out.push((start, j.min(toks.len().saturating_sub(1))));
        i = j + 1;
    }
    out
}

/// Recursively collects `.rs` files under `dir` in sorted order (so output
/// and exit behavior are deterministic across filesystems).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/<name>/src/**/*.rs` file under `root`.
///
/// Only `src/` trees are walked: integration tests, benches, examples, and
/// the lint fixtures are exempt by construction.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<FileViolation>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut out = Vec::new();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        for file in files {
            let src = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            for violation in lint_source(&crate_name, &src) {
                out.push(FileViolation {
                    path: rel.clone(),
                    violation,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "
            fn hot() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { x.unwrap(); }
            }
        ";
        assert!(lint_source("core", src).is_empty());
    }

    #[test]
    fn code_after_a_test_module_is_still_linted() {
        let src = "
            #[cfg(test)]
            mod tests { fn t() { a.unwrap(); } }
            fn hot(i: usize) { b.unwrap(); }
        ";
        let v = lint_source("core", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn allow_annotation_with_reason_suppresses() {
        let same_line = "let x = v.unwrap(); // lint: allow(panic-site) — seeded above\n";
        assert!(lint_source("core", same_line).is_empty());
        let line_above = "// lint: allow(panic-site) — seeded above\nlet x = v.unwrap();\n";
        assert!(lint_source("core", line_above).is_empty());
    }

    #[test]
    fn allow_annotation_without_reason_is_inert() {
        let src = "let x = v.unwrap(); // lint: allow(panic-site)\n";
        assert_eq!(lint_source("core", src).len(), 1);
    }

    #[test]
    fn allow_annotation_is_rule_specific() {
        let src = "let x = v.unwrap(); // lint: allow(index-panic) — wrong rule\n";
        assert_eq!(lint_source("core", src).len(), 1);
    }

    #[test]
    fn const_fn_bodies_are_exempt_from_index_panic_only() {
        let src = "
            const fn build(t: [u8; 16], i: usize) -> u8 { t[i] }
            fn hot(t: [u8; 16], i: usize) -> u8 { t[i] }
        ";
        let v = lint_source("core", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("index-panic", 3));
    }

    #[test]
    fn cfg_gated_use_statement_is_skipped() {
        let src = "
            #[cfg(test)]
            use std::collections::HashMap;
            fn hot() { q.unwrap(); }
        ";
        let v = lint_source("core", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "panic-site");
    }
}
