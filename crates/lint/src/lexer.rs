//! A minimal Rust lexer: just enough to walk source as tokens.
//!
//! The scanner does not aim to be a full Rust lexer — it only needs to
//! classify identifiers, integer literals, and punctuation while *reliably*
//! skipping everything that could contain misleading text: line and
//! (nested) block comments, string/raw-string/byte-string literals, char
//! literals, and lifetimes. Comments are kept (with their line numbers)
//! because the allow-annotation syntax lives in them.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`swap`, `as`, `unwrap`, …).
    Ident,
    /// Integer literal (`0`, `0x1F`, `1_000u64`). Never a float.
    IntLit,
    /// Any other literal (floats, strings are skipped so this is rare).
    OtherLit,
    /// A single punctuation character (`[`, `.`, `!`, …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokenKind,
    /// The token's text, borrowed from the source.
    pub text: &'a str,
    /// 1-based line number.
    pub line: u32,
}

/// A comment (line or block), kept for annotation parsing.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// Comment text including the `//` / `/*` markers.
    pub text: &'a str,
    /// 1-based line on which the comment starts.
    pub line: u32,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug)]
pub struct Lexed<'a> {
    /// Tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// Comments in source order.
    pub comments: Vec<Comment<'a>>,
}

/// Tokenizes `src`. Unterminated constructs are tolerated (the remainder of
/// the file is consumed); the linter must never panic on weird input.
pub fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: &src[start..i],
                    line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'"' => i = skip_string(bytes, i, &mut line),
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                i = skip_raw_or_byte_string(bytes, i, &mut line)
            }
            b'\'' => {
                let (next, is_char) = skip_char_or_lifetime(bytes, i, &mut line);
                if is_char {
                    // A char literal is an OtherLit; rules never look at it.
                    tokens.push(Token {
                        kind: TokenKind::OtherLit,
                        text: &src[i..next],
                        line,
                    });
                }
                i = next;
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        i += 1;
                    } else if c == b'.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: if is_float {
                        TokenKind::OtherLit
                    } else {
                        TokenKind::IntLit
                    },
                    text: &src[start..i],
                    line,
                });
            }
            _ if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] >= 0x80)
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: &src[start..i],
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: &src[i..i + 1],
                    line,
                });
                i += 1;
            }
        }
    }

    Lexed { tokens, comments }
}

/// Whether position `i` starts a raw string (`r"`, `r#"`), byte string
/// (`b"`, `br"`, `br#"`) or raw identifier (`r#ident` — returns false).
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        let mut k = j;
        while bytes.get(k) == Some(&b'#') {
            k += 1;
        }
        if bytes.get(k) == Some(&b'"') {
            return true;
        }
        // `r#ident` raw identifier or plain ident starting with r.
        return false;
    }
    bytes.get(j) == Some(&b'"') && j > i // only for the `b"` prefix case
}

/// Skips a normal (escaped) string literal starting at `"`; returns the
/// index just past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at the `r`/`b`.
fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) == Some(&b'r') {
        i += 1;
        let mut hashes = 0usize;
        while bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                *line += 1;
            }
            if bytes[i] == b'"' {
                let mut k = 0usize;
                while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        i
    } else {
        // plain b"…"
        skip_string(bytes, i, line)
    }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) starting at the
/// quote. Returns `(next_index, is_char_literal)`.
fn skip_char_or_lifetime(bytes: &[u8], i: usize, line: &mut u32) -> (usize, bool) {
    let Some(&next) = bytes.get(i + 1) else {
        return (i + 1, false);
    };
    if next == b'\\' {
        // Escaped char literal: consume to closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return (j + 1, true),
                _ => j += 1,
            }
        }
        return (j, true);
    }
    if next.is_ascii_alphanumeric() || next == b'_' {
        // Could be 'x' (char) or 'ident (lifetime).
        let mut j = i + 1;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if bytes.get(j) == Some(&b'\'') {
            return (j + 1, true);
        }
        return (j, false); // lifetime
    }
    if next == b'\n' {
        *line += 1;
    }
    // Punctuation char literal like '(' or ' '.
    if bytes.get(i + 2) == Some(&b'\'') {
        return (i + 3, true);
    }
    (i + 1, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* nested */ block */
            let s = "SystemTime inside a string";
            let r = r#"unwrap() in raw string"#;
            let real = thing;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real"));
        assert!(ids.contains(&"thing"));
        for bad in ["HashMap", "Instant", "SystemTime", "unwrap"] {
            assert!(!ids.contains(&bad), "{bad} leaked out of a literal");
        }
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let ids = idents(src);
        assert!(ids.contains(&"str"));
        // Neither the lifetime's `a` nor the char body become identifiers.
        assert!(!ids.contains(&"x") || ids.iter().filter(|s| **s == "x").count() == 1);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n\nc";
        let toks = lex(src).tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn integer_vs_float_literals() {
        let toks = lex("a[0x1F]; b[i]; 1.5; 2usize").tokens;
        let ints: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::IntLit)
            .map(|t| t.text)
            .collect();
        assert_eq!(ints, vec!["0x1F", "2usize"]);
    }

    #[test]
    fn escaped_char_literal_with_quote() {
        let ids = idents(r"let q = '\''; let after = 1;");
        assert!(ids.contains(&"after"));
    }
}
