//! The rule set: each rule is a token-level check scoped to a set of
//! crates, with per-line allow-annotation escapes.
//!
//! | rule id         | scope                | forbids                                     |
//! |-----------------|----------------------|---------------------------------------------|
//! | `wallclock`     | simulation crates    | `SystemTime`, `Instant`, `thread::current`  |
//! | `unordered-iter`| every crate          | default-hasher `HashMap` / `HashSet`        |
//! | `panic-site`    | hot-loop crates      | `.unwrap()` / `.expect(…)`                  |
//! | `index-panic`   | hot-loop crates      | `expr[non-literal]` indexing                |
//! | `narrow-cast`   | `rrs-core`           | narrowing `as u8/u16/u32/i8/i16/i32` casts  |
//!
//! An escape is a comment `// lint: allow(<rule>) — <reason>` on the same
//! line as the violation or on the line directly above it; the reason is
//! mandatory. Code under `#[cfg(test)]` (and `tests/`, `benches/`,
//! `examples/` directories, which the walker never visits) is exempt.

use crate::lexer::{Lexed, Token, TokenKind};

/// Crates whose results must not depend on wall-clock time or thread
/// identity (everything that feeds a `SimResult`).
pub const SIM_CRATES: &[&str] = &[
    "core",
    "dram",
    "mem-ctrl",
    "sim",
    "workloads",
    "mitigations",
    "analysis",
    "trace",
    "check",
    "json",
    "telemetry",
    "forensics",
    "flat",
];

/// Crates on the per-activation hot path (§4.1: every access consults the
/// RIT), where a panic aborts a whole campaign cell.
pub const HOT_CRATES: &[&str] = &["core", "dram", "mem-ctrl", "sim", "telemetry", "flat"];

/// All rule ids, in reporting order.
pub const ALL_RULES: &[&str] = &[
    "wallclock",
    "unordered-iter",
    "panic-site",
    "index-panic",
    "narrow-cast",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation with a fix hint.
    pub message: String,
}

/// Whether `rule` applies to the crate named `crate_name`.
pub fn rule_applies(rule: &str, crate_name: &str) -> bool {
    match rule {
        "wallclock" => SIM_CRATES.contains(&crate_name),
        "unordered-iter" => true,
        "panic-site" | "index-panic" => HOT_CRATES.contains(&crate_name),
        "narrow-cast" => crate_name == "core",
        _ => false,
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `for x in [1, 2]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "if", "else", "match", "return", "break", "continue", "move", "ref", "as",
    "const", "static", "fn", "where", "for", "while", "loop", "impl", "pub", "use", "mod",
    "struct", "enum", "trait", "type", "dyn", "unsafe", "await", "yield", "box",
];

/// Integer types a cast may silently truncate to.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Runs every applicable rule over `lexed`, appending to `out`. Tokens
/// whose index falls in a `skip` range (test code) are ignored entirely;
/// `const_fn` ranges are exempt from `index-panic` only — an out-of-bounds
/// index in a const initializer is a *compile-time* error, so the runtime
/// panic-safety argument does not apply there.
pub fn check(
    crate_name: &str,
    lexed: &Lexed<'_>,
    skip: &[(usize, usize)],
    const_fn: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let toks = &lexed.tokens;
    let skipped = |i: usize| skip.iter().any(|&(a, b)| i >= a && i <= b);
    let in_const_fn = |i: usize| const_fn.iter().any(|&(a, b)| i >= a && i <= b);

    for (i, t) in toks.iter().enumerate() {
        if skipped(i) {
            continue;
        }
        if rule_applies("wallclock", crate_name) {
            check_wallclock(toks, i, t, out);
        }
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Violation {
                rule: "unordered-iter",
                line: t.line,
                message: format!(
                    "`{}` iterates in RandomState order; use `BTreeMap`/`BTreeSet` (or sort \
                     before draining) so results never depend on hash seeding",
                    t.text
                ),
            });
        }
        if rule_applies("panic-site", crate_name) {
            check_panic_site(toks, i, t, out);
        }
        if rule_applies("index-panic", crate_name) && !in_const_fn(i) {
            check_index(toks, i, t, out);
        }
        if rule_applies("narrow-cast", crate_name) {
            check_narrow_cast(toks, i, t, out);
        }
    }
}

fn check_wallclock(toks: &[Token<'_>], i: usize, t: &Token<'_>, out: &mut Vec<Violation>) {
    if t.kind != TokenKind::Ident {
        return;
    }
    if t.text == "SystemTime" || t.text == "Instant" {
        out.push(Violation {
            rule: "wallclock",
            line: t.line,
            message: format!(
                "`{}` in a simulation crate: results must be a pure function of the seed, \
                 never of wall-clock time",
                t.text
            ),
        });
    }
    // `thread::current` (thread-id-dependent behavior).
    if t.text == "thread"
        && matches!(toks.get(i + 1), Some(c) if c.text == ":")
        && matches!(toks.get(i + 2), Some(c) if c.text == ":")
        && matches!(toks.get(i + 3), Some(c) if c.kind == TokenKind::Ident && c.text == "current")
    {
        out.push(Violation {
            rule: "wallclock",
            line: t.line,
            message: "`thread::current()` in a simulation crate: results must not depend on \
                      which thread runs a cell"
                .to_string(),
        });
    }
}

fn check_panic_site(toks: &[Token<'_>], i: usize, t: &Token<'_>, out: &mut Vec<Violation>) {
    if t.kind != TokenKind::Ident || (t.text != "unwrap" && t.text != "expect") {
        return;
    }
    // Only the method-call forms `.unwrap()` / `.expect(` — `unwrap_or*`
    // and `expect_err` lex as different identifiers and are fine.
    let is_call = matches!(toks.get(i + 1), Some(n) if n.text == "(");
    let is_method = i > 0 && toks[i - 1].text == ".";
    if is_call && is_method {
        out.push(Violation {
            rule: "panic-site",
            line: t.line,
            message: format!(
                "`.{}(…)` can panic in the hot simulation loop; restructure infallibly or \
                 document the invariant with an allow annotation",
                t.text
            ),
        });
    }
}

fn check_index(toks: &[Token<'_>], i: usize, t: &Token<'_>, out: &mut Vec<Violation>) {
    if t.text != "[" {
        return;
    }
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return;
    };
    let is_postfix = match prev.kind {
        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text),
        TokenKind::Punct => prev.text == ")" || prev.text == "]" || prev.text == "?",
        _ => false,
    };
    if !is_postfix {
        return;
    }
    // `table[0]` — a literal index into a fixed-size array is verifiable at
    // review time and exempt.
    let literal_index = matches!(toks.get(i + 1), Some(n) if n.kind == TokenKind::IntLit)
        && matches!(toks.get(i + 2), Some(n) if n.text == "]");
    if literal_index {
        return;
    }
    out.push(Violation {
        rule: "index-panic",
        line: t.line,
        message: "indexing with a computed index can panic in the hot simulation loop; use \
                  `.get()`/iterators or document the bounds invariant with an allow annotation"
            .to_string(),
    });
}

fn check_narrow_cast(toks: &[Token<'_>], i: usize, t: &Token<'_>, out: &mut Vec<Violation>) {
    if t.kind != TokenKind::Ident || t.text != "as" {
        return;
    }
    if let Some(n) = toks.get(i + 1) {
        if n.kind == TokenKind::Ident && NARROW_TARGETS.contains(&n.text) {
            out.push(Violation {
                rule: "narrow-cast",
                line: t.line,
                message: format!(
                    "`as {}` silently truncates row/address arithmetic; use `try_from` with an \
                     error path or document the range invariant with an allow annotation",
                    n.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(crate_name: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mut out = Vec::new();
        check(crate_name, &lexed, &[], &[], &mut out);
        out
    }

    #[test]
    fn wallclock_scoped_to_sim_crates() {
        let src = "use std::time::Instant;";
        assert_eq!(run("core", src).len(), 1);
        assert_eq!(run("bench", src).len(), 0);
    }

    #[test]
    fn thread_current_detected() {
        let v = run("sim", "let id = thread::current();");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wallclock");
    }

    #[test]
    fn unwrap_or_is_not_a_panic_site() {
        assert!(run(
            "core",
            "x.unwrap_or(0); x.unwrap_or_else(f); e.expect_err(\"no\");"
        )
        .is_empty());
        let v = run("core", "x.unwrap();");
        assert_eq!(v[0].rule, "panic-site");
    }

    #[test]
    fn literal_indexing_is_exempt() {
        assert!(run("core", "let a = t[0]; let b = t[1];").is_empty());
        let v = run("core", "let a = t[i];");
        assert_eq!(v[0].rule, "index-panic");
    }

    #[test]
    fn array_literals_and_patterns_are_not_indexing() {
        assert!(run(
            "core",
            "let [a, b] = pair; let v = [1, 2]; for x in [3, 4] {}"
        )
        .is_empty());
        assert!(run("core", "let v = vec![0; n];").is_empty());
    }

    #[test]
    fn narrow_casts_only_in_core() {
        let src = "let x = y as u32;";
        assert_eq!(run("core", src)[0].rule, "narrow-cast");
        assert!(run("dram", src).is_empty());
        assert!(run("core", "let x = y as u64; let z = w as f64;").is_empty());
    }

    #[test]
    fn hash_collections_flagged_everywhere() {
        let v = run("cli", "use std::collections::HashMap;");
        assert_eq!(v[0].rule, "unordered-iter");
    }
}
