//! `rrs-lint` binary: `check` (the CI gate) and `rules` (documentation).

use std::path::PathBuf;
use std::process::ExitCode;

use rrs_lint::{lint_source, lint_workspace, ALL_RULES};

const USAGE: &str = "\
rrs-lint — static determinism & panic-safety checks for the RRS workspace

USAGE:
    rrs-lint check [ROOT]             lint every crates/*/src tree under ROOT (default: .)
    rrs-lint check-file CRATE FILE..  lint individual files as if they lived in crate CRATE
    rrs-lint rules                    list the enforced rules
    rrs-lint help                     show this message

Exit status: 0 clean, 1 violations found, 2 usage or I/O error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let root = PathBuf::from(args.get(1).map(String::as_str).unwrap_or("."));
            match lint_workspace(&root) {
                Ok(violations) if violations.is_empty() => {
                    eprintln!("rrs-lint: clean");
                    ExitCode::SUCCESS
                }
                Ok(violations) => {
                    for v in &violations {
                        println!("{v}");
                    }
                    eprintln!("rrs-lint: {} violation(s)", violations.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("rrs-lint: cannot lint {}: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
        Some("check-file") => {
            let Some(crate_name) = args.get(1) else {
                eprintln!("rrs-lint: check-file needs a crate name\n\n{USAGE}");
                return ExitCode::from(2);
            };
            let files = &args[2..];
            if files.is_empty() {
                eprintln!("rrs-lint: check-file needs at least one file\n\n{USAGE}");
                return ExitCode::from(2);
            }
            let mut total = 0usize;
            for file in files {
                let src = match std::fs::read_to_string(file) {
                    Ok(src) => src,
                    Err(e) => {
                        eprintln!("rrs-lint: cannot read {file}: {e}");
                        return ExitCode::from(2);
                    }
                };
                for v in lint_source(crate_name, &src) {
                    println!("{file}:{}: [{}] {}", v.line, v.rule, v.message);
                    total += 1;
                }
            }
            if total == 0 {
                eprintln!("rrs-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("rrs-lint: {total} violation(s)");
                ExitCode::FAILURE
            }
        }
        Some("rules") => {
            for rule in ALL_RULES {
                println!("{rule}");
            }
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("rrs-lint: unknown command {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
