#![warn(missing_docs)]

//! # rrs-lint — the workspace's determinism & panic-safety gate
//!
//! A zero-dependency static-analysis pass over every workspace crate's
//! `src/` tree. It mechanically enforces the invariants the paper's
//! security argument (§5, §6.2) and the campaign engine's byte-identity
//! promise rest on, the same way the workspace replaced `rand`, `proptest`
//! and `criterion` with in-repo equivalents: with a small in-repo tool
//! instead of an external dependency.
//!
//! See [`rules`] for the rule table and [`engine::lint_workspace`] for the
//! entry point; the binary front-end is `cargo run -p rrs-lint -- check`.
//!
//! ```
//! use rrs_lint::engine::lint_source;
//!
//! let violations = lint_source("core", "let t = std::time::Instant::now();");
//! assert_eq!(violations[0].rule, "wallclock");
//! ```

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{lint_source, lint_workspace, FileViolation};
pub use rules::{Violation, ALL_RULES};
