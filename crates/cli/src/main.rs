//! `rrs-cli` — the reproduction's command-line interface.
//!
//! ```text
//! rrs run     --workload hmmer --defense rrs [--scale N] [--instr N]
//! rrs attack  --pattern half-double --defense vfm [--epochs N] [--scale N]
//! rrs sweep   --defense rrs [--workloads all|table3|N] [--scale N]
//! rrs capture --workload gcc --records N --out trace.rrst [--text]
//! rrs replay  --trace trace.rrst --defense rrs [--instr N]
//! rrs analyze table4|table5|storage|duty-cycle
//! ```

use rrs_cli::{dispatch, print_usage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            print_usage();
            std::process::exit(2);
        }
    }
}
