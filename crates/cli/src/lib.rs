//! Implementation of the `rrs` command-line interface.
//!
//! The CLI wraps the [`rrs::experiments`] harness: every subcommand builds
//! an [`ExperimentConfig`] from the shared flags (`--scale`, `--instr`,
//! `--cores`, `--seed`) and prints a human-readable report. See
//! [`print_usage`] for the command reference.

use std::fmt;
use std::path::{Path, PathBuf};

use rrs::campaign::{Campaign, RunOptions};
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::forensics::{ExportOptions, ExposureConfig, ExposureReport, TraceHeader};
use rrs::sim::{SimResult, TraceSource};
use rrs::workloads::catalog::{all_workloads, spec_by_name, table3_workloads, Workload};
use rrs::workloads::AttackKind;
use rrs_json::Json;

pub mod output;

use output::OutputKind;

/// A CLI-level error (message already formatted for the user).
#[derive(Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError(s.to_string())
    }
}

/// Parsed flag set (`--key value` pairs plus bare switches).
#[derive(Debug, Default)]
pub struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses everything after the subcommand.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}").into());
            };
            if let Some(value) = args.get(i + 1).filter(|v| !v.starts_with("--")) {
                flags.pairs.push((key.to_string(), value.clone()));
                i += 2;
            } else {
                flags.switches.push(key.to_string());
                i += 1;
            }
        }
        Ok(flags)
    }

    /// String value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed numeric value of `--key`.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        self.get(key)
            .map(|v| {
                v.parse::<T>()
                    .map_err(|_| CliError(format!("--{key} expects a number, got {v:?}")))
            })
            .transpose()
    }

    /// Whether the bare switch `--key` was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Builds the experiment configuration from the shared flags.
    pub fn experiment(&self) -> Result<ExperimentConfig, CliError> {
        let mut cfg = ExperimentConfig::default();
        if let Some(scale) = self.get_num::<u64>("scale")? {
            if scale == 0 || 800 % scale != 0 {
                return Err(format!("--scale must divide 800, got {scale}").into());
            }
            cfg = cfg.with_scale(scale);
        }
        if let Some(instr) = self.get_num::<u64>("instr")? {
            cfg = cfg.with_instructions(instr);
        }
        if let Some(t_rh) = self.get_num::<u64>("t-rh")? {
            cfg = cfg.with_t_rh(t_rh);
        }
        if let Some(cores) = self.get_num::<usize>("cores")? {
            cfg.cores = cores.clamp(1, 64);
        }
        if let Some(seed) = self.get_num::<u64>("seed")? {
            cfg.seed = seed;
        }
        Ok(cfg)
    }

    /// Parses `--defense`.
    pub fn defense(&self) -> Result<MitigationKind, CliError> {
        parse_defense(self.get("defense").unwrap_or("rrs"))
    }

    /// Campaign execution options from the shared flags: `--threads N`,
    /// `--out DIR` (per-cell result cache, resume-on-rerun), `--force`,
    /// `--quiet`, `--trace` (record telemetry; skips the result cache).
    pub fn run_options(&self) -> Result<RunOptions, CliError> {
        Ok(RunOptions {
            threads: self.get_num::<usize>("threads")?,
            out_dir: self.get("out").map(std::path::PathBuf::from),
            force: self.has("force"),
            quiet: self.has("quiet"),
            trace: self.has("trace"),
        })
    }

    /// Parses `--workloads all|table3|N` (default `table3`).
    pub fn workload_pool(&self) -> Result<Vec<Workload>, CliError> {
        Ok(match self.get("workloads").unwrap_or("table3") {
            "all" => all_workloads(),
            "table3" => table3_workloads(),
            n => {
                let count: usize = n.parse().map_err(|_| {
                    CliError(format!("--workloads expects all|table3|N, got {n:?}"))
                })?;
                all_workloads().into_iter().take(count).collect()
            }
        })
    }
}

/// Maps a defense name to its kind.
pub fn parse_defense(name: &str) -> Result<MitigationKind, CliError> {
    Ok(match name {
        "none" => MitigationKind::None,
        "rrs" => MitigationKind::Rrs,
        "blockhammer" | "bh" | "bh-512" => MitigationKind::BlockHammer512,
        "bh-1k" => MitigationKind::BlockHammer1k,
        "vfm" | "victim-refresh" => MitigationKind::VictimRefresh,
        "graphene" => MitigationKind::Graphene,
        "para" => MitigationKind::Para,
        "prob-rrs" => MitigationKind::ProbabilisticRrs,
        other => {
            return Err(format!(
                "unknown defense {other:?} (none|rrs|bh-512|bh-1k|vfm|graphene|para|prob-rrs)"
            )
            .into())
        }
    })
}

/// Maps an attack name to its pattern (resolving `swap-chasing` against
/// the configured threshold).
pub fn parse_attack(name: &str, cfg: &ExperimentConfig) -> Result<AttackKind, CliError> {
    Ok(match name {
        "single-sided" => AttackKind::SingleSided,
        "double-sided" => AttackKind::DoubleSided,
        "half-double" => AttackKind::HalfDouble,
        "many-sided" => AttackKind::ManySided(6),
        "blacksmith" => AttackKind::Blacksmith { n: 6 },
        "swap-chasing" => cfg.swap_chasing_attack(),
        "dos" => AttackKind::Dos,
        "random" => AttackKind::UniformRandom,
        other => {
            return Err(format!(
                "unknown attack {other:?} (single-sided|double-sided|half-double|\
                 many-sided|blacksmith|swap-chasing|dos|random)"
            )
            .into())
        }
    })
}

fn print_run(r: &SimResult) {
    println!("workload     : {}", r.workload);
    println!("defense      : {}", r.mitigation);
    println!("instructions : {}", r.total_instructions);
    println!("cycles       : {}", r.cycles);
    println!("aggregate IPC: {:.3}", r.aggregate_ipc());
    println!("activations  : {}", r.stats.activations);
    println!(
        "row hits     : {} ({:.1}%)",
        r.stats.row_hits,
        100.0 * r.stats.row_hit_rate()
    );
    println!(
        "swaps        : {} (+{} unswaps)",
        r.stats.swaps, r.stats.unswaps
    );
    println!("victim refr. : {}", r.stats.targeted_refreshes);
    println!("delay cycles : {}", r.stats.mitigation_delay_cycles);
    println!("epochs       : {}", r.stats.epochs_completed);
    println!(
        "read latency : mean {:.0} / p50 {} / p95 {} / p99 {} / max {} cycles",
        r.read_latency.mean(),
        r.read_latency.p50(),
        r.read_latency.p95(),
        r.read_latency.p99(),
        r.read_latency.max()
    );
    println!("bit flips    : {}", r.bit_flips.len());
}

/// Executes a CLI invocation.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, bad flags, or I/O failures.
pub fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    let flags = Flags::parse(&args[1..])?;
    match command.as_str() {
        "run" => cmd_run(&flags),
        "attack" => cmd_attack(&flags),
        "sweep" => cmd_sweep(&flags),
        "campaign" => cmd_campaign(&flags),
        "trace" => cmd_trace(&flags),
        "forensics" => cmd_forensics(&flags),
        "bench-report" => cmd_bench_report(&flags),
        "capture" => cmd_capture(&flags),
        "replay" => cmd_replay(&flags),
        "analyze" => cmd_analyze(&flags),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}").into()),
    }
}

fn cmd_run(flags: &Flags) -> Result<(), CliError> {
    let cfg = flags.experiment()?;
    let name = flags.get("workload").unwrap_or("gcc");
    // `--spec-file` extends the catalog with user-defined workloads.
    let custom: Vec<rrs::workloads::WorkloadSpec> = match flags.get("spec-file") {
        Some(path) => rrs::workloads::load_specs(path).map_err(|e| CliError(e.to_string()))?,
        None => Vec::new(),
    };
    let spec = custom
        .iter()
        .find(|s| s.name == name)
        .copied()
        .or_else(|| spec_by_name(name))
        .ok_or_else(|| CliError(format!("unknown workload {name:?}")))?;
    let workload = Workload::Single(spec);
    let kind = flags.defense()?;
    // Even a single run goes through the campaign engine, so `--out`
    // caching and the derived per-cell seed match the figure harnesses.
    let mut opts = flags.run_options()?;
    opts.quiet = true;
    let mut campaign = Campaign::new();
    let cell = campaign.workload(cfg, workload, kind);
    let base_cell = flags
        .has("baseline")
        .then(|| campaign.workload(cfg, workload, MitigationKind::None));
    let run = campaign.run(&opts);
    print_run(run.get(cell));
    if let Some(base) = base_cell {
        println!("normalized   : {:.4}", run.normalized(cell, base));
    }
    Ok(())
}

fn cmd_attack(flags: &Flags) -> Result<(), CliError> {
    let cfg = flags.experiment()?;
    let attack = parse_attack(flags.get("pattern").unwrap_or("double-sided"), &cfg)?;
    let kind = flags.defense()?;
    let epochs = flags.get_num::<u64>("epochs")?.unwrap_or(2);
    let mut opts = flags.run_options()?;
    opts.quiet = true;
    let mut campaign = Campaign::new();
    let cell = campaign.attack(cfg, attack, kind, epochs);
    let run = campaign.run(&opts);
    let result = run.get(cell);
    print_run(result);
    println!(
        "verdict      : {}",
        if result.bit_flips.is_empty() {
            "defended"
        } else {
            "ATTACK SUCCEEDED (bit flips observed)"
        }
    );
    Ok(())
}

fn cmd_sweep(flags: &Flags) -> Result<(), CliError> {
    let cfg = flags.experiment()?;
    let kind = flags.defense()?;
    let pool = flags.workload_pool()?;
    let opts = flags.run_options()?;
    let mut campaign = Campaign::new();
    let pairs: Vec<(Workload, (usize, usize))> = pool
        .iter()
        .map(|w| (*w, campaign.normalized_pair(cfg, *w, kind)))
        .collect();
    let run = campaign.run(&opts);
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "workload", "norm perf", "swaps/epoch", "flips"
    );
    let mut norms = Vec::new();
    for (w, (base, mitigated)) in &pairs {
        let r = run.get(*mitigated);
        let norm = run.normalized(*mitigated, *base);
        norms.push(norm);
        println!(
            "{:<14} {:>10.4} {:>12.1} {:>10}",
            w.name(),
            norm,
            r.stats.mean_swaps_per_epoch(),
            r.bit_flips.len()
        );
    }
    println!(
        "geomean slowdown: {:.2}%",
        (1.0 - rrs::experiments::geomean(&norms)) * 100.0
    );
    Ok(())
}

fn cmd_campaign(flags: &Flags) -> Result<(), CliError> {
    let cfg = flags.experiment()?;
    let pool = flags.workload_pool()?;
    let kinds: Vec<MitigationKind> = flags
        .get("defenses")
        .unwrap_or("none,rrs")
        .split(',')
        .map(|d| parse_defense(d.trim()))
        .collect::<Result<_, _>>()?;
    let attacks: Vec<AttackKind> = match flags.get("attacks") {
        Some(list) => list
            .split(',')
            .map(|a| parse_attack(a.trim(), &cfg))
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let epochs = flags.get_num::<u64>("epochs")?.unwrap_or(2);
    let mut opts = flags.run_options()?;
    if opts.out_dir.is_none() {
        opts.out_dir = Some("results".into());
    }

    let mut campaign = Campaign::new();
    for kind in &kinds {
        for w in &pool {
            campaign.workload(cfg, *w, *kind);
        }
        for attack in &attacks {
            campaign.attack(cfg, *attack, *kind, epochs);
        }
    }
    eprintln!(
        "campaign: {} cells ({} workloads x {} defenses{}), {} threads, cache {}",
        campaign.len(),
        pool.len(),
        kinds.len(),
        if attacks.is_empty() {
            String::new()
        } else {
            format!(" + {} attacks", attacks.len())
        },
        opts.resolve_threads(),
        opts.out_dir
            .as_deref()
            .unwrap_or_else(|| "off".as_ref())
            .display(),
    );
    let run = campaign.run(&opts);

    println!(
        "{:<44} {:>9} {:>12} {:>8} {:>7}",
        "cell", "agg IPC", "swaps/epoch", "flips", "cached"
    );
    println!("{}", "-".repeat(84));
    for outcome in run.outcomes() {
        let r = &outcome.result;
        println!(
            "{:<44} {:>9.3} {:>12.1} {:>8} {:>7}",
            outcome.id,
            r.aggregate_ipc(),
            r.stats.mean_swaps_per_epoch(),
            r.bit_flips.len(),
            if outcome.from_cache { "yes" } else { "no" }
        );
    }
    let cached = run.outcomes().iter().filter(|o| o.from_cache).count();
    // `.max(0.0)` because summing an empty iterator of f64 yields -0.0,
    // which would print as "-0.0s" on a fully cached run.
    let simulated: f64 = run
        .outcomes()
        .iter()
        .filter(|o| !o.from_cache)
        .map(|o| o.seconds)
        .sum::<f64>()
        .max(0.0);
    println!(
        "{} cells: {} cached, {} simulated ({:.1}s of cell time)",
        run.len(),
        cached,
        run.len() - cached,
        simulated
    );
    Ok(())
}

fn cmd_trace(flags: &Flags) -> Result<(), CliError> {
    let cfg = flags.experiment()?;
    let kind = flags.defense()?;
    let capacity = flags
        .get_num::<usize>("capacity")?
        .unwrap_or(rrs::telemetry::DEFAULT_TRACE_CAPACITY);
    let spine = rrs::telemetry::Telemetry::with_trace(capacity);
    // `--pattern` traces an attack campaign; otherwise a benign workload.
    let result = if let Some(pattern) = flags.get("pattern") {
        let attack = parse_attack(pattern, &cfg)?;
        let epochs = flags.get_num::<u64>("epochs")?.unwrap_or(1);
        cfg.run_attack_probed(attack, kind, epochs, &spine).result
    } else {
        let name = flags.get("workload").unwrap_or("gcc");
        let spec =
            spec_by_name(name).ok_or_else(|| CliError(format!("unknown workload {name:?}")))?;
        cfg.run_workload_probed(&Workload::Single(spec), kind, &spine)
    };
    println!("workload     : {}", result.workload);
    println!("defense      : {}", result.mitigation);
    println!("cycles       : {}", result.cycles);
    println!(
        "events       : {} recorded, {} dropped (capacity {})",
        spine.events_recorded(),
        spine.events_dropped(),
        capacity
    );
    if spine.events_dropped() > 0 {
        println!(
            "WARN: {} events dropped (raise --capacity)",
            spine.events_dropped()
        );
    }
    for (event, n) in spine.event_kind_counts() {
        println!("  {event:<18} {n}");
    }
    println!("counters     :");
    for (name, value) in spine.counters() {
        println!("  {name:<28} {value}");
    }
    // The saved trace leads with a header record carrying the recorder
    // bookkeeping (including drops), then one event per line.
    let header = TraceHeader {
        events_recorded: spine.events_recorded(),
        events_dropped: spine.events_dropped(),
        capacity: capacity as u64,
    };
    let mut jsonl = header.to_json().to_string_compact();
    jsonl.push('\n');
    jsonl.push_str(&spine.trace_jsonl().unwrap_or_default());
    if let Some(path) = flags.get("out") {
        let path = output::write_as(path, OutputKind::TraceJsonl, &jsonl)?;
        println!(
            "trace        : {} ({} events, JSON lines)",
            path.display(),
            spine.events_recorded()
        );
    } else if flags.has("dump") {
        print!("{jsonl}");
    } else {
        println!("trace        : pass --out <file> to save or --dump to print");
    }
    // `--summary <file>` saves the registry snapshot as a JSON document.
    if let Some(path) = flags.get("summary") {
        let path = output::write_as(
            path,
            OutputKind::Json,
            &spine.snapshot_json().to_string_pretty(),
        )?;
        println!("summary      : {}", path.display());
    }
    Ok(())
}

/// Default forensics ring capacity: LLC hit/miss events dominate traced
/// runs, so the `rrs trace` default (64k) truncates most attack traces
/// before a whole epoch fits.
const FORENSICS_TRACE_CAPACITY: usize = 1 << 20;

fn cmd_forensics(flags: &Flags) -> Result<(), CliError> {
    let cfg = flags.experiment()?;
    let t_rrs = (cfg.t_rh() / rrs::core::DEFAULT_K).max(1);
    // Event source: a saved trace file, or a fresh traced simulation.
    let (events, dropped) = if let Some(path) = flags.get("trace") {
        let text =
            std::fs::read_to_string(path).map_err(|e| CliError(format!("reading {path}: {e}")))?;
        let parsed =
            rrs::forensics::parse_jsonl(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
        println!("trace        : {path} ({} events)", parsed.events.len());
        let dropped = parsed.events_dropped();
        (parsed.events, dropped)
    } else {
        let capacity = flags
            .get_num::<usize>("capacity")?
            .unwrap_or(FORENSICS_TRACE_CAPACITY);
        let kind = flags.defense()?;
        let spine = rrs::telemetry::Telemetry::with_trace(capacity);
        let (scenario, defense) = if let Some(pattern) = flags.get("pattern") {
            let attack = parse_attack(pattern, &cfg)?;
            let epochs = flags.get_num::<u64>("epochs")?.unwrap_or(1);
            let outcome = cfg.run_attack_probed(attack, kind, epochs, &spine);
            (
                outcome.result.workload.clone(),
                outcome.result.mitigation.clone(),
            )
        } else {
            let name = flags.get("workload").unwrap_or("gcc");
            let spec =
                spec_by_name(name).ok_or_else(|| CliError(format!("unknown workload {name:?}")))?;
            let result = cfg.run_workload_probed(&Workload::Single(spec), kind, &spine);
            (result.workload.clone(), result.mitigation.clone())
        };
        println!("scenario     : {scenario} under {defense}");
        (spine.events(), spine.events_dropped())
    };
    if dropped > 0 {
        println!("WARN: {dropped} events dropped (raise --capacity)");
    }
    let threshold = flags.get_num::<u64>("threshold")?.unwrap_or(t_rrs);
    // Slack defaults to one more swap threshold's worth: activations that
    // land between the tracker crossing T_RRS and the swap completing.
    let slack = flags.get_num::<u64>("slack")?.unwrap_or(threshold);
    let report = ExposureReport::reconstruct(
        &events,
        ExposureConfig {
            swap_threshold: threshold,
            slack,
        },
        dropped,
    );
    print!("{}", report.render_text());
    if let Some(path) = flags.get("report") {
        let path = output::write_as(path, OutputKind::Json, &report.to_json().to_string_pretty())?;
        println!("report       : {}", path.display());
    }
    if let Some(path) = flags.get("perfetto") {
        let opts = ExportOptions {
            activations: flags.has("acts"),
        };
        let text = rrs::forensics::export_trace(&events, &opts);
        let path = output::write_as(path, OutputKind::Json, &text)?;
        println!(
            "perfetto     : {} (load in ui.perfetto.dev)",
            path.display()
        );
    }
    Ok(())
}

/// Reads the current commit hash from `.git` (no subprocess), walking up
/// from the working directory; `"unknown"` when unavailable.
fn git_rev() -> String {
    fn from_repo(git: &Path) -> Option<String> {
        let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
        let head = head.trim();
        let Some(refname) = head.strip_prefix("ref: ") else {
            return Some(head.to_string()); // detached HEAD: a raw hash
        };
        if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
            return Some(hash.trim().to_string());
        }
        // Refs may only exist packed.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        packed.lines().find_map(|line| {
            line.strip_suffix(refname)
                .map(|hash| hash.trim().to_string())
        })
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            if let Some(hash) = from_repo(&git) {
                let short: String = hash.chars().take(12).collect();
                return short;
            }
            break;
        }
        if !dir.pop() {
            break;
        }
    }
    "unknown".to_string()
}

/// Finds the most recent prior `BENCH_*.json` snapshot in `dir` (highest
/// numeric suffix, excluding `current`).
fn find_prior_snapshot(dir: &Path, current: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        if path.file_name() == current.file_name() {
            continue;
        }
        let digits: String = name.chars().filter(|c| c.is_ascii_digit()).collect();
        let n: u64 = digits.parse().unwrap_or(0);
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, path));
        }
    }
    best.map(|(_, p)| p)
}

fn cmd_bench_report(flags: &Flags) -> Result<(), CliError> {
    let smoke = flags.has("smoke");
    let out_raw = flags.get("out").unwrap_or("BENCH_PR5.json");
    // --gate PCT is the CI form: it sets the regression threshold AND makes
    // any crossing (or a missing/unreadable baseline) a non-zero exit.
    let gate = flags.get_num::<f64>("gate")?;
    let regress_pct = gate.or(flags.get_num::<f64>("threshold")?).unwrap_or(10.0);
    let strict = flags.has("strict") || gate.is_some();
    if smoke {
        println!("bench-report: smoke mode (tiny measurement budget; numbers are schema checks, not data)");
    }
    let mut h = bench::harness::Harness::programmatic(smoke);
    bench::suite::standard_suite(&mut h);
    let rev = git_rev();
    let benches: Vec<(String, Json)> = h
        .records()
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                Json::Obj(vec![
                    (
                        "median_ns".to_string(),
                        Json::f64((r.ns_per_iter * 100.0).round() / 100.0),
                    ),
                    ("iters".to_string(), Json::u64(r.iters)),
                    ("git_rev".to_string(), Json::str(&rev)),
                ]),
            )
        })
        .collect();
    let doc = Json::Obj(vec![
        ("schema".to_string(), Json::str("rrs-bench-v1")),
        (
            "mode".to_string(),
            Json::str(if smoke { "smoke" } else { "full" }),
        ),
        ("git_rev".to_string(), Json::str(&rev)),
        ("benches".to_string(), Json::Obj(benches)),
    ]);
    let out_path = output::write_as(out_raw, OutputKind::Json, &doc.to_string_pretty())?;
    println!(
        "wrote {} ({} benches, rev {rev})",
        out_path.display(),
        h.records().len()
    );

    // Diff against --baseline, or the most recent prior snapshot. Absent
    // or malformed priors are reported, never fatal — unless gating, where
    // a gate with nothing to gate against must fail loudly.
    let dir = out_path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    let prior_path = match flags.get("baseline") {
        Some(p) => PathBuf::from(p),
        None => match find_prior_snapshot(&dir, &out_path) {
            Some(p) => p,
            None => {
                if gate.is_some() {
                    return Err("bench gate: no baseline BENCH_*.json snapshot found".into());
                }
                println!("no prior BENCH_*.json snapshot to diff against");
                return Ok(());
            }
        },
    };
    let prior = match std::fs::read_to_string(&prior_path)
        .map_err(|e| e.to_string())
        .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()))
    {
        Ok(json) => json,
        Err(e) => {
            if gate.is_some() {
                return Err(format!(
                    "bench gate: cannot read baseline {}: {e}",
                    prior_path.display()
                )
                .into());
            }
            println!("cannot diff against {}: {e}", prior_path.display());
            return Ok(());
        }
    };
    println!("diff vs {}:", prior_path.display());
    let mut regressions = 0usize;
    for r in h.records() {
        let prior_ns = prior
            .get("benches")
            .and_then(|b| b.get(&r.name))
            .and_then(|b| b.get("median_ns"))
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0);
        match prior_ns {
            Some(p) => {
                let pct = (r.ns_per_iter - p) / p * 100.0;
                let flag = if pct > regress_pct {
                    regressions += 1;
                    "  REGRESSION"
                } else {
                    ""
                };
                println!("  {:<40} {:>+8.1}%{flag}", r.name, pct);
            }
            None => println!("  {:<40}      new", r.name),
        }
    }
    if regressions > 0 {
        println!(
            "{regressions} benchmark(s) regressed more than {regress_pct:.0}% \
             (timing noise is expected in smoke mode)"
        );
        if strict {
            return Err(format!("{regressions} benchmark regression(s) over threshold").into());
        }
    }
    Ok(())
}

fn cmd_capture(flags: &Flags) -> Result<(), CliError> {
    let cfg = flags.experiment()?;
    let name = flags.get("workload").unwrap_or("gcc");
    let spec = spec_by_name(name).ok_or_else(|| CliError(format!("unknown workload {name:?}")))?;
    let records: usize = flags.get_num("records")?.unwrap_or(100_000);
    let out = flags.get("out").unwrap_or("trace.rrst").to_string();
    let sys = cfg.system_config();
    let mapper = rrs::mem_ctrl::mapping::AddressMapper::new(sys.controller.geometry);
    let mut generator = rrs::workloads::generator::SyntheticWorkload::new(
        &spec,
        0,
        rrs::workloads::generator::GenParams::from_system(&sys),
        &mapper,
        cfg.seed,
    );
    let trace = rrs_trace::capture(&mut generator, records);
    let format = if flags.has("text") {
        rrs_trace::TraceFormat::Text
    } else {
        rrs_trace::TraceFormat::Binary
    };
    rrs_trace::save(&out, &trace, format).map_err(|e| CliError(e.to_string()))?;
    println!("captured {} records of {} into {}", trace.len(), name, out);
    Ok(())
}

fn cmd_replay(flags: &Flags) -> Result<(), CliError> {
    let cfg = flags.experiment()?;
    let path = flags
        .get("trace")
        .ok_or_else(|| CliError("replay requires --trace <file>".into()))?;
    let records = rrs_trace::load(path).map_err(|e| CliError(e.to_string()))?;
    if records.is_empty() {
        return Err("trace file contains no records".into());
    }
    let kind = flags.defense()?;
    let sys = cfg.system_config();
    let sources: Vec<Box<dyn TraceSource>> = (0..sys.cores)
        .map(|_| {
            Box::new(rrs_trace::ReplaySource::new(records.clone(), path)) as Box<dyn TraceSource>
        })
        .collect();
    let result = rrs::sim::run(&sys, cfg.build_mitigation(kind), sources, path);
    print_run(&result);
    Ok(())
}

fn cmd_analyze(flags: &Flags) -> Result<(), CliError> {
    // `analyze table4` arrives as a switch (bare word after --?) — accept
    // both `analyze table4` positional and `--what table4`.
    let what = flags
        .get("what")
        .map(str::to_string)
        .or_else(|| flags.switches.first().cloned())
        .unwrap_or_else(|| "table4".into());
    match what.as_str() {
        "table4" | "attack-time" => {
            let m = rrs::analysis::attack_model::AttackModel::asplos22();
            println!(
                "{:<8} {:>4} {:>14} {:>14}",
                "T_RRS", "k", "iterations", "years"
            );
            for row in m.table4() {
                println!(
                    "{:<8} {:>4} {:>14.3e} {:>14.1}",
                    row.t,
                    row.k,
                    row.attack_iterations,
                    row.years()
                );
            }
        }
        "table5" | "storage" => {
            let t = rrs::analysis::storage::table5();
            for r in &t.rows {
                println!(
                    "{:<14} {:>8} bits x {:>6} = {:>7.1} KiB",
                    r.structure, r.entry_bits, r.entries, r.kib_per_bank
                );
            }
            println!(
                "total per bank: {:.1} KiB; per rank: {:.0} KiB",
                t.total_kib_per_bank(),
                t.total_kib_per_rank(16)
            );
        }
        "duty-cycle" => {
            let m = rrs::analysis::attack_model::AttackModel::asplos22();
            for t in [400u64, 685, 800, 960, 1600] {
                println!("T_RRS {:>5}: duty cycle {:.4}", t, m.duty_cycle(t));
            }
        }
        other => {
            return Err(format!("unknown analysis {other:?} (table4|table5|duty-cycle)").into())
        }
    }
    Ok(())
}

/// Prints the command reference.
pub fn print_usage() {
    println!(
        "rrs — Randomized Row-Swap (ASPLOS 2022) reproduction CLI

USAGE:
    rrs <command> [flags]

COMMANDS:
    run      --workload <name> --defense <d> [--baseline]
             [--spec-file <file>]                            benign workload run
    attack   --pattern <p> --defense <d> [--epochs N]       attack campaign
    sweep    --defense <d> [--workloads all|table3|N]       normalized-perf sweep
    campaign [--workloads all|table3|N] [--defenses d1,d2]
             [--attacks p1,p2] [--epochs N]                 declarative grid run
             (cells execute in parallel; results cached under --out,
              default results/, and reruns skip finished cells)
    trace    [--workload <name> | --pattern <p>] --defense <d>
             [--epochs N] [--capacity N] [--out <file> | --dump]
             [--summary <file>]
             run once with telemetry tracing on; print counter and
             event summaries, save the trace as JSON lines (.jsonl,
             with a trace_header record) and the registry snapshot
             as JSON (.json)
    forensics [--trace <file> | --pattern <p> | --workload <name>]
             [--defense <d>] [--epochs N] [--capacity N]
             [--threshold N] [--slack N] [--acts]
             [--report <out.json>] [--perfetto <out.json>]
             reconstruct per-row exposure from a trace (saved or run
             fresh): max activations-per-residency vs T_RRS verdict,
             relocation entropy, optional Perfetto timeline export
    bench-report [--smoke] [--out FILE] [--threshold PCT] [--strict]
             [--gate PCT] [--baseline FILE]
             run the standard bench suite, snapshot medians to
             BENCH_*.json (default BENCH_PR5.json), diff against
             --baseline (default: most recent prior snapshot) and
             flag regressions; --gate PCT exits non-zero when any
             median regresses more than PCT% (or no baseline exists)
    capture  --workload <name> --records N --out <file> [--text]
    replay   --trace <file> --defense <d>                   replay a trace file
    analyze  --what table4|table5|duty-cycle                analytic models
    help

SHARED FLAGS:
    --scale N    time-scale factor (divides 800; default 32; 1 = paper scale)
    --instr N    instructions per core
    --t-rh N     full-scale Row Hammer threshold (default 4800)
    --cores N    cores (default 8)
    --seed N     experiment seed
    --threads N  campaign worker threads (default: RAYON_NUM_THREADS, then
                 available parallelism)
    --out DIR    per-cell result cache (resume-on-rerun)
    --force      re-run cells even when cached
    --quiet      suppress per-cell progress lines
    --trace      record telemetry for campaign cells (skips the result
                 cache; writes <cell>.trace.jsonl next to <cell>.json)

DEFENSES: none | rrs | bh-512 | bh-1k | vfm | graphene | para | prob-rrs
ATTACKS : single-sided | double-sided | half-double | many-sided |
          blacksmith | swap-chasing | dos | random"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn flags_parse_pairs_and_switches() {
        let f = Flags::parse(&argv("--scale 100 --baseline --workload hmmer")).unwrap();
        assert_eq!(f.get("scale"), Some("100"));
        assert_eq!(f.get("workload"), Some("hmmer"));
        assert!(f.has("baseline"));
        assert!(!f.has("scale"));
    }

    #[test]
    fn bad_flag_values_are_reported() {
        let f = Flags::parse(&argv("--scale banana")).unwrap();
        assert!(f.experiment().is_err());
        let f = Flags::parse(&argv("--scale 7")).unwrap();
        assert!(f.experiment().is_err(), "7 does not divide 800");
    }

    #[test]
    fn positional_arguments_rejected() {
        assert!(Flags::parse(&argv("oops")).is_err());
    }

    #[test]
    fn defense_and_attack_names_resolve() {
        for d in [
            "none", "rrs", "bh-512", "bh-1k", "vfm", "graphene", "para", "prob-rrs",
        ] {
            assert!(parse_defense(d).is_ok(), "{d}");
        }
        assert!(parse_defense("magic").is_err());
        let cfg = ExperimentConfig::smoke_test();
        for a in [
            "single-sided",
            "double-sided",
            "half-double",
            "many-sided",
            "blacksmith",
            "swap-chasing",
            "dos",
            "random",
        ] {
            assert!(parse_attack(a, &cfg).is_ok(), "{a}");
        }
        assert!(parse_attack("nope", &cfg).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_commands() {
        assert!(dispatch(&argv("frobnicate")).is_err());
    }

    #[test]
    fn analyze_commands_print() {
        for what in ["table4", "table5", "duty-cycle"] {
            let args = vec![
                "analyze".to_string(),
                "--what".to_string(),
                what.to_string(),
            ];
            dispatch(&args).unwrap();
        }
    }

    #[test]
    fn end_to_end_attack_command() {
        let args = argv("attack --pattern double-sided --defense rrs --scale 200 --epochs 1");
        dispatch(&args).unwrap();
    }

    #[test]
    fn campaign_command_runs_and_caches() {
        let dir = std::env::temp_dir().join("rrs_cli_campaign");
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = format!(
            "campaign --workloads 2 --defenses none,rrs --scale 200 --instr 20000 \
             --cores 2 --quiet --out {}",
            dir.display()
        );
        dispatch(&argv(&cmd)).unwrap();
        let cached = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(cached, 4, "2 workloads x 2 defenses must be cached");
        // Rerun resumes from the cache (and still succeeds).
        dispatch(&argv(&cmd)).unwrap();
        assert!(dispatch(&argv("campaign --defenses bogus --quiet")).is_err());
    }

    #[test]
    fn sweep_command_uses_campaign() {
        let args =
            argv("sweep --defense rrs --workloads 1 --scale 200 --instr 20000 --cores 2 --quiet");
        dispatch(&args).unwrap();
    }

    #[test]
    fn spec_file_workloads_run() {
        let dir = std::env::temp_dir().join("rrs_cli_spec");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("custom.spec");
        std::fs::write(
            &path,
            "workload tiny
footprint_mb 64
mpki 12
",
        )
        .unwrap();
        let cmd = format!(
            "run --workload tiny --spec-file {} --scale 200 --instr 50000 --cores 2",
            path.display()
        );
        dispatch(&argv(&cmd)).unwrap();
        // Unknown name still errors, even with a spec file present.
        let bad = format!(
            "run --workload nope --spec-file {} --scale 200",
            path.display()
        );
        assert!(dispatch(&argv(&bad)).is_err());
    }

    #[test]
    fn trace_command_writes_json_lines() {
        let dir = std::env::temp_dir().join("rrs_cli_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hmmer.trace.jsonl");
        let summary = dir.join("hmmer.summary.json");
        let cmd = format!(
            "trace --workload hmmer --defense rrs --scale 200 --instr 20000 \
             --cores 2 --out {} --summary {}",
            path.display(),
            summary.display()
        );
        dispatch(&argv(&cmd)).unwrap();
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(!trace.is_empty(), "trace must record events");
        for line in trace.lines() {
            assert!(line.starts_with("{\"kind\":"), "bad event line: {line}");
        }
        // The first line is the trace_header bookkeeping record, and the
        // whole file parses through the forensics reader.
        assert!(trace.starts_with("{\"kind\":\"trace_header\""));
        let parsed = rrs::forensics::parse_jsonl(&trace).unwrap();
        let header = parsed.header.expect("saved traces carry a header");
        assert_eq!(
            parsed.events.len() as u64,
            header.events_recorded - header.events_dropped
        );
        // The summary is a JSON registry snapshot.
        let snap = std::fs::read_to_string(&summary).unwrap();
        assert!(rrs_json::Json::parse(&snap).is_ok());
        // Attack tracing works through the same command.
        let atk = "trace --pattern double-sided --defense none --scale 200 --epochs 1";
        dispatch(&argv(atk)).unwrap();
    }

    #[test]
    fn trace_out_extension_is_enforced() {
        let dir = std::env::temp_dir().join("rrs_cli_trace_ext");
        std::fs::create_dir_all(&dir).unwrap();
        // A ".json" trace path is corrected to ".jsonl".
        let wrong = dir.join("t.json");
        let cmd = format!(
            "trace --workload hmmer --defense rrs --scale 200 --instr 20000 \
             --cores 2 --out {}",
            wrong.display()
        );
        dispatch(&argv(&cmd)).unwrap();
        assert!(!wrong.exists(), "mislabelled path must not be written");
        assert!(dir.join("t.jsonl").exists());
    }

    #[test]
    fn forensics_pattern_verdicts_flip_with_the_defense() {
        let dir = std::env::temp_dir().join("rrs_cli_forensics");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let report = dir.join("rep.json");
        let perfetto = dir.join("out.json");
        let cmd = format!(
            "forensics --pattern double-sided --defense rrs --scale 200 \
             --cores 2 --epochs 1 --report {} --perfetto {}",
            report.display(),
            perfetto.display()
        );
        dispatch(&argv(&cmd)).unwrap();
        let rep = rrs_json::Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(
            rep.get("verdict").and_then(|v| v.as_str()),
            Some("pass"),
            "RRS must bound exposure: {rep:?}"
        );
        let doc = rrs_json::Json::parse(&std::fs::read_to_string(&perfetto).unwrap()).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert!(!events.is_empty(), "perfetto export has tracks");

        // The same attack without a defense must fail the verdict.
        let undefended = dir.join("rep_none.json");
        let cmd = format!(
            "forensics --pattern double-sided --defense none --scale 200 \
             --cores 2 --epochs 1 --report {}",
            undefended.display()
        );
        dispatch(&argv(&cmd)).unwrap();
        let rep = rrs_json::Json::parse(&std::fs::read_to_string(&undefended).unwrap()).unwrap();
        assert_eq!(rep.get("verdict").and_then(|v| v.as_str()), Some("fail"));
    }

    #[test]
    fn forensics_reads_saved_traces() {
        let dir = std::env::temp_dir().join("rrs_cli_forensics_file");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("atk.trace.jsonl");
        let cmd = format!(
            "trace --pattern double-sided --defense rrs --scale 200 --cores 2 \
             --epochs 1 --out {}",
            trace.display()
        );
        dispatch(&argv(&cmd)).unwrap();
        let report = dir.join("from_file.json");
        let cmd = format!(
            "forensics --trace {} --scale 200 --report {}",
            trace.display(),
            report.display()
        );
        dispatch(&argv(&cmd)).unwrap();
        let rep = rrs_json::Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert!(rep.get("max_exposure").and_then(|v| v.as_u64()).is_some());
        // A missing file errors cleanly.
        assert!(dispatch(&argv("forensics --trace /nonexistent.jsonl")).is_err());
    }

    #[test]
    fn bench_report_smoke_writes_schema_and_diffs() {
        let dir = std::env::temp_dir().join("rrs_cli_bench_report");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_PR4.json");
        let cmd = format!("bench-report --smoke --out {}", out.display());
        // First run: no prior snapshot — must not panic.
        dispatch(&argv(&cmd)).unwrap();
        let doc = rrs_json::Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("rrs-bench-v1")
        );
        let benches = doc.get("benches").unwrap();
        let rrs_json::Json::Obj(entries) = benches else {
            panic!("benches must be an object");
        };
        assert!(entries.len() >= 8, "suite covers the layers");
        for (name, entry) in entries {
            assert!(
                entry.get("median_ns").and_then(|v| v.as_f64()).unwrap() > 0.0,
                "{name}"
            );
            assert!(entry.get("iters").and_then(|v| v.as_u64()).unwrap() > 0);
            assert!(entry.get("git_rev").and_then(|v| v.as_str()).is_some());
        }
        // Second run with a prior present: the diff path executes.
        std::fs::rename(&out, dir.join("BENCH_PR3.json")).unwrap();
        dispatch(&argv(&cmd)).unwrap();
    }

    #[test]
    fn bench_report_gate_exits_nonzero_on_regression() {
        let dir = std::env::temp_dir().join("rrs_cli_bench_gate");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_GATE_OUT.json");

        // Gate with no baseline anywhere: must fail, a silent pass is useless.
        let cmd = format!("bench-report --smoke --gate 50 --out {}", out.display());
        assert!(dispatch(&argv(&cmd)).is_err());

        // A generous gate against a real smoke snapshot passes (threshold is
        // huge so timing noise cannot trip it).
        let baseline = dir.join("BENCH_BASE.json");
        let seed = format!("bench-report --smoke --out {}", baseline.display());
        dispatch(&argv(&seed)).unwrap();
        let cmd = format!(
            "bench-report --smoke --gate 100000 --baseline {} --out {}",
            baseline.display(),
            out.display()
        );
        dispatch(&argv(&cmd)).unwrap();

        // A baseline with an absurdly fast median forces a regression over
        // any threshold: the gate must exit non-zero.
        let doctored = dir.join("BENCH_DOCTORED.json");
        std::fs::write(
            &doctored,
            r#"{"schema":"rrs-bench-v1","benches":{"prince/encrypt":{"median_ns":0.0001}}}"#,
        )
        .unwrap();
        let cmd = format!(
            "bench-report --smoke --gate 50 --baseline {} --out {}",
            doctored.display(),
            out.display()
        );
        assert!(dispatch(&argv(&cmd)).is_err());
    }

    #[test]
    fn capture_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("rrs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cap.rrst");
        let cap = format!(
            "capture --workload gcc --records 5000 --scale 200 --out {}",
            path.display()
        );
        dispatch(&argv(&cap)).unwrap();
        let rep = format!(
            "replay --trace {} --defense rrs --scale 200 --instr 20000 --cores 2",
            path.display()
        );
        dispatch(&argv(&rep)).unwrap();
    }
}
