//! Shared output-path conventions for everything the CLI writes.
//!
//! One rule, applied everywhere: JSON-lines event traces end in
//! `.jsonl`, single-object JSON documents (summaries, forensics reports,
//! Perfetto exports) end in `.json`. A user-given `--out` path with the
//! wrong (or no) extension is corrected — with a note on stderr — instead
//! of silently scattering mislabelled files, and parent directories are
//! created on write.

use std::path::{Path, PathBuf};

use crate::CliError;

/// What kind of artifact a path will hold (decides the extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// A JSON-lines event trace (`.jsonl`).
    TraceJsonl,
    /// A single JSON document (`.json`): summary, report, Perfetto export.
    Json,
}

impl OutputKind {
    fn extension(self) -> &'static str {
        match self {
            OutputKind::TraceJsonl => "jsonl",
            OutputKind::Json => "json",
        }
    }
}

/// Resolves a user-given output path to the conventional extension,
/// noting the correction on stderr when one was needed.
pub fn resolve(raw: &str, kind: OutputKind) -> PathBuf {
    let path = PathBuf::from(raw);
    let want = kind.extension();
    let current = path.extension().and_then(|e| e.to_str());
    // ".trace.jsonl" style double extensions resolve to "jsonl" here, so
    // only a genuinely different suffix is rewritten.
    if current == Some(want) {
        return path;
    }
    let fixed = path.with_extension(want);
    eprintln!(
        "note: writing {} (trace outputs use .jsonl, JSON documents .json)",
        fixed.display()
    );
    fixed
}

/// Writes `contents` to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Returns a [`CliError`] naming the path on any I/O failure.
pub fn write(path: &Path, contents: &str) -> Result<(), CliError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| CliError::from(format!("creating {}: {e}", parent.display())))?;
        }
    }
    std::fs::write(path, contents)
        .map_err(|e| CliError::from(format!("writing {}: {e}", path.display())))
}

/// [`resolve`] + [`write`] in one step; returns the path actually written.
pub fn write_as(raw: &str, kind: OutputKind, contents: &str) -> Result<PathBuf, CliError> {
    let path = resolve(raw, kind);
    write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_extensions_pass_through() {
        assert_eq!(
            resolve("a/b/trace.jsonl", OutputKind::TraceJsonl),
            PathBuf::from("a/b/trace.jsonl")
        );
        assert_eq!(
            resolve("rep.json", OutputKind::Json),
            PathBuf::from("rep.json")
        );
        assert_eq!(
            resolve("cell.trace.jsonl", OutputKind::TraceJsonl),
            PathBuf::from("cell.trace.jsonl")
        );
    }

    #[test]
    fn wrong_or_missing_extensions_are_corrected() {
        assert_eq!(
            resolve("trace.json", OutputKind::TraceJsonl),
            PathBuf::from("trace.jsonl")
        );
        assert_eq!(
            resolve("report.jsonl", OutputKind::Json),
            PathBuf::from("report.json")
        );
        assert_eq!(
            resolve("report", OutputKind::Json),
            PathBuf::from("report.json")
        );
        assert_eq!(
            resolve("out.txt", OutputKind::Json),
            PathBuf::from("out.json")
        );
    }

    #[test]
    fn write_creates_parent_directories() {
        let dir = std::env::temp_dir().join("rrs_cli_output_helper");
        let _ = std::fs::remove_dir_all(&dir);
        let raw = dir.join("deep/nest/report.txt");
        let written = write_as(raw.to_str().unwrap(), OutputKind::Json, "{}\n").unwrap();
        assert!(written.ends_with("deep/nest/report.json"));
        assert_eq!(std::fs::read_to_string(&written).unwrap(), "{}\n");
    }
}
