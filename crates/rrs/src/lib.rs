#![warn(missing_docs)]

//! # rrs — Randomized Row-Swap (ASPLOS 2022) reproduction
//!
//! Umbrella crate for the full system described in *Randomized Row-Swap:
//! Mitigating Row Hammer by Breaking Spatial Correlation between Aggressor
//! and Victim Rows* (Saileshwar, Wang, Qureshi, Nair — ASPLOS 2022):
//!
//! * [`core`] — the RRS mechanism: Misra-Gries tracker, Row Indirection
//!   Table, Collision Avoidance Tables, PRINCE PRNG, swap engine;
//! * [`dram`] — the DRAM device model and Row Hammer fault model;
//! * [`mem_ctrl`] — the memory controller and the [`Mitigation`] interface;
//! * [`sim`] — the trace-driven multi-core simulator;
//! * [`workloads`] — the 78-workload calibrated population and attack
//!   patterns;
//! * [`mitigations`] — RRS and every baseline (BlockHammer, victim-focused
//!   refresh, PARA, probabilistic RRS);
//! * [`analysis`] — the security/storage/power analytic models;
//! * [`telemetry`] — the observability spine (counters, structured events,
//!   bounded trace recording) threaded through every layer above;
//! * [`forensics`] — the spine's consumer: per-row exposure
//!   reconstruction, exposure verdicts, and Perfetto trace export;
//! * [`experiments`] — the shared harness used by `examples/`, `tests/`,
//!   and the `bench` crate to regenerate the paper's tables and figures;
//! * [`campaign`] — the declarative parallel grid runner those harnesses
//!   execute through (dedup, caching, deterministic parallelism).
//!
//! ## Quick start
//!
//! ```
//! use rrs::experiments::{ExperimentConfig, MitigationKind};
//! use rrs::workloads::AttackKind;
//!
//! // A heavily scaled-down experiment (see DESIGN.md on scaling).
//! let cfg = ExperimentConfig::smoke_test();
//! let outcome = cfg.run_attack(AttackKind::DoubleSided, MitigationKind::None, 1);
//! assert!(!outcome.bit_flips.is_empty(), "undefended memory must flip");
//!
//! let defended = cfg.run_attack(AttackKind::DoubleSided, MitigationKind::Rrs, 1);
//! assert!(defended.bit_flips.is_empty(), "RRS must stop the attack");
//! ```

pub use rrs_analysis as analysis;
pub use rrs_core as core;
pub use rrs_dram as dram;
pub use rrs_forensics as forensics;
pub use rrs_mem_ctrl as mem_ctrl;
pub use rrs_mitigations as mitigations;
pub use rrs_sim as sim;
pub use rrs_telemetry as telemetry;
pub use rrs_workloads as workloads;

pub use rrs_mem_ctrl::mitigation::Mitigation;

pub mod campaign;
pub mod experiments;
