//! Declarative experiment campaigns: the one grid runner behind every
//! figure, table, and sweep.
//!
//! Every result the repo reports is some grid of *cells* — a workload or
//! attack, a mitigation, and an [`ExperimentConfig`] — and before this
//! module each figure binary hand-rolled its own serial loop over that
//! grid. A [`Campaign`] instead *describes* the grid, and [`Campaign::run`]
//! executes it:
//!
//! * **in parallel** across a thread pool (explicit [`RunOptions::threads`],
//!   else the `RAYON_NUM_THREADS` convention, else the machine's available
//!   parallelism);
//! * **deterministically** — each cell's trace seed is derived from the
//!   cell's *content* (not its position or schedule), so results are
//!   byte-identical regardless of thread count, and a baseline cell and its
//!   mitigated sibling replay the *same* traces;
//! * **without redundancy** — pushing the same cell twice (e.g. the shared
//!   `none` baseline behind Figures 6, 10, and 11) dedupes to one run;
//! * **resumably** — with [`RunOptions::out_dir`] set, each finished cell
//!   is written to `<out_dir>/<cell-id>.json` and a rerun loads it instead
//!   of recomputing ([`RunOptions::force`] overrides).
//!
//! # Example
//!
//! ```
//! use rrs::campaign::{Campaign, CellAction, RunOptions};
//! use rrs::experiments::{ExperimentConfig, MitigationKind};
//! use rrs::workloads::catalog::table3_workloads;
//!
//! let cfg = ExperimentConfig::smoke_test();
//! let mut campaign = Campaign::new();
//! let w = table3_workloads()[0];
//! let (base, mitigated) = campaign.normalized_pair(cfg, w, MitigationKind::Rrs);
//! let run = campaign.run(&RunOptions::quiet());
//! assert!(run.normalized(mitigated, base) > 0.0);
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rrs_core::rng::mix_seed;
use rrs_json::{FromJson, Json, ToJson};
use rrs_sim::SimResult;
use rrs_telemetry::Telemetry;
use rrs_workloads::attacks::AttackKind;
use rrs_workloads::catalog::Workload;

use crate::experiments::{ExperimentConfig, MitigationKind};

/// What a cell simulates: a benign workload or an attack campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellAction {
    /// A benign run of one catalog workload across all cores.
    Workload(Workload),
    /// An attack on core 0 (idle filler elsewhere) spanning roughly
    /// `epochs` scaled refresh windows.
    Attack {
        /// The access pattern the attacker core generates.
        kind: AttackKind,
        /// Refresh windows the attack spans.
        epochs: u64,
    },
}

impl CellAction {
    /// Mitigation-independent slug naming the simulated scenario.
    pub fn id(&self) -> String {
        match self {
            CellAction::Workload(w) => w.name().to_string(),
            CellAction::Attack { kind, epochs } => format!("atk-{}-e{}", kind.name(), epochs),
        }
    }
}

/// One point of an experiment grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The (possibly scaled) experiment configuration.
    pub config: ExperimentConfig,
    /// The scenario to simulate.
    pub action: CellAction,
    /// The defense under test.
    pub mitigation: MitigationKind,
}

impl Cell {
    /// Filename-safe identity: two cells with equal ids simulate the same
    /// thing, so the engine runs them once and result files are keyed by it.
    pub fn id(&self) -> String {
        let c = &self.config;
        let mut id = format!(
            "{}__{}__s{}-i{}-c{}-t{}",
            self.action.id(),
            self.mitigation.name(),
            c.scale,
            c.instructions_per_core,
            c.cores,
            c.full_scale_t_rh,
        );
        if c.rowclone {
            id.push_str("-rc");
        }
        if !c.scale_swap_cost {
            id.push_str("-fullswap");
        }
        id.push_str(&format!("-x{:08x}", c.seed));
        id
    }

    /// The trace seed this cell runs with: mixed from the configured base
    /// seed and the *action* id only — never the mitigation — so a baseline
    /// cell and its mitigated sibling replay identical traces, and results
    /// do not depend on where the cell sits in the grid or which thread
    /// picks it up.
    pub fn trace_seed(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in self.action.id().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        mix_seed(self.config.seed, h)
    }

    /// Runs the cell's simulation (synchronously, on the calling thread).
    pub fn execute(&self) -> SimResult {
        self.execute_probed(&Telemetry::new())
    }

    /// Runs the cell's simulation with every layer publishing on a
    /// caller-held telemetry spine. The [`SimResult`] is byte-identical to
    /// [`Cell::execute`]'s — observation must not perturb the experiment.
    pub fn execute_probed(&self, telemetry: &Telemetry) -> SimResult {
        let mut cfg = self.config;
        cfg.seed = self.trace_seed();
        match self.action {
            CellAction::Workload(w) => cfg.run_workload_probed(&w, self.mitigation, telemetry),
            CellAction::Attack { kind, epochs } => {
                let outcome = cfg.run_attack_probed(kind, self.mitigation, epochs, telemetry);
                let mut result = outcome.result;
                // `run_attack` drains the flips into the outcome; restore
                // them so the serialized cell is self-contained.
                result.bit_flips = outcome.bit_flips;
                result
            }
        }
    }
}

/// How to execute a campaign: parallelism, caching, and verbosity.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads. `None` falls back to the `RAYON_NUM_THREADS`
    /// environment variable, then to the machine's available parallelism.
    pub threads: Option<usize>,
    /// Directory for per-cell result files (`<id>.json`). Enables
    /// resume-on-rerun; `None` keeps everything in memory.
    pub out_dir: Option<PathBuf>,
    /// Re-run cells even when a cached result file exists.
    pub force: bool,
    /// Suppress the per-cell progress lines on stderr.
    pub quiet: bool,
    /// Capture per-cell telemetry: each cell runs on a tracing spine, its
    /// counters and event-trace summary land in [`CellOutcome::telemetry`],
    /// and with [`RunOptions::out_dir`] set the JSON-lines trace is written
    /// to `<id>.trace.jsonl`. Tracing implies a fresh simulation — cached
    /// result files are ignored (they carry no telemetry).
    pub trace: bool,
}

impl RunOptions {
    /// In-memory, silent execution — what tests want.
    pub fn quiet() -> Self {
        RunOptions {
            quiet: true,
            ..Default::default()
        }
    }

    /// Caches results under `dir` (resume-on-rerun).
    pub fn with_out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = Some(dir.into());
        self
    }

    /// Uses exactly `n` worker threads.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Enables per-cell telemetry capture (see [`RunOptions::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// The worker count this configuration resolves to.
    pub fn resolve_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A declarative grid of experiment cells, deduplicated by cell id.
#[derive(Debug, Default)]
pub struct Campaign {
    cells: Vec<Cell>,
    by_id: BTreeMap<String, usize>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Number of (distinct) cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the campaign has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells in push order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Adds a cell, returning its index. A cell whose id already exists is
    /// *not* added again — the existing index is returned, so shared
    /// baselines across figures cost one run.
    pub fn push(&mut self, cell: Cell) -> usize {
        let id = cell.id();
        if let Some(&i) = self.by_id.get(&id) {
            return i;
        }
        let i = self.cells.len();
        self.by_id.insert(id, i);
        self.cells.push(cell);
        i
    }

    /// Adds a benign workload cell.
    pub fn workload(
        &mut self,
        config: ExperimentConfig,
        workload: Workload,
        mitigation: MitigationKind,
    ) -> usize {
        self.push(Cell {
            config,
            action: CellAction::Workload(workload),
            mitigation,
        })
    }

    /// Adds an attack cell.
    pub fn attack(
        &mut self,
        config: ExperimentConfig,
        kind: AttackKind,
        mitigation: MitigationKind,
        epochs: u64,
    ) -> usize {
        self.push(Cell {
            config,
            action: CellAction::Attack { kind, epochs },
            mitigation,
        })
    }

    /// Adds the (baseline, mitigated) pair behind a normalized-performance
    /// data point: the same workload under [`MitigationKind::None`] and
    /// under `mitigation`. Returns `(baseline, mitigated)` indices.
    pub fn normalized_pair(
        &mut self,
        config: ExperimentConfig,
        workload: Workload,
        mitigation: MitigationKind,
    ) -> (usize, usize) {
        let base = self.workload(config, workload, MitigationKind::None);
        let mitigated = self.workload(config, workload, mitigation);
        (base, mitigated)
    }

    /// Executes every cell and returns the results, indexed like
    /// [`Campaign::cells`]. Cells run across a worker pool (see
    /// [`RunOptions::resolve_threads`]); completion order is
    /// schedule-dependent but the returned results are not.
    pub fn run(&self, opts: &RunOptions) -> CampaignRun {
        if let Some(dir) = &opts.out_dir {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                panic!("campaign: cannot create out dir {}: {e}", dir.display())
            });
        }
        let n = self.cells.len();
        let slots: Vec<Mutex<Option<CellOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let workers = opts.resolve_threads().min(n.max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = run_cell(&self.cells[i], opts);
                    let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if !opts.quiet {
                        eprintln!(
                            "[{k}/{n}] {} {:.2}s{}",
                            outcome.id,
                            outcome.seconds,
                            if outcome.from_cache { " (cached)" } else { "" }
                        );
                    }
                    *slots[i].lock().unwrap() = Some(outcome);
                });
            }
        });

        CampaignRun {
            outcomes: slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("cell not executed"))
                .collect(),
        }
    }
}

/// One executed (or cache-loaded) cell.
#[derive(Debug)]
pub struct CellOutcome {
    /// The cell's id (also its result filename stem).
    pub id: String,
    /// The simulation result.
    pub result: SimResult,
    /// Whether the result was loaded from `out_dir` instead of simulated.
    pub from_cache: bool,
    /// Wall-clock seconds spent on this cell (load or simulate).
    pub seconds: f64,
    /// Telemetry captured for this cell (only with [`RunOptions::trace`]).
    pub telemetry: Option<CellTelemetry>,
}

/// Telemetry captured for one traced cell: the registry counters plus the
/// event-trace summary and JSON-lines export.
#[derive(Debug, Clone)]
pub struct CellTelemetry {
    /// Every registered counter's final value, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Events the trace recorder observed.
    pub events_recorded: u64,
    /// Events evicted once the bounded ring filled (oldest first).
    pub events_dropped: u64,
    /// Retained event counts per kind.
    pub kind_counts: Vec<(&'static str, u64)>,
    /// The retained event window as JSON lines.
    pub trace_jsonl: String,
}

impl CellTelemetry {
    /// Captures the spine's state after a cell finished.
    fn capture(telemetry: &Telemetry) -> Self {
        CellTelemetry {
            counters: telemetry.counters(),
            events_recorded: telemetry.events_recorded(),
            events_dropped: telemetry.events_dropped(),
            kind_counts: telemetry.event_kind_counts(),
            trace_jsonl: telemetry.trace_jsonl().unwrap_or_default(),
        }
    }
}

/// Results of [`Campaign::run`], indexed like the campaign's cells.
#[derive(Debug)]
pub struct CampaignRun {
    outcomes: Vec<CellOutcome>,
}

impl CampaignRun {
    /// All outcomes, in cell order.
    pub fn outcomes(&self) -> &[CellOutcome] {
        &self.outcomes
    }

    /// The outcome of cell `i` (the index [`Campaign::push`] returned).
    pub fn outcome(&self, i: usize) -> &CellOutcome {
        &self.outcomes[i]
    }

    /// The result of cell `i`.
    pub fn get(&self, i: usize) -> &SimResult {
        &self.outcomes[i].result
    }

    /// Normalized performance of cell `mitigated` against cell `baseline`
    /// (Figure 6's y-axis).
    pub fn normalized(&self, mitigated: usize, baseline: usize) -> f64 {
        self.get(mitigated).normalized_to(self.get(baseline))
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Campaign-wide telemetry counters: each counter name summed across
    /// every traced cell, in first-seen order. Empty unless the run used
    /// [`RunOptions::trace`].
    pub fn merged_counters(&self) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for outcome in &self.outcomes {
            let Some(tel) = &outcome.telemetry else {
                continue;
            };
            for (name, value) in &tel.counters {
                if !totals.contains_key(name) {
                    order.push(name.clone());
                }
                *totals.entry(name.clone()).or_insert(0) += value;
            }
        }
        order
            .into_iter()
            .map(|name| {
                let v = totals.get(&name).copied().unwrap_or(0);
                (name, v)
            })
            .collect()
    }

    /// Total events recorded (and dropped) across every traced cell.
    pub fn merged_event_totals(&self) -> (u64, u64) {
        self.outcomes
            .iter()
            .filter_map(|o| o.telemetry.as_ref())
            .fold((0, 0), |(r, d), t| {
                (r + t.events_recorded, d + t.events_dropped)
            })
    }
}

/// Executes (or cache-loads) one cell according to `opts`.
fn run_cell(cell: &Cell, opts: &RunOptions) -> CellOutcome {
    let id = cell.id();
    let start = Instant::now();
    let path = opts.out_dir.as_ref().map(|d| d.join(format!("{id}.json")));

    // Cached results carry no telemetry, so a tracing run always simulates.
    if !opts.force && !opts.trace {
        if let Some(path) = &path {
            if let Ok(text) = std::fs::read_to_string(path) {
                // A corrupt or stale-schema file falls through to a fresh
                // simulation (which then overwrites it).
                if let Ok(json) = Json::parse(&text) {
                    if let Ok(result) = SimResult::from_json(&json) {
                        return CellOutcome {
                            id,
                            result,
                            from_cache: true,
                            seconds: start.elapsed().as_secs_f64(),
                            telemetry: None,
                        };
                    }
                }
            }
        }
    }

    let (result, telemetry) = if opts.trace {
        let spine = Telemetry::with_trace(rrs_telemetry::DEFAULT_TRACE_CAPACITY);
        let result = cell.execute_probed(&spine);
        let captured = CellTelemetry::capture(&spine);
        if let Some(dir) = &opts.out_dir {
            let trace_path = dir.join(format!("{id}.trace.jsonl"));
            std::fs::write(&trace_path, &captured.trace_jsonl)
                .unwrap_or_else(|e| panic!("campaign: cannot write {}: {e}", trace_path.display()));
            // Exposure forensics ride along with every traced cell: judge
            // the trace against the cell's own T_RRS (whatever defense ran,
            // so an undefended cell shows a failing verdict).
            let t_rrs = (cell.config.t_rh() / rrs_core::DEFAULT_K).max(1);
            let report = rrs_forensics::ExposureReport::reconstruct(
                &spine.events(),
                rrs_forensics::ExposureConfig {
                    swap_threshold: t_rrs,
                    slack: t_rrs,
                },
                spine.events_dropped(),
            );
            let forensics_path = dir.join(format!("{id}.forensics.json"));
            std::fs::write(&forensics_path, report.to_json().to_string_pretty()).unwrap_or_else(
                |e| panic!("campaign: cannot write {}: {e}", forensics_path.display()),
            );
        }
        (result, Some(captured))
    } else {
        (cell.execute(), None)
    };
    if let Some(path) = &path {
        std::fs::write(path, result.to_json().to_string_pretty())
            .unwrap_or_else(|e| panic!("campaign: cannot write {}: {e}", path.display()));
    }
    CellOutcome {
        id,
        result,
        from_cache: false,
        seconds: start.elapsed().as_secs_f64(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_workloads::catalog::table3_workloads;

    fn smoke() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::smoke_test();
        cfg.instructions_per_core = 20_000;
        cfg
    }

    #[test]
    fn ids_are_filename_safe_and_unique() {
        let cfg = ExperimentConfig::default();
        let mut campaign = Campaign::new();
        for w in table3_workloads().iter().take(4) {
            campaign.workload(cfg, *w, MitigationKind::Rrs);
            campaign.workload(cfg, *w, MitigationKind::None);
        }
        campaign.attack(cfg, AttackKind::DoubleSided, MitigationKind::Rrs, 2);
        let ids: Vec<String> = campaign.cells().iter().map(|c| c.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate ids: {ids:?}");
        for id in &ids {
            assert!(
                id.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)),
                "unsafe filename {id:?}"
            );
        }
    }

    #[test]
    fn config_changes_change_the_id() {
        let w = table3_workloads()[0];
        let mk = |config: ExperimentConfig| Cell {
            config,
            action: CellAction::Workload(w),
            mitigation: MitigationKind::Rrs,
        };
        let base = mk(ExperimentConfig::default()).id();
        assert_ne!(mk(ExperimentConfig::default().with_scale(16)).id(), base);
        assert_ne!(mk(ExperimentConfig::default().with_t_rh(2_400)).id(), base);
        assert_ne!(mk(ExperimentConfig::default().with_rowclone()).id(), base);
        assert_ne!(
            mk(ExperimentConfig::default().with_full_swap_cost()).id(),
            base
        );
        assert_ne!(
            mk(ExperimentConfig::default().with_instructions(1)).id(),
            base
        );
    }

    #[test]
    fn trace_seed_ignores_mitigation() {
        let cfg = ExperimentConfig::default();
        let w = table3_workloads()[0];
        let mk = |m| Cell {
            config: cfg,
            action: CellAction::Workload(w),
            mitigation: m,
        };
        assert_eq!(
            mk(MitigationKind::None).trace_seed(),
            mk(MitigationKind::Rrs).trace_seed()
        );
        // ... but differs across workloads, so cells draw distinct traces.
        let other = Cell {
            config: cfg,
            action: CellAction::Workload(table3_workloads()[1]),
            mitigation: MitigationKind::None,
        };
        assert_ne!(mk(MitigationKind::None).trace_seed(), other.trace_seed());
    }

    #[test]
    fn push_dedupes_shared_baselines() {
        let cfg = ExperimentConfig::default();
        let w = table3_workloads()[0];
        let mut campaign = Campaign::new();
        let (b1, m1) = campaign.normalized_pair(cfg, w, MitigationKind::Rrs);
        let (b2, m2) = campaign.normalized_pair(cfg, w, MitigationKind::BlockHammer512);
        assert_eq!(b1, b2, "shared baseline must dedupe");
        assert_ne!(m1, m2);
        assert_eq!(campaign.len(), 3);
    }

    #[test]
    fn run_executes_all_cells_in_order() {
        let cfg = smoke();
        let mut campaign = Campaign::new();
        let a = campaign.workload(cfg, table3_workloads()[0], MitigationKind::None);
        let b = campaign.workload(cfg, table3_workloads()[1], MitigationKind::None);
        let run = campaign.run(&RunOptions::quiet().with_threads(2));
        assert_eq!(run.len(), 2);
        assert_eq!(run.get(a).workload, table3_workloads()[0].name());
        assert_eq!(run.get(b).workload, table3_workloads()[1].name());
        assert!(run.get(a).aggregate_ipc() > 0.0);
        assert!(!run.outcome(a).from_cache);
    }

    #[test]
    fn threads_resolution_prefers_explicit() {
        let opts = RunOptions::quiet().with_threads(3);
        assert_eq!(opts.resolve_threads(), 3);
        assert!(RunOptions::default().resolve_threads() >= 1);
    }
}
