//! Shared experiment harness: scaled configurations, workload runs, and
//! attack campaigns.
//!
//! # Scaling
//!
//! The paper's runs simulate 64 ms refresh windows and billions of
//! instructions. This harness supports a *time-scale factor* `s` that
//! shrinks the epoch to `64 ms / s` and every threshold with it
//! (`T_RH/s`, `T_RRS/s`, ACT-800+ → `800/s`). Because every structure size
//! and rate in the RRS design is a ratio of `ACT_max` to a threshold,
//! scaling preserves tracker occupancy, swaps-per-epoch, duty cycle, and
//! slowdown — the quantities the paper's figures report — while making runs
//! tractable. `s = 1` reproduces the full-scale parameters. `s` must divide
//! 800 so that `T_RH/s` stays a multiple of `k = 6`.

use rrs_dram::hammer::{BitFlip, HammerConfig};
use rrs_dram::timing::TimingParams;
use rrs_mem_ctrl::controller::ControllerConfig;
use rrs_mem_ctrl::mitigation::Mitigation;
use rrs_sim::config::SystemConfig;
use rrs_sim::runner::{run_probed, SimResult};
use rrs_sim::trace::TraceSource;
use rrs_telemetry::Telemetry;
use rrs_workloads::attacks::{Attack, AttackKind, IdleFiller};
use rrs_workloads::catalog::Workload;
use rrs_workloads::generator::sources_for_workload;

pub use rrs_mitigations::factory::MitigationKind;

/// Full-scale Row Hammer threshold defended by the paper.
pub const FULL_SCALE_T_RH: u64 = 4_800;

/// Configuration of a (possibly scaled) experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Time-scale factor `s` (must divide 800; 1 = paper scale).
    pub scale: u64,
    /// Instructions each core retires in benign runs.
    pub instructions_per_core: u64,
    /// Cores (the paper uses 8).
    pub cores: usize,
    /// Base seed for generators and mitigations.
    pub seed: u64,
    /// Row Hammer threshold at full scale (before division by `scale`).
    pub full_scale_t_rh: u64,
    /// Use RowClone-accelerated in-DRAM row copies for swaps (§8.1's
    /// latency-reduction option) instead of the buffered swap engine.
    pub rowclone: bool,
    /// Scale the swap latency with the epoch (default). Keeps the
    /// swap-time *fraction* of a window — Figures 5/6's quantity —
    /// invariant under scaling. Disable (`with_full_swap_cost`) for
    /// experiments about the swap latency itself (DoS, RowClone), where
    /// the absolute 1.46 µs is the point.
    pub scale_swap_cost: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 32,
            instructions_per_core: 3_000_000,
            cores: 8,
            seed: 0xA5F0_5EED,
            full_scale_t_rh: FULL_SCALE_T_RH,
            rowclone: false,
            scale_swap_cost: true,
        }
    }
}

impl ExperimentConfig {
    /// A tiny configuration for unit/integration tests and doctests.
    pub fn smoke_test() -> Self {
        ExperimentConfig {
            scale: 100,
            instructions_per_core: 200_000,
            cores: 2,
            seed: 7,
            full_scale_t_rh: FULL_SCALE_T_RH,
            rowclone: false,
            scale_swap_cost: true,
        }
    }

    /// Keeps the full (unscaled) swap latency — for experiments about the
    /// swap cost itself.
    pub fn with_full_swap_cost(mut self) -> Self {
        self.scale_swap_cost = false;
        self
    }

    /// Enables RowClone-accelerated swaps (§8.1 extension).
    pub fn with_rowclone(mut self) -> Self {
        self.rowclone = true;
        self
    }

    /// Overrides the time-scale factor.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` divides 800.
    pub fn with_scale(mut self, scale: u64) -> Self {
        assert!(scale > 0 && 800 % scale == 0, "scale must divide 800");
        self.scale = scale;
        self
    }

    /// Overrides the full-scale Row Hammer threshold (Figure 10 sweeps it).
    pub fn with_t_rh(mut self, t_rh: u64) -> Self {
        self.full_scale_t_rh = t_rh;
        self
    }

    /// Overrides the per-core instruction budget.
    pub fn with_instructions(mut self, n: u64) -> Self {
        self.instructions_per_core = n;
        self
    }

    /// The scaled Row Hammer threshold.
    pub fn t_rh(&self) -> u64 {
        (self.full_scale_t_rh / self.scale).max(rrs_core::DEFAULT_K)
    }

    /// The scaled device timing.
    pub fn timing(&self) -> TimingParams {
        TimingParams::ddr4_3200().with_epoch_scale(self.scale)
    }

    /// The scaled system configuration (Table 2 shape).
    pub fn system_config(&self) -> SystemConfig {
        let timing = self.timing();
        let geometry = rrs_dram::geometry::DramGeometry::asplos22_baseline();
        // The swap latency is scaled with the epoch so that the *fraction*
        // of a window spent swapping — the quantity behind Figures 5/6 —
        // is preserved (a fixed 1.46 µs against a shrunken window would
        // overstate the overhead by the scale factor).
        let full_swap_cycles = if self.rowclone {
            // Four in-DRAM copies at one row cycle each (§8.1 / SwapMode).
            4 * timing.t_rc
        } else {
            timing.row_swap_cycles(geometry.row_size_bytes)
        };
        let swap_divisor = if self.scale_swap_cost { self.scale } else { 1 };
        let controller = ControllerConfig {
            swap_cycles: (full_swap_cycles / swap_divisor).max(1),
            geometry,
            timing,
            hammer: HammerConfig::for_threshold(self.t_rh()),
            act_stat_threshold: (800 / self.scale).max(1),
            page_policy: Default::default(),
        };
        let mut sys =
            SystemConfig::asplos22_baseline(self.instructions_per_core).with_controller(controller);
        sys.cores = self.cores;
        sys
    }

    /// Builds the scaled mitigation of the given kind.
    pub fn build_mitigation(&self, kind: MitigationKind) -> Box<dyn Mitigation> {
        let timing = self.timing();
        rrs_mitigations::factory::build(
            kind,
            self.t_rh(),
            rrs_dram::geometry::DramGeometry::asplos22_baseline(),
            &timing,
        )
    }

    /// Runs a benign workload under a mitigation.
    pub fn run_workload(&self, workload: &Workload, kind: MitigationKind) -> SimResult {
        self.run_workload_probed(workload, kind, &Telemetry::new())
    }

    /// [`ExperimentConfig::run_workload`] with every layer publishing on
    /// a caller-held telemetry spine; the result is byte-identical.
    pub fn run_workload_probed(
        &self,
        workload: &Workload,
        kind: MitigationKind,
        telemetry: &Telemetry,
    ) -> SimResult {
        let sys = self.system_config();
        run_probed(
            &sys,
            self.build_mitigation(kind),
            sources_for_workload(workload, &sys, self.seed),
            workload.name(),
            telemetry,
        )
    }

    /// Runs an attack campaign of roughly `epochs` scaled refresh windows:
    /// core 0 is the attacker, remaining cores run compute-bound filler.
    pub fn run_attack(
        &self,
        attack: AttackKind,
        kind: MitigationKind,
        epochs: u64,
    ) -> AttackOutcome {
        self.run_attack_probed(attack, kind, epochs, &Telemetry::new())
    }

    /// [`ExperimentConfig::run_attack`] with every layer publishing on a
    /// caller-held telemetry spine; the outcome is byte-identical.
    pub fn run_attack_probed(
        &self,
        attack: AttackKind,
        kind: MitigationKind,
        epochs: u64,
        telemetry: &Telemetry,
    ) -> AttackOutcome {
        let mut sys = self.system_config();
        let timing = sys.controller.timing;
        // The attacker is bank-bound: ~1 activation per tRC. Budget enough
        // accesses to span the requested epochs.
        let accesses = epochs * timing.epoch / timing.t_rc + 1_000;
        sys.instructions_per_core = accesses;
        let mapper = rrs_mem_ctrl::mapping::AddressMapper::new(sys.controller.geometry);
        let name = attack.name();
        // Classic patterns run as a realistic campaign: ~4×T_RH activations
        // per aggressor, then move to the next victim group. Half-Double
        // and the randomized patterns keep their defining concentration.
        let rotation = 8 * self.t_rh();
        let attacker = Attack::new(attack, mapper, self.seed).with_rotation(rotation);
        let mut sources: Vec<Box<dyn TraceSource>> = vec![Box::new(attacker)];
        for c in 1..sys.cores {
            sources.push(Box::new(IdleFiller::new(c)));
        }
        let mut result = run_probed(&sys, self.build_mitigation(kind), sources, &name, telemetry);
        // The flips are *moved* into the outcome (not cloned): read them
        // from `outcome.bit_flips`, not `outcome.result.bit_flips`.
        AttackOutcome {
            bit_flips: std::mem::take(&mut result.bit_flips),
            result,
        }
    }

    /// The swap-chasing attack tuned to this configuration's `T_RRS`
    /// (the §5.3 optimal strategy).
    pub fn swap_chasing_attack(&self) -> AttackKind {
        AttackKind::SwapChasing {
            t: (self.t_rh() / rrs_core::DEFAULT_K).max(1),
        }
    }
}

/// Result of an attack campaign.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Bit flips the fault model recorded.
    pub bit_flips: Vec<BitFlip>,
    /// The underlying simulation result (swaps, delays, IPC, ...). Its
    /// `bit_flips` were drained into the field above.
    pub result: SimResult,
}

impl AttackOutcome {
    /// Whether the attack succeeded (any bit flip).
    pub fn attack_succeeded(&self) -> bool {
        !self.bit_flips.is_empty()
    }
}

/// Arithmetic mean helper for figure harnesses.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean helper for figure harnesses.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_thresholds_stay_consistent() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.t_rh(), 150); // 4800 / 32
        assert_eq!(cfg.t_rh() % rrs_core::DEFAULT_K, 0);
        let sys = cfg.system_config();
        assert_eq!(sys.controller.act_stat_threshold, 25); // 800 / 32
        assert_eq!(sys.controller.timing.epoch, 204_800_000 / 32);
    }

    #[test]
    fn full_scale_matches_paper_constants() {
        let cfg = ExperimentConfig::default().with_scale(1);
        assert_eq!(cfg.t_rh(), 4_800);
        assert_eq!(cfg.system_config().controller.act_stat_threshold, 800);
    }

    #[test]
    #[should_panic(expected = "scale must divide 800")]
    fn invalid_scale_rejected() {
        let _ = ExperimentConfig::default().with_scale(3);
    }

    #[test]
    fn swap_chasing_uses_t_rrs() {
        let cfg = ExperimentConfig::default(); // T_RH 150 -> T_RRS 25
        assert_eq!(cfg.swap_chasing_attack(), AttackKind::SwapChasing { t: 25 });
    }

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }
}
