//! Power-overhead accounting — the paper's Table 6 (§7.2).
//!
//! Two components:
//!
//! * **DRAM power overhead** of the extra row-swap traffic — measured from
//!   the simulator's command counts via [`rrs_dram::power`]; the paper
//!   reports 0.5% on average.
//! * **SRAM power** of the RRS structures — the paper reports 903 mW per
//!   rank from Cacti 6.0 at 32 nm. Cacti is proprietary-input tooling we
//!   substitute with a first-order model: per-KiB leakage plus per-access
//!   dynamic energy, with 32 nm-class constants calibrated so the paper's
//!   design point lands at the published figure (see DESIGN.md).

/// First-order SRAM power model (32 nm-class constants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramPowerModel {
    /// Leakage per KiB of SRAM, milliwatts.
    pub leakage_mw_per_kib: f64,
    /// Dynamic energy per lookup, picojoules.
    pub dynamic_pj_per_access: f64,
}

impl SramPowerModel {
    /// 32 nm-class constants calibrated to the paper's 903 mW/rank at
    /// 686 KiB/rank with full-rate RIT lookups.
    pub fn cacti_32nm() -> Self {
        SramPowerModel {
            leakage_mw_per_kib: 1.2,
            dynamic_pj_per_access: 30.0,
        }
    }

    /// Power in milliwatts for `sram_kib` of structures looked up
    /// `accesses_per_second` times.
    pub fn power_mw(&self, sram_kib: f64, accesses_per_second: f64) -> f64 {
        self.leakage_mw_per_kib * sram_kib
            + self.dynamic_pj_per_access * 1e-12 * accesses_per_second * 1e3
    }

    /// The Table 6 SRAM row: the RRS structures of one rank (16 banks ×
    /// ≈42.9 KiB) with the RIT looked up on every access of a fully-loaded
    /// channel (one access per 4 bus cycles at 1.6 GHz plus tracker
    /// updates on activations).
    pub fn table6_sram_mw(&self) -> f64 {
        let sram_kib = crate::storage::table5().total_kib_per_rank(16);
        // Peak lookup rate: 1.6 GHz bus / 4 cycles per line ≈ 400 M/s, plus
        // tracker/RIT maintenance on activations (~22 M ACT/s per rank).
        let lookups_per_sec = 400e6 + 22e6;
        self.power_mw(sram_kib, lookups_per_sec)
    }
}

impl Default for SramPowerModel {
    fn default() -> Self {
        Self::cacti_32nm()
    }
}

/// The Table 6 summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table6 {
    /// Average DRAM power overhead of row swaps (fraction, paper: 0.005).
    pub dram_overhead_fraction: f64,
    /// SRAM power of the RRS structures per rank, mW (paper: 903).
    pub sram_power_mw: f64,
}

impl Table6 {
    /// Builds the table from a measured DRAM overhead fraction.
    pub fn from_measured(dram_overhead_fraction: f64) -> Self {
        Table6 {
            dram_overhead_fraction,
            sram_power_mw: SramPowerModel::cacti_32nm().table6_sram_mw(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_power_lands_near_published_903mw() {
        let mw = SramPowerModel::cacti_32nm().table6_sram_mw();
        assert!((800.0..1000.0).contains(&mw), "SRAM power = {mw} mW");
    }

    #[test]
    fn power_is_monotone_in_both_terms() {
        let m = SramPowerModel::cacti_32nm();
        assert!(m.power_mw(100.0, 1e6) < m.power_mw(200.0, 1e6));
        assert!(m.power_mw(100.0, 1e6) < m.power_mw(100.0, 1e9));
    }

    #[test]
    fn zero_sram_zero_traffic_is_zero_power() {
        let m = SramPowerModel::cacti_32nm();
        assert_eq!(m.power_mw(0.0, 0.0), 0.0);
    }

    #[test]
    fn table6_carries_measured_dram_fraction() {
        let t = Table6::from_measured(0.005);
        assert_eq!(t.dram_overhead_fraction, 0.005);
        assert!(t.sram_power_mw > 0.0);
    }
}
