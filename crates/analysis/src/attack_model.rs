//! Statistical model of the optimal attack on RRS (§5.3) — the bucket-and-
//! balls Bernoulli analysis behind Table 4.
//!
//! The attacker repeatedly picks a random row in a bank, activates it
//! exactly `T` times (forcing a swap), and moves on (Figure 7). Each round
//! is a ball thrown into one of `N` buckets (rows of the bank); a physical
//! row needs `k = T_RH / T` balls in one 64 ms window for the attack to
//! succeed. With `B = A·D/T` balls per window:
//!
//! ```text
//! p_{k,T} = C(B, k) · p^k · (1 − p)^{B−k},  p = 1/N       (Eq. 1)
//! AT_iter = 1 / (N · p_{k,T})                             (Eq. 2, 3)
//! AT_time = 64 ms · AT_iter
//! ```
//!
//! The module also provides a Monte-Carlo simulation of the same process
//! (for validating the closed form at small `k`) and the duty-cycle model
//! (`D`) for single-bank and all-bank attacks.

use rrs_core::rng::DetRng;

use crate::math::ln_binomial_pmf;

/// Parameters of the §5.3 security analysis.
///
/// # Example
///
/// ```
/// use rrs_analysis::attack_model::AttackModel;
///
/// let m = AttackModel::asplos22();
/// let row = m.table4_row(800);
/// assert_eq!(row.k, 6);
/// assert!((3.0..4.5).contains(&row.years())); // paper: 3.8 years
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackModel {
    /// Rows per bank (`N`, the randomization space) — 128 K baseline.
    pub rows_per_bank: u64,
    /// Maximum activations per bank per window (`A`) — 1.36 M baseline.
    pub act_max: u64,
    /// Row Hammer threshold (`T_RH`) — 4.8 K baseline.
    pub t_rh: u64,
    /// Window length in milliseconds — 64 baseline.
    pub window_ms: f64,
    /// Row cycle time in nanoseconds (`tRC`) — 45 baseline.
    pub t_rc_ns: f64,
    /// Bank-blocking time per swap event in microseconds (swap + unswap,
    /// §5.3.1: "the bank is busy for 2.9 µs every T = 800 activations").
    pub swap_us: f64,
}

impl AttackModel {
    /// The paper's parameters.
    pub fn asplos22() -> Self {
        AttackModel {
            rows_per_bank: 128 * 1024,
            act_max: 1_360_000,
            t_rh: 4_800,
            window_ms: 64.0,
            t_rc_ns: 45.0,
            swap_us: 2.9,
        }
    }

    /// Duty cycle `D` for a single-bank attack at swap threshold `t`: the
    /// bank alternates `t` activations (`t · tRC`) with one 2.9 µs swap.
    /// Evaluates to ≈0.925 at `t = 800`.
    pub fn duty_cycle(&self, t: u64) -> f64 {
        let act_ns = t as f64 * self.t_rc_ns;
        act_ns / (act_ns + self.swap_us * 1_000.0)
    }

    /// The paper's all-bank duty cycle (§5.3.2): attacking all 16 banks
    /// makes swaps contend on the shared channel, dropping `D` to 0.55.
    pub const ALL_BANK_DUTY_CYCLE: f64 = 0.55;

    /// Balls per window: `B = A · D / t`.
    pub fn balls_per_window(&self, t: u64, duty_cycle: f64) -> u64 {
        (self.act_max as f64 * duty_cycle / t as f64).floor() as u64
    }

    /// Probability that a given physical row collects exactly `k` balls in
    /// one window (Eq. 1).
    pub fn p_k(&self, t: u64, k: u64, duty_cycle: f64) -> f64 {
        let b = self.balls_per_window(t, duty_cycle);
        ln_binomial_pmf(b, k, 1.0 / self.rows_per_bank as f64).exp()
    }

    /// Expected attack iterations (64 ms windows) until some row reaches
    /// `k = T_RH / t` swaps (Eq. 3).
    pub fn attack_iterations(&self, t: u64, duty_cycle: f64) -> f64 {
        let k = self.t_rh / t;
        let p = self.p_k(t, k, duty_cycle);
        1.0 / (self.rows_per_bank as f64 * p)
    }

    /// Expected attack time in seconds.
    pub fn attack_time_seconds(&self, t: u64, duty_cycle: f64) -> f64 {
        self.attack_iterations(t, duty_cycle) * self.window_ms / 1_000.0
    }

    /// One row of Table 4.
    pub fn table4_row(&self, t: u64) -> Table4Row {
        let d = self.duty_cycle(t);
        Table4Row {
            t,
            k: self.t_rh / t,
            duty_cycle: d,
            attack_iterations: self.attack_iterations(t, d),
            attack_time_seconds: self.attack_time_seconds(t, d),
        }
    }

    /// The three design points of Table 4 (`k` = 5, 6, 7).
    pub fn table4(&self) -> Vec<Table4Row> {
        [960, 800, 685]
            .iter()
            .map(|&t| self.table4_row(t))
            .collect()
    }

    /// The all-bank variant of the `k = 6` analysis (§5.3.2: 16× more
    /// targets but `D = 0.55`, net *worse* for the attacker: 3.8 y → 5.1 y).
    pub fn all_bank_attack_time_seconds(&self, t: u64, banks: u64) -> f64 {
        let iters = self.attack_iterations(t, Self::ALL_BANK_DUTY_CYCLE) / banks as f64;
        iters * self.window_ms / 1_000.0
    }

    /// Per-window success probability: the chance that *some* row of the
    /// bank collects `k = T_RH / t` balls within one refresh window.
    pub fn per_window_success_probability(&self, t: u64, duty_cycle: f64) -> f64 {
        let k = self.t_rh / t;
        // Expected successful rows per window; for the regimes of interest
        // this is ≪ 1 and equals the success probability to first order.
        (self.rows_per_bank as f64 * self.p_k(t, k, duty_cycle)).min(1.0)
    }

    /// Probability that a continuous attack succeeds within `seconds` of
    /// wall-clock: `1 − (1 − p)^n` over `n` refresh windows.
    pub fn success_probability_within(&self, t: u64, duty_cycle: f64, seconds: f64) -> f64 {
        let p = self.per_window_success_probability(t, duty_cycle);
        let windows = (seconds / (self.window_ms / 1_000.0)).max(0.0);
        1.0 - (1.0 - p).powf(windows)
    }

    /// The security-margin sweep behind Table 4's design choice: one row
    /// per admissible `k` (thresholds `T = T_RH / k`), extended beyond the
    /// published three points.
    pub fn k_sweep(&self, k_range: std::ops::RangeInclusive<u64>) -> Vec<Table4Row> {
        k_range
            .filter(|k| *k > 0 && self.t_rh.is_multiple_of(*k))
            .map(|k| self.table4_row(self.t_rh / k))
            .collect()
    }

    /// Monte-Carlo estimate of `P[some bucket ≥ k balls]`-derived expected
    /// rows with `k` balls, for validating the closed form at small `k`.
    /// Returns the mean number of rows with at least `k` balls per window.
    pub fn monte_carlo_rows_with_k(
        &self,
        t: u64,
        k: u64,
        duty_cycle: f64,
        trials: u32,
        seed: u64,
    ) -> f64 {
        let b = self.balls_per_window(t, duty_cycle);
        let n = self.rows_per_bank;
        let mut rng = DetRng::seed_from_u64(seed);
        let mut total = 0u64;
        let mut counts = vec![0u8; n as usize];
        for _ in 0..trials {
            counts.iter_mut().for_each(|c| *c = 0);
            for _ in 0..b {
                let i = rng.next_below(n) as usize;
                counts[i] = counts[i].saturating_add(1);
            }
            total += counts.iter().filter(|&&c| c as u64 >= k).count() as u64;
        }
        total as f64 / trials as f64
    }
}

impl Default for AttackModel {
    fn default() -> Self {
        Self::asplos22()
    }
}

/// One row of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Swap threshold `T_RRS`.
    pub t: u64,
    /// `k = T_RH / T`.
    pub k: u64,
    /// Duty cycle used.
    pub duty_cycle: f64,
    /// Expected 64 ms iterations to success.
    pub attack_iterations: f64,
    /// Expected wall-clock time to success, seconds.
    pub attack_time_seconds: f64,
}

impl Table4Row {
    /// Attack time in days.
    pub fn days(&self) -> f64 {
        self.attack_time_seconds / 86_400.0
    }

    /// Attack time in years.
    pub fn years(&self) -> f64 {
        self.days() / 365.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_matches_paper() {
        let m = AttackModel::asplos22();
        let d = m.duty_cycle(800);
        assert!((d - 0.925).abs() < 0.005, "D = {d}");
        // A·D ≈ 1.26 M (§5.3.1).
        let eff = m.act_max as f64 * d;
        assert!((1.25e6..1.27e6).contains(&eff), "A·D = {eff}");
    }

    #[test]
    fn table4_t800_is_about_1_9e9_iterations() {
        let m = AttackModel::asplos22();
        let row = m.table4_row(800);
        assert_eq!(row.k, 6);
        assert!(
            (1.5e9..2.5e9).contains(&row.attack_iterations),
            "AT_iter = {:e}",
            row.attack_iterations
        );
        // "with T = 800, the expected time for a successful attack is 3.8 years"
        assert!((3.0..4.5).contains(&row.years()), "years = {}", row.years());
    }

    #[test]
    fn table4_t960_is_days_scale() {
        let m = AttackModel::asplos22();
        let row = m.table4_row(960);
        assert_eq!(row.k, 5);
        assert!(
            (8.0e6..1.1e7).contains(&row.attack_iterations),
            "AT_iter = {:e}",
            row.attack_iterations
        );
        assert!((5.0..9.0).contains(&row.days()), "days = {}", row.days());
    }

    #[test]
    fn table4_t685_is_centuries_scale() {
        let m = AttackModel::asplos22();
        let row = m.table4_row(685);
        assert_eq!(row.k, 7);
        assert!(
            (2.0e11..6.0e11).contains(&row.attack_iterations),
            "AT_iter = {:e}",
            row.attack_iterations
        );
        assert!(
            (500.0..1000.0).contains(&row.years()),
            "years = {}",
            row.years()
        );
    }

    #[test]
    fn smaller_t_is_exponentially_safer() {
        let m = AttackModel::asplos22();
        let rows = m.table4();
        assert!(rows[0].attack_iterations < rows[1].attack_iterations);
        assert!(rows[1].attack_iterations < rows[2].attack_iterations);
        assert!(rows[2].attack_iterations / rows[0].attack_iterations > 1e3);
    }

    #[test]
    fn all_bank_attack_is_slower_despite_16x_targets() {
        // §5.3.2: "for k=6, the attack time for the all-bank attack
        // increases from 3.8 years to 5.1 years".
        let m = AttackModel::asplos22();
        let single = m.attack_time_seconds(800, m.duty_cycle(800));
        let all = m.all_bank_attack_time_seconds(800, 16);
        assert!(all > single, "all-bank {all} vs single {single}");
        let years = all / (365.25 * 86_400.0);
        assert!((4.0..7.0).contains(&years), "all-bank years = {years}");
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form_at_small_k() {
        let mut m = AttackModel::asplos22();
        // Shrink the space so the MC has measurable counts.
        m.rows_per_bank = 4_096;
        m.act_max = 80_000;
        let d = m.duty_cycle(800);
        for k in [1u64, 2] {
            let analytic = m.rows_per_bank as f64 * m.p_k(800, k, d);
            let mc = m.monte_carlo_rows_with_k(800, k, d, 200, 42);
            // MC counts rows with >= k, analytic is exactly k; for these
            // parameters P[>k] << P[=k], so they should agree within ~15%.
            let ratio = mc / analytic;
            assert!(
                (0.8..1.25).contains(&ratio),
                "k={k}: mc={mc:.4}, analytic={analytic:.4}"
            );
        }
    }

    #[test]
    fn success_curve_matches_expected_time() {
        // At the expected attack time, the success probability should be
        // ≈ 1 − 1/e ≈ 0.63 (geometric waiting time).
        let m = AttackModel::asplos22();
        let d = m.duty_cycle(800);
        let t_expect = m.attack_time_seconds(800, d);
        let p = m.success_probability_within(800, d, t_expect);
        assert!((0.60..0.66).contains(&p), "P at expected time = {p}");
        // Far before the expected time, success is (near) impossible.
        let early = m.success_probability_within(800, d, t_expect / 1e6);
        assert!(early < 2e-6, "early P = {early}");
        // Monotone in time.
        assert!(
            m.success_probability_within(800, d, 10.0)
                <= m.success_probability_within(800, d, 1_000.0)
        );
    }

    #[test]
    fn k_sweep_covers_admissible_divisors() {
        let m = AttackModel::asplos22();
        let rows = m.k_sweep(1..=8);
        // 4800 is divisible by 1,2,3,4,5,6,8 (not 7).
        let ks: Vec<u64> = rows.iter().map(|r| r.k).collect();
        assert_eq!(ks, vec![1, 2, 3, 4, 5, 6, 8]);
        // Attack time grows monotonically with k.
        for w in rows.windows(2) {
            assert!(w[1].attack_time_seconds > w[0].attack_time_seconds);
        }
    }

    #[test]
    fn probability_is_zero_when_k_exceeds_balls() {
        let m = AttackModel::asplos22();
        // t so large that fewer than k balls fit.
        let p = m.p_k(1_000_000, 6, 1.0);
        assert_eq!(p, 0.0);
    }
}
