//! Storage-overhead accounting — the paper's Table 5 (§7.1).
//!
//! Entry sizing follows §7.1: a 17-bit row id, with set-associative
//! structures storing the tag as the row id *minus* the set-index bits.
//! The RIT entry is `valid + lock + src-tag + dest-rowid` (28 bits); the
//! tracker entry is `valid + row-tag + counter` (22 bits); each channel has
//! two row-sized swap buffers amortized across its banks.

use rrs_core::cat::CatConfig;
use rrs_core::rrs::RrsConfig;
use rrs_dram::geometry::DramGeometry;

/// One line of the storage table.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageRow {
    /// Structure name.
    pub structure: &'static str,
    /// Entry size description.
    pub entry_bits: u32,
    /// Physical entries (slots).
    pub entries: usize,
    /// Cost in KiB per bank.
    pub kib_per_bank: f64,
}

/// Storage breakdown per bank (Table 5).
#[derive(Debug, Clone, PartialEq)]
pub struct StorageBreakdown {
    /// Individual structures.
    pub rows: Vec<StorageRow>,
}

impl StorageBreakdown {
    /// Total KiB per bank.
    pub fn total_kib_per_bank(&self) -> f64 {
        self.rows.iter().map(|r| r.kib_per_bank).sum()
    }

    /// Total KiB per rank (`banks` banks).
    pub fn total_kib_per_rank(&self, banks: usize) -> f64 {
        self.total_kib_per_bank() * banks as f64
    }
}

/// Computes Table 5 for a design point on a geometry.
///
/// `rit_shape` and `tracker_shape` give the CAT geometries (Table 5 uses
/// 2×256×20 and 2×64×20 respectively).
pub fn storage_breakdown(
    config: &RrsConfig,
    geometry: &DramGeometry,
    rit_shape: &CatConfig,
    tracker_shape: &CatConfig,
) -> StorageBreakdown {
    let row_bits = geometry.row_id_bits();

    // RIT: valid + lock + source tag (row id minus set index) + full
    // destination row id.
    let rit_set_bits = (rit_shape.sets as u32).trailing_zeros();
    let rit_entry_bits = 1 + 1 + (row_bits - rit_set_bits) + row_bits;
    let rit_entries = rit_shape.slots();

    // Tracker: valid + row tag + activation counter (wide enough for
    // counts up to ~T_RRS with slack; the paper budgets 10 bits at T=800).
    let trk_set_bits = (tracker_shape.sets as u32).trailing_zeros();
    // Counter wide enough for T_RRS (10 bits at T=800, per Table 5).
    let counter_bits = (64 - config.t_rrs.leading_zeros().min(63)).max(4);
    let trk_entry_bits = 1 + (row_bits - trk_set_bits) + counter_bits;
    let trk_entries = tracker_shape.slots();

    // Two row-sized swap buffers per channel, amortized over the banks of
    // the channel.
    let banks_per_channel = geometry.ranks_per_channel * geometry.banks_per_rank;
    let swap_buffer_kib = 2.0 * geometry.row_size_bytes as f64 / 1024.0 / banks_per_channel as f64;

    let bits_to_kib = |bits: u64| bits as f64 / 8.0 / 1024.0;

    StorageBreakdown {
        rows: vec![
            StorageRow {
                structure: "RIT",
                entry_bits: rit_entry_bits,
                entries: rit_entries,
                kib_per_bank: bits_to_kib(rit_entry_bits as u64 * rit_entries as u64),
            },
            StorageRow {
                structure: "Tracker",
                entry_bits: trk_entry_bits,
                entries: trk_entries,
                kib_per_bank: bits_to_kib(trk_entry_bits as u64 * trk_entries as u64),
            },
            StorageRow {
                structure: "Swap-Buffers",
                entry_bits: (geometry.row_size_bytes * 8) as u32,
                entries: 2,
                kib_per_bank: swap_buffer_kib,
            },
        ],
    }
}

/// Table 5 exactly as published: the ASPLOS'22 design point on the
/// baseline geometry with the §6.3/§6.4 CAT shapes.
pub fn table5() -> StorageBreakdown {
    storage_breakdown(
        &RrsConfig::asplos22(),
        &DramGeometry::asplos22_baseline(),
        &CatConfig::rit_asplos22(),
        &CatConfig::tracker_asplos22(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_rit_is_35_kib() {
        let t = table5();
        let rit = &t.rows[0];
        assert_eq!(rit.entry_bits, 28, "RIT entry bits");
        assert_eq!(rit.entries, 2 * 256 * 20);
        assert!(
            (rit.kib_per_bank - 35.0).abs() < 0.5,
            "RIT = {} KiB",
            rit.kib_per_bank
        );
    }

    #[test]
    fn table5_tracker_is_about_6_9_kib() {
        let t = table5();
        let trk = &t.rows[1];
        assert_eq!(trk.entry_bits, 22, "tracker entry bits");
        assert_eq!(trk.entries, 2 * 64 * 20);
        assert!(
            (trk.kib_per_bank - 6.9).abs() < 0.3,
            "tracker = {} KiB",
            trk.kib_per_bank
        );
    }

    #[test]
    fn table5_swap_buffers_are_1_kib_amortized() {
        let t = table5();
        let sb = &t.rows[2];
        assert!(
            (sb.kib_per_bank - 1.0).abs() < 0.01,
            "buffers = {} KiB",
            sb.kib_per_bank
        );
    }

    #[test]
    fn table5_total_is_about_43_kib_per_bank() {
        let t = table5();
        let total = t.total_kib_per_bank();
        assert!((42.0..44.0).contains(&total), "total = {total} KiB");
        // "686KB per rank" (§7.1).
        let rank = t.total_kib_per_rank(16);
        assert!((670.0..700.0).contains(&rank), "per rank = {rank} KiB");
    }

    #[test]
    fn storage_scales_with_threshold() {
        // Halving T_RH doubles tracker entries and RIT tuples -> more SRAM.
        let g = DramGeometry::asplos22_baseline();
        let base = RrsConfig::asplos22();
        let low = RrsConfig::for_threshold(2_400, 1_360_000, g.rows_per_bank as u64);
        let shape = |c: &RrsConfig| {
            (
                CatConfig::for_capacity(2 * c.rit_tuples, 14, 6),
                CatConfig::for_capacity(c.tracker_entries, 14, 6),
            )
        };
        let (br, bt) = shape(&base);
        let (lr, lt) = shape(&low);
        let a = storage_breakdown(&base, &g, &br, &bt).total_kib_per_bank();
        let b = storage_breakdown(&low, &g, &lr, &lt).total_kib_per_bank();
        assert!(b > a, "lower threshold must cost more SRAM ({b} <= {a})");
    }
}
