#![warn(missing_docs)]

//! Analytic models for the RRS reproduction.
//!
//! * [`attack_model`] — the §5.3 bucket-and-balls Bernoulli analysis
//!   (Table 4, all-bank attack) plus Monte-Carlo validation,
//! * [`cat_model`] — CAT conflict Monte-Carlo and continued-squaring
//!   extrapolation (Figure 9),
//! * [`storage`] — SRAM storage accounting (Table 5),
//! * [`power`] — SRAM/DRAM power accounting (Table 6),
//! * [`math`] — log-space combinatorics shared by the models.
//!
//! # Example
//!
//! ```
//! use rrs_analysis::attack_model::AttackModel;
//!
//! let model = AttackModel::asplos22();
//! let row = model.table4_row(800);
//! // "with T = 800, the expected time for a successful attack is 3.8 years"
//! assert!((3.0..4.5).contains(&row.years()));
//! ```

pub mod attack_model;
pub mod cat_model;
pub mod math;
pub mod power;
pub mod storage;

pub use attack_model::{AttackModel, Table4Row};
pub use cat_model::{CatModel, ConflictEstimate};
pub use power::{SramPowerModel, Table6};
pub use storage::{storage_breakdown, table5, StorageBreakdown, StorageRow};
