//! Buckets-and-balls model of CAT conflicts — Figure 9 (§6.2).
//!
//! "We deem a conflict in CAT when an install finds that both sets have
//! zero invalid lines. … We generate the data for 1–4 extra ways using a
//! Monte Carlo simulation of a buckets and balls model of the CAT and the
//! data for 5 and 6 extra ways is based on the continued squaring behaviour
//! demonstrated in the analytical model from MIRAGE."
//!
//! The Monte-Carlo model: balls (entries) are installed into the less-
//! loaded of two uniformly random sets (one per table); once the structure
//! holds its demand capacity `C = 2·S·D`, a random resident ball is evicted
//! before each install (steady state). The number of installs until some
//! install finds both candidate sets at full physical capacity (`D + E`
//! ways) grows double-exponentially with `E` — each extra way roughly
//! squares it.

use rrs_core::rng::DetRng;

/// Parameters of the CAT conflict experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatModel {
    /// Sets per table (Figure 9 uses 64; the RIT-sized variant uses 256).
    pub sets: usize,
    /// Demand ways per set (Figure 9 uses 14).
    pub demand_ways: usize,
}

impl CatModel {
    /// Figure 9's configuration: 64 sets × 14 demand ways.
    pub fn figure9() -> Self {
        CatModel {
            sets: 64,
            demand_ways: 14,
        }
    }

    /// Demand capacity `C = 2·S·D`.
    pub fn capacity(&self) -> usize {
        2 * self.sets * self.demand_ways
    }

    /// Monte-Carlo: steady-state installs until the first conflict with
    /// `extra_ways`, capped at `max_installs`. The structure is first
    /// pre-filled to its demand capacity (conflict-free by construction —
    /// balls that would conflict during warm-up are re-rolled), then each
    /// counted install evicts a random resident ball and re-installs, as a
    /// full RIT/tracker does in the steady state the paper analyzes.
    /// Returns `None` if no conflict occurred within the cap.
    pub fn installs_to_conflict(
        &self,
        extra_ways: usize,
        max_installs: u64,
        seed: u64,
    ) -> Option<u64> {
        let ways = self.demand_ways + extra_ways;
        let mut rng = DetRng::seed_from_u64(seed);
        // occupancy[table][set]
        let mut occ = vec![vec![0u16; self.sets]; 2];
        // Resident balls as (table, set), enabling random eviction.
        let mut balls: Vec<(u8, u16)> = Vec::with_capacity(self.capacity());

        // Warm-up: fill to demand capacity with two-choice placement.
        while balls.len() < self.capacity() {
            let s0 = rng.next_below(self.sets as u64) as usize;
            let s1 = rng.next_below(self.sets as u64) as usize;
            let (o0, o1) = (occ[0][s0], occ[1][s1]);
            if o0 as usize >= ways && o1 as usize >= ways {
                continue; // re-roll: warm-up is conflict-free by construction
            }
            let (t, s) = if o0 <= o1 { (0u8, s0) } else { (1u8, s1) };
            occ[t as usize][s] += 1;
            balls.push((t, s as u16));
        }

        for installs in 1..=max_installs {
            // Steady state: evict a random resident ball, then install.
            let i = rng.next_below(balls.len() as u64) as usize;
            let (t, s) = balls.swap_remove(i);
            occ[t as usize][s as usize] -= 1;

            let s0 = rng.next_below(self.sets as u64) as usize;
            let s1 = rng.next_below(self.sets as u64) as usize;
            let (o0, o1) = (occ[0][s0], occ[1][s1]);
            if o0 as usize >= ways && o1 as usize >= ways {
                return Some(installs);
            }
            let (t, s) = if o0 <= o1 { (0u8, s0) } else { (1u8, s1) };
            occ[t as usize][s] += 1;
            balls.push((t, s as u16));
        }
        None
    }

    /// Mean installs-to-conflict over `trials` Monte-Carlo runs. Runs that
    /// hit `max_installs` without conflict are counted at the cap (a lower
    /// bound), and the result is flagged.
    pub fn mean_installs_to_conflict(
        &self,
        extra_ways: usize,
        trials: u32,
        max_installs: u64,
        seed: u64,
    ) -> ConflictEstimate {
        let mut total = 0.0;
        let mut censored = 0;
        for i in 0..trials {
            match self.installs_to_conflict(extra_ways, max_installs, seed ^ (i as u64) << 17) {
                Some(n) => total += n as f64,
                None => {
                    total += max_installs as f64;
                    censored += 1;
                }
            }
        }
        ConflictEstimate {
            extra_ways,
            mean_installs: total / trials as f64,
            lower_bound_only: censored > 0,
        }
    }

    /// Layered-induction tail bound for power-of-two-choices (Azar et al.;
    /// the analytical backbone of MIRAGE's Eq. 6–7): the fraction of sets
    /// holding at least `load` entries, for a structure balanced at
    /// `avg_load` entries per set, decays double-exponentially —
    /// `β_{i+1} ≈ avg_load · β_i²` above the average.
    ///
    /// Returns `log10` of the fraction (very small numbers stay
    /// representable). A conflict needs *both* candidate sets at full
    /// physical capacity, so `log10 P[conflict] ≈ 2 × tail(D+E)` and the
    /// expected installs-to-conflict is its negation — each extra way
    /// squares the count, exactly the behaviour Figure 9 plots.
    pub fn analytic_tail_log10(&self, avg_load: f64, load: usize) -> f64 {
        assert!(avg_load > 0.0, "average load must be positive");
        let start = avg_load.ceil() as usize;
        if load <= start {
            return 0.0; // ~all sets reach the average
        }
        // Anchored layered induction: one layer above the average, roughly
        // a fifth of the sets are overfull (matching the Monte Carlo at
        // Figure 9's load); each further layer squares the fraction —
        // the asymptotic two-choice behaviour.
        const LOG_P1: f64 = -0.65; // p₁ ≈ 0.22
        let layers = (load - start) as i32;
        (LOG_P1 * 2f64.powi(layers - 1)).max(-1e9)
    }

    /// Expected installs to conflict from the analytic tail:
    /// `1 / P[both candidate sets full]`, in `log10`.
    pub fn analytic_installs_log10(&self, extra_ways: usize) -> f64 {
        let ways = self.demand_ways + extra_ways;
        // Average load equals the demand ways (capacity = 2·S·D).
        let tail = self.analytic_tail_log10(self.demand_ways as f64, ways);
        -2.0 * tail
    }

    /// The continued-squaring extrapolation (MIRAGE, Eq. 6–7): each extra
    /// way squares the installs-to-conflict. Extends a measured anchor
    /// `(anchor_extra_ways, anchor_installs)` out to `extra_ways`, in
    /// `log10` (Figure 9's y-axis).
    pub fn extrapolate_log10(
        &self,
        anchor_extra_ways: usize,
        anchor_installs: f64,
        extra_ways: usize,
    ) -> f64 {
        assert!(
            extra_ways >= anchor_extra_ways,
            "extrapolation must go outward"
        );
        let doublings = (extra_ways - anchor_extra_ways) as u32;
        anchor_installs.log10() * 2f64.powi(doublings as i32)
    }

    /// Full Figure 9 series: Monte-Carlo where tractable (small extra
    /// ways), continued-squaring beyond. Returns `(extra_ways, log10
    /// installs)` pairs for `1..=max_extra`.
    pub fn figure9_series(
        &self,
        max_extra: usize,
        mc_budget: u64,
        trials: u32,
        seed: u64,
    ) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut anchor: Option<(usize, f64)> = None;
        for e in 1..=max_extra {
            let est = self.mean_installs_to_conflict(e, trials, mc_budget, seed + e as u64);
            if !est.lower_bound_only {
                out.push((e, est.mean_installs.log10()));
                anchor = Some((e, est.mean_installs));
            } else {
                let (ae, ai) = anchor.expect("at least one uncensored MC point needed");
                out.push((e, self.extrapolate_log10(ae, ai, e)));
            }
        }
        out
    }
}

impl Default for CatModel {
    fn default() -> Self {
        Self::figure9()
    }
}

/// Result of a Monte-Carlo conflict estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConflictEstimate {
    /// Extra ways evaluated.
    pub extra_ways: usize,
    /// Mean installs to conflict (or the censored lower bound).
    pub mean_installs: f64,
    /// Whether any trial hit the cap (value is a lower bound).
    pub lower_bound_only: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_extra_ways_conflicts_quickly() {
        let m = CatModel::figure9();
        let n = m
            .installs_to_conflict(0, 1_000_000, 1)
            .expect("0 extra ways must conflict fast");
        assert!(n < 100_000, "installs = {n}");
    }

    #[test]
    fn one_extra_way_conflicts_within_budget() {
        let m = CatModel::figure9();
        let est = m.mean_installs_to_conflict(1, 5, 20_000_000, 7);
        assert!(!est.lower_bound_only, "1 extra way should conflict < 2e7");
        assert!(est.mean_installs > 10.0);
    }

    #[test]
    fn more_extra_ways_means_more_installs() {
        let m = CatModel::figure9();
        let e0 = m.mean_installs_to_conflict(0, 5, 10_000_000, 3);
        let e1 = m.mean_installs_to_conflict(1, 5, 10_000_000, 3);
        assert!(
            e1.mean_installs > 4.0 * e0.mean_installs,
            "e0 = {}, e1 = {}",
            e0.mean_installs,
            e1.mean_installs
        );
    }

    #[test]
    fn extrapolation_squares_per_way() {
        let m = CatModel::figure9();
        // Anchor: 1e4 installs at 2 extra ways -> 1e8 at 3, 1e16 at 4, 1e32 at 6.
        assert!((m.extrapolate_log10(2, 1e4, 3) - 8.0).abs() < 1e-9);
        assert!((m.extrapolate_log10(2, 1e4, 4) - 16.0).abs() < 1e-9);
        assert!((m.extrapolate_log10(2, 1e4, 6) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn figure9_series_is_monotone_and_reaches_astronomic_values() {
        let m = CatModel::figure9();
        let series = m.figure9_series(6, 300_000, 3, 11);
        assert_eq!(series.len(), 6);
        for w in series.windows(2) {
            assert!(w[1].1 > w[0].1, "series not increasing: {series:?}");
        }
        // Six extra ways must be far beyond feasible attack budgets
        // (the paper quotes ~1e30).
        assert!(series[5].1 > 20.0, "log10 at 6 ways = {}", series[5].1);
    }

    #[test]
    fn capacity_matches_figure9_config() {
        assert_eq!(CatModel::figure9().capacity(), 1792);
    }

    #[test]
    fn analytic_tail_is_double_exponential() {
        let m = CatModel::figure9();
        let t15 = m.analytic_tail_log10(14.0, 15);
        let t16 = m.analytic_tail_log10(14.0, 16);
        let t17 = m.analytic_tail_log10(14.0, 17);
        assert!(t16 < t15 && t17 < t16, "tail must decay");
        // Each layer roughly squares: log ratios grow ~2x.
        assert!(t17 / t16 > 1.5 && t16 / t15 > 1.5, "{t15} {t16} {t17}");
        // At or below the average, everything is commonplace.
        assert_eq!(m.analytic_tail_log10(14.0, 14), 0.0);
    }

    #[test]
    fn analytic_installs_grow_double_exponentially_with_extra_ways() {
        let m = CatModel::figure9();
        let series: Vec<f64> = (1..=6).map(|e| m.analytic_installs_log10(e)).collect();
        for w in series.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Six extra ways is astronomically safe, the Figure 9 conclusion.
        assert!(series[5] > 20.0, "log10 installs at 6 ways = {}", series[5]);
    }

    #[test]
    fn analytic_and_monte_carlo_agree_in_order_of_magnitude_at_small_ways() {
        let m = CatModel::figure9();
        let mc = m.mean_installs_to_conflict(1, 5, 3_000_000, 77);
        assert!(!mc.lower_bound_only);
        let analytic = m.analytic_installs_log10(1);
        let measured = mc.mean_installs.log10();
        assert!(
            (analytic - measured).abs() < 2.5,
            "analytic 1e{analytic:.1} vs MC 1e{measured:.1}"
        );
    }
}
