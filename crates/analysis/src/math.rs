//! Numerical helpers: log-gamma, log-binomial coefficients, and log-space
//! Bernoulli/binomial probabilities.
//!
//! Table 4's quantities involve terms like `C(1575, 6) · (1/131072)^6`,
//! far outside `f64`'s direct range at intermediate steps, so everything is
//! computed in log space.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients; |error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of the binomial pmf: `P[X = k]` for `X ~ Binomial(n, p)`.
pub fn ln_binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln_1p_adjusted()
}

/// Extension providing `ln(1 - p)` computed accurately for small `p`.
trait Ln1pAdjusted {
    fn ln_1p_adjusted(self) -> f64;
}

impl Ln1pAdjusted for f64 {
    /// `self` is already `1 - p`; for tiny `p` precision matters, so route
    /// through `ln_1p(-p)`.
    fn ln_1p_adjusted(self) -> f64 {
        let p = 1.0 - self;
        (-p).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, f) in [(1u64, 1f64), (2, 1.0), (3, 2.0), (5, 24.0), (10, 362_880.0)] {
            let got = ln_gamma(n as f64);
            assert!(
                (got - f.ln()).abs() < 1e-10,
                "ln_gamma({n}) = {got}, want {}",
                f.ln()
            );
        }
    }

    #[test]
    fn ln_choose_small_exact() {
        assert!((ln_choose(10, 3) - 120f64.ln()).abs() < 1e-10);
        assert!((ln_choose(52, 5) - 2_598_960f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(5, 6), f64::NEG_INFINITY);
        assert!((ln_choose(5, 0)).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_large_is_finite() {
        let v = ln_choose(1_575, 6);
        assert!(v.is_finite());
        // C(1575, 6) ≈ 2.68e16 (sanity band).
        assert!((35.0..40.0).contains(&v), "lnC = {v}");
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 40;
        let p = 0.13;
        let total: f64 = (0..=n).map(|k| ln_binomial_pmf(n, k, p).exp()).sum();
        assert!((total - 1.0).abs() < 1e-10, "sum = {total}");
    }

    #[test]
    fn binomial_pmf_edge_probabilities() {
        assert_eq!(ln_binomial_pmf(10, 0, 0.0), 0.0);
        assert_eq!(ln_binomial_pmf(10, 3, 0.0), f64::NEG_INFINITY);
        assert_eq!(ln_binomial_pmf(10, 10, 1.0), 0.0);
    }

    #[test]
    fn tiny_p_precision_holds() {
        // (1-p)^n with p = 1/131072, n = 1569: should be ≈ e^{-n p}.
        let p = 1.0 / 131_072.0;
        let n = 1_569u64;
        let v = ln_binomial_pmf(n, 0, p);
        let expect = -(n as f64) * p;
        assert!((v - expect).abs() < 1e-6, "{v} vs {expect}");
    }
}
