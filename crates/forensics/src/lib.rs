//! Trace forensics: the consumer side of the telemetry spine.
//!
//! PR 3's spine emits a JSON-lines event stream; this crate turns that
//! firehose into answers about the paper's core security claim (§7):
//! does RRS actually keep every row's activations-at-one-location below
//! the swap threshold?
//!
//! * [`parse`] — JSON-lines trace deserialization (with the optional
//!   `trace_header` record the CLI prepends) back into [`Event`]s.
//! * [`exposure`] — the reconstructor: replays the event stream into
//!   per-physical-row residency intervals and computes
//!   max-activations-per-residency, time-at-location histograms,
//!   relocation entropy, and a pass/fail verdict against the configured
//!   swap threshold.
//! * [`perfetto`] — a Chrome `trace_event` JSON exporter so swap
//!   lifecycles, scheduler stalls, targeted refreshes, and epoch
//!   rollovers render in <https://ui.perfetto.dev>.
//!
//! Everything is a pure function of the event sequence: reports and
//! exports are byte-deterministic, a property the golden tests pin.
//!
//! [`Event`]: rrs_telemetry::Event

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exposure;
pub mod parse;
pub mod perfetto;

pub use exposure::{ExposureConfig, ExposureReport, RowExposure};
pub use parse::{parse_jsonl, ParsedTrace, TraceHeader};
pub use perfetto::{export_trace, ExportOptions};
