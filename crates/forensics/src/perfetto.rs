//! Chrome `trace_event` JSON export for <https://ui.perfetto.dev>.
//!
//! The exporter lays the event stream out on three synthetic "processes"
//! so the timeline reads like the hardware:
//!
//! * **pid 1 `rrs engine`** — HRT installs/evictions and CAT cuckoo
//!   relocations as instants (tids 1 and 2).
//! * **pid 2 `controller`** — refreshes (periodic/targeted/full, tid 1),
//!   epoch rollovers (tid 2), and scheduler stalls (tid 3) as instants.
//! * **pid 3 `banks`** — one thread per flat bank index. Swap lifecycles
//!   render as `"X"` complete slices (a `swap_start` paired with the next
//!   `swap_done` for the same `(bank, row_a, row_b)`); unswaps and
//!   unmatched halves as instants; activations optionally as instants
//!   (off by default — they dominate traces without adding structure).
//!
//! Timestamps are **simulated DRAM cycles**, exported verbatim in the
//! `ts`/`dur` fields (the format nominally wants µs; for a deterministic
//! simulator the raw cycle axis is the honest one, and Perfetto only uses
//! it as an ordinal scale). LLC hits/misses are skipped: at one instant
//! per access they bury every other track.
//!
//! Output is byte-deterministic for a given event sequence — a golden
//! test pins the bytes of a blessed trace.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rrs_json::Json;
use rrs_telemetry::Event;

/// Synthetic process ids, stable across exports.
const PID_ENGINE: u64 = 1;
const PID_CONTROLLER: u64 = 2;
const PID_BANKS: u64 = 3;

/// Exporter knobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportOptions {
    /// Emit one instant per demand activation on its bank's track.
    pub activations: bool,
}

/// One `traceEvents` entry with the field order fixed for determinism.
#[allow(clippy::too_many_arguments)] // mirrors the trace_event field list
fn entry(
    name: &str,
    ph: &str,
    ts: u64,
    dur: Option<u64>,
    pid: u64,
    tid: u64,
    scope: Option<&str>,
    args: Vec<(String, Json)>,
) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::str(name)),
        ("ph".to_string(), Json::str(ph)),
        ("ts".to_string(), Json::u64(ts)),
    ];
    if let Some(d) = dur {
        fields.push(("dur".to_string(), Json::u64(d)));
    }
    fields.push(("pid".to_string(), Json::u64(pid)));
    fields.push(("tid".to_string(), Json::u64(tid)));
    if let Some(s) = scope {
        fields.push(("s".to_string(), Json::str(s)));
    }
    if !args.is_empty() {
        fields.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(fields)
}

/// A `"M"` metadata record naming a process or thread. Carries `ts: 0`
/// so every entry in the file has the same required-field shape
/// (ph/ts/pid) — simpler downstream validation, and Perfetto ignores
/// timestamps on metadata.
fn metadata(what: &str, pid: u64, tid: u64, name: &str) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::str(what)),
        ("ph".to_string(), Json::str("M")),
        ("ts".to_string(), Json::u64(0)),
        ("pid".to_string(), Json::u64(pid)),
    ];
    if what == "thread_name" {
        fields.push(("tid".to_string(), Json::u64(tid)));
    }
    fields.push((
        "args".to_string(),
        Json::Obj(vec![("name".to_string(), Json::str(name))]),
    ));
    Json::Obj(fields)
}

fn instant(name: &str, ts: u64, pid: u64, tid: u64, args: Vec<(String, Json)>) -> Json {
    entry(name, "i", ts, None, pid, tid, Some("t"), args)
}

fn arg(name: &str, v: u64) -> (String, Json) {
    (name.to_string(), Json::u64(v))
}

/// Exports `events` as a Chrome `trace_event` JSON document (the
/// `{"traceEvents":[...]}` object form), one entry per line for diffable
/// goldens.
pub fn export_trace(events: &[Event], opts: &ExportOptions) -> String {
    // Pass 1: which bank tracks exist (sorted, so metadata order is stable).
    let mut banks: BTreeSet<u64> = BTreeSet::new();
    for e in events {
        match *e {
            Event::Activation { bank, .. } if opts.activations => {
                banks.insert(bank);
            }
            Event::SwapStart { bank, .. }
            | Event::SwapDone { bank, .. }
            | Event::Unswap { bank, .. }
            | Event::TargetedRefresh { bank, .. } => {
                banks.insert(bank);
            }
            _ => {}
        }
    }

    let mut out: Vec<Json> = vec![
        metadata("process_name", PID_ENGINE, 0, "rrs engine"),
        metadata("thread_name", PID_ENGINE, 1, "hrt"),
        metadata("thread_name", PID_ENGINE, 2, "cat"),
        metadata("process_name", PID_CONTROLLER, 0, "controller"),
        metadata("thread_name", PID_CONTROLLER, 1, "refresh"),
        metadata("thread_name", PID_CONTROLLER, 2, "epoch"),
        metadata("thread_name", PID_CONTROLLER, 3, "scheduler"),
    ];
    if !banks.is_empty() {
        out.push(metadata("process_name", PID_BANKS, 0, "banks"));
        for &b in &banks {
            out.push(metadata("thread_name", PID_BANKS, b, &format!("bank {b}")));
        }
    }

    // Pass 2: the events. Swap slices pair each start with the next done
    // for the same key; a ring-buffer trace can hold either half alone.
    let mut open_swaps: BTreeMap<(u64, u64, u64), VecDeque<u64>> = BTreeMap::new();
    for e in events {
        match *e {
            Event::Activation { at, bank, row } => {
                if opts.activations {
                    out.push(instant("act", at, PID_BANKS, bank, vec![arg("row", row)]));
                }
            }
            Event::SwapStart {
                at,
                bank,
                row_a,
                row_b,
            } => {
                open_swaps
                    .entry((bank, row_a, row_b))
                    .or_default()
                    .push_back(at);
            }
            Event::SwapDone {
                at,
                bank,
                row_a,
                row_b,
            } => {
                let start = open_swaps
                    .get_mut(&(bank, row_a, row_b))
                    .and_then(VecDeque::pop_front);
                match start {
                    Some(s) => out.push(entry(
                        &format!("swap {row_a}<->{row_b}"),
                        "X",
                        s,
                        Some(at.saturating_sub(s)),
                        PID_BANKS,
                        bank,
                        None,
                        vec![arg("row_a", row_a), arg("row_b", row_b)],
                    )),
                    None => out.push(instant(
                        "swap_done (unmatched)",
                        at,
                        PID_BANKS,
                        bank,
                        vec![arg("row_a", row_a), arg("row_b", row_b)],
                    )),
                }
            }
            Event::Unswap {
                at,
                bank,
                row_a,
                row_b,
            } => {
                out.push(instant(
                    &format!("unswap {row_a}<->{row_b}"),
                    at,
                    PID_BANKS,
                    bank,
                    vec![arg("row_a", row_a), arg("row_b", row_b)],
                ));
            }
            Event::HrtInstall { at, row, count } => {
                out.push(instant(
                    "hrt_install",
                    at,
                    PID_ENGINE,
                    1,
                    vec![arg("row", row), arg("count", count)],
                ));
            }
            Event::HrtEvict { at, row, count } => {
                out.push(instant(
                    "hrt_evict",
                    at,
                    PID_ENGINE,
                    1,
                    vec![arg("row", row), arg("count", count)],
                ));
            }
            Event::CatRelocation { at, moves } => {
                out.push(instant(
                    "cat_relocation",
                    at,
                    PID_ENGINE,
                    2,
                    vec![arg("moves", moves)],
                ));
            }
            Event::EpochRollover { at, epoch } => {
                out.push(instant(
                    "epoch_rollover",
                    at,
                    PID_CONTROLLER,
                    2,
                    vec![arg("epoch", epoch)],
                ));
            }
            Event::Refresh { at } => {
                out.push(instant("refresh", at, PID_CONTROLLER, 1, Vec::new()));
            }
            Event::TargetedRefresh { at, bank, row } => {
                out.push(instant(
                    "targeted_refresh",
                    at,
                    PID_CONTROLLER,
                    1,
                    vec![arg("bank", bank), arg("row", row)],
                ));
            }
            Event::FullRefresh { at } => {
                out.push(instant("full_refresh", at, PID_CONTROLLER, 1, Vec::new()));
            }
            Event::SchedulerStall { at, queued } => {
                out.push(instant(
                    "stall",
                    at,
                    PID_CONTROLLER,
                    3,
                    vec![arg("queued", queued)],
                ));
            }
            Event::LlcHit { .. } | Event::LlcMiss { .. } => {}
        }
    }

    // Swap starts with no matching done (truncated trace): instants.
    for ((bank, row_a, row_b), starts) in &open_swaps {
        for &s in starts {
            out.push(instant(
                "swap_start (unmatched)",
                s,
                PID_BANKS,
                *bank,
                vec![arg("row_a", *row_a), arg("row_b", *row_b)],
            ));
        }
    }

    // One entry per line: valid JSON and line-diffable goldens.
    let mut text = String::from("{\"traceEvents\":[\n");
    for (i, e) in out.iter().enumerate() {
        text.push_str(&e.to_string_compact());
        if i + 1 < out.len() {
            text.push(',');
        }
        text.push('\n');
    }
    text.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Activation {
                at: 1,
                bank: 0,
                row: 10,
            },
            Event::SwapStart {
                at: 5,
                bank: 0,
                row_a: 10,
                row_b: 900,
            },
            Event::SwapDone {
                at: 105,
                bank: 0,
                row_a: 10,
                row_b: 900,
            },
            Event::SchedulerStall { at: 50, queued: 64 },
            Event::TargetedRefresh {
                at: 60,
                bank: 1,
                row: 11,
            },
            Event::EpochRollover { at: 200, epoch: 0 },
            Event::Unswap {
                at: 220,
                bank: 0,
                row_a: 10,
                row_b: 900,
            },
            Event::LlcHit { at: 2, addr: 64 },
        ]
    }

    #[test]
    fn export_is_valid_json_with_required_fields() {
        let text = export_trace(&sample_events(), &ExportOptions::default());
        let doc = Json::parse(&text).expect("exporter emits parseable JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        for e in events {
            assert!(e.get("ph").and_then(Json::as_str).is_some(), "ph required");
            assert!(
                e.get("pid").and_then(Json::as_u64).is_some(),
                "pid required"
            );
            assert!(e.get("ts").and_then(Json::as_u64).is_some(), "ts required");
        }
    }

    #[test]
    fn swaps_become_complete_slices() {
        let text = export_trace(&sample_events(), &ExportOptions::default());
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one X slice");
        assert_eq!(slice.get("ts").and_then(Json::as_u64), Some(5));
        assert_eq!(slice.get("dur").and_then(Json::as_u64), Some(100));
        assert_eq!(slice.get("tid").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn activations_are_gated_and_llc_skipped() {
        let quiet = export_trace(&sample_events(), &ExportOptions::default());
        assert!(!quiet.contains("\"act\""));
        assert!(!quiet.contains("llc"));
        let loud = export_trace(&sample_events(), &ExportOptions { activations: true });
        assert!(loud.contains("\"act\""));
    }

    #[test]
    fn unmatched_swap_halves_become_instants() {
        let only_start = vec![Event::SwapStart {
            at: 5,
            bank: 2,
            row_a: 1,
            row_b: 2,
        }];
        let text = export_trace(&only_start, &ExportOptions::default());
        assert!(text.contains("swap_start (unmatched)"));
        let only_done = vec![Event::SwapDone {
            at: 9,
            bank: 2,
            row_a: 1,
            row_b: 2,
        }];
        let text = export_trace(&only_done, &ExportOptions::default());
        assert!(text.contains("swap_done (unmatched)"));
    }

    #[test]
    fn export_is_deterministic() {
        let a = export_trace(&sample_events(), &ExportOptions::default());
        let b = export_trace(&sample_events(), &ExportOptions::default());
        assert_eq!(a, b);
    }
}
