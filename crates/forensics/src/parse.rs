//! JSON-lines trace deserialization.
//!
//! The inverse of [`TraceRecorder::to_jsonl`]: one compact JSON object per
//! line, each parsed back into an [`Event`]. The CLI's `rrs trace --out`
//! prepends one `trace_header` record carrying recorder bookkeeping
//! (capacity, totals, drops); campaign trace files are raw event lines.
//! Both shapes parse here — the header is optional and may appear at most
//! once.
//!
//! [`TraceRecorder::to_jsonl`]: rrs_telemetry::TraceRecorder::to_jsonl

use rrs_json::Json;
use rrs_telemetry::Event;

/// The bookkeeping record `rrs trace --out` writes as the first line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceHeader {
    /// Total events the recorder observed (retained + dropped).
    pub events_recorded: u64,
    /// Events evicted to stay within the ring capacity. Non-zero means
    /// the trace is a suffix of the run, not the whole run.
    pub events_dropped: u64,
    /// Ring-buffer capacity of the recorder that produced the trace.
    pub capacity: u64,
}

/// The stable `kind` tag of the header record.
pub const TRACE_HEADER_KIND: &str = "trace_header";

impl TraceHeader {
    /// The header as the JSON-lines record the CLI writes (`kind` first,
    /// like every event line, so line-oriented consumers need one rule).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".to_string(), Json::str(TRACE_HEADER_KIND)),
            (
                "events_recorded".to_string(),
                Json::u64(self.events_recorded),
            ),
            ("events_dropped".to_string(), Json::u64(self.events_dropped)),
            ("capacity".to_string(), Json::u64(self.capacity)),
        ])
    }

    /// Parses a header record.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/malformed field.
    pub fn from_json(json: &Json) -> Result<TraceHeader, String> {
        let field = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace_header missing u64 field {name:?}"))
        };
        Ok(TraceHeader {
            events_recorded: field("events_recorded")?,
            events_dropped: field("events_dropped")?,
            capacity: field("capacity")?,
        })
    }
}

/// A parsed trace: the events plus the optional header record.
#[derive(Debug, Clone, Default)]
pub struct ParsedTrace {
    /// The header, when the file carried one.
    pub header: Option<TraceHeader>,
    /// The events, in file order (which is emission order).
    pub events: Vec<Event>,
}

impl ParsedTrace {
    /// Events dropped by the producing recorder (0 without a header).
    pub fn events_dropped(&self) -> u64 {
        self.header.map_or(0, |h| h.events_dropped)
    }
}

/// Parses a JSON-lines trace (raw, or with a `trace_header` first line).
/// Blank lines are skipped.
///
/// # Errors
///
/// Returns `"line N: <reason>"` for the first malformed or unknown line,
/// or a message for a duplicated header.
pub fn parse_jsonl(text: &str) -> Result<ParsedTrace, String> {
    let mut out = ParsedTrace::default();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let n = idx + 1;
        let json = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        if json.get("kind").and_then(Json::as_str) == Some(TRACE_HEADER_KIND) {
            if out.header.is_some() {
                return Err(format!("line {n}: duplicate trace_header record"));
            }
            if !out.events.is_empty() {
                return Err(format!("line {n}: trace_header after event lines"));
            }
            out.header = Some(TraceHeader::from_json(&json).map_err(|e| format!("line {n}: {e}"))?);
            continue;
        }
        out.events
            .push(Event::from_json(&json).map_err(|e| format!("line {n}: {e}"))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_event_lines_parse() {
        let text = "{\"kind\":\"refresh\",\"at\":1}\n{\"kind\":\"activation\",\"at\":2,\"bank\":0,\"row\":7}\n";
        let t = parse_jsonl(text).unwrap();
        assert!(t.header.is_none());
        assert_eq!(t.events.len(), 2);
        assert_eq!(
            t.events[1],
            Event::Activation {
                at: 2,
                bank: 0,
                row: 7
            }
        );
        assert_eq!(t.events_dropped(), 0);
    }

    #[test]
    fn header_round_trips() {
        let h = TraceHeader {
            events_recorded: 100,
            events_dropped: 36,
            capacity: 64,
        };
        let mut text = h.to_json().to_string_compact();
        text.push('\n');
        text.push_str("{\"kind\":\"refresh\",\"at\":9}\n");
        let t = parse_jsonl(&text).unwrap();
        assert_eq!(t.header, Some(h));
        assert_eq!(t.events, vec![Event::Refresh { at: 9 }]);
        assert_eq!(t.events_dropped(), 36);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "{\"kind\":\"refresh\",\"at\":1}\nnot json\n";
        assert!(parse_jsonl(bad).unwrap_err().starts_with("line 2:"));
        let unknown = "{\"kind\":\"warp\",\"at\":1}\n";
        assert!(parse_jsonl(unknown).unwrap_err().contains("warp"));
        let dup = "{\"kind\":\"trace_header\",\"events_recorded\":1,\"events_dropped\":0,\"capacity\":4}\n\
                   {\"kind\":\"trace_header\",\"events_recorded\":1,\"events_dropped\":0,\"capacity\":4}\n";
        assert!(parse_jsonl(dup).unwrap_err().contains("duplicate"));
        let late = "{\"kind\":\"refresh\",\"at\":1}\n\
                    {\"kind\":\"trace_header\",\"events_recorded\":1,\"events_dropped\":0,\"capacity\":4}\n";
        assert!(parse_jsonl(late).unwrap_err().contains("after event"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = parse_jsonl("\n{\"kind\":\"refresh\",\"at\":1}\n\n").unwrap();
        assert_eq!(t.events.len(), 1);
    }
}
