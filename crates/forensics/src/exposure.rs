//! The exposure reconstructor: per-row residency intervals and the
//! pass/fail verdict behind the paper's security claim.
//!
//! RRS's defense (§7) is that no physical row accumulates enough
//! activations *at one location* for its neighbours to matter: every
//! `T_RRS` activations the row's contents move, so an aggressor's charge
//! disturbance is spread over random victims. This module replays the
//! trace and measures exactly that quantity.
//!
//! # Replay semantics
//!
//! State is kept per `(bank, physical row)`:
//!
//! * `activation` increments the row's current-residency count.
//! * `swap_done` and `unswap` end a **residency** for both rows of the
//!   pair: the count resets (new contents at this location), the interval
//!   length lands in the time-at-location histogram, and both rows gain a
//!   relocation.
//! * `epoch_rollover` and `full_refresh` reset every count (a refresh
//!   window restores cell charge — the hammer integral starts over) but
//!   do **not** end residencies: contents stay put.
//! * `targeted_refresh` resets only the refreshed row's count.
//! * `swap_start`, tracker/CAT/scheduler/LLC events carry no exposure
//!   information and only count toward the replay total.
//!
//! **Max exposure** is the largest count any row ever reached — the most
//! activations any one row soaked at one location within one refresh
//! window. With RRS at threshold `T`, the verdict passes iff that maximum
//! stays within `T + slack`, where the slack covers the in-flight
//! activations between crossing the threshold and the swap completing.
//!
//! **Relocation entropy** is the Shannon entropy (bits) of the
//! distribution of swap participations over rows — higher means the
//! engine spreads relocations instead of ping-ponging one pair.

use std::collections::BTreeMap;

use rrs_json::Json;
use rrs_telemetry::Event;

/// Number of log₂ buckets in the time-at-location histogram (u64 range).
pub const RESIDENCY_BUCKETS: usize = 65;

/// Reconstruction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExposureConfig {
    /// The swap threshold `T_RRS` the trace's defense was configured with
    /// (0 means "no defense": any exposure fails only via `slack`).
    pub swap_threshold: u64,
    /// Activations a row may exceed the threshold by before the verdict
    /// fails — covers requests in flight while a swap is queued.
    pub slack: u64,
}

impl ExposureConfig {
    /// The exposure bound the verdict enforces.
    pub fn bound(&self) -> u64 {
        self.swap_threshold.saturating_add(self.slack)
    }
}

/// Exposure summary of one `(bank, row)` location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowExposure {
    /// Flat bank index.
    pub bank: u64,
    /// Physical row number within the bank.
    pub row: u64,
    /// Most activations accumulated in any one residency interval
    /// (bounded by refresh-window resets).
    pub max_exposure: u64,
    /// Activations across the whole trace.
    pub total_activations: u64,
    /// Times the row's contents were relocated (swap or unswap).
    pub relocations: u64,
}

/// Per-row replay state.
#[derive(Debug, Clone, Copy, Default)]
struct RowState {
    count: u64,
    max: u64,
    total: u64,
    relocations: u64,
    residency_start: u64,
}

/// The reconstructed exposure report.
#[derive(Debug, Clone)]
pub struct ExposureReport {
    /// The configuration the verdict was computed against.
    pub config: ExposureConfig,
    /// Per-row summaries, ordered by `(bank, row)`.
    pub rows: Vec<RowExposure>,
    /// The largest `max_exposure` over all rows (0 for an empty trace).
    pub max_exposure: u64,
    /// The `(bank, row)` that reached `max_exposure`, if any activations
    /// were seen (ties break to the lowest `(bank, row)`).
    pub worst_row: Option<(u64, u64)>,
    /// Whether every row stayed within `swap_threshold + slack`.
    pub pass: bool,
    /// Shannon entropy (bits) of swap participation over rows.
    pub relocation_entropy_bits: f64,
    /// Residency lengths (cycles), log₂-bucketed: bucket `i` counts
    /// intervals with `floor(log2(len)) == i` (`len == 0` in bucket 0).
    /// Open residencies at trace end are closed at the last event's cycle.
    pub residency_histogram: [u64; RESIDENCY_BUCKETS],
    /// Events replayed (all kinds).
    pub events_replayed: u64,
    /// Drops reported by the trace header (0 when absent): non-zero means
    /// the replay saw only a suffix of the run and underestimates.
    pub events_dropped: u64,
    /// Total relocation operations (swaps + unswaps) in the trace.
    pub relocation_ops: u64,
    /// Epoch rollovers seen.
    pub epochs: u64,
}

impl ExposureReport {
    /// Replays `events` (in order) and computes the exposure report.
    /// `events_dropped` is carried into the report so consumers can see a
    /// truncated trace for what it is.
    pub fn reconstruct(events: &[Event], config: ExposureConfig, events_dropped: u64) -> Self {
        let mut states: BTreeMap<(u64, u64), RowState> = BTreeMap::new();
        let mut histogram = [0u64; RESIDENCY_BUCKETS];
        let mut relocation_ops = 0u64;
        let mut epochs = 0u64;
        let mut last_at = 0u64;

        let bucket = |len: u64| -> usize {
            if len == 0 {
                0
            } else {
                63 - len.leading_zeros() as usize
            }
        };
        let close_residency = |s: &mut RowState, at: u64, histogram: &mut [u64]| {
            let started = s.residency_start;
            if let Some(slot) = histogram.get_mut(bucket(at.saturating_sub(started))) {
                *slot += 1;
            }
            s.residency_start = at;
            s.count = 0;
            s.relocations += 1;
        };

        for e in events {
            last_at = last_at.max(e.at());
            match *e {
                Event::Activation { bank, row, .. } => {
                    let s = states.entry((bank, row)).or_default();
                    s.count += 1;
                    s.total += 1;
                    s.max = s.max.max(s.count);
                }
                Event::SwapDone {
                    at,
                    bank,
                    row_a,
                    row_b,
                    ..
                }
                | Event::Unswap {
                    at,
                    bank,
                    row_a,
                    row_b,
                    ..
                } => {
                    relocation_ops += 1;
                    for row in [row_a, row_b] {
                        let s = states.entry((bank, row)).or_default();
                        close_residency(s, at, &mut histogram);
                    }
                }
                Event::EpochRollover { .. } => {
                    epochs += 1;
                    for s in states.values_mut() {
                        s.count = 0;
                    }
                }
                Event::FullRefresh { .. } => {
                    for s in states.values_mut() {
                        s.count = 0;
                    }
                }
                Event::TargetedRefresh { bank, row, .. } => {
                    states.entry((bank, row)).or_default().count = 0;
                }
                Event::SwapStart { .. }
                | Event::HrtInstall { .. }
                | Event::HrtEvict { .. }
                | Event::CatRelocation { .. }
                | Event::Refresh { .. }
                | Event::SchedulerStall { .. }
                | Event::LlcHit { .. }
                | Event::LlcMiss { .. } => {}
            }
        }

        // Close residencies still open at trace end so long-lived rows
        // appear in the time-at-location histogram.
        for s in states.values_mut() {
            let len = last_at.saturating_sub(s.residency_start);
            if s.total > 0 || s.relocations > 0 {
                if let Some(slot) = histogram.get_mut(bucket(len)) {
                    *slot += 1;
                }
            }
        }

        let rows: Vec<RowExposure> = states
            .iter()
            .map(|(&(bank, row), s)| RowExposure {
                bank,
                row,
                max_exposure: s.max,
                total_activations: s.total,
                relocations: s.relocations,
            })
            .collect();

        let mut max_exposure = 0u64;
        let mut worst_row = None;
        for r in &rows {
            if r.max_exposure > max_exposure {
                max_exposure = r.max_exposure;
                worst_row = Some((r.bank, r.row));
            }
        }

        ExposureReport {
            config,
            max_exposure,
            worst_row,
            pass: max_exposure <= config.bound(),
            relocation_entropy_bits: relocation_entropy(&rows),
            residency_histogram: histogram,
            events_replayed: events.len() as u64,
            events_dropped,
            relocation_ops,
            epochs,
            rows,
        }
    }

    /// Rows with the highest exposure, worst first (ties by `(bank, row)`),
    /// at most `n`.
    pub fn top_rows(&self, n: usize) -> Vec<RowExposure> {
        let mut sorted = self.rows.clone();
        sorted.sort_by(|a, b| {
            b.max_exposure
                .cmp(&a.max_exposure)
                .then(a.bank.cmp(&b.bank))
                .then(a.row.cmp(&b.row))
        });
        sorted.truncate(n);
        sorted
    }

    /// Activations across all rows.
    pub fn total_activations(&self) -> u64 {
        self.rows.iter().map(|r| r.total_activations).sum()
    }

    /// The report as a deterministic JSON object (stable field and array
    /// order; the golden tests compare its bytes).
    pub fn to_json(&self) -> Json {
        let top: Vec<Json> = self
            .top_rows(16)
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("bank".to_string(), Json::u64(r.bank)),
                    ("row".to_string(), Json::u64(r.row)),
                    ("max_exposure".to_string(), Json::u64(r.max_exposure)),
                    (
                        "total_activations".to_string(),
                        Json::u64(r.total_activations),
                    ),
                    ("relocations".to_string(), Json::u64(r.relocations)),
                ])
            })
            .collect();
        let hist: Vec<Json> = self
            .residency_histogram
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::usize(i), Json::u64(c)]))
            .collect();
        let worst = match self.worst_row {
            Some((bank, row)) => Json::Obj(vec![
                ("bank".to_string(), Json::u64(bank)),
                ("row".to_string(), Json::u64(row)),
            ]),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("schema".to_string(), Json::str("rrs-forensics-v1")),
            (
                "swap_threshold".to_string(),
                Json::u64(self.config.swap_threshold),
            ),
            ("slack".to_string(), Json::u64(self.config.slack)),
            (
                "verdict".to_string(),
                Json::str(if self.pass { "pass" } else { "fail" }),
            ),
            ("max_exposure".to_string(), Json::u64(self.max_exposure)),
            ("worst_row".to_string(), worst),
            ("rows_tracked".to_string(), Json::usize(self.rows.len())),
            (
                "total_activations".to_string(),
                Json::u64(self.total_activations()),
            ),
            ("relocation_ops".to_string(), Json::u64(self.relocation_ops)),
            (
                "relocation_entropy_bits".to_string(),
                Json::f64(round4(self.relocation_entropy_bits)),
            ),
            ("epochs".to_string(), Json::u64(self.epochs)),
            ("residency_histogram_log2".to_string(), Json::Arr(hist)),
            (
                "events_replayed".to_string(),
                Json::u64(self.events_replayed),
            ),
            ("events_dropped".to_string(), Json::u64(self.events_dropped)),
            ("top_rows".to_string(), Json::Arr(top)),
        ])
    }

    /// A human-readable rendering of the report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let verdict = if self.pass { "PASS" } else { "FAIL" };
        out.push_str(&format!(
            "exposure verdict: {verdict} (max {} vs bound {} = threshold {} + slack {})\n",
            self.max_exposure,
            self.config.bound(),
            self.config.swap_threshold,
            self.config.slack,
        ));
        if let Some((bank, row)) = self.worst_row {
            out.push_str(&format!("worst row: bank {bank} row {row}\n"));
        }
        out.push_str(&format!(
            "rows tracked: {}  activations: {}  relocation ops: {}  epochs: {}\n",
            self.rows.len(),
            self.total_activations(),
            self.relocation_ops,
            self.epochs,
        ));
        out.push_str(&format!(
            "relocation entropy: {:.4} bits\n",
            self.relocation_entropy_bits
        ));
        if self.events_dropped > 0 {
            out.push_str(&format!(
                "WARNING: {} events dropped before recording — exposure is a lower bound\n",
                self.events_dropped
            ));
        }
        out.push_str("top rows (bank, row, max exposure, activations, relocations):\n");
        for r in self.top_rows(8) {
            out.push_str(&format!(
                "  bank {:>3} row {:>6}  max {:>6}  acts {:>8}  moved {:>4}\n",
                r.bank, r.row, r.max_exposure, r.total_activations, r.relocations
            ));
        }
        out
    }
}

/// Shannon entropy (bits) of the relocation distribution over rows.
fn relocation_entropy(rows: &[RowExposure]) -> f64 {
    let total: u64 = rows.iter().map(|r| r.relocations).sum();
    if total == 0 {
        return 0.0;
    }
    let mut bits = 0.0f64;
    for r in rows {
        if r.relocations > 0 {
            let p = r.relocations as f64 / total as f64;
            bits -= p * p.log2();
        }
    }
    bits
}

/// Rounds to 4 decimal places so the JSON lexeme is platform-stable.
fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u64, slack: u64) -> ExposureConfig {
        ExposureConfig {
            swap_threshold: threshold,
            slack,
        }
    }

    /// Hammer one row 10×, swap it away, hammer 10× more: max exposure is
    /// 10, not 20 — the swap broke the accumulation.
    #[test]
    fn swaps_reset_exposure() {
        let mut events = Vec::new();
        for i in 0..10 {
            events.push(Event::Activation {
                at: i,
                bank: 0,
                row: 5,
            });
        }
        events.push(Event::SwapDone {
            at: 10,
            bank: 0,
            row_a: 5,
            row_b: 900,
        });
        for i in 0..10 {
            events.push(Event::Activation {
                at: 11 + i,
                bank: 0,
                row: 5,
            });
        }
        let r = ExposureReport::reconstruct(&events, cfg(8, 2), 0);
        assert_eq!(r.max_exposure, 10);
        assert_eq!(r.worst_row, Some((0, 5)));
        assert!(r.pass, "10 <= 8 + 2");
        let row5 = r.rows.iter().find(|r| r.row == 5).unwrap();
        assert_eq!(row5.total_activations, 20);
        assert_eq!(row5.relocations, 1);
        let row900 = r.rows.iter().find(|r| r.row == 900).unwrap();
        assert_eq!(row900.relocations, 1);
        assert_eq!(row900.total_activations, 0);
        assert_eq!(r.relocation_ops, 1);
    }

    /// Without swaps the count just accumulates and the verdict fails.
    #[test]
    fn unmitigated_hammering_fails() {
        let events: Vec<Event> = (0..50)
            .map(|i| Event::Activation {
                at: i,
                bank: 1,
                row: 3,
            })
            .collect();
        let r = ExposureReport::reconstruct(&events, cfg(8, 2), 0);
        assert_eq!(r.max_exposure, 50);
        assert!(!r.pass);
    }

    /// Epoch rollovers (refresh windows) reset counts without ending
    /// residencies.
    #[test]
    fn epochs_reset_counts_but_not_residency() {
        let mut events = Vec::new();
        for i in 0..6 {
            events.push(Event::Activation {
                at: i,
                bank: 0,
                row: 1,
            });
        }
        events.push(Event::EpochRollover { at: 6, epoch: 0 });
        for i in 0..7 {
            events.push(Event::Activation {
                at: 7 + i,
                bank: 0,
                row: 1,
            });
        }
        let r = ExposureReport::reconstruct(&events, cfg(8, 0), 0);
        assert_eq!(r.max_exposure, 7, "per-window max, not 13");
        assert_eq!(r.epochs, 1);
        let row = r.rows.first().unwrap();
        assert_eq!(row.relocations, 0, "refresh is not a relocation");
    }

    #[test]
    fn targeted_refresh_resets_one_row() {
        let events = vec![
            Event::Activation {
                at: 0,
                bank: 0,
                row: 1,
            },
            Event::Activation {
                at: 1,
                bank: 0,
                row: 2,
            },
            Event::Activation {
                at: 2,
                bank: 0,
                row: 2,
            },
            Event::TargetedRefresh {
                at: 3,
                bank: 0,
                row: 2,
            },
            Event::Activation {
                at: 4,
                bank: 0,
                row: 2,
            },
        ];
        let r = ExposureReport::reconstruct(&events, cfg(10, 0), 0);
        let row2 = r.rows.iter().find(|r| r.row == 2).unwrap();
        assert_eq!(row2.max_exposure, 2, "refresh reset the running count");
        assert_eq!(row2.total_activations, 3);
    }

    /// Known entropy: 4 rows with equal relocation counts → 2 bits; a
    /// single ping-ponged pair → 1 bit.
    #[test]
    fn relocation_entropy_is_shannon() {
        let mut events = Vec::new();
        for (i, (a, b)) in [(1, 2), (3, 4)].iter().enumerate() {
            events.push(Event::SwapDone {
                at: i as u64,
                bank: 0,
                row_a: *a,
                row_b: *b,
            });
        }
        let r = ExposureReport::reconstruct(&events, cfg(1, 0), 0);
        assert!((r.relocation_entropy_bits - 2.0).abs() < 1e-9);

        let pair = vec![
            Event::SwapDone {
                at: 0,
                bank: 0,
                row_a: 1,
                row_b: 2,
            },
            Event::Unswap {
                at: 1,
                bank: 0,
                row_a: 1,
                row_b: 2,
            },
        ];
        let r = ExposureReport::reconstruct(&pair, cfg(1, 0), 0);
        assert!((r.relocation_entropy_bits - 1.0).abs() < 1e-9);
        assert_eq!(r.relocation_ops, 2);
    }

    /// Residency histogram: a swap at cycle 1024 puts one interval of
    /// length 1024 in bucket 10.
    #[test]
    fn residency_histogram_buckets_by_log2() {
        let events = vec![
            Event::Activation {
                at: 0,
                bank: 0,
                row: 1,
            },
            Event::SwapDone {
                at: 1024,
                bank: 0,
                row_a: 1,
                row_b: 2,
            },
        ];
        let r = ExposureReport::reconstruct(&events, cfg(4, 0), 0);
        // Both rows of the pair close a residency at the swap: each sat at
        // its location since cycle 0, so two intervals of 1024 → bucket 10.
        assert_eq!(r.residency_histogram[10], 2, "closed intervals of 1024");
        // Open residencies (rows 1 and 2 after the swap) close at trace
        // end with length 0 → bucket 0.
        assert_eq!(r.residency_histogram[0], 2);
    }

    #[test]
    fn empty_trace_passes_vacuously() {
        let r = ExposureReport::reconstruct(&[], cfg(8, 0), 0);
        assert_eq!(r.max_exposure, 0);
        assert!(r.pass);
        assert!(r.worst_row.is_none());
        assert_eq!(r.relocation_entropy_bits, 0.0);
    }

    #[test]
    fn json_is_deterministic_and_carries_verdict() {
        let events = vec![Event::Activation {
            at: 0,
            bank: 0,
            row: 1,
        }];
        let a = ExposureReport::reconstruct(&events, cfg(0, 0), 3);
        let b = ExposureReport::reconstruct(&events, cfg(0, 0), 3);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
        let json = a.to_json();
        assert_eq!(
            json.get("verdict").and_then(Json::as_str),
            Some("fail"),
            "1 activation > bound 0"
        );
        assert_eq!(json.get("events_dropped").and_then(Json::as_u64), Some(3));
        assert!(a.render_text().contains("FAIL"));
    }
}
