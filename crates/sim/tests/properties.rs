//! Property-based tests for the simulator layer: the LLC against a
//! reference model, the latency histogram against an exact quantile
//! reference, and determinism of the multi-core runner.

use rrs_check::check;
use rrs_mem_ctrl::mitigation::NoMitigation;
use rrs_sim::config::SystemConfig;
use rrs_sim::latency::LatencyStats;
use rrs_sim::llc::{Llc, LlcConfig};
use rrs_sim::runner::run;
use rrs_sim::trace::{TraceRecord, TraceSource};

/// Reference cache model: per-set vectors with explicit LRU ordering.
struct RefCache {
    sets: usize,
    ways: usize,
    line: u64,
    /// Per set: most-recent-first (tag, dirty).
    data: Vec<Vec<(u64, bool)>>,
}

impl RefCache {
    fn new(cfg: LlcConfig) -> Self {
        RefCache {
            sets: cfg.sets(),
            ways: cfg.ways,
            line: cfg.line_bytes as u64,
            data: vec![Vec::new(); cfg.sets()],
        }
    }

    fn access(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        let lineno = addr / self.line;
        let set = (lineno as usize) % self.sets;
        let tag = lineno / self.sets as u64;
        let ways = &mut self.data[set];
        if let Some(pos) = ways.iter().position(|(t, _)| *t == tag) {
            let (t, d) = ways.remove(pos);
            ways.insert(0, (t, d || is_write));
            return (true, None);
        }
        ways.insert(0, (tag, is_write));
        let wb = if ways.len() > self.ways {
            let (vt, vd) = ways.pop().expect("overflow entry");
            vd.then(|| (vt * self.sets as u64 + set as u64) * self.line)
        } else {
            None
        };
        (false, wb)
    }
}

/// The LLC agrees with the reference LRU model on hits and write-backs
/// for arbitrary access streams.
#[test]
fn llc_matches_reference_model() {
    check(|g| {
        let accesses = g.vec(1..400, |g| (g.u64_in(0..(1 << 16)), g.bool()));
        let cfg = LlcConfig::tiny_test();
        let mut llc = Llc::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (addr, is_write) in accesses {
            let got = llc.access(addr, is_write);
            let (hit, wb) = reference.access(addr, is_write);
            assert_eq!(got.hit, hit, "hit mismatch at {:#x}", addr);
            assert_eq!(got.writeback, wb, "writeback mismatch at {:#x}", addr);
        }
    });
}

/// The multi-core runner is deterministic: identical configurations
/// and sources produce bit-identical results.
#[test]
fn runner_is_deterministic() {
    check(|g| {
        let seed = g.u64();
        let instr = g.u64_in(500..5_000);
        let make_sources = |seed: u64| -> Vec<Box<dyn TraceSource>> {
            (0..2u64)
                .map(|core| {
                    let mut x = seed ^ (core << 32);
                    Box::new(move || {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        TraceRecord {
                            gap: (x >> 58) as u32,
                            addr: x % (1 << 22),
                            is_write: x & 1 == 0,
                        }
                    }) as Box<dyn TraceSource>
                })
                .collect()
        };
        let config = SystemConfig::test_config(instr);
        let a = run(
            &config,
            Box::new(NoMitigation::new()),
            make_sources(seed),
            "a",
        );
        let b = run(
            &config,
            Box::new(NoMitigation::new()),
            make_sources(seed),
            "b",
        );
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.core_ipc, b.core_ipc);
        assert_eq!(a.stats.activations, b.stats.activations);
        assert_eq!(a.stats.row_hits, b.stats.row_hits);
    });
}

/// The log₂-bucketed quantile estimate brackets the exact quantile of a
/// sorted reference vector: never below it, and less than 2× above it
/// (the bucket-edge overestimate bound the histogram's docs promise).
#[test]
fn quantile_matches_exact_reference_within_bucket_bound() {
    check(|g| {
        // Keep samples below the top bucket (2³⁹) so every estimate is a
        // bucket upper edge; the saturated-top-bucket path is covered by
        // the dedicated case below.
        let samples = g.vec(1..500, |g| g.u64_in(1..(1 << 38)));
        let mut h = LatencyStats::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &q in &[0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            // Exact quantile by the same ceil-rank convention.
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            assert!(
                est >= exact,
                "q={q}: estimate {est} below exact {exact} (n={})",
                sorted.len()
            );
            assert!(
                est < exact.saturating_mul(2),
                "q={q}: estimate {est} not within 2x of exact {exact} (n={})",
                sorted.len()
            );
        }
    });
}

/// Samples that saturate the top bucket report the observed maximum —
/// an exact answer, not a fictitious bucket edge.
#[test]
fn quantile_top_bucket_reports_exact_max() {
    check(|g| {
        let big = g.vec(1..50, |g| g.u64_in((1 << 39)..u64::MAX));
        let mut h = LatencyStats::new();
        for &v in &big {
            h.record(v);
        }
        let max = big.iter().copied().max().unwrap();
        assert_eq!(h.quantile(0.5), max);
        assert_eq!(h.quantile(1.0), max);
    });
}

/// Instruction accounting: every core retires at least the configured
/// budget, and IPC never exceeds the fetch width.
#[test]
fn runner_instruction_accounting() {
    check(|g| {
        let instr = g.u64_in(100..3_000);
        let config = SystemConfig::test_config(instr);
        let sources: Vec<Box<dyn TraceSource>> = (0..2u64)
            .map(|core| {
                let mut a = core << 24;
                Box::new(move || {
                    a += 64;
                    TraceRecord::read(10, a)
                }) as Box<dyn TraceSource>
            })
            .collect();
        let r = run(&config, Box::new(NoMitigation::new()), sources, "acct");
        assert!(r.total_instructions >= 2 * instr);
        for ipc in &r.core_ipc {
            assert!(*ipc <= config.fetch_width as f64 + 1e-9);
        }
    });
}
