//! System configuration (the paper's Table 2).

use rrs_mem_ctrl::controller::ControllerConfig;

use crate::llc::LlcConfig;

/// Full-system configuration for a simulation run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores (Table 2: 8 out-of-order cores).
    pub cores: usize,
    /// Fetch/retire width (Table 2: 4).
    pub fetch_width: u32,
    /// Reorder-buffer size (Table 2: 192). The core model approximates ROB
    /// stalling with a bounded outstanding-miss window.
    pub rob_size: usize,
    /// Maximum outstanding DRAM reads per core (memory-level parallelism;
    /// ≈ ROB size / typical instructions per miss).
    pub max_outstanding: usize,
    /// Memory-controller / DRAM configuration.
    pub controller: ControllerConfig,
    /// Shared LLC. `None` means traces are already cache-filtered (USIMM
    /// style); attack traces typically run with `None` as well because
    /// attackers flush or bypass caches.
    pub llc: Option<LlcConfig>,
    /// Instructions each core must retire for the run to complete.
    pub instructions_per_core: u64,
    /// Trace records a core issues back-to-back before other cores
    /// interleave. Models the row-hit batching of real (FR-)FCFS
    /// scheduling: without it, two sequential streams sharing a bank
    /// ping-pong the row buffer on every line, which no real controller
    /// allows.
    pub core_burst: usize,
}

impl SystemConfig {
    /// The paper's Table 2 baseline (with a configurable run length set by
    /// the harness — the paper uses 1 B instructions per core).
    pub fn asplos22_baseline(instructions_per_core: u64) -> Self {
        SystemConfig {
            cores: 8,
            fetch_width: 4,
            rob_size: 192,
            max_outstanding: 10,
            controller: ControllerConfig::asplos22_baseline(),
            llc: None,
            instructions_per_core,
            core_burst: 16,
        }
    }

    /// A small configuration for unit tests.
    pub fn test_config(instructions_per_core: u64) -> Self {
        SystemConfig {
            cores: 2,
            fetch_width: 4,
            rob_size: 192,
            max_outstanding: 8,
            controller: ControllerConfig::test_config(),
            llc: None,
            instructions_per_core,
            core_burst: 16,
        }
    }

    /// Replaces the controller configuration.
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// Enables the shared LLC.
    pub fn with_llc(mut self, llc: LlcConfig) -> Self {
        self.llc = Some(llc);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = SystemConfig::asplos22_baseline(1_000_000);
        assert_eq!(c.cores, 8);
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_size, 192);
        assert_eq!(c.controller.geometry.channels, 2);
        assert!(c.llc.is_none());
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::test_config(100).with_llc(LlcConfig::tiny_test());
        assert!(c.llc.is_some());
    }
}
