//! Streaming read-latency statistics: log₂-bucketed histogram with
//! percentile estimation, cheap enough to record every request.
//!
//! Memory-system evaluations live and die by tail latency — BlockHammer's
//! DoS exposure (§8.1) is precisely a tail-latency story — so the runner
//! records every read's request-to-data latency here.

use rrs_dram::timing::Cycle;

const BUCKETS: usize = 40;

/// Log₂-bucketed latency histogram.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: Cycle,
}

impl LatencyStats {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyStats {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Cycle) {
        let idx = (64 - latency.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += latency as u128;
        self.max = self.max.max(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean latency.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Cycle {
        self.max
    }

    /// Estimates the `q`-quantile (0 < q ≤ 1) as the upper edge of the
    /// bucket containing it — a ≤2× overestimate by construction, which is
    /// the right direction for tail-latency claims.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Cycle {
        assert!(q > 0.0 && q <= 1.0, "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= 63 { Cycle::MAX } else { (1 << i) - 1 };
            }
        }
        self.max
    }

    /// Convenience accessors for the usual trio.
    pub fn p50(&self) -> Cycle {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Cycle {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Cycle {
        self.quantile(0.99)
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyStats::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyStats::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.max(), 40);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantiles_bound_true_values_within_a_bucket() {
        let mut h = LatencyStats::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 of 1..=1000 is 500; bucket upper edge gives 511.
        let p50 = h.p50();
        assert!((500..1024).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((990..2048).contains(&p99), "p99 = {p99}");
        // Quantiles are monotone.
        assert!(h.quantile(0.25) <= h.p50());
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
    }

    #[test]
    fn tail_outliers_show_in_p99_not_p50() {
        let mut h = LatencyStats::new();
        for _ in 0..990 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000); // 1% pathological tail (a throttled access)
        }
        assert!(h.p50() < 256);
        assert!(h.quantile(0.999) >= 1_000_000 / 2);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn zero_quantile_panics() {
        LatencyStats::new().quantile(0.0);
    }
}
