//! Streaming read-latency statistics: log₂-bucketed histogram with
//! percentile estimation, cheap enough to record every request.
//!
//! Memory-system evaluations live and die by tail latency — BlockHammer's
//! DoS exposure (§8.1) is precisely a tail-latency story — so the runner
//! records every read's request-to-data latency here.

use rrs_dram::timing::Cycle;

/// Number of log₂ buckets — the same layout as
/// `rrs_telemetry::HISTOGRAM_BUCKETS`, so a telemetry histogram snapshot
/// converts into a `LatencyStats` by a plain field copy.
pub const BUCKETS: usize = 40;

/// Log₂-bucketed latency histogram.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: Cycle,
}

impl LatencyStats {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyStats {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Rebuilds a histogram from raw parts (a registry snapshot). The
    /// bucket layout must match [`BUCKETS`] log₂ buckets as produced by
    /// [`LatencyStats::record`].
    pub fn from_parts(buckets: [u64; BUCKETS], count: u64, sum: u128, max: Cycle) -> Self {
        LatencyStats {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Cycle) {
        let idx = (64 - latency.leading_zeros() as usize).min(BUCKETS - 1);
        if let Some(b) = self.buckets.get_mut(idx) {
            *b += 1;
        }
        self.count += 1;
        self.sum += latency as u128;
        self.max = self.max.max(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean latency.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Cycle {
        self.max
    }

    /// Estimates the `q`-quantile (0 < q ≤ 1) as the upper edge of the
    /// bucket containing it — a ≤2× overestimate by construction, which is
    /// the right direction for tail-latency claims. When the quantile
    /// lands in the saturated top bucket (samples of 2³⁹ cycles or more,
    /// whose upper edge is unbounded), the observed maximum is reported
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Cycle {
        assert!(q > 0.0 && q <= 1.0, "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The last bucket holds everything that saturated the
                // log₂ range; `(1 << i) - 1` would claim a fictitious
                // ~18-minute edge, so report what was actually seen.
                return if i == BUCKETS - 1 {
                    self.max
                } else {
                    (1 << i) - 1
                };
            }
        }
        self.max
    }

    /// Convenience accessors for the usual trio.
    pub fn p50(&self) -> Cycle {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Cycle {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Cycle {
        self.quantile(0.99)
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl rrs_json::ToJson for LatencyStats {
    fn to_json(&self) -> rrs_json::Json {
        use rrs_json::Json;
        Json::Obj(vec![
            (
                "buckets".into(),
                Json::Arr(self.buckets.iter().map(|&b| Json::u64(b)).collect()),
            ),
            ("count".into(), Json::u64(self.count)),
            ("sum".into(), Json::u128(self.sum)),
            ("max".into(), Json::u64(self.max)),
        ])
    }
}

impl rrs_json::FromJson for LatencyStats {
    fn from_json(json: &rrs_json::Json) -> Result<Self, rrs_json::JsonError> {
        use rrs_json::JsonError;
        let raw: Vec<u64> = Vec::from_json(json.field("buckets")?)?;
        if raw.len() != BUCKETS {
            return Err(JsonError(format!(
                "expected {BUCKETS} latency buckets, got {}",
                raw.len()
            )));
        }
        let mut buckets = [0u64; BUCKETS];
        buckets.copy_from_slice(&raw);
        Ok(LatencyStats {
            buckets,
            count: u64::from_json(json.field("count")?)?,
            sum: u128::from_json(json.field("sum")?)?,
            max: u64::from_json(json.field("max")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyStats::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyStats::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.max(), 40);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantiles_bound_true_values_within_a_bucket() {
        let mut h = LatencyStats::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 of 1..=1000 is 500; bucket upper edge gives 511.
        let p50 = h.p50();
        assert!((500..1024).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((990..2048).contains(&p99), "p99 = {p99}");
        // Quantiles are monotone.
        assert!(h.quantile(0.25) <= h.p50());
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
    }

    #[test]
    fn tail_outliers_show_in_p99_not_p50() {
        let mut h = LatencyStats::new();
        for _ in 0..990 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000); // 1% pathological tail (a throttled access)
        }
        assert!(h.p50() < 256);
        assert!(h.quantile(0.999) >= 1_000_000 / 2);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn zero_quantile_panics() {
        LatencyStats::new().quantile(0.0);
    }

    #[test]
    fn saturated_top_bucket_reports_observed_max() {
        let mut h = LatencyStats::new();
        h.record(1 << 50); // lands in the last bucket
        h.record(1 << 45);
        assert_eq!(h.p50(), 1 << 50, "top-bucket quantiles are the max");
        assert_eq!(h.p99(), 1 << 50);
        // Quantiles below the top bucket are unaffected.
        h.record(100);
        h.record(100);
        h.record(100);
        assert!(h.p50() < 256);
    }

    #[test]
    fn from_parts_round_trips_record() {
        let mut h = LatencyStats::new();
        for v in [3u64, 900, 1 << 20] {
            h.record(v);
        }
        let rebuilt = LatencyStats::from_parts(h.buckets, h.count, h.sum, h.max);
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.mean(), h.mean());
        assert_eq!(rebuilt.p99(), h.p99());
    }

    #[test]
    fn json_round_trip_preserves_histogram() {
        use rrs_json::{FromJson, ToJson};
        let mut h = LatencyStats::new();
        for v in [1u64, 100, 10_000, u64::MAX / 2] {
            h.record(v);
        }
        let back = LatencyStats::from_json(&h.to_json()).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.mean(), h.mean());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.p99(), h.p99());
        assert_eq!(
            back.to_json().to_string_compact(),
            h.to_json().to_string_compact()
        );
    }

    #[test]
    fn json_rejects_wrong_bucket_count() {
        use rrs_json::{FromJson, Json, ToJson};
        let mut j = LatencyStats::new().to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Arr(vec![Json::u64(0); 3]);
        }
        assert!(LatencyStats::from_json(&j).is_err());
    }
}
