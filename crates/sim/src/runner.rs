//! The multi-core simulation loop and its results.
//!
//! Cores are trace-driven: each retires `gap` non-memory instructions at
//! the fetch width, then issues its memory access to the shared controller.
//! Reads occupy one of a bounded set of outstanding-miss slots (the
//! memory-level-parallelism window that approximates ROB stalling); writes
//! are posted. Cores advance independently; a binary heap serializes their
//! requests into the controller in global time order, which yields the FCFS
//! scheduling of the paper's setup.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rrs_dram::command::CommandCounts;
use rrs_dram::hammer::BitFlip;
use rrs_dram::power::{DramPowerModel, PowerReport};
use rrs_dram::timing::Cycle;
use rrs_mem_ctrl::controller::{ControllerStats, MemoryController};
use rrs_mem_ctrl::mitigation::Mitigation;
use rrs_telemetry::Telemetry;

use crate::config::SystemConfig;
use crate::latency::LatencyStats;
use crate::llc::Llc;
use crate::trace::TraceSource;

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// Mitigation name.
    pub mitigation: String,
    /// Per-core IPC at the moment each core finished.
    pub core_ipc: Vec<f64>,
    /// Total instructions retired across cores.
    pub total_instructions: u64,
    /// Cycle at which the last core finished.
    pub cycles: Cycle,
    /// Controller statistics (activations, swaps, epochs, ...).
    pub stats: ControllerStats,
    /// Row Hammer bit flips observed during the run.
    pub bit_flips: Vec<BitFlip>,
    /// Aggregate DRAM command counts.
    pub command_counts: CommandCounts,
    /// LLC hit rate, when an LLC was configured.
    pub llc_hit_rate: Option<f64>,
    /// Read-latency distribution (request to data, in cycles).
    pub read_latency: LatencyStats,
}

impl SimResult {
    /// System throughput: total instructions / total cycles.
    pub fn aggregate_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_instructions as f64 / self.cycles as f64
        }
    }

    /// Geometric-mean of per-core IPCs.
    pub fn geomean_core_ipc(&self) -> f64 {
        if self.core_ipc.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = self.core_ipc.iter().map(|i| i.max(1e-12).ln()).sum();
        (log_sum / self.core_ipc.len() as f64).exp()
    }

    /// Performance normalized to a baseline run (Figure 6's y-axis):
    /// `IPC_this / IPC_baseline`.
    pub fn normalized_to(&self, baseline: &SimResult) -> f64 {
        let b = baseline.aggregate_ipc();
        if b == 0.0 {
            0.0
        } else {
            self.aggregate_ipc() / b
        }
    }

    /// Weighted speedup vs a baseline run of the same workload:
    /// `Σᵢ IPCᵢ / IPCᵢ_baseline` — the standard multiprogrammed
    /// throughput metric (equals core count when nothing slowed down).
    ///
    /// Returns `None` when the runs have different core counts (a
    /// per-core metric is meaningless across mismatched configurations).
    pub fn weighted_speedup(&self, baseline: &SimResult) -> Option<f64> {
        if self.core_ipc.len() != baseline.core_ipc.len() {
            return None;
        }
        Some(
            self.core_ipc
                .iter()
                .zip(&baseline.core_ipc)
                .map(|(a, b)| if *b > 0.0 { a / b } else { 0.0 })
                .sum(),
        )
    }

    /// Fairness vs a baseline run: `min slowdown / max slowdown` over
    /// cores (1.0 = perfectly fair, → 0 when one core is starved — the
    /// §8.1 denial-of-service signature).
    ///
    /// Returns `None` when the runs have different core counts.
    pub fn fairness(&self, baseline: &SimResult) -> Option<f64> {
        if self.core_ipc.len() != baseline.core_ipc.len() {
            return None;
        }
        let ratios: Vec<f64> = self
            .core_ipc
            .iter()
            .zip(&baseline.core_ipc)
            .map(|(a, b)| if *b > 0.0 { a / b } else { 0.0 })
            .collect();
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        Some(if max <= 0.0 || !min.is_finite() {
            0.0
        } else {
            min / max
        })
    }

    /// DRAM power report for this run.
    pub fn power_report(
        &self,
        timing: &rrs_dram::timing::TimingParams,
        lines_per_row: usize,
        ranks: usize,
    ) -> PowerReport {
        DramPowerModel::ddr4().report(
            &self.command_counts,
            self.cycles,
            timing,
            lines_per_row,
            ranks,
        )
    }
}

impl rrs_json::ToJson for SimResult {
    fn to_json(&self) -> rrs_json::Json {
        use rrs_json::Json;
        Json::Obj(vec![
            ("workload".into(), Json::str(&*self.workload)),
            ("mitigation".into(), Json::str(&*self.mitigation)),
            ("core_ipc".into(), self.core_ipc.to_json()),
            (
                "total_instructions".into(),
                Json::u64(self.total_instructions),
            ),
            ("cycles".into(), Json::u64(self.cycles)),
            ("stats".into(), self.stats.to_json()),
            ("bit_flips".into(), self.bit_flips.to_json()),
            ("command_counts".into(), self.command_counts.to_json()),
            ("llc_hit_rate".into(), self.llc_hit_rate.to_json()),
            ("read_latency".into(), self.read_latency.to_json()),
        ])
    }
}

impl rrs_json::FromJson for SimResult {
    fn from_json(json: &rrs_json::Json) -> Result<Self, rrs_json::JsonError> {
        Ok(SimResult {
            workload: String::from_json(json.field("workload")?)?,
            mitigation: String::from_json(json.field("mitigation")?)?,
            core_ipc: Vec::from_json(json.field("core_ipc")?)?,
            total_instructions: u64::from_json(json.field("total_instructions")?)?,
            cycles: u64::from_json(json.field("cycles")?)?,
            stats: ControllerStats::from_json(json.field("stats")?)?,
            bit_flips: Vec::from_json(json.field("bit_flips")?)?,
            command_counts: CommandCounts::from_json(json.field("command_counts")?)?,
            llc_hit_rate: Option::from_json(json.field("llc_hit_rate")?)?,
            read_latency: LatencyStats::from_json(json.field("read_latency")?)?,
        })
    }
}

struct CoreState {
    time: Cycle,
    retired: u64,
    outstanding: VecDeque<Cycle>,
    finish_time: Option<Cycle>,
}

/// Runs one simulation from *factories* rather than built instances.
///
/// The campaign engine describes cells declaratively and materializes the
/// mitigation and per-core sources only when — and on whichever worker
/// thread — the cell actually executes; call sites that already hold built
/// instances should keep using [`run`].
pub fn run_with<'a>(
    config: &SystemConfig,
    mitigation: impl FnOnce() -> Box<dyn Mitigation>,
    sources: impl FnOnce() -> Vec<Box<dyn TraceSource + 'a>>,
    workload_name: &str,
) -> SimResult {
    run(config, mitigation(), sources(), workload_name)
}

/// Runs one simulation: `sources[i]` drives core `i`.
///
/// Equivalent to [`run_probed`] with a fresh, disabled telemetry spine:
/// all accounting still flows through registry counters, but no events
/// are recorded and no probes fire.
///
/// # Panics
///
/// Panics if `sources.len()` differs from `config.cores`.
pub fn run(
    config: &SystemConfig,
    mitigation: Box<dyn Mitigation>,
    sources: Vec<Box<dyn TraceSource + '_>>,
    workload_name: &str,
) -> SimResult {
    run_probed(
        config,
        mitigation,
        sources,
        workload_name,
        &Telemetry::new(),
    )
}

/// Runs one simulation with every layer publishing onto `telemetry`.
///
/// The controller, scheduler-equivalent access path, LLC, and the runner's
/// own read-latency histogram all register on the shared spine; when the
/// spine is tracing (a recorder or probe is attached), structured
/// [`rrs_telemetry::Event`]s stream out as the simulation executes. The
/// caller keeps the handle, so after this returns it can export
/// `telemetry.snapshot_json()` or `telemetry.trace_jsonl()`.
///
/// The returned [`SimResult`] is byte-identical to [`run`]'s for the same
/// inputs regardless of tracing state — observation must not perturb the
/// experiment.
///
/// # Panics
///
/// Panics if `sources.len()` differs from `config.cores`.
pub fn run_probed(
    config: &SystemConfig,
    mitigation: Box<dyn Mitigation>,
    mut sources: Vec<Box<dyn TraceSource + '_>>,
    workload_name: &str,
    telemetry: &Telemetry,
) -> SimResult {
    assert_eq!(
        sources.len(),
        config.cores,
        "one trace source per core required"
    );
    let mut mc =
        MemoryController::with_telemetry(config.controller.clone(), mitigation, telemetry.clone());
    let mitigation_name = mc.mitigation_name().to_string();
    let mut llc = config
        .llc
        .map(|c| Llc::with_telemetry(c, telemetry.clone()));

    let mut cores: Vec<CoreState> = (0..config.cores)
        .map(|_| CoreState {
            time: 0,
            retired: 0,
            outstanding: VecDeque::new(),
            finish_time: None,
        })
        .collect();

    // Min-heap of (next event time, core id).
    let mut heap: BinaryHeap<Reverse<(Cycle, usize)>> =
        (0..config.cores).map(|i| Reverse((0, i))).collect();
    let read_latency = telemetry.histogram("sim.read_latency");

    let burst = config.core_burst.max(1);
    while let Some(Reverse((_, cid))) = heap.pop() {
        // The heap only ever holds core ids `< config.cores`, which both
        // vectors were sized from.
        let (Some(source), Some(core)) = (sources.get_mut(cid), cores.get_mut(cid)) else {
            continue;
        };
        let mut finished = false;
        for _ in 0..burst {
            let rec = source.next_record();

            // Retire the gap at fetch width.
            core.time += (rec.gap as u64).div_ceil(config.fetch_width as u64);

            // Cache filter (if configured). A record produces at most two
            // DRAM accesses (demand miss + dirty write-back), so a fixed
            // slot pair avoids a per-record heap allocation on the hot path.
            let mut to_dram = [(rec.addr, rec.is_write), (0, false)];
            let mut n_dram = 1;
            if let Some(llc) = llc.as_mut() {
                if telemetry.tracing() {
                    telemetry.set_now(core.time);
                }
                let out = llc.access(rec.addr, rec.is_write);
                n_dram = 0;
                if out.hit {
                    core.time += llc.config().hit_latency;
                } else {
                    n_dram = 1;
                    if let Some(wb) = out.writeback {
                        to_dram[1] = (wb, true);
                        n_dram = 2;
                    }
                }
            }

            for &(addr, is_write) in to_dram.iter().take(n_dram) {
                let done = mc.access(addr, is_write, core.time);
                if !is_write {
                    read_latency.record(done.saturating_sub(core.time).max(1));
                    core.outstanding.push_back(done);
                    if core.outstanding.len() >= config.max_outstanding {
                        if let Some(oldest) = core.outstanding.pop_front() {
                            core.time = core.time.max(oldest);
                        }
                    }
                }
            }

            core.retired += rec.instructions();
            if core.retired >= config.instructions_per_core {
                // Drain outstanding reads before declaring the core done.
                let drain = core.outstanding.iter().copied().max().unwrap_or(0);
                core.finish_time = Some(core.time.max(drain));
                finished = true;
                break;
            }
        }
        if !finished {
            heap.push(Reverse((core.time, cid)));
        }
    }

    // Close the accounting epoch so per-epoch statistics include the tail.
    mc.flush_epoch();

    let core_ipc: Vec<f64> = cores
        .iter()
        .map(|c| {
            let t = c.finish_time.unwrap_or(c.time).max(1);
            c.retired as f64 / t as f64
        })
        .collect();
    let cycles = cores
        .iter()
        .map(|c| c.finish_time.unwrap_or(c.time))
        .max()
        .unwrap_or(0);
    let total_instructions = cores.iter().map(|c| c.retired).sum();
    let bit_flips = mc.take_bit_flips();
    let command_counts = mc.command_counts();

    // Snapshot (not drain) the registry: the caller's spine keeps the
    // run's counters and histograms for inspection after `run_probed`
    // returns. Reusing one spine across runs therefore accumulates; pass
    // a fresh spine per run to keep observations separable.
    let latency = read_latency.snapshot();
    SimResult {
        workload: workload_name.to_string(),
        mitigation: mitigation_name,
        core_ipc,
        total_instructions,
        cycles,
        stats: mc.stats(),
        bit_flips,
        command_counts,
        llc_hit_rate: llc.map(|l| l.hit_rate()),
        read_latency: LatencyStats::from_parts(
            latency.buckets,
            latency.count,
            latency.sum,
            latency.max,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;
    use rrs_mem_ctrl::mitigation::NoMitigation;

    fn stream_source(stride: u64, start: u64) -> Box<dyn TraceSource> {
        let mut addr = start;
        Box::new(move || {
            addr += stride;
            TraceRecord::read(40, addr)
        })
    }

    #[test]
    fn run_completes_and_reports_ipc() {
        let config = SystemConfig::test_config(10_000);
        let sources = vec![stream_source(64, 0), stream_source(64, 1 << 24)];
        let r = run(&config, Box::new(NoMitigation::new()), sources, "stream");
        assert_eq!(r.core_ipc.len(), 2);
        assert!(r.total_instructions >= 20_000);
        assert!(r.aggregate_ipc() > 0.1, "ipc = {}", r.aggregate_ipc());
        assert!(r.aggregate_ipc() <= 8.0);
        assert_eq!(r.workload, "stream");
        assert_eq!(r.mitigation, "none");
    }

    #[test]
    fn memory_bound_core_is_slower_than_compute_bound() {
        let config = SystemConfig::test_config(5_000);
        // Compute-bound: huge gaps. Memory-bound: no gaps, random rows.
        let compute = {
            let mut addr = 0u64;
            Box::new(move || {
                addr += 64;
                TraceRecord::read(400, addr)
            }) as Box<dyn TraceSource>
        };
        let mut x = 7u64;
        let memory = Box::new(move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            TraceRecord::read(0, x % (1 << 23))
        }) as Box<dyn TraceSource>;
        let r = run(
            &config,
            Box::new(NoMitigation::new()),
            vec![compute, memory],
            "mixed",
        );
        assert!(
            r.core_ipc[0] > r.core_ipc[1],
            "compute {} vs memory {}",
            r.core_ipc[0],
            r.core_ipc[1]
        );
    }

    #[test]
    fn llc_filters_dram_traffic() {
        let mut config = SystemConfig::test_config(5_000);
        config.llc = Some(crate::llc::LlcConfig::tiny_test());
        config.cores = 1;
        // A tiny working set fits in the LLC: almost no DRAM traffic.
        let mut i = 0u64;
        let src = Box::new(move || {
            i += 1;
            TraceRecord::read(10, (i % 16) * 64)
        }) as Box<dyn TraceSource>;
        let r = run(&config, Box::new(NoMitigation::new()), vec![src], "cached");
        assert!(r.llc_hit_rate.unwrap() > 0.9);
        assert!(r.stats.reads < 100);
    }

    #[test]
    fn partial_epoch_is_flushed_into_history() {
        let config = SystemConfig::test_config(2_000);
        let sources = vec![stream_source(64, 0), stream_source(64, 1 << 24)];
        let r = run(&config, Box::new(NoMitigation::new()), sources, "x");
        assert!(!r.stats.epoch_swap_history.is_empty());
    }

    #[test]
    fn multiprogram_metrics_against_self_are_ideal() {
        let config = SystemConfig::test_config(3_000);
        let mk = || vec![stream_source(64, 0), stream_source(64, 1 << 24)];
        let a = run(&config, Box::new(NoMitigation::new()), mk(), "a");
        let b = run(&config, Box::new(NoMitigation::new()), mk(), "b");
        assert!((a.weighted_speedup(&b).unwrap() - 2.0).abs() < 1e-9);
        assert!((a.fairness(&b).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_core_counts_yield_none() {
        let config = SystemConfig::test_config(3_000);
        let sources = vec![stream_source(64, 0), stream_source(64, 1 << 24)];
        let two_core = run(&config, Box::new(NoMitigation::new()), sources, "two");
        let no_core = empty_result();
        assert_eq!(two_core.weighted_speedup(&no_core), None);
        assert_eq!(two_core.fairness(&no_core), None);
        assert_eq!(no_core.weighted_speedup(&two_core), None);
        assert_eq!(no_core.fairness(&two_core), None);
    }

    #[test]
    fn fairness_detects_a_starved_core() {
        let config = SystemConfig::test_config(3_000);
        let fast = vec![stream_source(64, 0), stream_source(64, 1 << 24)];
        let base = run(&config, Box::new(NoMitigation::new()), fast, "base");
        // Second core runs a pathological random row-miss stream.
        let mut x = 7u64;
        let slow: Vec<Box<dyn TraceSource>> = vec![
            stream_source(64, 0),
            Box::new(move || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                TraceRecord::read(0, x % (1 << 23))
            }),
        ];
        let skewed = run(&config, Box::new(NoMitigation::new()), slow, "skewed");
        let fairness = skewed.fairness(&base).unwrap();
        assert!(fairness < 0.8, "fairness = {fairness}");
        assert!(skewed.weighted_speedup(&base).unwrap() < 2.0);
    }

    #[test]
    #[should_panic(expected = "one trace source per core")]
    fn wrong_source_count_panics() {
        let config = SystemConfig::test_config(100);
        run(&config, Box::new(NoMitigation::new()), vec![], "bad");
    }

    #[test]
    fn run_with_builds_from_factories() {
        let config = SystemConfig::test_config(1_000);
        let r = run_with(
            &config,
            || Box::new(NoMitigation::new()),
            || vec![stream_source(64, 0), stream_source(64, 1 << 24)],
            "factory",
        );
        assert_eq!(r.workload, "factory");
        assert!(r.aggregate_ipc() > 0.0);
    }

    fn empty_result() -> SimResult {
        SimResult {
            workload: "w".into(),
            mitigation: "m".into(),
            core_ipc: vec![],
            total_instructions: 0,
            cycles: 0,
            stats: Default::default(),
            bit_flips: vec![],
            command_counts: Default::default(),
            llc_hit_rate: None,
            read_latency: LatencyStats::new(),
        }
    }

    #[test]
    fn geomean_of_no_cores_is_zero() {
        assert_eq!(empty_result().geomean_core_ipc(), 0.0);
    }

    #[test]
    fn aggregate_ipc_guards_zero_cycles() {
        let mut r = empty_result();
        r.total_instructions = 100;
        assert_eq!(r.aggregate_ipc(), 0.0);
    }

    #[test]
    fn normalized_to_zero_cycle_baseline_is_zero() {
        let config = SystemConfig::test_config(1_000);
        let sources = vec![stream_source(64, 0), stream_source(64, 1 << 24)];
        let real = run(&config, Box::new(NoMitigation::new()), sources, "real");
        assert!(real.aggregate_ipc() > 0.0);
        // A degenerate baseline (zero cycles => zero IPC) must not divide
        // by zero or return infinity.
        let degenerate = empty_result();
        let n = real.normalized_to(&degenerate);
        assert_eq!(n, 0.0);
        assert!(n.is_finite());
    }

    #[test]
    fn sim_result_json_round_trips() {
        use rrs_json::{FromJson, Json, ToJson};
        let config = SystemConfig::test_config(2_000);
        let sources = vec![stream_source(64, 0), stream_source(64, 1 << 24)];
        let r = run(&config, Box::new(NoMitigation::new()), sources, "json");
        let text = r.to_json().to_string_pretty();
        let back = SimResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.core_ipc, r.core_ipc);
        assert_eq!(back.stats.activations, r.stats.activations);
        assert_eq!(back.stats.epoch_swap_history, r.stats.epoch_swap_history);
        // Byte-identity under re-serialization: the campaign cache depends
        // on it.
        assert_eq!(back.to_json().to_string_pretty(), text);
    }
}
