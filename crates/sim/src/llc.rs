//! Shared last-level cache: set-associative, LRU, write-back.
//!
//! The baseline system (Table 2) has an 8 MB, 16-way shared LLC with 64 B
//! lines. Workload generators in this reproduction emit post-cache traces
//! (like USIMM's), so the LLC is optional in the simulator — but attack
//! traces and raw-address workloads can run through it to model cache
//! filtering and write-back traffic.
//!
//! Hit/miss accounting lives on the telemetry spine (`llc.hits` /
//! `llc.misses` counters, plus per-access events when tracing); cloning an
//! [`Llc`] therefore shares its counters with the clone.

use rrs_telemetry::{Counter, Event, Telemetry};

/// LLC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in CPU cycles.
    pub hit_latency: u64,
}

impl LlcConfig {
    /// Table 2: 8 MB, 16-way, 64 B lines.
    pub fn asplos22_baseline() -> Self {
        LlcConfig {
            capacity_bytes: 8 << 20,
            ways: 16,
            line_bytes: 64,
            hit_latency: 40,
        }
    }

    /// A small cache for tests.
    pub fn tiny_test() -> Self {
        LlcConfig {
            capacity_bytes: 8 << 10,
            ways: 4,
            line_bytes: 64,
            hit_latency: 10,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// A dirty line evicted by this access (address of its first byte),
    /// which must be written back to memory.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU stamp: larger = more recent.
    lru: u64,
    valid: bool,
}

/// The shared last-level cache.
#[derive(Debug, Clone)]
pub struct Llc {
    config: LlcConfig,
    sets: usize,
    lines: Vec<Line>,
    stamp: u64,
    telemetry: Telemetry,
    hits: Counter,
    misses: Counter,
}

impl Llc {
    /// Creates an empty cache with a private telemetry spine.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two.
    pub fn new(config: LlcConfig) -> Self {
        Self::with_telemetry(config, Telemetry::new())
    }

    /// Creates an empty cache publishing `llc.*` counters (and
    /// [`Event::LlcHit`] / [`Event::LlcMiss`] events, when tracing) on
    /// `telemetry`. Events are stamped with the spine's shared clock.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two.
    pub fn with_telemetry(config: LlcConfig, telemetry: Telemetry) -> Self {
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "LLC sets must be a power of two");
        Llc {
            config,
            sets,
            lines: vec![
                Line {
                    tag: 0,
                    dirty: false,
                    lru: 0,
                    valid: false
                };
                sets * config.ways
            ],
            stamp: 0,
            hits: telemetry.counter("llc.hits"),
            misses: telemetry.counter("llc.misses"),
            telemetry,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> LlcConfig {
        self.config
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        ((line as usize) & (self.sets - 1), line / self.sets as u64)
    }

    /// Accesses `addr`; on a miss the line is allocated (write-allocate) and
    /// the LRU victim, if dirty, is returned for write-back.
    pub fn access(&mut self, addr: u64, is_write: bool) -> LlcOutcome {
        self.stamp += 1;
        let (set, tag) = self.index(addr);
        let base = set * self.config.ways;
        let ways = self
            .lines
            .get_mut(base..base + self.config.ways)
            .unwrap_or(&mut []);

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.stamp;
            line.dirty |= is_write;
            self.hits.inc();
            if self.telemetry.tracing() {
                let at = self.telemetry.now();
                self.telemetry.emit(Event::LlcHit { at, addr });
            }
            return LlcOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.misses.inc();
        if self.telemetry.tracing() {
            let at = self.telemetry.now();
            self.telemetry.emit(Event::LlcMiss { at, addr });
        }
        // Victim: invalid way if any, else LRU.
        let Some(v) = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
        else {
            return LlcOutcome {
                hit: false,
                writeback: None,
            };
        };
        let writeback = (v.valid && v.dirty)
            .then(|| (v.tag * self.sets as u64 + set as u64) * self.config.line_bytes as u64);
        *v = Line {
            tag,
            dirty: is_write,
            lru: self.stamp,
            valid: true,
        };
        LlcOutcome {
            hit: false,
            writeback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc() -> Llc {
        Llc::new(LlcConfig::tiny_test())
    }

    #[test]
    fn baseline_shape_matches_table2() {
        let c = LlcConfig::asplos22_baseline();
        assert_eq!(c.sets(), 8192);
        assert_eq!(c.ways, 16);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = llc();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1004, false).hit, "same line");
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = llc();
        let cfg = c.config();
        let set_stride = (cfg.sets() * cfg.line_bytes) as u64;
        // Fill one set with dirty lines, then overflow it.
        c.access(0, true);
        for i in 1..=cfg.ways as u64 {
            let out = c.access(i * set_stride, false);
            if i == cfg.ways as u64 {
                assert_eq!(out.writeback, Some(0), "LRU dirty line written back");
            } else {
                assert_eq!(out.writeback, None);
            }
        }
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = llc();
        let cfg = c.config();
        let set_stride = (cfg.sets() * cfg.line_bytes) as u64;
        for i in 0..=cfg.ways as u64 {
            let out = c.access(i * set_stride, false);
            assert_eq!(out.writeback, None);
        }
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = llc();
        let cfg = c.config();
        let set_stride = (cfg.sets() * cfg.line_bytes) as u64;
        for i in 0..cfg.ways as u64 {
            c.access(i * set_stride, false);
        }
        // Touch line 0 so line 1 becomes LRU.
        c.access(0, false);
        c.access(cfg.ways as u64 * set_stride, false); // evicts line 1
        assert!(c.access(0, false).hit, "recently used line retained");
        assert!(!c.access(set_stride, false).hit, "LRU line evicted");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        // The hmmer/bzip2 mechanism (§4.6): a working set slightly larger
        // than the LLC causes continuous misses under cyclic access.
        let mut c = llc();
        let lines = (c.config().capacity_bytes / c.config().line_bytes) as u64 * 2;
        for round in 0..3 {
            for i in 0..lines {
                let out = c.access(i * 64, false);
                if round > 0 {
                    assert!(!out.hit, "cyclic over-capacity access must thrash");
                }
            }
        }
    }
}
