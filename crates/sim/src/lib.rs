#![warn(missing_docs)]

//! Trace-driven multi-core memory-system simulator (the USIMM substitute).
//!
//! * [`trace`] — the trace-record interface between generators and cores,
//! * [`llc`] — the shared last-level cache (Table 2: 8 MB / 16-way),
//! * [`config`] — full-system configuration,
//! * [`runner`] — the simulation loop and [`SimResult`].
//!
//! # Example
//!
//! ```
//! use rrs_sim::{run, SystemConfig, TraceRecord, TraceSource};
//! use rrs_mem_ctrl::NoMitigation;
//!
//! let config = SystemConfig::test_config(1_000);
//! let mk = |base: u64| -> Box<dyn TraceSource> {
//!     let mut a = base;
//!     Box::new(move || { a += 64; TraceRecord::read(20, a) })
//! };
//! let result = run(
//!     &config,
//!     Box::new(NoMitigation::new()),
//!     vec![mk(0), mk(1 << 24)],
//!     "quick",
//! );
//! assert!(result.aggregate_ipc() > 0.0);
//! ```

pub mod config;
pub mod latency;
pub mod llc;
pub mod runner;
pub mod trace;

pub use config::SystemConfig;
pub use latency::LatencyStats;
pub use llc::{Llc, LlcConfig};
pub use runner::{run, run_probed, run_with, SimResult};
pub use trace::{TraceRecord, TraceSource};
