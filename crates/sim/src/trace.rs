//! Trace interface between workload generators and the simulator.
//!
//! Following USIMM's trace format, a trace is a stream of memory accesses
//! annotated with the number of non-memory instructions preceding each
//! access (traces are pre-filtered through the cache hierarchy, so these are
//! main-memory accesses). Generators produce records on the fly; the
//! simulator never materializes a full trace.

/// One trace record: `gap` non-memory instructions, then a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Non-memory instructions retired before this access.
    pub gap: u32,
    /// Physical byte address of the access.
    pub addr: u64,
    /// Whether the access is a write.
    pub is_write: bool,
}

impl TraceRecord {
    /// A read record.
    pub fn read(gap: u32, addr: u64) -> Self {
        TraceRecord {
            gap,
            addr,
            is_write: false,
        }
    }

    /// A write record.
    pub fn write(gap: u32, addr: u64) -> Self {
        TraceRecord {
            gap,
            addr,
            is_write: true,
        }
    }

    /// Instructions this record accounts for (gap + the access itself).
    pub fn instructions(&self) -> u64 {
        self.gap as u64 + 1
    }
}

/// An endless source of trace records (rate mode: generators wrap around
/// rather than terminate, per §3's "run the workloads in rate mode").
pub trait TraceSource {
    /// Produces the next record.
    fn next_record(&mut self) -> TraceRecord;

    /// Short name for reporting.
    fn name(&self) -> &str {
        "trace"
    }
}

impl<F> TraceSource for F
where
    F: FnMut() -> TraceRecord,
{
    fn next_record(&mut self) -> TraceRecord {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_constructors() {
        let r = TraceRecord::read(10, 0x40);
        assert!(!r.is_write);
        assert_eq!(r.instructions(), 11);
        let w = TraceRecord::write(0, 0x80);
        assert!(w.is_write);
        assert_eq!(w.instructions(), 1);
    }

    #[test]
    fn closures_are_trace_sources() {
        let mut n = 0u64;
        let mut src = move || {
            n += 64;
            TraceRecord::read(5, n)
        };
        let a = TraceSource::next_record(&mut src);
        let b = TraceSource::next_record(&mut src);
        assert_eq!(a.addr, 64);
        assert_eq!(b.addr, 128);
    }
}
