//! Integration: capturing a calibrated generator and replaying it through
//! the simulator is equivalent to running the generator live.

use rrs_mem_ctrl::mitigation::NoMitigation;
use rrs_sim::config::SystemConfig;
use rrs_sim::runner::run;
use rrs_sim::trace::TraceSource;
use rrs_trace::{capture, read_records, write_records, ReplaySource, TraceFormat};
use rrs_workloads::catalog::spec_by_name;
use rrs_workloads::generator::{GenParams, SyntheticWorkload};

fn generator(core: usize, config: &SystemConfig) -> SyntheticWorkload {
    let mapper = rrs_mem_ctrl::mapping::AddressMapper::new(config.controller.geometry);
    let spec = spec_by_name("gcc").expect("catalog");
    SyntheticWorkload::new(&spec, core, GenParams::from_system(config), &mapper, 77)
}

#[test]
fn captured_replay_matches_live_run() {
    let config = SystemConfig::test_config(20_000);
    // Capture enough records to cover the run without wrapping.
    let captured: Vec<Vec<_>> = (0..config.cores)
        .map(|c| capture(&mut generator(c, &config), 30_000))
        .collect();

    let live: Vec<Box<dyn TraceSource>> = (0..config.cores)
        .map(|c| Box::new(generator(c, &config)) as Box<dyn TraceSource>)
        .collect();
    let replayed: Vec<Box<dyn TraceSource>> = captured
        .iter()
        .map(|r| Box::new(ReplaySource::new(r.clone(), "replay")) as Box<dyn TraceSource>)
        .collect();

    let a = run(&config, Box::new(NoMitigation::new()), live, "live");
    let b = run(&config, Box::new(NoMitigation::new()), replayed, "replay");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats.activations, b.stats.activations);
    assert_eq!(a.stats.row_hits, b.stats.row_hits);
    assert_eq!(a.core_ipc, b.core_ipc);
}

#[test]
fn round_trip_through_both_formats_preserves_sim_behavior() {
    let config = SystemConfig::test_config(5_000);
    let records = capture(&mut generator(0, &config), 8_000);
    for format in [TraceFormat::Binary, TraceFormat::Text] {
        let mut buf = Vec::new();
        write_records(&mut buf, &records, format).unwrap();
        let loaded = read_records(&buf[..]).unwrap();
        assert_eq!(loaded, records, "{format:?} round trip changed records");
    }
}
