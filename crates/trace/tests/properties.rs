//! Property-based tests for the trace codecs: round-trips for arbitrary
//! records, and no panics on arbitrary (malformed) input bytes.

use proptest::collection::vec;
use proptest::prelude::*;

use rrs_sim::trace::TraceRecord;
use rrs_trace::{read_records, write_records, TraceFormat};

fn records() -> impl Strategy<Value = Vec<TraceRecord>> {
    vec(
        (any::<u32>(), any::<u64>(), any::<bool>()).prop_map(|(gap, addr, is_write)| TraceRecord {
            gap,
            addr,
            is_write,
        }),
        0..100,
    )
}

proptest! {
    /// Binary round-trip is exact for any record set.
    #[test]
    fn binary_round_trip(recs in records()) {
        let mut buf = Vec::new();
        write_records(&mut buf, &recs, TraceFormat::Binary).unwrap();
        prop_assert_eq!(read_records(&buf[..]).unwrap(), recs);
    }

    /// Text round-trip is exact for any record set.
    #[test]
    fn text_round_trip(recs in records()) {
        let mut buf = Vec::new();
        write_records(&mut buf, &recs, TraceFormat::Text).unwrap();
        prop_assert_eq!(read_records(&buf[..]).unwrap(), recs);
    }

    /// Arbitrary bytes never panic the reader — they parse or they error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..200)) {
        let _ = read_records(&bytes[..]);
    }

    /// Arbitrary bytes *behind a valid binary header* never panic either.
    #[test]
    fn arbitrary_binary_bodies_never_panic(bytes in vec(any::<u8>(), 0..200)) {
        let mut buf = Vec::new();
        buf.extend_from_slice(rrs_trace::MAGIC);
        buf.extend_from_slice(&rrs_trace::VERSION.to_le_bytes());
        buf.extend_from_slice(&bytes);
        match read_records(&buf[..]) {
            Ok(recs) => prop_assert_eq!(recs.len(), bytes.len() / 13),
            Err(e) => prop_assert!(matches!(e, rrs_trace::TraceError::Truncated)),
        }
    }

    /// Text lines with arbitrary whitespace and case parse equivalently.
    #[test]
    fn text_is_whitespace_tolerant(gap in any::<u32>(), addr in any::<u64>()) {
        let canonical = format!("{gap} R {addr:#x}\n");
        let messy = format!("  {gap}\t r   {addr:#X}  \n");
        let a = read_records(canonical.as_bytes()).unwrap();
        let b = read_records(messy.as_bytes()).unwrap();
        prop_assert_eq!(a, b);
    }
}
