//! Property-based tests for the trace codecs: round-trips for arbitrary
//! records, and no panics on arbitrary (malformed) input bytes.

use rrs_check::{check, Gen};
use rrs_sim::trace::TraceRecord;
use rrs_trace::{read_records, write_records, TraceFormat};

fn records(g: &mut Gen) -> Vec<TraceRecord> {
    g.vec(0..100, |g| TraceRecord {
        gap: g.u32(),
        addr: g.u64(),
        is_write: g.bool(),
    })
}

/// Binary round-trip is exact for any record set.
#[test]
fn binary_round_trip() {
    check(|g| {
        let recs = records(g);
        let mut buf = Vec::new();
        write_records(&mut buf, &recs, TraceFormat::Binary).unwrap();
        assert_eq!(read_records(&buf[..]).unwrap(), recs);
    });
}

/// Text round-trip is exact for any record set.
#[test]
fn text_round_trip() {
    check(|g| {
        let recs = records(g);
        let mut buf = Vec::new();
        write_records(&mut buf, &recs, TraceFormat::Text).unwrap();
        assert_eq!(read_records(&buf[..]).unwrap(), recs);
    });
}

/// Arbitrary bytes never panic the reader — they parse or they error.
#[test]
fn arbitrary_bytes_never_panic() {
    check(|g| {
        let bytes = g.vec(0..200, |g| g.u8());
        let _ = read_records(&bytes[..]);
    });
}

/// Arbitrary bytes *behind a valid binary header* never panic either.
#[test]
fn arbitrary_binary_bodies_never_panic() {
    check(|g| {
        let bytes = g.vec(0..200, |g| g.u8());
        let mut buf = Vec::new();
        buf.extend_from_slice(rrs_trace::MAGIC);
        buf.extend_from_slice(&rrs_trace::VERSION.to_le_bytes());
        buf.extend_from_slice(&bytes);
        match read_records(&buf[..]) {
            Ok(recs) => assert_eq!(recs.len(), bytes.len() / 13),
            Err(e) => assert!(matches!(e, rrs_trace::TraceError::Truncated)),
        }
    });
}

/// Text lines with arbitrary whitespace and case parse equivalently.
#[test]
fn text_is_whitespace_tolerant() {
    check(|g| {
        let gap = g.u32();
        let addr = g.u64();
        let canonical = format!("{gap} R {addr:#x}\n");
        let messy = format!("  {gap}\t r   {addr:#X}  \n");
        let a = read_records(canonical.as_bytes()).unwrap();
        let b = read_records(messy.as_bytes()).unwrap();
        assert_eq!(a, b);
    });
}
