#![warn(missing_docs)]

//! Trace file I/O for the RRS simulator.
//!
//! The paper's artifact drives USIMM with pre-recorded memory-access traces
//! (Pin-generated, cache-filtered). This crate provides the equivalent for
//! this reproduction:
//!
//! * a **text format** in the USIMM spirit — one access per line,
//!   `<gap> <R|W> <hex address>` — human-readable and diffable;
//! * a compact **binary format** (`RRST`) for long traces;
//! * [`ReplaySource`], a [`TraceSource`] that replays a loaded trace in
//!   rate mode (wrapping at the end, as §3's methodology does);
//! * [`capture`], which records any live generator into a trace file.
//!
//! # Example
//!
//! ```
//! use rrs_trace::{ReplaySource, TraceFormat};
//! use rrs_sim::trace::{TraceRecord, TraceSource};
//!
//! let records = vec![TraceRecord::read(10, 0x40), TraceRecord::write(0, 0x80)];
//! let mut buf = Vec::new();
//! rrs_trace::write_records(&mut buf, &records, TraceFormat::Text)?;
//! let loaded = rrs_trace::read_records(&buf[..])?;
//! assert_eq!(loaded, records);
//!
//! let mut replay = ReplaySource::new(loaded, "demo");
//! assert_eq!(replay.next_record().addr, 0x40);
//! # Ok::<(), rrs_trace::TraceError>(())
//! ```

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use rrs_sim::trace::{TraceRecord, TraceSource};

/// Magic bytes of the binary format.
pub const MAGIC: &[u8; 4] = b"RRST";
/// Current binary format version.
pub const VERSION: u32 = 1;

/// On-disk representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// `<gap> <R|W> <hex address>` per line.
    Text,
    /// `RRST` header + fixed 13-byte records.
    Binary,
}

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The binary header was not `RRST`.
    BadMagic([u8; 4]),
    /// Unsupported binary version.
    BadVersion(u32),
    /// A text line failed to parse (1-based line number and content).
    Parse(usize, String),
    /// Binary stream ended mid-record.
    Truncated,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "bad trace magic {m:?}, expected RRST"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Parse(line, text) => {
                write!(f, "cannot parse trace line {line}: {text:?}")
            }
            TraceError::Truncated => write!(f, "binary trace truncated mid-record"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Writes `records` to `w` in the chosen format.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failures.
pub fn write_records<W: Write>(
    mut w: W,
    records: &[TraceRecord],
    format: TraceFormat,
) -> Result<(), TraceError> {
    match format {
        TraceFormat::Text => {
            for r in records {
                writeln!(
                    w,
                    "{} {} {:#x}",
                    r.gap,
                    if r.is_write { 'W' } else { 'R' },
                    r.addr
                )?;
            }
        }
        TraceFormat::Binary => {
            w.write_all(MAGIC)?;
            w.write_all(&VERSION.to_le_bytes())?;
            for r in records {
                w.write_all(&r.gap.to_le_bytes())?;
                w.write_all(&r.addr.to_le_bytes())?;
                w.write_all(&[u8::from(r.is_write)])?;
            }
        }
    }
    Ok(())
}

/// Reads a trace from `r`, auto-detecting the format from the first bytes.
///
/// # Errors
///
/// Returns [`TraceError`] on malformed input.
pub fn read_records<R: Read>(r: R) -> Result<Vec<TraceRecord>, TraceError> {
    let mut reader = BufReader::new(r);
    let mut head = [0u8; 4];
    let n = read_up_to(&mut reader, &mut head)?;
    if n == 4 && &head == MAGIC {
        read_binary_body(reader)
    } else {
        read_text_body(&head[..n], reader)
    }
}

fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, TraceError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

fn read_binary_body<R: BufRead>(mut r: R) -> Result<Vec<TraceRecord>, TraceError> {
    let mut version = [0u8; 4];
    if read_up_to(&mut r, &mut version)? != 4 {
        return Err(TraceError::Truncated);
    }
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let mut records = Vec::new();
    loop {
        let mut rec = [0u8; 13];
        match read_up_to(&mut r, &mut rec)? {
            0 => break,
            13 => {
                records.push(TraceRecord {
                    gap: u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
                    addr: u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes")),
                    is_write: rec[12] != 0,
                });
            }
            _ => return Err(TraceError::Truncated),
        }
    }
    Ok(records)
}

fn read_text_body<R: BufRead>(head: &[u8], r: R) -> Result<Vec<TraceRecord>, TraceError> {
    let mut text = String::from_utf8_lossy(head).into_owned();
    let mut rest = String::new();
    let mut r = r;
    r.read_to_string(&mut rest)?;
    text.push_str(&rest);
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        records.push(parse_text_line(line).ok_or_else(|| TraceError::Parse(i + 1, line.into()))?);
    }
    Ok(records)
}

fn parse_text_line(line: &str) -> Option<TraceRecord> {
    let mut parts = line.split_whitespace();
    let gap: u32 = parts.next()?.parse().ok()?;
    let is_write = match parts.next()? {
        "R" | "r" => false,
        "W" | "w" => true,
        _ => return None,
    };
    let addr_str = parts.next()?;
    let addr = if let Some(hex) = addr_str.strip_prefix("0x").or(addr_str.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()?
    } else {
        addr_str.parse().ok()?
    };
    parts.next().is_none().then_some(TraceRecord {
        gap,
        addr,
        is_write,
    })
}

/// Loads a trace file (auto-detecting format).
///
/// # Errors
///
/// Returns [`TraceError`] on I/O or parse failures.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<TraceRecord>, TraceError> {
    read_records(std::fs::File::open(path)?)
}

/// Saves a trace file.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failures.
pub fn save(
    path: impl AsRef<Path>,
    records: &[TraceRecord],
    format: TraceFormat,
) -> Result<(), TraceError> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_records(&mut file, records, format)?;
    file.flush()?;
    Ok(())
}

/// Captures `n` records from a live source (e.g. a calibrated synthetic
/// generator) so they can be replayed deterministically later.
pub fn capture(source: &mut dyn TraceSource, n: usize) -> Vec<TraceRecord> {
    (0..n).map(|_| source.next_record()).collect()
}

/// Replays a recorded trace as a [`TraceSource`], wrapping at the end
/// (rate mode: "we continue executing these benchmarks until all cores
/// complete", §3).
#[derive(Debug, Clone)]
pub struct ReplaySource {
    records: Vec<TraceRecord>,
    cursor: usize,
    name: String,
    /// Completed passes over the trace.
    wraps: u64,
}

impl ReplaySource {
    /// Creates a replay source.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty (an empty trace cannot drive a core).
    pub fn new(records: Vec<TraceRecord>, name: impl Into<String>) -> Self {
        assert!(!records.is_empty(), "cannot replay an empty trace");
        ReplaySource {
            records,
            cursor: 0,
            name: name.into(),
            wraps: 0,
        }
    }

    /// Number of records in one pass.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty (never true; kept for API convention).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Completed passes over the trace.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

impl TraceSource for ReplaySource {
    fn next_record(&mut self) -> TraceRecord {
        let r = self.records[self.cursor];
        self.cursor += 1;
        if self.cursor == self.records.len() {
            self.cursor = 0;
            self.wraps += 1;
        }
        r
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::read(0, 0x40),
            TraceRecord::write(17, 0xdead_bee0),
            TraceRecord::read(4_000_000, !63),
        ]
    }

    #[test]
    fn binary_round_trip() {
        let mut buf = Vec::new();
        write_records(&mut buf, &sample(), TraceFormat::Binary).unwrap();
        assert_eq!(&buf[..4], MAGIC);
        assert_eq!(read_records(&buf[..]).unwrap(), sample());
    }

    #[test]
    fn text_round_trip() {
        let mut buf = Vec::new();
        write_records(&mut buf, &sample(), TraceFormat::Text).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.lines().count() == 3);
        assert!(text.contains("17 W"));
        assert_eq!(read_records(&buf[..]).unwrap(), sample());
    }

    #[test]
    fn text_accepts_comments_blank_lines_and_decimal() {
        let input = "# a comment\n\n5 R 0x100\n7 W 256\n";
        let records = read_records(input.as_bytes()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].addr, 0x100);
        assert_eq!(records[1].addr, 256);
        assert!(records[1].is_write);
    }

    #[test]
    fn malformed_text_reports_line() {
        let input = "5 R 0x100\nnot a record\n";
        match read_records(input.as_bytes()) {
            Err(TraceError::Parse(line, text)) => {
                assert_eq!(line, 2);
                assert!(text.contains("not a record"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_binary_is_detected() {
        let mut buf = Vec::new();
        write_records(&mut buf, &sample(), TraceFormat::Binary).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(read_records(&buf[..]), Err(TraceError::Truncated)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_records(&buf[..]),
            Err(TraceError::BadVersion(99))
        ));
    }

    #[test]
    fn replay_wraps_in_rate_mode() {
        let mut replay = ReplaySource::new(sample(), "wrap");
        for _ in 0..7 {
            replay.next_record();
        }
        assert_eq!(replay.wraps(), 2);
        assert_eq!(replay.next_record(), sample()[1]);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_panics() {
        let _ = ReplaySource::new(vec![], "empty");
    }

    #[test]
    fn file_save_and_load() {
        let dir = std::env::temp_dir().join("rrs_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (format, name) in [
            (TraceFormat::Binary, "t.rrst"),
            (TraceFormat::Text, "t.txt"),
        ] {
            let path = dir.join(name);
            save(&path, &sample(), format).unwrap();
            assert_eq!(load(&path).unwrap(), sample());
        }
    }

    #[test]
    fn capture_records_from_generator() {
        let mut i = 0u64;
        let mut gen = move || {
            i += 64;
            TraceRecord::read(1, i)
        };
        let records = capture(&mut gen, 10);
        assert_eq!(records.len(), 10);
        assert_eq!(records[9].addr, 640);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(TraceError::BadMagic(*b"NOPE").to_string().contains("RRST"));
        assert!(TraceError::Truncated.to_string().contains("truncated"));
    }
}
