//! Differential property test pinning the flat-table [`HammerModel`]
//! against an ordered-map reference: identical activation sequences must
//! produce identical flip sequences (order included), disturbance levels,
//! and per-window statistics. The flat tables are a pure representation
//! change — any divergence here is a determinism bug.

use std::collections::{BTreeMap, BTreeSet};

use rrs_check::check;
use rrs_dram::geometry::{DramGeometry, RowAddr};
use rrs_dram::hammer::{HammerConfig, HammerModel};

/// The pre-flat disturbance model, mirrored verbatim over ordered maps.
struct ReferenceModel {
    config: HammerConfig,
    geometry: DramGeometry,
    disturbance: BTreeMap<RowAddr, f64>,
    activations: BTreeMap<RowAddr, u64>,
    flipped_this_epoch: BTreeSet<RowAddr>,
    flips: Vec<(RowAddr, u64, f64)>,
    epoch: u64,
}

impl ReferenceModel {
    fn record_activation(&mut self, addr: RowAddr) {
        *self.activations.entry(addr).or_insert(0) += 1;
        self.disturbance.remove(&addr);
        self.disturb_neighbors(addr);
    }

    fn record_targeted_refresh(&mut self, addr: RowAddr) {
        self.disturbance.remove(&addr);
        if self.config.targeted_refresh_disturbs {
            self.disturb_neighbors(addr);
        }
    }

    fn end_epoch(&mut self) {
        self.disturbance.clear();
        self.activations.clear();
        self.flipped_this_epoch.clear();
        self.epoch += 1;
    }

    fn disturb_neighbors(&mut self, addr: RowAddr) {
        for d in 1..=self.config.blast_radius {
            let Some(w) = self.config.distance_weights.get(d as usize - 1).copied() else {
                continue;
            };
            for n in addr.neighbors(d, &self.geometry) {
                let e = self.disturbance.entry(n).or_insert(0.0);
                *e += w;
                if *e >= self.config.t_rh as f64 && self.flipped_this_epoch.insert(n) {
                    self.flips.push((n, self.epoch, *e));
                }
            }
        }
    }
}

#[test]
fn hammer_model_matches_btreemap_reference() {
    check(|g| {
        let geometry = DramGeometry::tiny_test();
        let config = HammerConfig::for_threshold(g.u64_in(2..12));
        let mut model = HammerModel::new(config.clone(), geometry);
        let mut reference = ReferenceModel {
            config,
            geometry,
            disturbance: BTreeMap::new(),
            activations: BTreeMap::new(),
            flipped_this_epoch: BTreeSet::new(),
            flips: Vec::new(),
            epoch: 0,
        };
        // A handful of nearby rows so neighbourhoods overlap and flips fire.
        let rows = 24;
        let ops = g.usize_in(1..250);
        for _ in 0..ops {
            let addr = RowAddr::new(0, 0, g.u8() % 2, g.u32() % rows);
            match g.below(12) {
                0 => {
                    model.record_targeted_refresh(addr);
                    reference.record_targeted_refresh(addr);
                }
                1 => {
                    model.full_refresh();
                    reference.disturbance.clear();
                }
                2 => {
                    model.end_epoch();
                    reference.end_epoch();
                }
                _ => {
                    model.record_activation(addr);
                    reference.record_activation(addr);
                }
            }
        }
        // Flip *sequences* must match exactly — victims, epochs, disturbance
        // levels, in emission order.
        let flips: Vec<(RowAddr, u64, f64)> = model
            .take_bit_flips()
            .into_iter()
            .map(|f| (f.victim, f.epoch, f.disturbance))
            .collect();
        assert_eq!(flips, reference.flips);
        assert_eq!(model.total_flips(), reference.flips.len() as u64);
        // Every row's window state must match, not just the flipped ones.
        for bank in 0..2 {
            for row in 0..rows {
                let addr = RowAddr::new(0, 0, bank, row);
                assert_eq!(model.disturbance_of(addr), reference.disturbance_of(addr));
                assert_eq!(
                    model.activations_of(addr),
                    reference.activations.get(&addr).copied().unwrap_or(0)
                );
            }
        }
        for n in [1, 2, 5] {
            assert_eq!(
                model.rows_with_activations_at_least(n),
                reference.activations.values().filter(|&&c| c >= n).count()
            );
        }
    });
}

impl ReferenceModel {
    fn disturbance_of(&self, addr: RowAddr) -> f64 {
        self.disturbance.get(&addr).copied().unwrap_or(0.0)
    }
}
