//! Property-based tests for the DRAM substrate: geometry, timing, bank
//! state machine, and the Row Hammer fault model.

use rrs_check::check;
use rrs_dram::bank::Bank;
use rrs_dram::geometry::{DramGeometry, RowAddr, RowId};
use rrs_dram::hammer::{HammerConfig, HammerModel};
use rrs_dram::timing::TimingParams;

/// Neighbour relations are symmetric: if `b` is a distance-d neighbour
/// of `a`, then `a` is a distance-d neighbour of `b`.
#[test]
fn neighbors_are_symmetric() {
    check(|g| {
        let row = g.u32_in(0..1024);
        let d = g.u32_in(1..4);
        let geom = DramGeometry::tiny_test();
        let a = RowAddr::new(0, 0, 0, row);
        for n in a.neighbors(d, &geom) {
            assert!(
                n.neighbors(d, &geom).contains(&a),
                "{} -> {} not symmetric",
                a,
                n
            );
        }
    });
}

/// Epoch scaling divides ACT_max proportionally (within rounding) for
/// every admissible scale — the foundation of the scaled experiments.
#[test]
fn act_max_scales_with_epoch() {
    check(|g| {
        let scale = g.u64_in(1..1000);
        let base = TimingParams::ddr4_3200();
        let scaled = base.with_epoch_scale(scale);
        let expected = base.max_activations_per_epoch() / scale;
        let got = scaled.max_activations_per_epoch();
        // Refresh-slot rounding causes at most a per-mille wobble plus a
        // small absolute slack at tiny epochs.
        let tolerance = expected / 100 + 200;
        assert!(
            got.abs_diff(expected) <= tolerance,
            "scale {}: got {}, expected ~{}",
            scale,
            got,
            expected
        );
    });
}

/// The bank never issues two activations closer than tRC, no matter
/// what access sequence it serves.
#[test]
fn bank_respects_trc() {
    check(|g| {
        let rows = g.vec(2..100, |g| g.u32_in(0..64));
        let timing = TimingParams::ddr4_3200();
        let mut bank = Bank::new(timing);
        let mut last_act: Option<u64> = None;
        let mut now = 0;
        for row in rows {
            let out = bank.access(RowId(row), false, now);
            if let Some(at) = out.activated_at {
                if let Some(prev) = last_act {
                    assert!(
                        at >= prev + timing.t_rc,
                        "ACTs {} and {} violate tRC",
                        prev,
                        at
                    );
                }
                last_act = Some(at);
            }
            now = out.data_at;
        }
    });
}

/// Bank timestamps are monotone: data never returns before it was
/// requested, and later requests never complete earlier than the
/// request time.
#[test]
fn bank_data_time_is_causal() {
    check(|g| {
        let rows = g.vec(1..100, |g| g.u32_in(0..64));
        let mut bank = Bank::new(TimingParams::ddr4_3200());
        let mut now = 0;
        for row in rows {
            let out = bank.access(RowId(row), false, now);
            assert!(out.data_at > now);
            now = out.data_at;
        }
    });
}

/// Fault-model monotonicity: adding more activations of the same
/// aggressor never reduces the number of flips.
#[test]
fn more_hammering_never_fewer_flips() {
    check(|g| {
        let extra = g.u64_in(0..5_000);
        let geom = DramGeometry::tiny_test();
        let base_acts = 3_000u64;
        let run = |n: u64| -> usize {
            let mut m = HammerModel::new(HammerConfig::for_threshold(4_800), geom);
            let agg = RowAddr::new(0, 0, 0, 500);
            for _ in 0..n {
                m.record_activation(agg);
            }
            m.take_bit_flips().len()
        };
        assert!(run(base_acts + extra) >= run(base_acts));
    });
}

/// Interleaving targeted refreshes of the victims can only delay or
/// prevent flips, never cause extra flips *of the refreshed rows*.
#[test]
fn victim_refresh_is_protective() {
    check(|g| {
        let period = g.u64_in(1..256);
        let geom = DramGeometry::tiny_test();
        let t_rh = 1_000u64;
        let agg = RowAddr::new(0, 0, 0, 500);
        let run = |refresh: bool| -> usize {
            let mut m = HammerModel::new(HammerConfig::classic_only(t_rh), geom);
            for i in 0..t_rh {
                m.record_activation(agg);
                if refresh && i % period == 0 {
                    m.record_targeted_refresh(agg.with_row(499));
                    m.record_targeted_refresh(agg.with_row(501));
                }
            }
            m.take_bit_flips()
                .iter()
                .filter(|f| f.victim.row.0 == 499 || f.victim.row.0 == 501)
                .count()
        };
        assert!(run(true) <= run(false));
    });
}

/// Disturbance accounting is per-window: ending the epoch always
/// clears every row's accumulated disturbance.
#[test]
fn epoch_end_clears_all_disturbance() {
    check(|g| {
        let acts = g.vec(1..40, |g| (g.u32_in(0..1024), g.u64_in(1..50)));
        let geom = DramGeometry::tiny_test();
        let mut m = HammerModel::new(HammerConfig::lpddr4_new(), geom);
        for (row, n) in &acts {
            for _ in 0..*n {
                m.record_activation(RowAddr::new(0, 0, 0, *row));
            }
        }
        m.end_epoch();
        for (row, _) in &acts {
            for d in [1u32, 2] {
                for n in RowAddr::new(0, 0, 0, *row).neighbors(d, &geom) {
                    assert_eq!(m.disturbance_of(n), 0.0);
                }
            }
        }
    });
}
