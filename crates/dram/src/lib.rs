#![warn(missing_docs)]

//! DRAM device model for the Randomized Row-Swap (RRS) reproduction.
//!
//! This crate is the bottom-most substrate of the workspace. It models the
//! parts of a DDR4 main-memory system that the RRS paper's results depend on:
//!
//! * [`geometry`] — channels/ranks/banks/rows and strongly-typed addresses,
//! * [`timing`] — DDR4-3200 timing parameters (Table 2 of the paper) and the
//!   derived quantities the paper quotes (1.36 M activations per bank per
//!   64 ms, 365 ns row transfers, 1.46 µs row swaps, ...),
//! * [`bank`] — the per-bank state machine (row buffer, `tRC`-limited
//!   activations, precharge),
//! * [`command`] — the DDR command vocabulary and per-command counting,
//! * [`power`] — a first-order DRAM power model driven by command counts,
//! * [`hammer`] — the Row Hammer disturbance fault model, including the
//!   mechanics that make the Half-Double attack work against victim-focused
//!   mitigations.
//!
//! # Example
//!
//! ```
//! use rrs_dram::geometry::{DramGeometry, RowAddr};
//! use rrs_dram::timing::TimingParams;
//! use rrs_dram::hammer::{HammerModel, HammerConfig};
//!
//! let geom = DramGeometry::asplos22_baseline();
//! let timing = TimingParams::ddr4_3200();
//! // A bank can do at most ~1.36 M activations in a 64 ms refresh window.
//! assert!((1_350_000..1_370_000).contains(&timing.max_activations_per_epoch()));
//!
//! let mut hammer = HammerModel::new(HammerConfig::lpddr4_new(), geom);
//! let aggressor = RowAddr::new(0, 0, 0, 1000);
//! for _ in 0..4_800 {
//!     hammer.record_activation(aggressor);
//! }
//! // Classic Row Hammer: the immediate neighbours have flipped.
//! assert!(!hammer.take_bit_flips().is_empty());
//! ```

pub mod bank;
pub mod command;
pub mod error;
pub mod geometry;
pub mod hammer;
pub mod idd;
pub mod json;
pub mod power;
pub mod timing;

pub use bank::Bank;
pub use command::{CommandCounts, DramCommand};
pub use error::DramError;
pub use geometry::{BankId, ChannelId, DramGeometry, RankId, RowAddr, RowId};
pub use hammer::{BitFlip, HammerConfig, HammerModel};
pub use idd::{IddCurrents, IddPowerModel, IddReport};
pub use power::{DramPowerModel, PowerReport};
pub use timing::{Cycle, TimingParams};
