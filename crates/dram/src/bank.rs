//! Per-bank state machine: row buffer, `tRC`-limited activations, precharge.
//!
//! The bank model is deliberately at the granularity the paper's results
//! depend on: row-buffer hits vs. misses, the `tRC` floor on activation rate
//! (which bounds `ACT_max` and hence every RRS structure size), and bank
//! unavailability during refresh and row swaps.

use crate::command::{CommandCounts, DramCommand};
use crate::geometry::RowId;
use crate::timing::{Cycle, TimingParams};

/// Outcome of a column access on a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the data burst begins on the bus.
    pub data_at: Cycle,
    /// If the access required an activation, the cycle it was issued.
    pub activated_at: Option<Cycle>,
    /// Whether the access hit in the open row buffer.
    pub row_hit: bool,
}

/// One DRAM bank: open row, timing state, and command accounting.
#[derive(Debug, Clone)]
pub struct Bank {
    timing: TimingParams,
    open_row: Option<RowId>,
    /// Earliest cycle the next activation may issue (tRC from the last ACT).
    next_act_allowed: Cycle,
    /// The bank is busy (refresh, swap streaming) until this cycle.
    busy_until: Cycle,
    counts: CommandCounts,
    /// Activations in the current epoch (row-buffer misses + targeted refreshes).
    epoch_activations: u64,
    /// Row-buffer hits in the current epoch.
    epoch_hits: u64,
}

impl Bank {
    /// A fresh, idle bank.
    pub fn new(timing: TimingParams) -> Self {
        Bank {
            timing,
            open_row: None,
            next_act_allowed: 0,
            busy_until: 0,
            counts: CommandCounts::new(),
            epoch_activations: 0,
            epoch_hits: 0,
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<RowId> {
        self.open_row
    }

    /// Cycle until which the bank is unavailable.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Commands issued so far.
    pub fn counts(&self) -> CommandCounts {
        self.counts
    }

    /// Activations (ACT commands) issued in the current epoch.
    pub fn epoch_activations(&self) -> u64 {
        self.epoch_activations
    }

    /// Row-buffer hits in the current epoch.
    pub fn epoch_hits(&self) -> u64 {
        self.epoch_hits
    }

    /// Earliest cycle a new activation could issue if requested at `now`.
    pub fn earliest_activate(&self, now: Cycle) -> Cycle {
        let start = now.max(self.busy_until);
        let after_pre = if self.open_row.is_some() {
            start + self.timing.t_rp
        } else {
            start
        };
        after_pre.max(self.next_act_allowed)
    }

    /// Performs a column access (read or write) to `row`, activating it
    /// first if it is not the open row. Returns when data transfers and
    /// whether an activation occurred.
    pub fn access(&mut self, row: RowId, is_write: bool, now: Cycle) -> AccessOutcome {
        let outcome = if self.open_row == Some(row) {
            let start = now.max(self.busy_until);
            self.epoch_hits += 1;
            AccessOutcome {
                data_at: start + self.timing.t_cas,
                activated_at: None,
                row_hit: true,
            }
        } else {
            let act_at = self.activate(row, now);
            AccessOutcome {
                data_at: act_at + self.timing.t_rcd + self.timing.t_cas,
                activated_at: Some(act_at),
                row_hit: false,
            }
        };
        self.counts.record(if is_write {
            DramCommand::Write
        } else {
            DramCommand::Read
        });
        outcome
    }

    /// Activates `row` (precharging the open row first if needed) and
    /// returns the cycle the ACT command issues.
    pub fn activate(&mut self, row: RowId, now: Cycle) -> Cycle {
        if self.open_row.is_some() {
            self.counts.record(DramCommand::Precharge);
        }
        let act_at = self.earliest_activate(now);
        self.counts.record(DramCommand::Activate);
        self.epoch_activations += 1;
        self.open_row = Some(row);
        self.next_act_allowed = act_at + self.timing.t_rc;
        self.busy_until = act_at + self.timing.t_rcd;
        act_at
    }

    /// Precharges (closes) the open row, if any.
    pub fn precharge(&mut self, now: Cycle) {
        if self.open_row.take().is_some() {
            self.counts.record(DramCommand::Precharge);
            self.busy_until = self.busy_until.max(now) + self.timing.t_rp;
        }
    }

    /// A mitigation-issued targeted refresh of `row`: occupies the bank for
    /// one row cycle and leaves the row buffer closed (§5.4: "the row buffer
    /// of the bank is closed after" mitigation operations).
    ///
    /// Returns the cycle the refresh started.
    pub fn targeted_refresh(&mut self, now: Cycle) -> Cycle {
        let start = self.earliest_activate(now);
        self.counts.record(DramCommand::TargetedRefresh);
        self.epoch_activations += 1;
        self.open_row = None;
        self.next_act_allowed = start + self.timing.t_rc;
        self.busy_until = start + self.timing.t_rc;
        start
    }

    /// Marks the bank busy until `until` (rank refresh, swap streaming) and
    /// closes the row buffer.
    pub fn force_busy_until(&mut self, until: Cycle) {
        self.open_row = None;
        self.busy_until = self.busy_until.max(until);
        self.next_act_allowed = self.next_act_allowed.max(until);
    }

    /// Records a rank-level refresh command against this bank.
    pub fn record_refresh(&mut self) {
        self.counts.record(DramCommand::Refresh);
    }

    /// Records one row-transfer (swap streaming) command.
    pub fn record_swap_transfer(&mut self) {
        self.counts.record(DramCommand::SwapTransfer);
    }

    /// Resets per-epoch statistics (activation/hit counters).
    pub fn begin_epoch(&mut self) {
        self.epoch_activations = 0;
        self.epoch_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Bank {
        Bank::new(TimingParams::ddr4_3200())
    }

    #[test]
    fn first_access_activates() {
        let mut b = bank();
        let o = b.access(RowId(5), false, 100);
        assert!(!o.row_hit);
        assert_eq!(o.activated_at, Some(100));
        let t = TimingParams::ddr4_3200();
        assert_eq!(o.data_at, 100 + t.t_rcd + t.t_cas);
        assert_eq!(b.open_row(), Some(RowId(5)));
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut b = bank();
        let t = TimingParams::ddr4_3200();
        let first = b.access(RowId(5), false, 0);
        let o = b.access(RowId(5), true, first.data_at);
        assert!(o.row_hit);
        assert_eq!(o.activated_at, None);
        assert_eq!(o.data_at, first.data_at + t.t_cas);
        assert_eq!(b.epoch_hits(), 1);
    }

    #[test]
    fn conflicting_access_precharges_first() {
        let mut b = bank();
        let t = TimingParams::ddr4_3200();
        b.access(RowId(5), false, 0);
        // Next ACT must wait for both tRP after precharge and tRC from ACT 0.
        let o = b.access(RowId(9), false, 200);
        let act = o.activated_at.unwrap();
        assert!(act >= 200 + t.t_rp);
        assert_eq!(b.counts().precharges, 1);
        assert_eq!(b.counts().activates, 2);
    }

    #[test]
    fn trc_limits_activation_rate() {
        let mut b = bank();
        let t = TimingParams::ddr4_3200();
        let a1 = b.activate(RowId(1), 0);
        let a2 = b.activate(RowId(2), 0);
        // Even requested at cycle 0, the second ACT cannot beat tRC
        // (plus the precharge of row 1's buffer).
        assert!(a2 >= a1 + t.t_rc, "a2={a2}");
    }

    #[test]
    fn hammer_rate_is_trc_bounded() {
        // Issue 1000 back-to-back activations; elapsed time must be at least
        // 999 * tRC — this is the property that bounds ACT_max.
        let mut b = bank();
        let t = TimingParams::ddr4_3200();
        let mut now = 0;
        let mut first = None;
        for i in 0..1000u32 {
            // Alternate rows like a double-sided hammer.
            let act = b.activate(RowId(i % 2), now);
            first.get_or_insert(act);
            now = act;
        }
        assert!(now - first.unwrap() >= 999 * t.t_rc);
    }

    #[test]
    fn targeted_refresh_counts_as_activation_and_closes_row() {
        let mut b = bank();
        b.access(RowId(5), false, 0);
        assert_eq!(b.epoch_activations(), 1);
        b.targeted_refresh(10_000);
        assert_eq!(b.epoch_activations(), 2);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.counts().targeted_refreshes, 1);
    }

    #[test]
    fn force_busy_blocks_and_closes() {
        let mut b = bank();
        b.access(RowId(5), false, 0);
        b.force_busy_until(50_000);
        assert_eq!(b.open_row(), None);
        let o = b.access(RowId(5), false, 1_000);
        assert!(o.activated_at.unwrap() >= 50_000);
    }

    #[test]
    fn begin_epoch_resets_counters() {
        let mut b = bank();
        b.access(RowId(1), false, 0);
        b.access(RowId(1), false, 1_000);
        assert_eq!(b.epoch_activations(), 1);
        assert_eq!(b.epoch_hits(), 1);
        b.begin_epoch();
        assert_eq!(b.epoch_activations(), 0);
        assert_eq!(b.epoch_hits(), 0);
        // Lifetime command counts are preserved.
        assert_eq!(b.counts().reads, 2);
    }
}
