//! First-order DRAM power model driven by command counts.
//!
//! The paper reports DRAM power from USIMM's power models; what its Table 6
//! depends on is the *relative* overhead of the extra row-swap traffic
//! (≈0.5% on average). We model per-command energies with DDR4-class
//! constants (per rank, first-order), so the ratio of swap energy to demand
//! energy — the quantity Table 6 reports — is faithful even though absolute
//! wattage is approximate. The substitution is documented in DESIGN.md.

use crate::command::CommandCounts;
use crate::timing::{Cycle, TimingParams};

/// Per-rank energy constants, in nanojoules per command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramPowerModel {
    /// Energy of one ACT+PRE pair (row open + close).
    pub e_act_pre_nj: f64,
    /// Energy of one 64 B column read burst.
    pub e_read_nj: f64,
    /// Energy of one 64 B column write burst.
    pub e_write_nj: f64,
    /// Energy of one per-rank refresh command (`tRFC` worth of all-bank work).
    pub e_refresh_nj: f64,
    /// Static background power per rank, in milliwatts.
    pub background_mw: f64,
}

impl DramPowerModel {
    /// DDR4-class constants (x8 devices, one rank).
    pub fn ddr4() -> Self {
        DramPowerModel {
            e_act_pre_nj: 10.0,
            e_read_nj: 7.0,
            e_write_nj: 7.5,
            e_refresh_nj: 800.0,
            background_mw: 500.0,
        }
    }

    /// Total energy in nanojoules for a set of command counts.
    ///
    /// A targeted refresh costs one ACT+PRE (it is an activate/restore of a
    /// single row). A swap transfer costs one ACT+PRE plus a full row of
    /// column bursts (128 lines for an 8 KB row).
    pub fn command_energy_nj(&self, counts: &CommandCounts, lines_per_row: usize) -> f64 {
        let row_burst = lines_per_row as f64 * (self.e_read_nj + self.e_write_nj) / 2.0;
        counts.activates as f64 * self.e_act_pre_nj
            + counts.reads as f64 * self.e_read_nj
            + counts.writes as f64 * self.e_write_nj
            + counts.refreshes as f64 * self.e_refresh_nj
            + counts.targeted_refreshes as f64 * self.e_act_pre_nj
            + counts.swap_transfers as f64 * (self.e_act_pre_nj + row_burst)
    }

    /// Full power report over an interval of `elapsed` cycles.
    pub fn report(
        &self,
        counts: &CommandCounts,
        elapsed: Cycle,
        timing: &TimingParams,
        lines_per_row: usize,
        ranks: usize,
    ) -> PowerReport {
        let dynamic_nj = self.command_energy_nj(counts, lines_per_row);
        let seconds = timing.cycles_to_ns(elapsed) * 1e-9;
        let background_nj = self.background_mw * ranks as f64 * 1e-3 * seconds * 1e9;
        let swap_counts = CommandCounts {
            swap_transfers: counts.swap_transfers,
            ..CommandCounts::default()
        };
        let swap_nj = self.command_energy_nj(&swap_counts, lines_per_row);
        PowerReport {
            dynamic_nj,
            background_nj,
            swap_nj,
            elapsed_seconds: seconds,
        }
    }
}

impl Default for DramPowerModel {
    fn default() -> Self {
        Self::ddr4()
    }
}

/// Energy/power summary for an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Dynamic energy of all commands, nJ.
    pub dynamic_nj: f64,
    /// Background (static) energy, nJ.
    pub background_nj: f64,
    /// Portion of dynamic energy attributable to row swaps, nJ.
    pub swap_nj: f64,
    /// Interval length in seconds.
    pub elapsed_seconds: f64,
}

impl PowerReport {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj + self.background_nj
    }

    /// Average power in milliwatts.
    pub fn average_mw(&self) -> f64 {
        if self.elapsed_seconds <= 0.0 {
            0.0
        } else {
            self.total_nj() * 1e-9 / self.elapsed_seconds * 1e3
        }
    }

    /// Fractional overhead of swap energy relative to non-swap energy —
    /// the paper's "DRAM Power Overhead (Row-Swap)" row of Table 6.
    pub fn swap_overhead_fraction(&self) -> f64 {
        let base = self.total_nj() - self.swap_nj;
        if base <= 0.0 {
            0.0
        } else {
            self.swap_nj / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::DramCommand;

    #[test]
    fn energy_is_linear_in_commands() {
        let m = DramPowerModel::ddr4();
        let mut c = CommandCounts::new();
        c.record(DramCommand::Activate);
        c.record(DramCommand::Read);
        let e1 = m.command_energy_nj(&c, 128);
        c.record(DramCommand::Activate);
        c.record(DramCommand::Read);
        let e2 = m.command_energy_nj(&c, 128);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn swap_transfer_costs_a_full_row() {
        let m = DramPowerModel::ddr4();
        let mut swap = CommandCounts::new();
        swap.record(DramCommand::SwapTransfer);
        let mut line = CommandCounts::new();
        line.record(DramCommand::Read);
        // One row transfer moves 128 lines; it must cost far more than one.
        assert!(m.command_energy_nj(&swap, 128) > 50.0 * m.command_energy_nj(&line, 128));
    }

    #[test]
    fn report_swap_overhead_small_for_benign_ratio() {
        // 1 M demand activations + reads, 300 swap transfers (≈75 swaps/epoch)
        // must produce a sub-1% overhead, like the paper's 0.5% average.
        let m = DramPowerModel::ddr4();
        let t = TimingParams::ddr4_3200();
        let counts = CommandCounts {
            activates: 1_000_000,
            reads: 3_000_000,
            refreshes: 8_205,
            swap_transfers: 300,
            ..CommandCounts::default()
        };
        let r = m.report(&counts, t.epoch, &t, 128, 1);
        let f = r.swap_overhead_fraction();
        assert!(f > 0.0 && f < 0.02, "swap overhead = {f}");
    }

    #[test]
    fn average_power_includes_background() {
        let m = DramPowerModel::ddr4();
        let t = TimingParams::ddr4_3200();
        let r = m.report(&CommandCounts::new(), t.epoch, &t, 128, 1);
        // Idle rank: exactly the background power.
        assert!((r.average_mw() - m.background_mw).abs() < 1.0);
    }

    #[test]
    fn zero_elapsed_reports_zero_power() {
        let m = DramPowerModel::ddr4();
        let t = TimingParams::ddr4_3200();
        let r = m.report(&CommandCounts::new(), 0, &t, 128, 1);
        assert_eq!(r.average_mw(), 0.0);
    }
}
