//! Row Hammer disturbance fault model.
//!
//! The model implements the paper's single assumption (§5.1) and the attack
//! surface it reasons about (§2.3, §2.5):
//!
//! * Every activation of a row adds *disturbance* to nearby rows, weighted by
//!   distance: weight 1 at distance 1, and a small distance-2 weight
//!   calibrated so that ≈296 K activations flip a distance-2 victim — the
//!   figure Half-Double reports (§5.1).
//! * A row whose accumulated disturbance within one refresh window reaches
//!   the Row Hammer threshold `T_RH` suffers a bit flip.
//! * Refreshing a row (periodic or targeted) restores its charge and clears
//!   its accumulated disturbance — but a *targeted* refresh is itself an
//!   activation of the refreshed row, and therefore disturbs *that* row's
//!   neighbours. This is precisely the mechanism Half-Double exploits to
//!   defeat victim-focused mitigation (§2.5).
//!
//! The model tracks *physical* rows: under RRS, activations land wherever
//! the Row Indirection Table currently maps the requested row.

use rrs_flat::{FlatMap, FlatSet};

use crate::geometry::{DramGeometry, RowAddr};

/// Packs a [`RowAddr`] into one word for the flat per-row tables
/// (channel/rank/bank are `u8`, row is `u32`, so the fields cannot
/// collide and the packed key never reaches `u64::MAX`).
#[inline]
fn pack(addr: RowAddr) -> u64 {
    (u64::from(addr.channel.0) << 48)
        | (u64::from(addr.rank.0) << 40)
        | (u64::from(addr.bank.0) << 32)
        | u64::from(addr.row.0)
}

/// The default Row Hammer threshold targeted by the paper: 4.8 K activations
/// (LPDDR4-new, Kim et al. 2020).
pub const DEFAULT_T_RH: u64 = 4_800;

/// Activations on a near-aggressor needed for a distance-2 (Half-Double)
/// flip, per the paper §5.1: "the recent half-double attack (which requires
/// at least 296K activations on one row)".
pub const HALF_DOUBLE_ACTS: u64 = 296_000;

/// One entry of the paper's Table 1: Row Hammer threshold over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RhThresholdEntry {
    /// DRAM generation, e.g. "DDR4 (new)".
    pub generation: &'static str,
    /// Published Row Hammer threshold (activations per refresh window).
    pub threshold: u64,
    /// Citation in the paper.
    pub source: &'static str,
}

/// Table 1 of the paper: Row Hammer threshold by DRAM generation.
pub const RH_THRESHOLDS: &[RhThresholdEntry] = &[
    RhThresholdEntry {
        generation: "DDR3 (old)",
        threshold: 139_000,
        source: "Kim et al. 2014 [17]",
    },
    RhThresholdEntry {
        generation: "DDR3 (new)",
        threshold: 22_400,
        source: "Kim et al. 2020 [16]",
    },
    RhThresholdEntry {
        generation: "DDR4 (old)",
        threshold: 17_500,
        source: "Kim et al. 2020 [16]",
    },
    RhThresholdEntry {
        generation: "DDR4 (new)",
        threshold: 10_000,
        source: "Kim et al. 2020 [16]",
    },
    RhThresholdEntry {
        generation: "LPDDR4 (old)",
        threshold: 16_800,
        source: "Kim et al. 2020 [16]",
    },
    RhThresholdEntry {
        generation: "LPDDR4 (new)",
        threshold: 4_800,
        source: "Kim et al. 2020 [16] – Half-Double [12]",
    },
];

/// Configuration of the disturbance model.
#[derive(Debug, Clone, PartialEq)]
pub struct HammerConfig {
    /// Row Hammer threshold: disturbance at which a row flips.
    pub t_rh: u64,
    /// Maximum distance at which activations disturb neighbours.
    pub blast_radius: u32,
    /// `distance_weights[d-1]` is the disturbance added to a row at distance
    /// `d` per aggressor activation. `distance_weights[0]` must be 1.0.
    pub distance_weights: Vec<f64>,
    /// Whether a targeted (mitigation-issued) refresh of a row disturbs that
    /// row's own neighbours. True on real hardware; this is what enables
    /// Half-Double.
    pub targeted_refresh_disturbs: bool,
}

impl HammerConfig {
    /// LPDDR4 (new)-like device: `T_RH` = 4.8 K, blast radius 2 with the
    /// distance-2 weight calibrated to Half-Double's 296 K figure.
    pub fn lpddr4_new() -> Self {
        Self::for_threshold(DEFAULT_T_RH)
    }

    /// A device with Row Hammer threshold `t_rh`, keeping the
    /// distance-2-to-distance-1 vulnerability ratio of the LPDDR4 baseline.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh` is zero.
    pub fn for_threshold(t_rh: u64) -> Self {
        assert!(t_rh > 0, "T_RH must be positive");
        // 4.8K / 296K: one distance-2 activation is worth ~1/61.7 of a
        // distance-1 activation.
        let w2 = DEFAULT_T_RH as f64 / HALF_DOUBLE_ACTS as f64;
        HammerConfig {
            t_rh,
            blast_radius: 2,
            distance_weights: vec![1.0, w2],
            targeted_refresh_disturbs: true,
        }
    }

    /// A blast-radius-1 device (classic Row Hammer only); useful for
    /// isolating classic-pattern behaviour in tests.
    pub fn classic_only(t_rh: u64) -> Self {
        HammerConfig {
            t_rh,
            blast_radius: 1,
            distance_weights: vec![1.0],
            targeted_refresh_disturbs: true,
        }
    }

    /// Activations on a single aggressor needed to flip a victim at
    /// `distance` (assuming no refresh in between).
    pub fn acts_to_flip_at(&self, distance: u32) -> u64 {
        let w = self
            .distance_weights
            .get(distance as usize - 1)
            .copied()
            .unwrap_or(0.0);
        if w <= 0.0 {
            u64::MAX
        } else {
            (self.t_rh as f64 / w).ceil() as u64
        }
    }
}

impl Default for HammerConfig {
    fn default() -> Self {
        Self::lpddr4_new()
    }
}

/// A Row Hammer bit flip detected by the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitFlip {
    /// The physical row that flipped.
    pub victim: RowAddr,
    /// Epoch (refresh window index) in which it flipped.
    pub epoch: u64,
    /// Accumulated disturbance at the moment of the flip.
    pub disturbance: f64,
}

/// The disturbance fault model. Tracks per-physical-row accumulated
/// disturbance within the current refresh window and reports bit flips.
#[derive(Debug, Clone)]
pub struct HammerModel {
    config: HammerConfig,
    geometry: DramGeometry,
    /// Packed `RowAddr` → accumulated disturbance. Iteration order is
    /// never observed: flips are emitted in neighbour order at the
    /// disturbing activation, so the flat table changes nothing.
    disturbance: FlatMap<f64>,
    /// Packed `RowAddr` → activations this window.
    activations: FlatMap<u64>,
    flipped_this_epoch: FlatSet,
    flips: Vec<BitFlip>,
    total_flips: u64,
    epoch: u64,
}

impl HammerModel {
    /// A fresh model at epoch 0 with no accumulated disturbance.
    pub fn new(config: HammerConfig, geometry: DramGeometry) -> Self {
        HammerModel {
            config,
            geometry,
            disturbance: FlatMap::new(),
            activations: FlatMap::new(),
            flipped_this_epoch: FlatSet::new(),
            flips: Vec::new(),
            total_flips: 0,
            epoch: 0,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &HammerConfig {
        &self.config
    }

    /// Current epoch (refresh window) index.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records an activation of physical row `addr`: restores the activated
    /// row's own charge (a DRAM activation reads and rewrites the row's
    /// cells), then disturbs neighbours out to the blast radius and
    /// registers flips that cross `T_RH`.
    pub fn record_activation(&mut self, addr: RowAddr) {
        debug_assert!(self.geometry.contains(addr), "activation out of range");
        *self.activations.get_or_insert_with(pack(addr), || 0) += 1;
        self.disturbance.remove(pack(addr));
        self.disturb_neighbors(addr);
    }

    /// Records a targeted (mitigation-issued) refresh of `addr`: restores
    /// the row's own charge, and — if configured — disturbs its neighbours
    /// exactly like an activation (the Half-Double enabler).
    pub fn record_targeted_refresh(&mut self, addr: RowAddr) {
        self.disturbance.remove(pack(addr));
        if self.config.targeted_refresh_disturbs {
            self.disturb_neighbors(addr);
        }
    }

    /// Immediately restores every row (a preemptive full-memory refresh, as
    /// in the attack-detection co-design of §5.3.2 footnote 2). Does not end
    /// the epoch.
    pub fn full_refresh(&mut self) {
        self.disturbance.clear();
    }

    /// Ends the refresh window: every row has been refreshed once, so all
    /// accumulated disturbance is cleared and per-window counters reset.
    pub fn end_epoch(&mut self) {
        self.disturbance.clear();
        self.activations.clear();
        self.flipped_this_epoch.clear();
        self.epoch += 1;
    }

    fn disturb_neighbors(&mut self, addr: RowAddr) {
        for d in 1..=self.config.blast_radius {
            let Some(w) = self.config.distance_weights.get(d as usize - 1).copied() else {
                // blast_radius beyond the configured weights: no disturbance.
                continue;
            };
            for n in addr.neighbors(d, &self.geometry) {
                let key = pack(n);
                let e = self.disturbance.get_or_insert_with(key, || 0.0);
                *e += w;
                let disturbance = *e;
                if disturbance >= self.config.t_rh as f64 && self.flipped_this_epoch.insert(key) {
                    self.flips.push(BitFlip {
                        victim: n,
                        epoch: self.epoch,
                        disturbance,
                    });
                    self.total_flips += 1;
                }
            }
        }
    }

    /// Accumulated disturbance of `addr` in the current window.
    pub fn disturbance_of(&self, addr: RowAddr) -> f64 {
        self.disturbance.get(pack(addr)).copied().unwrap_or(0.0)
    }

    /// Activations of `addr` recorded in the current window.
    pub fn activations_of(&self, addr: RowAddr) -> u64 {
        self.activations.get(pack(addr)).copied().unwrap_or(0)
    }

    /// Number of distinct rows with at least `n` activations this window —
    /// the paper's "Rows ACT-800+" statistic (Table 3).
    pub fn rows_with_activations_at_least(&self, n: u64) -> usize {
        self.activations.values().filter(|&&c| c >= n).count()
    }

    /// Drains and returns the bit flips recorded since the last call.
    pub fn take_bit_flips(&mut self) -> Vec<BitFlip> {
        std::mem::take(&mut self.flips)
    }

    /// Total flips over the model's lifetime (not drained).
    pub fn total_flips(&self) -> u64 {
        self.total_flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> HammerModel {
        HammerModel::new(HammerConfig::lpddr4_new(), DramGeometry::tiny_test())
    }

    #[test]
    fn table1_is_complete_and_decreasing_for_lpddr4() {
        assert_eq!(RH_THRESHOLDS.len(), 6);
        assert_eq!(RH_THRESHOLDS[0].threshold, 139_000);
        assert_eq!(RH_THRESHOLDS[5].threshold, 4_800);
    }

    #[test]
    fn classic_hammer_flips_at_t_rh() {
        let mut m = model();
        let agg = RowAddr::new(0, 0, 0, 500);
        for _ in 0..DEFAULT_T_RH - 1 {
            m.record_activation(agg);
        }
        assert!(m.take_bit_flips().is_empty(), "no flip below threshold");
        m.record_activation(agg);
        let flips = m.take_bit_flips();
        // Both distance-1 neighbours cross at the same activation.
        let victims: Vec<u32> = flips.iter().map(|f| f.victim.row.0).collect();
        assert!(victims.contains(&499) && victims.contains(&501));
    }

    #[test]
    fn double_sided_hammer_flips_middle_row_twice_as_fast() {
        let mut m = model();
        let a = RowAddr::new(0, 0, 0, 499);
        let b = RowAddr::new(0, 0, 0, 501);
        for _ in 0..DEFAULT_T_RH / 2 {
            m.record_activation(a);
            m.record_activation(b);
        }
        let flips = m.take_bit_flips();
        assert!(flips.iter().any(|f| f.victim.row.0 == 500));
    }

    #[test]
    fn refresh_clears_disturbance() {
        let mut m = model();
        let agg = RowAddr::new(0, 0, 0, 500);
        for _ in 0..DEFAULT_T_RH - 1 {
            m.record_activation(agg);
        }
        m.record_targeted_refresh(agg.with_row(499));
        m.record_targeted_refresh(agg.with_row(501));
        m.record_activation(agg);
        // Neighbours were just refreshed; one more activation cannot flip.
        assert!(m.take_bit_flips().is_empty());
    }

    #[test]
    fn targeted_refresh_disturbs_its_own_neighbors() {
        // The Half-Double enabler: refreshing row 501 hammers rows 500 & 502.
        let mut m = HammerModel::new(HammerConfig::classic_only(100), DramGeometry::tiny_test());
        let victim_refreshed = RowAddr::new(0, 0, 0, 501);
        for _ in 0..100 {
            m.record_targeted_refresh(victim_refreshed);
        }
        let flips = m.take_bit_flips();
        let victims: Vec<u32> = flips.iter().map(|f| f.victim.row.0).collect();
        assert!(victims.contains(&500) && victims.contains(&502));
    }

    #[test]
    fn distance_two_flip_needs_about_296k_acts() {
        let cfg = HammerConfig::lpddr4_new();
        assert_eq!(cfg.acts_to_flip_at(1), DEFAULT_T_RH);
        let d2 = cfg.acts_to_flip_at(2);
        assert!((295_000..=297_000).contains(&d2), "distance-2 acts = {d2}");
    }

    #[test]
    fn epoch_end_resets_everything_and_advances() {
        let mut m = model();
        let agg = RowAddr::new(0, 0, 0, 500);
        for _ in 0..1000 {
            m.record_activation(agg);
        }
        assert!(m.disturbance_of(agg.with_row(501)) > 0.0);
        assert_eq!(m.activations_of(agg), 1000);
        m.end_epoch();
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.disturbance_of(agg.with_row(501)), 0.0);
        assert_eq!(m.activations_of(agg), 0);
        assert_eq!(m.rows_with_activations_at_least(1), 0);
    }

    #[test]
    fn activation_restores_own_charge() {
        // A row that is itself activated cannot accumulate disturbance:
        // DRAM activations rewrite the activated row's cells.
        let mut m = model();
        let a = RowAddr::new(0, 0, 0, 500);
        let b = RowAddr::new(0, 0, 0, 501);
        for _ in 0..2 * DEFAULT_T_RH {
            m.record_activation(a); // disturbs b...
            m.record_activation(b); // ...but b restores itself here
        }
        let flips = m.take_bit_flips();
        assert!(
            !flips.iter().any(|f| f.victim == b),
            "activated row must not flip"
        );
        // The outer neighbours (499, 502) do flip.
        assert!(flips.iter().any(|f| f.victim.row.0 == 499));
        assert!(flips.iter().any(|f| f.victim.row.0 == 502));
    }

    #[test]
    fn rows_with_activations_statistic() {
        let mut m = model();
        for r in 0..10u32 {
            let addr = RowAddr::new(0, 0, 0, r * 10);
            for _ in 0..(r as u64 + 1) * 100 {
                m.record_activation(addr);
            }
        }
        assert_eq!(m.rows_with_activations_at_least(800), 3); // 800, 900, 1000
        assert_eq!(m.rows_with_activations_at_least(100), 10);
    }

    #[test]
    fn a_row_flips_at_most_once_per_epoch() {
        let mut m = model();
        let agg = RowAddr::new(0, 0, 0, 500);
        for _ in 0..3 * DEFAULT_T_RH {
            m.record_activation(agg);
        }
        let flips = m.take_bit_flips();
        let count_501 = flips.iter().filter(|f| f.victim.row.0 == 501).count();
        assert_eq!(count_501, 1);
        assert_eq!(m.total_flips(), flips.len() as u64);
    }

    #[test]
    fn full_refresh_prevents_flips_without_ending_epoch() {
        let mut m = model();
        let agg = RowAddr::new(0, 0, 0, 500);
        for _ in 0..DEFAULT_T_RH - 1 {
            m.record_activation(agg);
        }
        m.full_refresh();
        for _ in 0..DEFAULT_T_RH - 1 {
            m.record_activation(agg);
        }
        assert!(m.take_bit_flips().is_empty());
        assert_eq!(m.epoch(), 0);
        // Activation statistics survive a full refresh (it restores charge,
        // it doesn't end the accounting window).
        assert_eq!(m.activations_of(agg), 2 * (DEFAULT_T_RH - 1));
    }
}
