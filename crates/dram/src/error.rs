//! Error types for the DRAM model.

use std::error::Error;
use std::fmt;

use crate::geometry::RowAddr;

/// Errors produced by the DRAM model layers.
#[derive(Debug, Clone, PartialEq)]
pub enum DramError {
    /// An address referenced a channel/rank/bank/row outside the geometry.
    AddressOutOfRange(RowAddr),
    /// A configuration constraint was violated (message explains which).
    InvalidConfig(String),
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::AddressOutOfRange(a) => {
                write!(f, "address {a} is outside the configured geometry")
            }
            DramError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DramError::AddressOutOfRange(RowAddr::new(9, 0, 0, 1));
        assert!(e.to_string().contains("ch9"));
        let e = DramError::InvalidConfig("sets must be a power of two".into());
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
