//! DDR4 timing parameters and derived quantities.
//!
//! All times are expressed in CPU cycles at the baseline 3.2 GHz clock
//! (Table 2 of the paper), so one cycle is 0.3125 ns and the 1.6 GHz memory
//! bus runs at 2 CPU cycles per bus cycle.
//!
//! The derived quantities quoted throughout the paper fall out of these
//! parameters:
//!
//! * ~1.36 M activations per bank per 64 ms refresh window (§2.2),
//! * 365 ns to stream one 8 KB row to a swap buffer (§4.4),
//! * 1.46 µs for a row swap (4 transfers), 2.9 µs for swap + unswap,
//!   4.4 µs for the worst-case re-swap with eviction (§4.4).

/// A point in (or span of) time, in CPU cycles at [`TimingParams::cpu_ghz`].
pub type Cycle = u64;

/// DDR timing parameters, in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// CPU clock in GHz (cycles per nanosecond).
    pub cpu_ghz: f64,
    /// Memory bus clock in GHz (DDR transfers at 2× this).
    pub bus_ghz: f64,
    /// ACT-to-CAS delay.
    pub t_rcd: Cycle,
    /// Precharge latency.
    pub t_rp: Cycle,
    /// CAS (column access) latency.
    pub t_cas: Cycle,
    /// ACT-to-ACT delay within a bank (row cycle time).
    pub t_rc: Cycle,
    /// Refresh command duration.
    pub t_rfc: Cycle,
    /// Refresh command interval.
    pub t_refi: Cycle,
    /// Refresh window (one epoch): every row is refreshed once per epoch.
    pub epoch: Cycle,
    /// Cache-line size transferred per column access, in bytes.
    pub line_bytes: usize,
}

impl TimingParams {
    /// DDR4-3200 at a 3.2 GHz CPU clock, per Table 2:
    /// `tRCD-tRP-tCAS` = 14-14-14 ns, `tRC` = 45 ns, `tRFC` = 350 ns,
    /// `tREFI` = 7.8 µs, refresh window 64 ms.
    pub fn ddr4_3200() -> Self {
        let cpu_ghz = 3.2;
        let ns = |t: f64| -> Cycle { (t * cpu_ghz).round() as Cycle };
        TimingParams {
            cpu_ghz,
            bus_ghz: 1.6,
            t_rcd: ns(14.0),
            t_rp: ns(14.0),
            t_cas: ns(14.0),
            t_rc: ns(45.0),
            t_rfc: ns(350.0),
            t_refi: ns(7800.0),
            epoch: ns(64_000_000.0),
            line_bytes: 64,
        }
    }

    /// The same device timing with the refresh window (and therefore every
    /// epoch-relative quantity) shrunk by `scale`.
    ///
    /// Scaled runs keep every *ratio* in the RRS design intact — tracker
    /// entries per epoch, swaps per epoch, duty cycle — while making
    /// simulations tractable. Thresholds must be scaled alongside (see
    /// `rrs_core::RrsConfig::for_threshold`).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn with_epoch_scale(mut self, scale: u64) -> Self {
        assert!(scale > 0, "epoch scale must be nonzero");
        self.epoch /= scale;
        self
    }

    /// Converts nanoseconds to CPU cycles (rounded).
    pub fn ns_to_cycles(&self, ns: f64) -> Cycle {
        (ns * self.cpu_ghz).round() as Cycle
    }

    /// Converts CPU cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.cpu_ghz
    }

    /// CPU cycles per memory bus cycle (2 for the 3.2 GHz / 1.6 GHz baseline).
    pub fn cpu_cycles_per_bus_cycle(&self) -> Cycle {
        (self.cpu_ghz / self.bus_ghz).round() as Cycle
    }

    /// Cycles the data bus is occupied by one cache-line burst
    /// (BL8: 4 bus cycles for a 64 B line on a 128-bit DDR interface).
    pub fn line_transfer_cycles(&self) -> Cycle {
        4 * self.cpu_cycles_per_bus_cycle()
    }

    /// Number of refresh commands issued per epoch.
    pub fn refreshes_per_epoch(&self) -> u64 {
        self.epoch / self.t_refi
    }

    /// Cycles per epoch during which a rank is available for activations,
    /// i.e. the epoch minus time spent in refresh.
    pub fn available_cycles_per_epoch(&self) -> Cycle {
        self.epoch - self.refreshes_per_epoch() * self.t_rfc
    }

    /// Maximum activations per bank per epoch — the paper's `ACT_max`
    /// (≈1.36 M for the 64 ms baseline).
    ///
    /// ```
    /// let t = rrs_dram::TimingParams::ddr4_3200();
    /// let m = t.max_activations_per_epoch();
    /// assert!((1_350_000..1_370_000).contains(&m));
    /// ```
    pub fn max_activations_per_epoch(&self) -> u64 {
        self.available_cycles_per_epoch() / self.t_rc
    }

    /// Cycles to stream one row of `row_bytes` between DRAM and a swap
    /// buffer: one activation window plus the burst transfers
    /// (≈365 ns for an 8 KB row, §4.4).
    pub fn row_transfer_cycles(&self, row_bytes: usize) -> Cycle {
        let lines = (row_bytes / self.line_bytes) as Cycle;
        self.t_rc + lines * self.line_transfer_cycles()
    }

    /// Cycles for one full row swap: four row transfers (≈1.46 µs, §4.4).
    pub fn row_swap_cycles(&self, row_bytes: usize) -> Cycle {
        4 * self.row_transfer_cycles(row_bytes)
    }

    /// Cycles for a swap plus the unswap triggered by an RIT eviction
    /// (≈2.9 µs, §4.4).
    pub fn swap_plus_unswap_cycles(&self, row_bytes: usize) -> Cycle {
        2 * self.row_swap_cycles(row_bytes)
    }

    /// Worst-case re-swap requiring an eviction of a previous-epoch tuple
    /// (≈4.4 µs, §4.4).
    pub fn worst_case_swap_cycles(&self, row_bytes: usize) -> Cycle {
        3 * self.row_swap_cycles(row_bytes)
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr4_3200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_in_cycles() {
        let t = TimingParams::ddr4_3200();
        assert_eq!(t.t_rcd, 45); // 14 ns * 3.2
        assert_eq!(t.t_rc, 144); // 45 ns * 3.2
        assert_eq!(t.t_rfc, 1120); // 350 ns * 3.2
        assert_eq!(t.t_refi, 24_960); // 7.8 µs * 3.2
        assert_eq!(t.epoch, 204_800_000); // 64 ms * 3.2 GHz
        assert_eq!(t.cpu_cycles_per_bus_cycle(), 2);
    }

    #[test]
    fn act_max_matches_paper() {
        // §2.2: "a bank can encounter up to 1.36 million activations in the
        // refresh window of 64ms if we discount the time spent in refresh".
        let t = TimingParams::ddr4_3200();
        let act_max = t.max_activations_per_epoch();
        assert!(
            (1_350_000..=1_370_000).contains(&act_max),
            "ACT_max = {act_max}"
        );
    }

    #[test]
    fn row_transfer_matches_paper_365ns() {
        // §4.4: 512 bus cycles (320 ns) + 45 ns ACT = ~365 ns.
        let t = TimingParams::ddr4_3200();
        let ns = t.cycles_to_ns(t.row_transfer_cycles(8 * 1024));
        assert!((360.0..=370.0).contains(&ns), "row transfer = {ns} ns");
    }

    #[test]
    fn swap_latencies_match_paper() {
        let t = TimingParams::ddr4_3200();
        let row = 8 * 1024;
        let swap_us = t.cycles_to_ns(t.row_swap_cycles(row)) / 1000.0;
        assert!((1.4..=1.5).contains(&swap_us), "swap = {swap_us} µs");
        let both_us = t.cycles_to_ns(t.swap_plus_unswap_cycles(row)) / 1000.0;
        assert!((2.8..=3.0).contains(&both_us), "swap+unswap = {both_us} µs");
        let worst_us = t.cycles_to_ns(t.worst_case_swap_cycles(row)) / 1000.0;
        assert!((4.3..=4.5).contains(&worst_us), "worst = {worst_us} µs");
    }

    #[test]
    fn epoch_scaling_preserves_ratios() {
        let base = TimingParams::ddr4_3200();
        let scaled = base.with_epoch_scale(32);
        assert_eq!(scaled.epoch, base.epoch / 32);
        // ACT_max scales by the same factor (within rounding).
        let ratio =
            base.max_activations_per_epoch() as f64 / scaled.max_activations_per_epoch() as f64;
        assert!((ratio - 32.0).abs() < 0.1, "ratio = {ratio}");
        // Device timing is untouched.
        assert_eq!(scaled.t_rc, base.t_rc);
    }

    #[test]
    #[should_panic(expected = "epoch scale must be nonzero")]
    fn zero_scale_panics() {
        let _ = TimingParams::ddr4_3200().with_epoch_scale(0);
    }

    #[test]
    fn ns_cycle_round_trip() {
        let t = TimingParams::ddr4_3200();
        for ns in [1.0, 14.0, 45.0, 350.0, 7800.0] {
            let c = t.ns_to_cycles(ns);
            let back = t.cycles_to_ns(c);
            assert!((back - ns).abs() < 0.2, "{ns} -> {c} -> {back}");
        }
    }
}
