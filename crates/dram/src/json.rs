//! JSON conversions for the DRAM result types that appear in serialized
//! campaign cells: [`RowAddr`], [`BitFlip`], and [`CommandCounts`].
//!
//! Field order is fixed (declaration order) — the campaign engine's
//! byte-identity invariant depends on it.

use rrs_json::{FromJson, Json, JsonError, ToJson};

use crate::command::CommandCounts;
use crate::geometry::{BankId, ChannelId, RankId, RowAddr, RowId};
use crate::hammer::BitFlip;

impl ToJson for RowAddr {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("channel".into(), Json::u64(self.channel.0 as u64)),
            ("rank".into(), Json::u64(self.rank.0 as u64)),
            ("bank".into(), Json::u64(self.bank.0 as u64)),
            ("row".into(), Json::u64(self.row.0 as u64)),
        ])
    }
}

impl FromJson for RowAddr {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(RowAddr {
            channel: ChannelId(u8::from_json(json.field("channel")?)?),
            rank: RankId(u8::from_json(json.field("rank")?)?),
            bank: BankId(u8::from_json(json.field("bank")?)?),
            row: RowId(u32::from_json(json.field("row")?)?),
        })
    }
}

impl ToJson for BitFlip {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("victim".into(), self.victim.to_json()),
            ("epoch".into(), Json::u64(self.epoch)),
            ("disturbance".into(), Json::f64(self.disturbance)),
        ])
    }
}

impl FromJson for BitFlip {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(BitFlip {
            victim: RowAddr::from_json(json.field("victim")?)?,
            epoch: u64::from_json(json.field("epoch")?)?,
            disturbance: f64::from_json(json.field("disturbance")?)?,
        })
    }
}

impl ToJson for CommandCounts {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("activates".into(), Json::u64(self.activates)),
            ("precharges".into(), Json::u64(self.precharges)),
            ("reads".into(), Json::u64(self.reads)),
            ("writes".into(), Json::u64(self.writes)),
            ("refreshes".into(), Json::u64(self.refreshes)),
            (
                "targeted_refreshes".into(),
                Json::u64(self.targeted_refreshes),
            ),
            ("swap_transfers".into(), Json::u64(self.swap_transfers)),
        ])
    }
}

impl FromJson for CommandCounts {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(CommandCounts {
            activates: u64::from_json(json.field("activates")?)?,
            precharges: u64::from_json(json.field("precharges")?)?,
            reads: u64::from_json(json.field("reads")?)?,
            writes: u64::from_json(json.field("writes")?)?,
            refreshes: u64::from_json(json.field("refreshes")?)?,
            targeted_refreshes: u64::from_json(json.field("targeted_refreshes")?)?,
            swap_transfers: u64::from_json(json.field("swap_transfers")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_addr_round_trips() {
        let a = RowAddr::new(1, 0, 7, 123_456);
        assert_eq!(RowAddr::from_json(&a.to_json()).unwrap(), a);
    }

    #[test]
    fn bit_flip_round_trips() {
        let f = BitFlip {
            victim: RowAddr::new(0, 1, 2, 3),
            epoch: 42,
            disturbance: 1.25,
        };
        let back = BitFlip::from_json(&f.to_json()).unwrap();
        assert_eq!(back.victim, f.victim);
        assert_eq!(back.epoch, f.epoch);
        assert_eq!(back.disturbance.to_bits(), f.disturbance.to_bits());
    }

    #[test]
    fn command_counts_round_trip() {
        let c = CommandCounts {
            activates: 1,
            precharges: 2,
            reads: 3,
            writes: 4,
            refreshes: 5,
            targeted_refreshes: 6,
            swap_transfers: u64::MAX,
        };
        assert_eq!(CommandCounts::from_json(&c.to_json()).unwrap(), c);
    }
}
