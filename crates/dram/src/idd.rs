//! IDD-current-based DRAM power model (Micron TN-46/“DRAM power calculator”
//! methodology), the datasheet-grade alternative to the first-order
//! per-command model in [`crate::power`].
//!
//! USIMM's power reporting — which the paper uses for Table 6's DRAM row —
//! follows the same current-times-voltage formulation: background power
//! from the standby currents (IDD2N precharged / IDD3N active), activate
//! energy from `(IDD0 − IDD3N) · tRC`, read/write burst power from
//! `(IDD4R/W − IDD3N)`, and refresh from `(IDD5B − IDD3N) · tRFC`.

use crate::command::CommandCounts;
use crate::timing::{Cycle, TimingParams};

/// Datasheet currents of one DRAM device, in milliamps, plus supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddCurrents {
    /// One-bank activate-precharge current.
    pub idd0_ma: f64,
    /// Precharge standby current.
    pub idd2n_ma: f64,
    /// Active standby current.
    pub idd3n_ma: f64,
    /// Burst read current.
    pub idd4r_ma: f64,
    /// Burst write current.
    pub idd4w_ma: f64,
    /// Burst refresh current.
    pub idd5b_ma: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Devices per rank (x8 devices on a 64-bit channel: 8).
    pub devices_per_rank: u32,
}

impl IddCurrents {
    /// Typical 8 Gb x8 DDR4-3200 datasheet values.
    pub fn ddr4_8gb_x8() -> Self {
        IddCurrents {
            idd0_ma: 58.0,
            idd2n_ma: 34.0,
            idd3n_ma: 44.0,
            idd4r_ma: 150.0,
            idd4w_ma: 140.0,
            idd5b_ma: 195.0,
            vdd: 1.2,
            devices_per_rank: 8,
        }
    }
}

impl Default for IddCurrents {
    fn default() -> Self {
        Self::ddr4_8gb_x8()
    }
}

/// Power/energy report from the IDD model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddReport {
    /// Background (standby) energy, nJ.
    pub background_nj: f64,
    /// Activate/precharge energy, nJ.
    pub activate_nj: f64,
    /// Read burst energy, nJ.
    pub read_nj: f64,
    /// Write burst energy, nJ.
    pub write_nj: f64,
    /// Refresh energy, nJ.
    pub refresh_nj: f64,
    /// Row-swap streaming energy (activate + full-row bursts), nJ.
    pub swap_nj: f64,
    /// Interval length in seconds.
    pub elapsed_seconds: f64,
}

impl IddReport {
    /// Total energy, nJ.
    pub fn total_nj(&self) -> f64 {
        self.background_nj
            + self.activate_nj
            + self.read_nj
            + self.write_nj
            + self.refresh_nj
            + self.swap_nj
    }

    /// Average power in milliwatts.
    pub fn average_mw(&self) -> f64 {
        if self.elapsed_seconds <= 0.0 {
            0.0
        } else {
            self.total_nj() * 1e-9 / self.elapsed_seconds * 1e3
        }
    }

    /// Fraction of non-swap energy attributable to row swaps (Table 6's
    /// DRAM row).
    pub fn swap_overhead_fraction(&self) -> f64 {
        let base = self.total_nj() - self.swap_nj;
        if base <= 0.0 {
            0.0
        } else {
            self.swap_nj / base
        }
    }
}

/// The IDD-based power model for one rank.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IddPowerModel {
    /// Device currents.
    pub currents: IddCurrents,
}

impl IddPowerModel {
    /// Creates the model from datasheet currents.
    pub fn new(currents: IddCurrents) -> Self {
        IddPowerModel { currents }
    }

    fn rank_watts(&self, ma_above_background: f64) -> f64 {
        self.currents.vdd * ma_above_background * 1e-3 * self.currents.devices_per_rank as f64
    }

    /// Energy of one activate-precharge pair, nJ:
    /// `VDD · (IDD0 − IDD3N) · tRC` per device.
    pub fn activate_energy_nj(&self, timing: &TimingParams) -> f64 {
        let seconds = timing.cycles_to_ns(timing.t_rc) * 1e-9;
        self.rank_watts(self.currents.idd0_ma - self.currents.idd3n_ma) * seconds * 1e9
    }

    /// Energy of one 64 B read burst, nJ.
    pub fn read_energy_nj(&self, timing: &TimingParams) -> f64 {
        let seconds = timing.cycles_to_ns(timing.line_transfer_cycles()) * 1e-9;
        self.rank_watts(self.currents.idd4r_ma - self.currents.idd3n_ma) * seconds * 1e9
    }

    /// Energy of one 64 B write burst, nJ.
    pub fn write_energy_nj(&self, timing: &TimingParams) -> f64 {
        let seconds = timing.cycles_to_ns(timing.line_transfer_cycles()) * 1e-9;
        self.rank_watts(self.currents.idd4w_ma - self.currents.idd3n_ma) * seconds * 1e9
    }

    /// Energy of one all-bank refresh command, nJ:
    /// `VDD · (IDD5B − IDD3N) · tRFC`.
    pub fn refresh_energy_nj(&self, timing: &TimingParams) -> f64 {
        let seconds = timing.cycles_to_ns(timing.t_rfc) * 1e-9;
        self.rank_watts(self.currents.idd5b_ma - self.currents.idd3n_ma) * seconds * 1e9
    }

    /// Full report over `elapsed` cycles for one rank.
    ///
    /// `row_open_fraction` selects between active (IDD3N) and precharged
    /// (IDD2N) standby for the background term.
    pub fn report(
        &self,
        counts: &CommandCounts,
        elapsed: Cycle,
        timing: &TimingParams,
        lines_per_row: usize,
        row_open_fraction: f64,
    ) -> IddReport {
        let seconds = timing.cycles_to_ns(elapsed) * 1e-9;
        let standby_ma = self.currents.idd2n_ma
            + row_open_fraction.clamp(0.0, 1.0) * (self.currents.idd3n_ma - self.currents.idd2n_ma);
        let background_nj = self.rank_watts(standby_ma) * seconds * 1e9;

        let act = self.activate_energy_nj(timing);
        let rd = self.read_energy_nj(timing);
        let wr = self.write_energy_nj(timing);
        // A swap transfer streams a whole row once (plus its activation).
        let swap_each = act + lines_per_row as f64 * (rd + wr) / 2.0;

        IddReport {
            background_nj,
            activate_nj: (counts.activates + counts.targeted_refreshes) as f64 * act,
            read_nj: counts.reads as f64 * rd,
            write_nj: counts.writes as f64 * wr,
            refresh_nj: counts.refreshes as f64 * self.refresh_energy_nj(timing),
            swap_nj: counts.swap_transfers as f64 * swap_each,
            elapsed_seconds: seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::DramCommand;

    fn model() -> IddPowerModel {
        IddPowerModel::default()
    }

    #[test]
    fn per_command_energies_have_datasheet_magnitudes() {
        let t = TimingParams::ddr4_3200();
        let m = model();
        // ACT+PRE: VDD·(IDD0−IDD3N)·tRC·8 devices = 1.2·14mA·45ns·8 ≈ 6 nJ.
        let act = m.activate_energy_nj(&t);
        assert!((3.0..12.0).contains(&act), "ACT energy = {act} nJ");
        // Read burst: 1.2·106mA·2.5ns·8 ≈ 2.5 nJ.
        let rd = m.read_energy_nj(&t);
        assert!((0.8..6.0).contains(&rd), "RD energy = {rd} nJ");
        // Refresh: 1.2·151mA·350ns·8 ≈ 507 nJ.
        let rf = m.refresh_energy_nj(&t);
        assert!((200.0..1_000.0).contains(&rf), "REF energy = {rf} nJ");
    }

    #[test]
    fn idle_rank_draws_standby_power() {
        let t = TimingParams::ddr4_3200();
        let r = model().report(&CommandCounts::new(), t.epoch, &t, 128, 0.0);
        // 1.2 V · 34 mA · 8 devices ≈ 326 mW precharged standby.
        let mw = r.average_mw();
        assert!((250.0..450.0).contains(&mw), "idle power = {mw} mW");
        // Active standby is strictly higher.
        let active = model().report(&CommandCounts::new(), t.epoch, &t, 128, 1.0);
        assert!(active.average_mw() > mw);
    }

    #[test]
    fn busy_rank_power_is_realistic() {
        // A maximally busy rank (~1.36M ACTs + reads per 64 ms) should land
        // in the 1–6 W range DDR4 DIMMs actually draw.
        let t = TimingParams::ddr4_3200();
        let counts = CommandCounts {
            activates: 16 * 500_000,
            reads: 16 * 1_500_000,
            writes: 16 * 500_000,
            refreshes: 8_205,
            ..CommandCounts::default()
        };
        let r = model().report(&counts, t.epoch, &t, 128, 0.7);
        let w = r.average_mw() / 1_000.0;
        assert!((1.0..8.0).contains(&w), "busy rank = {w} W");
    }

    #[test]
    fn swap_overhead_agrees_with_first_order_model_in_magnitude() {
        // The two power models must tell the same Table 6 story: benign
        // swap ratios produce sub-percent overheads in both.
        let t = TimingParams::ddr4_3200();
        let mut counts = CommandCounts {
            activates: 1_000_000,
            reads: 3_000_000,
            refreshes: 8_205,
            ..CommandCounts::default()
        };
        for _ in 0..272 {
            counts.record(DramCommand::SwapTransfer); // 68 swaps × 4 transfers
        }
        let idd = model().report(&counts, t.epoch, &t, 128, 0.7);
        let simple = crate::power::DramPowerModel::ddr4().report(&counts, t.epoch, &t, 128, 1);
        let (a, b) = (
            idd.swap_overhead_fraction(),
            simple.swap_overhead_fraction(),
        );
        assert!(a > 0.0 && a < 0.01, "idd overhead = {a}");
        assert!(b > 0.0 && b < 0.02, "simple overhead = {b}");
        // Same order of magnitude.
        assert!(a / b < 10.0 && b / a < 10.0, "models disagree: {a} vs {b}");
    }

    #[test]
    fn report_components_are_linear() {
        let t = TimingParams::ddr4_3200();
        let mut one = CommandCounts::new();
        one.record(DramCommand::Activate);
        let mut two = CommandCounts::new();
        two.record(DramCommand::Activate);
        two.record(DramCommand::Activate);
        let m = model();
        let r1 = m.report(&one, 1_000, &t, 128, 0.5);
        let r2 = m.report(&two, 1_000, &t, 128, 0.5);
        assert!((r2.activate_nj - 2.0 * r1.activate_nj).abs() < 1e-9);
    }
}
