//! DRAM geometry: channels, ranks, banks, rows, and strongly-typed addresses.
//!
//! The paper's baseline (Table 2) is 2 channels × 1 rank × 16 banks, with
//! 128 K rows of 8 KB per bank (32 GB total). [`DramGeometry::asplos22_baseline`]
//! reproduces it exactly.

use std::fmt;

/// Identifies a memory channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId(pub u8);

/// Identifies a rank within a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RankId(pub u8);

/// Identifies a bank within a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u8);

/// Identifies a row within a bank (17 bits for the 128 K-row baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(pub u32);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rk{}", self.0)
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bk{}", self.0)
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row{}", self.0)
    }
}

impl From<u32> for RowId {
    fn from(v: u32) -> Self {
        RowId(v)
    }
}

/// Fully qualified DRAM row address: channel, rank, bank, row.
///
/// This is the unit of Row Hammer accounting: activations, swaps, targeted
/// refreshes, and disturbance are all tracked per `RowAddr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowAddr {
    /// Channel.
    pub channel: ChannelId,
    /// Rank within the channel.
    pub rank: RankId,
    /// Bank within the rank.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
}

impl RowAddr {
    /// Creates a row address from raw components.
    ///
    /// ```
    /// use rrs_dram::geometry::RowAddr;
    /// let a = RowAddr::new(1, 0, 7, 42);
    /// assert_eq!(a.bank.0, 7);
    /// ```
    pub fn new(channel: u8, rank: u8, bank: u8, row: u32) -> Self {
        RowAddr {
            channel: ChannelId(channel),
            rank: RankId(rank),
            bank: BankId(bank),
            row: RowId(row),
        }
    }

    /// The same bank with a different row — row swaps always stay within a
    /// bank (RRS §4.4), so this is the common way to derive swap destinations.
    pub fn with_row(self, row: u32) -> Self {
        RowAddr {
            row: RowId(row),
            ..self
        }
    }

    /// The row `distance` rows above, if it exists within the bank.
    pub fn neighbor_above(self, distance: u32, geometry: &DramGeometry) -> Option<RowAddr> {
        let r = self.row.0.checked_add(distance)?;
        (r < geometry.rows_per_bank as u32).then_some(self.with_row(r))
    }

    /// The row `distance` rows below, if it exists within the bank.
    pub fn neighbor_below(self, distance: u32) -> Option<RowAddr> {
        let r = self.row.0.checked_sub(distance)?;
        Some(self.with_row(r))
    }

    /// Both neighbours at `distance`, clipped at the bank edge.
    pub fn neighbors(self, distance: u32, geometry: &DramGeometry) -> Vec<RowAddr> {
        let mut v = Vec::with_capacity(2);
        if let Some(n) = self.neighbor_below(distance) {
            v.push(n);
        }
        if let Some(n) = self.neighbor_above(distance, geometry) {
            v.push(n);
        }
        v
    }

    /// A dense index over all banks in the system, useful for flat storage.
    pub fn bank_index(self, geometry: &DramGeometry) -> usize {
        ((self.channel.0 as usize * geometry.ranks_per_channel + self.rank.0 as usize)
            * geometry.banks_per_rank)
            + self.bank.0 as usize
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.channel, self.rank, self.bank, self.row
        )
    }
}

/// Static shape of the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Number of independent channels (each with its own data bus).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Bytes per row (the row-buffer / page size).
    pub row_size_bytes: usize,
}

impl DramGeometry {
    /// The paper's Table 2 baseline: 2 channels × 1 rank × 16 banks,
    /// 128 K rows × 8 KB = 32 GB.
    ///
    /// ```
    /// let g = rrs_dram::DramGeometry::asplos22_baseline();
    /// assert_eq!(g.total_bytes(), 32 << 30);
    /// ```
    pub fn asplos22_baseline() -> Self {
        DramGeometry {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 16,
            rows_per_bank: 128 * 1024,
            row_size_bytes: 8 * 1024,
        }
    }

    /// A small geometry for fast unit tests (same shape, fewer rows).
    pub fn tiny_test() -> Self {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 2,
            rows_per_bank: 1024,
            row_size_bytes: 8 * 1024,
        }
    }

    /// Total number of banks across the whole system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank as u64 * self.row_size_bytes as u64
    }

    /// Cache lines (64 B) per row.
    pub fn lines_per_row(&self) -> usize {
        self.row_size_bytes / 64
    }

    /// Number of bits needed to address a row within a bank (17 for the
    /// baseline, matching the paper's Table 5 entry sizing).
    pub fn row_id_bits(&self) -> u32 {
        usize::BITS - (self.rows_per_bank - 1).leading_zeros()
    }

    /// Whether `addr` is in range for this geometry.
    pub fn contains(&self, addr: RowAddr) -> bool {
        (addr.channel.0 as usize) < self.channels
            && (addr.rank.0 as usize) < self.ranks_per_channel
            && (addr.bank.0 as usize) < self.banks_per_rank
            && (addr.row.0 as usize) < self.rows_per_bank
    }

    /// Iterate over every bank address `(channel, rank, bank)` in the system.
    pub fn banks(&self) -> impl Iterator<Item = (ChannelId, RankId, BankId)> + '_ {
        let ranks = self.ranks_per_channel;
        let banks = self.banks_per_rank;
        (0..self.channels).flat_map(move |c| {
            (0..ranks).flat_map(move |r| {
                (0..banks).map(move |b| (ChannelId(c as u8), RankId(r as u8), BankId(b as u8)))
            })
        })
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::asplos22_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let g = DramGeometry::asplos22_baseline();
        assert_eq!(g.channels, 2);
        assert_eq!(g.banks_per_rank, 16);
        assert_eq!(g.rows_per_bank, 128 * 1024);
        assert_eq!(g.row_size_bytes, 8 * 1024);
        assert_eq!(g.total_bytes(), 32u64 << 30);
        assert_eq!(g.row_id_bits(), 17);
        assert_eq!(g.lines_per_row(), 128);
    }

    #[test]
    fn neighbors_clip_at_edges() {
        let g = DramGeometry::tiny_test();
        let bottom = RowAddr::new(0, 0, 0, 0);
        assert_eq!(bottom.neighbors(1, &g).len(), 1);
        let top = RowAddr::new(0, 0, 0, g.rows_per_bank as u32 - 1);
        assert_eq!(top.neighbors(1, &g).len(), 1);
        let mid = RowAddr::new(0, 0, 0, 5);
        let n = mid.neighbors(2, &g);
        assert_eq!(n, vec![mid.with_row(3), mid.with_row(7)]);
    }

    #[test]
    fn bank_index_is_dense_and_unique() {
        let g = DramGeometry::asplos22_baseline();
        let mut seen = vec![false; g.total_banks()];
        for (c, r, b) in g.banks() {
            let idx = RowAddr {
                channel: c,
                rank: r,
                bank: b,
                row: RowId(0),
            }
            .bank_index(&g);
            assert!(!seen[idx], "duplicate bank index {idx}");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn contains_checks_all_dimensions() {
        let g = DramGeometry::tiny_test();
        assert!(g.contains(RowAddr::new(0, 0, 1, 1023)));
        assert!(!g.contains(RowAddr::new(1, 0, 0, 0)));
        assert!(!g.contains(RowAddr::new(0, 1, 0, 0)));
        assert!(!g.contains(RowAddr::new(0, 0, 2, 0)));
        assert!(!g.contains(RowAddr::new(0, 0, 0, 1024)));
    }

    #[test]
    fn display_is_nonempty() {
        let a = RowAddr::new(1, 0, 3, 77);
        assert_eq!(a.to_string(), "ch1/rk0/bk3/row77");
    }
}
