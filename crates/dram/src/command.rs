//! DDR command vocabulary and per-command accounting.
//!
//! The power model ([`crate::power`]) and the paper's Table 6 are driven by
//! command counts, so the bank/controller layers record every command they
//! issue into a [`CommandCounts`].

use std::fmt;
use std::ops::{Add, AddAssign};

/// A DDR command, as issued by the memory controller to a bank or rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Activate a row into the bank's row buffer.
    Activate,
    /// Precharge (close) the open row.
    Precharge,
    /// Column read from the open row.
    Read,
    /// Column write to the open row.
    Write,
    /// Per-rank auto-refresh (one `tREFI` slot, busy for `tRFC`).
    Refresh,
    /// Targeted single-row refresh issued by a mitigation
    /// (victim-focused defenses; internally an ACT+PRE of the victim row).
    TargetedRefresh,
    /// Row transfer between DRAM and a swap buffer (RRS swaps; internally a
    /// streaming ACT + 128 column accesses).
    SwapTransfer,
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DramCommand::Activate => "ACT",
            DramCommand::Precharge => "PRE",
            DramCommand::Read => "RD",
            DramCommand::Write => "WR",
            DramCommand::Refresh => "REF",
            DramCommand::TargetedRefresh => "TREF",
            DramCommand::SwapTransfer => "SWAPX",
        };
        f.write_str(s)
    }
}

/// Counts of every command class issued, the input to the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandCounts {
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Per-rank refresh commands issued.
    pub refreshes: u64,
    /// Mitigation-issued single-row refreshes.
    pub targeted_refreshes: u64,
    /// Row transfers for swap operations.
    pub swap_transfers: u64,
}

impl CommandCounts {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one command.
    pub fn record(&mut self, cmd: DramCommand) {
        match cmd {
            DramCommand::Activate => self.activates += 1,
            DramCommand::Precharge => self.precharges += 1,
            DramCommand::Read => self.reads += 1,
            DramCommand::Write => self.writes += 1,
            DramCommand::Refresh => self.refreshes += 1,
            DramCommand::TargetedRefresh => self.targeted_refreshes += 1,
            DramCommand::SwapTransfer => self.swap_transfers += 1,
        }
    }

    /// Total commands of all classes.
    pub fn total(&self) -> u64 {
        self.activates
            + self.precharges
            + self.reads
            + self.writes
            + self.refreshes
            + self.targeted_refreshes
            + self.swap_transfers
    }

    /// Column accesses (reads + writes).
    pub fn column_accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

impl Add for CommandCounts {
    type Output = CommandCounts;
    fn add(mut self, rhs: CommandCounts) -> CommandCounts {
        self += rhs;
        self
    }
}

impl AddAssign for CommandCounts {
    fn add_assign(&mut self, rhs: CommandCounts) {
        self.activates += rhs.activates;
        self.precharges += rhs.precharges;
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.refreshes += rhs.refreshes;
        self.targeted_refreshes += rhs.targeted_refreshes;
        self.swap_transfers += rhs.swap_transfers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut c = CommandCounts::new();
        c.record(DramCommand::Activate);
        c.record(DramCommand::Activate);
        c.record(DramCommand::Read);
        c.record(DramCommand::Refresh);
        assert_eq!(c.activates, 2);
        assert_eq!(c.reads, 1);
        assert_eq!(c.total(), 4);
        assert_eq!(c.column_accesses(), 1);
    }

    #[test]
    fn add_is_componentwise() {
        let mut a = CommandCounts::new();
        a.record(DramCommand::Write);
        a.record(DramCommand::SwapTransfer);
        let mut b = CommandCounts::new();
        b.record(DramCommand::Write);
        b.record(DramCommand::TargetedRefresh);
        let c = a + b;
        assert_eq!(c.writes, 2);
        assert_eq!(c.swap_transfers, 1);
        assert_eq!(c.targeted_refreshes, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn display_is_short_mnemonic() {
        assert_eq!(DramCommand::Activate.to_string(), "ACT");
        assert_eq!(DramCommand::SwapTransfer.to_string(), "SWAPX");
    }
}
