#![warn(missing_docs)]

//! # rrs-check — minimal randomized property testing
//!
//! A tiny, dependency-free stand-in for a property-testing framework: each
//! property runs against a few hundred deterministically seeded random
//! cases, and a failure reports the case seed so it can be replayed
//! (`CHECK_SEED=<n> cargo test <name>`). There is no shrinking — cases are
//! small enough that a failing seed is directly debuggable.
//!
//! The build environment has no network access to crates.io, so external
//! frameworks cannot be used; properties in this repository run on this
//! harness instead.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of random cases per property.
pub const DEFAULT_CASES: u32 = 192;

/// A deterministic per-case value generator (xoshiro256++).
pub struct Gen {
    s: [u64; 4],
}

impl Gen {
    /// Creates a generator for one case seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Gen {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Arbitrary `u128`.
    pub fn u128(&mut self) -> u128 {
        ((self.u64() as u128) << 64) | self.u64() as u128
    }

    /// Arbitrary `u32`.
    pub fn u32(&mut self) -> u32 {
        self.u64() as u32
    }

    /// Arbitrary `u16`.
    pub fn u16(&mut self) -> u16 {
        self.u64() as u16
    }

    /// Arbitrary `u8`.
    pub fn u8(&mut self) -> u8 {
        self.u64() as u8
    }

    /// Arbitrary `bool`.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Uniform draw below `bound` (rejection-sampled, unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform `u64` in `lo..hi`.
    pub fn u64_in(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        r.start + self.below(r.end - r.start)
    }

    /// Uniform `u32` in `lo..hi`.
    pub fn u32_in(&mut self, r: Range<u32>) -> u32 {
        self.u64_in(r.start as u64..r.end as u64) as u32
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        self.u64_in(r.start as u64..r.end as u64) as usize
    }

    /// A vector with a length drawn from `len`, elements built by `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// Picks one element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0..items.len())]
    }
}

/// Runs `property` against [`DEFAULT_CASES`] random cases.
///
/// On failure, re-raises the panic after printing the failing case seed.
/// Set `CHECK_SEED=<n>` to replay exactly one case.
pub fn check(property: impl Fn(&mut Gen)) {
    check_cases(DEFAULT_CASES, property);
}

/// Runs `property` against `cases` random cases (see [`check`]).
pub fn check_cases(cases: u32, property: impl Fn(&mut Gen)) {
    if let Ok(seed) = std::env::var("CHECK_SEED") {
        let seed: u64 = seed.parse().expect("CHECK_SEED must be an integer");
        property(&mut Gen::new(seed));
        return;
    }
    for case in 0..cases {
        // Case seeds are fixed (not time-derived): failures are stable
        // across CI runs and bisectable.
        let seed = 0xC0FF_EE00u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut Gen::new(seed))));
        if let Err(panic) = result {
            eprintln!("property failed at case {case} (replay with CHECK_SEED={seed})");
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_respected() {
        check(|g| {
            let x = g.u64_in(10..20);
            assert!((10..20).contains(&x));
            let v = g.vec(0..5, |g| g.bool());
            assert!(v.len() < 5);
        });
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let result = catch_unwind(|| check_cases(3, |_| panic!("boom")));
        assert!(result.is_err());
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = Gen::new(9);
        let mut b = Gen::new(9);
        for _ in 0..32 {
            assert_eq!(a.u64(), b.u64());
        }
    }
}
