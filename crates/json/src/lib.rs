#![warn(missing_docs)]

//! # rrs-json — deterministic JSON for campaign results
//!
//! The campaign engine persists per-cell [`SimResult`]s as JSON and proves
//! a byte-identity invariant (serial vs. parallel runs produce identical
//! files), so the serializer must be *deterministic*: object keys keep
//! insertion order, numbers are emitted from fixed formatting rules, and
//! round-trips preserve bytes. The build environment has no crates.io
//! access, so this is a small hand-rolled implementation rather than serde.
//!
//! Numbers are stored as their lexeme ([`Json::Num`] holds the literal
//! text). This keeps full `u64`/`u128` precision (cycle counters exceed
//! 2^53) and makes parse→write byte-exact.
//!
//! [`SimResult`]: https://docs.rs/rrs-sim

use std::fmt;

/// A JSON value. Objects preserve insertion order (determinism).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, stored as its literal text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion error with a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// An unsigned-integer number.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A `u128` number (JSON has no precision limit; parsers here keep the
    /// lexeme, so nothing is lost).
    pub fn u128(v: u128) -> Json {
        Json::Num(v.to_string())
    }

    /// A `usize` number.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A float number. Uses Rust's shortest round-trip formatting; non-
    /// finite values (which JSON cannot express) become `null`.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, as an error otherwise.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field {key:?}")))
    }

    /// The value as `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u128`.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64` (also accepts `null` for non-finite).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) — the deterministic canonical
    /// form used for byte-identity comparisons.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation (the on-disk format; still
    /// deterministic).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// Flat compact objects — the shape of every telemetry-event line and
    /// per-cell result record — take a single-pass fast path through
    /// [`scan_flat_object`]; everything else (nesting, escapes, interior
    /// whitespace) falls back to the general recursive parser with
    /// identical results.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        if let Some(v) = Json::parse_flat(text) {
            return Ok(v);
        }
        Json::parse_general(text)
    }

    /// The general recursive-descent parser, with no fast path in front.
    /// Exposed so equivalence tests can diff it against [`Json::parse`];
    /// callers should use [`Json::parse`].
    #[doc(hidden)]
    pub fn parse_general(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Builds a [`Json::Obj`] via the flat scanner; `None` means the input
    /// is not a supported flat compact object and must take the slow path.
    fn parse_flat(text: &str) -> Option<Json> {
        let mut fields = Vec::new();
        let complete = scan_flat_object(text, |key, value| {
            fields.push((
                key.to_string(),
                match value {
                    FlatValue::Null => Json::Null,
                    FlatValue::Bool(b) => Json::Bool(b),
                    FlatValue::Num(s) => Json::Num(s.to_string()),
                    FlatValue::Str(s) => Json::Str(s.to_string()),
                },
            ));
        });
        complete.then_some(Json::Obj(fields))
    }
}

/// A borrowed scalar yielded by [`scan_flat_object`]. String and number
/// lexemes point into the input — the scanner never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatValue<'a> {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number lexeme (validated against the same grammar as the general
    /// parser, but not converted).
    Num(&'a str),
    /// A string with no escape sequences (raw slice between the quotes).
    Str(&'a str),
}

/// Single-pass, zero-allocation scanner over a *flat compact* JSON object:
/// `{"key":value,...}` with scalar values only, no escape sequences in
/// strings, and no whitespace except leading/trailing around the document.
///
/// Calls `on_field` once per field in document order and returns `true` if
/// the whole input was consumed. Returns `false` as soon as an unsupported
/// shape appears (nesting, escapes, interior whitespace, malformed syntax)
/// — the caller must then discard any fields already reported and re-parse
/// with [`Json::parse`]'s general path. A `false` therefore never means
/// "invalid JSON", only "not scannable".
pub fn scan_flat_object<'a>(
    text: &'a str,
    mut on_field: impl FnMut(&'a str, FlatValue<'a>),
) -> bool {
    let trimmed = text.trim_matches([' ', '\t', '\n', '\r']);
    let bytes = trimmed.as_bytes();
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return false;
    }
    if bytes.len() == 2 {
        return true; // {}
    }
    let mut pos = 1;
    let end = bytes.len() - 1; // index of the closing '}'
    loop {
        // Key.
        let Some((key, next)) = scan_plain_string(trimmed, pos) else {
            return false;
        };
        pos = next;
        if bytes.get(pos) != Some(&b':') {
            return false;
        }
        pos += 1;
        // Value.
        let (value, next) = match bytes.get(pos) {
            Some(b'"') => {
                let Some((s, next)) = scan_plain_string(trimmed, pos) else {
                    return false;
                };
                (FlatValue::Str(s), next)
            }
            Some(b'n') if bytes[pos..].starts_with(b"null") => (FlatValue::Null, pos + 4),
            Some(b't') if bytes[pos..].starts_with(b"true") => (FlatValue::Bool(true), pos + 4),
            Some(b'f') if bytes[pos..].starts_with(b"false") => (FlatValue::Bool(false), pos + 5),
            Some(b'-' | b'0'..=b'9') => {
                let mut j = pos;
                while j < end && matches!(bytes[j], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    j += 1;
                }
                let lexeme = &trimmed[pos..j];
                if lexeme.parse::<f64>().is_err() {
                    return false;
                }
                (FlatValue::Num(lexeme), j)
            }
            _ => return false, // nesting, whitespace, or malformed
        };
        on_field(key, value);
        pos = next;
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') if pos == end => return true,
            _ => return false,
        }
    }
}

/// Scans a `"..."` string with no escapes starting at `pos`; returns the
/// raw slice between the quotes and the position after the closing quote.
/// Bails (`None`) on `\`, control bytes, or a missing terminator.
#[inline]
fn scan_plain_string(text: &str, pos: usize) -> Option<(&str, usize)> {
    let bytes = text.as_bytes();
    if bytes.get(pos) != Some(&b'"') {
        return None;
    }
    let start = pos + 1;
    let mut j = start;
    while let Some(&b) = bytes.get(j) {
        match b {
            b'"' => return Some((&text[start..j], j + 1)),
            b'\\' => return None,
            _ if b < 0x20 => return None,
            _ => j += 1,
        }
    }
    None
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("non-utf8 number".into()))?;
        // Validate via the float grammar; keep the lexeme.
        if text.parse::<f64>().is_err() {
            return err(format!("invalid number {text:?}"));
        }
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("non-utf8 string".into()))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Conversion of a Rust value into [`Json`].
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion of a [`Json`] value back into a Rust value.
pub trait FromJson: Sized {
    /// Parses `self` from a JSON value.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(self.to_string())
            }
        }
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                match json {
                    Json::Num(s) => s
                        .parse()
                        .map_err(|_| JsonError(format!("bad {}: {s:?}", stringify!($t)))),
                    _ => err(concat!("expected ", stringify!($t))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, u128, usize, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::f64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64()
            .ok_or_else(|| JsonError("expected f64".into()))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool()
            .ok_or_else(|| JsonError("expected bool".into()))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError("expected string".into()))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_array()
            .ok_or_else(|| JsonError("expected array".into()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str("gcc")),
            ("ipc".into(), Json::f64(2.125)),
            ("cycles".into(), Json::u64(u64::MAX)),
            ("sum".into(), Json::u128(u128::MAX)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("nested".into(), Json::Obj(vec![("k".into(), Json::u64(7))])),
        ])
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let text = doc().to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.to_string_pretty(), text);
        let compact = doc().to_string_compact();
        assert_eq!(Json::parse(&compact).unwrap().to_string_compact(), compact);
    }

    #[test]
    fn u64_and_u128_keep_full_precision() {
        let text = doc().to_string_compact();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("cycles").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parsed.get("sum").unwrap().as_u128(), Some(u128::MAX));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1f64, 1e-12, 1234.5678, 3.0, f64::MIN_POSITIVE] {
            let j = Json::f64(v).to_string_compact();
            let back = Json::parse(&j).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {j}");
        }
        assert_eq!(Json::f64(f64::NAN), Json::Null);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}é";
        let j = Json::str(s).to_string_compact();
        assert_eq!(Json::parse(&j).unwrap().as_str(), Some(s));
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"b":1,"a":2}"#;
        assert_eq!(Json::parse(text).unwrap().to_string_compact(), text);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "[1,", "tru", "{\"a\"}", "1 2", "\"\\q\"", "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn fast_path_matches_general_parser() {
        // Flat shapes (fast path engages) and near-misses (it must bail):
        // both must produce exactly what the general parser produces.
        let cases = [
            r#"{}"#,
            r#"{"at":12345,"kind":"act","bank":3,"row":81920}"#,
            r#"{"ipc":2.125,"ok":true,"skip":false,"note":null}"#,
            r#"{"neg":-1.5e-3,"big":18446744073709551615}"#,
            "  {\"a\":1}\n",
            r#"{"s":"with, comma and } brace"}"#,
            r#"{"esc":"a\nb"}"#,     // escape -> general path
            r#"{ "a": 1 }"#,         // interior whitespace -> general path
            r#"{"nested":{"k":1}}"#, // nesting -> general path
            r#"{"arr":[1,2]}"#,      // array -> general path
            r#"[1,2,3]"#,            // not an object -> general path
            r#"3.25"#,
        ];
        for text in cases {
            assert_eq!(
                Json::parse(text),
                Json::parse_general(text),
                "fast/general divergence on {text:?}"
            );
        }
        // Malformed inputs must still error identically through the front door.
        for bad in [
            "{",
            r#"{"a":1"#,
            r#"{"a":1,}"#,
            r#"{"a":01e}"#,
            "{\"a\":1}}",
        ] {
            assert_eq!(Json::parse(bad), Json::parse_general(bad), "{bad:?}");
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn flat_scanner_yields_borrowed_fields() {
        let line = r#"{"at":77,"kind":"swap_start","row_a":5,"row_b":1024,"ok":true,"x":null}"#;
        let mut fields = Vec::new();
        assert!(scan_flat_object(line, |k, v| fields.push((k, v))));
        assert_eq!(
            fields,
            vec![
                ("at", FlatValue::Num("77")),
                ("kind", FlatValue::Str("swap_start")),
                ("row_a", FlatValue::Num("5")),
                ("row_b", FlatValue::Num("1024")),
                ("ok", FlatValue::Bool(true)),
                ("x", FlatValue::Null),
            ]
        );
        // Unsupported shapes report a clean bail.
        assert!(!scan_flat_object(r#"{"a":[1]}"#, |_, _| {}));
        assert!(!scan_flat_object(r#"{"a":"\n"}"#, |_, _| {}));
        assert!(!scan_flat_object(r#"not json"#, |_, _| {}));
    }

    #[test]
    fn derived_impls_round_trip() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&v.to_json()).unwrap(), v);
        let o: Option<String> = None;
        assert_eq!(Option::<String>::from_json(&o.to_json()).unwrap(), o);
        let f: f64 = 0.25;
        assert_eq!(f64::from_json(&f.to_json()).unwrap(), f);
    }
}
