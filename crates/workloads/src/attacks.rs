//! Row Hammer attack patterns as trace sources.
//!
//! All attackers issue back-to-back reads (gap 0) — Row Hammer attacks
//! bypass the cache hierarchy (`clflush` or eviction sets), so these traces
//! run without an LLC. Every pattern keeps its aggressors in one bank and
//! alternates between at least two rows so each access forces an activation
//! (the row buffer never retains the aggressor).
//!
//! Patterns:
//!
//! * [`AttackKind::SingleSided`] / [`AttackKind::DoubleSided`] — classic
//!   patterns targeting distance-1 victims (§2.3);
//! * [`AttackKind::HalfDouble`] — the Google attack (§2.5): massive
//!   activation of near-aggressors drives distance-2 flips *through*
//!   victim-focused mitigation;
//! * [`AttackKind::ManySided`] — TRRespass-style multi-aggressor sweep;
//! * [`AttackKind::SwapChasing`] — the optimal attack against RRS from
//!   §5.3/Figure 7: hammer a random row exactly `T_RRS` times (forcing a
//!   swap), then move to another random row, hoping to land on previously
//!   swapped physical rows;
//! * [`AttackKind::Blacksmith`] — a non-uniform multi-pair pattern with
//!   randomized intensities, after the Blacksmith fuzzer that broke
//!   in-DRAM TRR (it defeats *sampling*-based trackers; exhaustive
//!   trackers like Misra-Gries, and RRS on top, are unaffected);
//! * [`AttackKind::Dos`] — the §8.1 denial-of-service probe: continuous
//!   activations to a few rows, which BlockHammer throttles by ~200×;
//! * [`AttackKind::UniformRandom`] — noise baseline.

use rrs_core::rng::DetRng;
use rrs_dram::geometry::RowAddr;
use rrs_mem_ctrl::mapping::AddressMapper;
use rrs_sim::trace::{TraceRecord, TraceSource};

/// Which attack to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Hammer one aggressor (plus a distant row to defeat the row buffer).
    SingleSided,
    /// Hammer `victim ± 1` alternately.
    DoubleSided,
    /// Hammer `victim ± 2` (near-aggressors); flips at the victim arise
    /// from distance-2 disturbance plus the defense's own victim refreshes.
    HalfDouble,
    /// Hammer `n` aggressors spaced two rows apart.
    ManySided(u32),
    /// §5.3's randomized swap-chasing attack with per-row budget `t`.
    SwapChasing {
        /// Activations per randomly chosen row before moving on (`T_RRS`).
        t: u64,
    },
    /// Blacksmith-style non-uniform pattern: `n` aggressor pairs hammered
    /// with randomized per-pair frequencies and phases (the fuzzing attack
    /// family that defeated in-DRAM TRR after this paper; §1's "attackers
    /// continue to develop complex access patterns").
    Blacksmith {
        /// Number of double-sided aggressor pairs in the schedule.
        n: u32,
    },
    /// Continuous activations to two rows (BlockHammer DoS probe).
    Dos,
    /// Uniformly random rows within the bank.
    UniformRandom,
}

impl AttackKind {
    /// Short name for reporting.
    pub fn name(&self) -> String {
        match self {
            AttackKind::SingleSided => "single-sided".into(),
            AttackKind::DoubleSided => "double-sided".into(),
            AttackKind::HalfDouble => "half-double".into(),
            AttackKind::ManySided(n) => format!("many-sided-{n}"),
            AttackKind::SwapChasing { t } => format!("swap-chasing-t{t}"),
            AttackKind::Blacksmith { n } => format!("blacksmith-{n}"),
            AttackKind::Dos => "dos".into(),
            AttackKind::UniformRandom => "uniform-random".into(),
        }
    }
}

/// An attack trace source.
pub struct Attack {
    kind: AttackKind,
    name: String,
    mapper: AddressMapper,
    bank: RowAddr,
    rows_per_bank: u32,
    /// Current aggressor set (row ids within the bank).
    aggressors: Vec<u32>,
    cursor: usize,
    /// SwapChasing: accesses remaining before re-picking aggressors.
    budget: u64,
    /// Classic patterns: accesses per victim group before moving on.
    ///
    /// A real classic attacker spends roughly `T_RH` activations per
    /// aggressor and then targets the next victim; concentrating an entire
    /// epoch on one aggressor is the defining trait of Half-Double (§2.5),
    /// not of classic patterns. `None` (the default) never rotates.
    rotate_after: Option<u64>,
    accesses_in_group: u64,
    group_offset: u32,
    rng: DetRng,
}

/// The victim row all fixed patterns aim at (mid-bank, away from edges).
pub const DEFAULT_VICTIM_ROW: u32 = 5_000;

impl Attack {
    /// Creates an attack against bank `(channel 0, rank 0, bank 0)`.
    pub fn new(kind: AttackKind, mapper: AddressMapper, seed: u64) -> Self {
        let geometry = *mapper.geometry();
        let bank = RowAddr::new(0, 0, 0, 0);
        let rows_per_bank = geometry.rows_per_bank as u32;
        let v = DEFAULT_VICTIM_ROW.min(rows_per_bank / 2);
        let aggressors = match kind {
            AttackKind::SingleSided => vec![v + 1, v + 1000],
            AttackKind::DoubleSided => vec![v - 1, v + 1],
            AttackKind::HalfDouble => vec![v - 2, v + 2],
            AttackKind::ManySided(n) => (0..n.max(2)).map(|i| v + 2 * i).collect(),
            AttackKind::SwapChasing { .. } | AttackKind::UniformRandom => vec![0, 1],
            AttackKind::Blacksmith { n } => {
                // n aggressor pairs around distinct victims, each pair
                // repeated with its own intensity (1..=4 consecutive
                // double-sided rounds per visit) — a fixed randomized
                // schedule, re-rolled per seed like Blacksmith's fuzzer.
                let mut rng = DetRng::seed_from_u64(seed ^ 0xB1AC);
                let mut schedule = Vec::new();
                for i in 0..n.max(1) {
                    let victim = v + 10 * i;
                    let intensity = 1 + rng.next_below(4) as u32;
                    for _ in 0..intensity {
                        schedule.push(victim - 1);
                        schedule.push(victim + 1);
                    }
                }
                schedule
            }
            AttackKind::Dos => vec![v, v + 1000],
        };
        let mut attack = Attack {
            name: kind.name(),
            kind,
            mapper,
            bank,
            rows_per_bank,
            aggressors,
            cursor: 0,
            budget: 0,
            rotate_after: None,
            accesses_in_group: 0,
            group_offset: 0,
            rng: DetRng::seed_from_u64(seed ^ 0xA77AC4),
        };
        if let AttackKind::SwapChasing { .. } | AttackKind::UniformRandom = kind {
            attack.repick();
        }
        attack
    }

    /// Limits classic patterns (single/double/many-sided) to `accesses`
    /// per victim group, after which the whole aggressor set shifts to a
    /// fresh neighbourhood — the realistic classic-attack campaign shape.
    /// Half-Double, DoS, and the randomized patterns are unaffected.
    pub fn with_rotation(mut self, accesses: u64) -> Self {
        if matches!(
            self.kind,
            AttackKind::SingleSided | AttackKind::DoubleSided | AttackKind::ManySided(_)
        ) {
            self.rotate_after = Some(accesses.max(1));
        }
        self
    }

    /// The victim row of the fixed patterns (for assertions in tests).
    pub fn victim_row(&self) -> u32 {
        DEFAULT_VICTIM_ROW.min(self.rows_per_bank / 2)
    }

    fn repick(&mut self) {
        // Two fresh random aggressors (a pair, so every access activates).
        let a = self.rng.next_below(self.rows_per_bank as u64) as u32;
        let b = self.rng.next_below(self.rows_per_bank as u64) as u32;
        self.aggressors = vec![a, b];
        self.budget = match self.kind {
            // T activations per row: 2T accesses for the pair.
            AttackKind::SwapChasing { t } => 2 * t,
            _ => 2,
        };
    }

    fn next_row(&mut self) -> u32 {
        match self.kind {
            AttackKind::SwapChasing { .. } | AttackKind::UniformRandom => {
                if self.budget == 0 {
                    self.repick();
                }
                self.budget -= 1;
                let row = self.aggressors[self.cursor % self.aggressors.len()];
                self.cursor += 1;
                row
            }
            _ => {
                if let Some(limit) = self.rotate_after {
                    if self.accesses_in_group >= limit {
                        // Move the campaign to a fresh neighbourhood.
                        self.accesses_in_group = 0;
                        let max_aggr =
                            *self.aggressors.iter().max().unwrap_or(&0) - self.group_offset;
                        let next = self.group_offset + 2003;
                        self.group_offset = if next + max_aggr + 4 >= self.rows_per_bank {
                            0
                        } else {
                            next
                        };
                        let base = self.group_offset;
                        let kind = self.kind;
                        let v = self.victim_row();
                        self.aggressors = match kind {
                            AttackKind::SingleSided => vec![base + v + 1, base + v + 1000],
                            AttackKind::DoubleSided => vec![base + v - 1, base + v + 1],
                            AttackKind::ManySided(n) => {
                                (0..n.max(2)).map(|i| base + v + 2 * i).collect()
                            }
                            _ => unreachable!("rotation only set for classic patterns"),
                        };
                    }
                    self.accesses_in_group += 1;
                }
                let row = self.aggressors[self.cursor % self.aggressors.len()];
                self.cursor += 1;
                row % self.rows_per_bank
            }
        }
    }
}

impl TraceSource for Attack {
    fn next_record(&mut self) -> TraceRecord {
        let row = self.next_row();
        let addr = self.mapper.row_base(self.bank.with_row(row));
        TraceRecord::read(0, addr)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A quiescent co-runner: compute-bound filler for attacker experiments.
pub struct IdleFiller {
    addr: u64,
}

impl IdleFiller {
    /// Creates a filler touching a private region.
    pub fn new(core: usize) -> Self {
        IdleFiller {
            addr: (core as u64 + 8) << 26,
        }
    }
}

impl TraceSource for IdleFiller {
    fn next_record(&mut self) -> TraceRecord {
        self.addr += 64;
        TraceRecord::read(4_000, self.addr)
    }

    fn name(&self) -> &str {
        "idle-filler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_dram::geometry::DramGeometry;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramGeometry::asplos22_baseline())
    }

    fn rows_of(attack: &mut Attack, n: usize) -> Vec<u32> {
        let m = attack.mapper;
        (0..n)
            .map(|_| {
                let r = attack.next_record();
                let d = m.decode(r.addr);
                assert_eq!(d.row.bank.0, 0, "attack must stay in one bank");
                assert_eq!(d.row.channel.0, 0);
                d.row.row.0
            })
            .collect()
    }

    #[test]
    fn double_sided_alternates_victim_neighbors() {
        let mut a = Attack::new(AttackKind::DoubleSided, mapper(), 1);
        let v = a.victim_row();
        let rows = rows_of(&mut a, 6);
        assert_eq!(rows, vec![v - 1, v + 1, v - 1, v + 1, v - 1, v + 1]);
    }

    #[test]
    fn half_double_hammers_distance_two() {
        let mut a = Attack::new(AttackKind::HalfDouble, mapper(), 1);
        let v = a.victim_row();
        let rows = rows_of(&mut a, 4);
        assert_eq!(rows, vec![v - 2, v + 2, v - 2, v + 2]);
    }

    #[test]
    fn many_sided_covers_n_aggressors() {
        let mut a = Attack::new(AttackKind::ManySided(4), mapper(), 1);
        let rows = rows_of(&mut a, 4);
        let mut unique = rows.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn swap_chasing_moves_after_t_per_row() {
        let t = 10u64;
        let mut a = Attack::new(AttackKind::SwapChasing { t }, mapper(), 1);
        let first_round = rows_of(&mut a, 2 * t as usize);
        let mut counts = std::collections::HashMap::new();
        for r in &first_round {
            *counts.entry(*r).or_insert(0u64) += 1;
        }
        // Exactly two rows, each activated T times.
        assert_eq!(counts.len(), 2);
        assert!(counts.values().all(|&c| c == t));
        // Next round uses fresh rows with overwhelming probability.
        let second = rows_of(&mut a, 2);
        assert!(
            second.iter().any(|r| !counts.contains_key(r)),
            "aggressors not re-picked"
        );
    }

    #[test]
    fn attack_records_have_zero_gap() {
        let mut a = Attack::new(AttackKind::Dos, mapper(), 1);
        for _ in 0..10 {
            assert_eq!(a.next_record().gap, 0);
        }
    }

    #[test]
    fn uniform_random_spreads_rows() {
        let mut a = Attack::new(AttackKind::UniformRandom, mapper(), 1);
        let rows = rows_of(&mut a, 1000);
        let mut unique = rows.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() > 300, "only {} unique rows", unique.len());
    }

    #[test]
    fn blacksmith_schedule_is_nonuniform_and_seeded() {
        let mut a = Attack::new(AttackKind::Blacksmith { n: 4 }, mapper(), 1);
        let rows = rows_of(&mut a, 60);
        let mut counts = std::collections::HashMap::new();
        for r in &rows {
            *counts.entry(*r).or_insert(0u32) += 1;
        }
        // 4 pairs = 8 distinct aggressors, with unequal visit counts.
        assert_eq!(counts.len(), 8, "aggressors: {counts:?}");
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(max > min, "intensities should differ: {counts:?}");
        // Deterministic per seed, different across seeds.
        let mut b = Attack::new(AttackKind::Blacksmith { n: 4 }, mapper(), 1);
        assert_eq!(rows, rows_of(&mut b, 60));
        let mut c = Attack::new(AttackKind::Blacksmith { n: 4 }, mapper(), 2);
        assert_ne!(rows, rows_of(&mut c, 60));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AttackKind::HalfDouble.name(), "half-double");
        assert_eq!(
            AttackKind::SwapChasing { t: 800 }.name(),
            "swap-chasing-t800"
        );
        assert_eq!(AttackKind::ManySided(9).name(), "many-sided-9");
        assert_eq!(AttackKind::Blacksmith { n: 4 }.name(), "blacksmith-4");
    }
}
