//! Synthetic trace generation calibrated to Table 3.
//!
//! Each [`crate::catalog::WorkloadSpec`] is turned into a per-core
//! [`SyntheticWorkload`] that reproduces the three characteristics the
//! paper's results depend on:
//!
//! * **MPKI** — the mean instruction gap between memory accesses is
//!   `1000 / MPKI`, sampled geometrically;
//! * **footprint** — cold accesses are spread over a per-core region of the
//!   configured size (cores run disjoint copies, as in rate mode);
//! * **rows ACT-800+** — a calibrated fraction of accesses round-robins
//!   over `hot_rows / cores` designated rows, paired per bank so that every
//!   hot visit forces a row activation. The per-row activation rate is
//!   targeted slightly above the 800/epoch statistic threshold, matching
//!   how Table 3's counts arise from working sets slightly larger than the
//!   LLC (§4.6).
//!
//! Determinism: generators are seeded; the same seed yields the same trace.

use rrs_core::rng::DetRng;
use rrs_dram::geometry::RowAddr;
use rrs_mem_ctrl::mapping::{AddressMapper, DecodedAddr};
use rrs_sim::config::SystemConfig;
use rrs_sim::trace::{TraceRecord, TraceSource};

use crate::catalog::WorkloadSpec;

/// Calibration context shared by all generators of a run.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Epoch length in CPU cycles (the tracking window).
    pub epoch_cycles: u64,
    /// Cores sharing the machine (hot rows are split across cores).
    pub cores: usize,
    /// Assumed IPC for converting instruction budgets to wall-clock —
    /// feedback-free first-order calibration (measured values are reported
    /// by the Table 3 harness).
    pub assumed_ipc: f64,
    /// Per-epoch activation count a "hot" row must exceed (the controller's
    /// ACT-800+ statistic threshold; scale together with the epoch).
    pub hot_act_threshold: u64,
    /// The simulator's core burst length (records served back-to-back per
    /// core); bounds worst-case activations per sequential row visit.
    pub core_burst: usize,
}

impl GenParams {
    /// Derives calibration parameters from a system configuration.
    pub fn from_system(config: &SystemConfig) -> Self {
        GenParams {
            epoch_cycles: config.controller.timing.epoch,
            cores: config.cores,
            assumed_ipc: 2.5,
            hot_act_threshold: config.controller.act_stat_threshold,
            core_burst: config.core_burst,
        }
    }
}

/// A deterministic synthetic trace source for one core.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    name: String,
    rng: DetRng,
    /// Mean instruction gap between accesses.
    mean_gap: f64,
    write_fraction: f64,
    /// This core's hot rows.
    hot_rows: Vec<RowAddr>,
    /// Fraction of accesses that go to the hot set.
    hot_fraction: f64,
    /// Fractional accumulator for deterministic hot-access pacing: real
    /// hot rows are touched by loop iterations at near-periodic intervals,
    /// not by coin flips. (Periodicity matters: defenses that enforce
    /// minimum same-row activation spacing — BlockHammer — see the gap
    /// *distribution*, not just its mean.)
    hot_accumulator: f64,
    hot_cursor: usize,
    /// Address mapper used to aim cold traffic at DRAM rows.
    mapper: AddressMapper,
    /// Cold region: DRAM rows `[base, base + count)` in the mapper's
    /// canonical row enumeration.
    region_row_base: u64,
    region_rows: u64,
    /// Fraction of cold traffic that is uniform random (vs. sequential).
    cold_random_fraction: f64,
    /// Consecutive lines emitted per row visit of the sequential sweep.
    seq_lines_per_visit: u32,
    /// Sequential sweep cursors.
    seq_row_cursor: u64,
    seq_col: u32,
    seq_lines_left: u32,
    columns_per_row: u32,
}

impl SyntheticWorkload {
    /// Builds the generator for `core` of a rate-mode run of `spec`.
    pub fn new(
        spec: &WorkloadSpec,
        core: usize,
        params: GenParams,
        mapper: &AddressMapper,
        seed: u64,
    ) -> Self {
        let geometry = *mapper.geometry();
        let total_rows = mapper.total_rows();
        let region_rows =
            (spec.footprint_bytes / geometry.row_size_bytes as u64).clamp(8, total_rows);
        // Rate mode: each core gets its own copy of the footprint. Region
        // bases are spread evenly over the address space; footprints larger
        // than memory/cores alias physically, exactly as an oversubscribed
        // 32 GB machine would (mcf × 8 copies exceeds memory in the paper's
        // setup too).
        let region_row_base =
            (core as u64 * (total_rows / params.cores.max(1) as u64)) % total_rows;

        // Hot rows: split across cores, assigned to banks in pairs so that
        // round-robin visits always miss the row buffer (see module docs).
        // They live just past the core's own cold region in row-in-bank
        // space, so no other core's cold sweep crosses them.
        let per_core_hot = if spec.hot_rows == 0 {
            0
        } else {
            (spec.hot_rows as usize).div_ceil(params.cores)
        };
        let banks = geometry.banks_per_rank;
        let channels = geometry.channels;
        let rows_per_index = (banks * channels * geometry.ranks_per_channel) as u64;
        let hot_base_row = ((region_row_base + region_rows) / rows_per_index + 2) as usize;
        let mut hot_rows = Vec::with_capacity(per_core_hot);
        for i in 0..per_core_hot {
            let pair = i / 2;
            let bank = (pair % banks) as u8;
            let channel = ((pair / banks) % channels) as u8;
            let row_in_bank =
                (hot_base_row + (pair / (banks * channels)) * 2 + (i % 2)) % geometry.rows_per_bank;
            hot_rows.push(RowAddr::new(channel, 0, bank, row_in_bank as u32));
        }

        // Calibrate the hot fraction: each hot row needs ~1.3× the ACT
        // statistic threshold per epoch to robustly exceed it. The wall-
        // clock conversion uses a first-order IPC model — memory-bound
        // workloads retire fewer instructions per epoch — fitted to the
        // simulator's measured per-core IPC curve (peak ≈ 1.2 × the
        // nominal IPC at MPKI → 0, roll-off constant ≈ 7 MPKI).
        let effective_ipc = 1.2 * params.assumed_ipc / (1.0 + spec.mpki / 7.0);
        let accesses_per_epoch = (spec.mpki / 1000.0) * effective_ipc * params.epoch_cycles as f64;
        let hot_target = per_core_hot as f64 * params.hot_act_threshold as f64 * 1.3;
        let hot_fraction = if per_core_hot == 0 || accesses_per_epoch <= 0.0 {
            0.0
        } else {
            (hot_target / accesses_per_epoch).min(0.95)
        };

        // Calibrate cold traffic so that cold rows stay safely *below* the
        // hot-row threshold at any time scale (Table 3's cold workloads
        // have zero ACT-800+ rows by definition):
        //
        // * random cold accesses follow a Poisson-per-row profile; cap the
        //   per-row rate λ so `rows × P[X ≥ t/2]` stays ≪ 1 (Stirling
        //   bound λ_max ≈ (t/2e) · rows^(−2/t)). The t/2 headroom keeps
        //   cold rows clear not just of the hot-row statistic but of every
        //   threshold derived from it (BlockHammer blacklists at ≈0.5–0.6 t);
        // * the sequential sweep emits one burst's worth of consecutive
        //   lines per row visit as an *uninterrupted* record group (capped
        //   at the row's 128 lines). The simulator serves a core's burst
        //   back-to-back, so a visit costs only one or two activations even
        //   when other cores share the bank — keeping swept rows far below
        //   the threshold, as real streaming does at full scale.
        let t = params.hot_act_threshold.max(1) as f64;
        let t_noise = (t / 2.0).max(1.0);
        let lambda_max =
            (t_noise / std::f64::consts::E) * (region_rows as f64).powf(-1.0 / t_noise);
        let cold_random_fraction = if accesses_per_epoch <= 0.0 {
            0.0
        } else {
            ((0.5 * lambda_max * region_rows as f64) / accesses_per_epoch).min(0.5)
        };
        // Visit length: `burst × max(1, t/4)` lines (capped at the row's
        // 128). Each burst boundary admits at most ~1 interfering
        // activation, so a visit costs ≈ t/4 activations worst-case —
        // below the threshold — while per-row visit *rates* scale with the
        // epoch like real streaming (at full scale this is whole-row
        // 128-line streaming).
        let seq_lines_per_visit = (params.core_burst as u32 * ((t / 4.0) as u32).max(1))
            .clamp(1, (geometry.row_size_bytes / 64) as u32);

        SyntheticWorkload {
            name: format!("{}#{}", spec.name, core),
            rng: DetRng::seed_from_u64(seed ^ ((core as u64) << 32) ^ 0x574b_4c44),
            mean_gap: (1000.0 / spec.mpki.max(0.001) - 1.0).max(0.0),
            write_fraction: spec.write_fraction,
            hot_rows,
            hot_fraction,
            hot_accumulator: 0.0,
            hot_cursor: 0,
            mapper: *mapper,
            region_row_base,
            region_rows,
            cold_random_fraction,
            seq_lines_per_visit,
            seq_row_cursor: 0,
            seq_col: 0,
            seq_lines_left: 0,
            columns_per_row: (geometry.row_size_bytes / 64) as u32,
        }
    }

    /// The calibrated probability of a hot-set access.
    pub fn hot_fraction(&self) -> f64 {
        self.hot_fraction
    }

    /// Number of hot rows this core maintains.
    pub fn hot_row_count(&self) -> usize {
        self.hot_rows.len()
    }

    fn next_seq_line(&mut self) -> u64 {
        self.seq_lines_left -= 1;
        let row = self
            .mapper
            .nth_row(self.region_row_base + self.seq_row_cursor);
        let col = self.seq_col % self.columns_per_row;
        self.seq_col += 1;
        self.mapper.encode(DecodedAddr { row, column: col })
    }

    fn sample_gap(&mut self) -> u32 {
        if self.mean_gap <= 0.0 {
            return 0;
        }
        let u = self.rng.next_f64();
        (-self.mean_gap * (1.0 - u).ln()).min(100_000.0) as u32
    }
}

impl TraceSource for SyntheticWorkload {
    fn next_record(&mut self) -> TraceRecord {
        let gap = self.sample_gap();
        let is_write = self.rng.next_f64() < self.write_fraction;

        // A sequential visit in progress is never interrupted: its lines go
        // out as one consecutive group so the burst-serving simulator keeps
        // them as row hits.
        let addr = if self.seq_lines_left > 0 {
            self.next_seq_line()
        } else if !self.hot_rows.is_empty() && {
            self.hot_accumulator += self.hot_fraction;
            self.hot_accumulator >= 1.0
        } {
            // Deterministically paced hot access: round-robin over the hot
            // set, random column within the row.
            self.hot_accumulator -= 1.0;
            let row = self.hot_rows[self.hot_cursor % self.hot_rows.len()];
            self.hot_cursor += 1;
            self.mapper.encode(DecodedAddr {
                row,
                column: self.rng.next_below(self.columns_per_row as u64) as u32,
            })
        } else {
            // Cold decision point. Per-*record* traffic fractions are
            // preserved by down-weighting the sequential choice by its
            // group length.
            let w_rand = self.cold_random_fraction;
            let w_seq = (1.0 - self.cold_random_fraction) / self.seq_lines_per_visit as f64;
            let u = self.rng.next_f64() * (w_rand + w_seq);
            if u < w_rand {
                // Calibrated random component over the footprint region.
                let row = self
                    .mapper
                    .nth_row(self.region_row_base + self.rng.next_below(self.region_rows));
                self.mapper.encode(DecodedAddr {
                    row,
                    column: self.rng.next_below(self.columns_per_row as u64) as u32,
                })
            } else {
                // Start a new sequential visit on the region's next row.
                // The visit emits `L` records before the next decision, so
                // credit the hot accumulator for the deferred records —
                // keeping the hot fraction exact per *record*.
                self.hot_accumulator += self.hot_fraction * (self.seq_lines_per_visit - 1) as f64;
                self.seq_row_cursor = (self.seq_row_cursor + 1) % self.region_rows;
                self.seq_lines_left = self.seq_lines_per_visit;
                self.seq_col = 0;
                self.next_seq_line()
            }
        };
        TraceRecord {
            gap,
            addr,
            is_write,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the per-core trace sources for a workload on `config`'s machine.
pub fn sources_for_workload(
    workload: &crate::catalog::Workload,
    config: &SystemConfig,
    seed: u64,
) -> Vec<Box<dyn TraceSource>> {
    let mapper = AddressMapper::new(config.controller.geometry);
    let params = GenParams::from_system(config);
    match workload {
        crate::catalog::Workload::Single(spec) => (0..config.cores)
            .map(|c| {
                Box::new(SyntheticWorkload::new(spec, c, params, &mapper, seed))
                    as Box<dyn TraceSource>
            })
            .collect(),
        crate::catalog::Workload::Mix(mix) => (0..config.cores)
            .map(|c| {
                let name = mix.members[c % mix.members.len()];
                let spec = crate::catalog::spec_by_name(name)
                    .unwrap_or_else(|| panic!("unknown mix member {name}"));
                Box::new(SyntheticWorkload::new(&spec, c, params, &mapper, seed))
                    as Box<dyn TraceSource>
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{spec_by_name, Workload};
    use rrs_dram::geometry::DramGeometry;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramGeometry::asplos22_baseline())
    }

    fn params() -> GenParams {
        GenParams {
            epoch_cycles: 204_800_000,
            cores: 8,
            assumed_ipc: 2.5,
            hot_act_threshold: 800,
            core_burst: 16,
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let spec = spec_by_name("bzip2").unwrap();
        let mut a = SyntheticWorkload::new(&spec, 0, params(), &mapper(), 42);
        let mut b = SyntheticWorkload::new(&spec, 0, params(), &mapper(), 42);
        for _ in 0..100 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn different_cores_use_disjoint_hot_rows() {
        let spec = spec_by_name("hmmer").unwrap();
        let a = SyntheticWorkload::new(&spec, 0, params(), &mapper(), 1);
        let b = SyntheticWorkload::new(&spec, 1, params(), &mapper(), 1);
        for ra in &a.hot_rows {
            assert!(!b.hot_rows.contains(ra), "hot rows overlap across cores");
        }
    }

    #[test]
    fn gap_distribution_matches_mpki() {
        let spec = spec_by_name("gcc").unwrap(); // MPKI 4.42
        let mut g = SyntheticWorkload::new(&spec, 0, params(), &mapper(), 7);
        let n = 20_000;
        let total_instr: u64 = (0..n).map(|_| g.next_record().instructions()).sum();
        let measured_mpki = n as f64 / (total_instr as f64 / 1000.0);
        assert!(
            (measured_mpki - 4.42).abs() < 0.5,
            "measured MPKI = {measured_mpki}"
        );
    }

    #[test]
    fn hot_workload_concentrates_traffic() {
        let spec = spec_by_name("hmmer").unwrap();
        let g = SyntheticWorkload::new(&spec, 0, params(), &mapper(), 7);
        assert!(
            g.hot_fraction() > 0.1,
            "hot fraction = {}",
            g.hot_fraction()
        );
        assert_eq!(g.hot_row_count(), 1675usize.div_ceil(8));
    }

    #[test]
    fn cold_workload_has_no_hot_traffic() {
        let spec = spec_by_name("lbm").unwrap();
        let g = SyntheticWorkload::new(&spec, 0, params(), &mapper(), 7);
        assert_eq!(g.hot_fraction(), 0.0);
        assert_eq!(g.hot_row_count(), 0);
    }

    #[test]
    fn addresses_stay_in_bounds() {
        let spec = spec_by_name("mcf").unwrap(); // 7.71 GB footprint
        let mut g = SyntheticWorkload::new(&spec, 7, params(), &mapper(), 9);
        let cap = DramGeometry::asplos22_baseline().total_bytes();
        for _ in 0..10_000 {
            let r = g.next_record();
            assert!(r.addr < cap, "address {:#x} out of bounds", r.addr);
        }
    }

    #[test]
    fn consecutive_hot_visits_to_a_bank_alternate_rows() {
        // The pairing property: the two hot rows mapped to the same bank are
        // adjacent in the visiting order, so revisits always miss.
        let spec = spec_by_name("hmmer").unwrap();
        let g = SyntheticWorkload::new(&spec, 0, params(), &mapper(), 7);
        let (d0, d1) = (g.hot_rows[0], g.hot_rows[1]);
        assert_eq!(d0.bank, d1.bank);
        assert_eq!(d0.channel, d1.channel);
        assert_ne!(d0.row, d1.row);
    }

    #[test]
    fn hot_rows_are_unique_physical_rows() {
        let spec = spec_by_name("hmmer").unwrap();
        let g = SyntheticWorkload::new(&spec, 0, params(), &mapper(), 7);
        let mut rows = g.hot_rows.clone();
        rows.sort();
        let before = rows.len();
        rows.dedup();
        assert_eq!(rows.len(), before, "duplicate hot rows");
    }

    #[test]
    fn hot_emissions_resolve_to_listed_rows_only() {
        // Regression test: column placement must go through the mapper —
        // adding `col * 64` to a row base address toggles the *channel*
        // bit and collides distinct hot rows onto one physical row.
        let spec = spec_by_name("hmmer").unwrap();
        let mut g = SyntheticWorkload::new(&spec, 0, params(), &mapper(), 7);
        let hot: std::collections::HashSet<_> = g.hot_rows.iter().copied().collect();
        let m = mapper();
        let mut per_row: std::collections::HashMap<_, u32> = Default::default();
        for _ in 0..50_000 {
            let r = g.next_record();
            let d = m.decode(r.addr);
            if hot.contains(&d.row) {
                *per_row.entry(d.row).or_default() += 1;
            }
        }
        // Every listed hot row should receive a comparable share (no row
        // double-counted by aliasing): max/min within a small factor.
        let max = per_row.values().max().copied().unwrap_or(0);
        let min = per_row.values().min().copied().unwrap_or(0);
        assert!(
            max <= 2 * min + 8,
            "hot emission skew: min {min}, max {max}"
        );
    }

    #[test]
    fn mix_sources_build_one_per_core() {
        let config = rrs_sim::SystemConfig::asplos22_baseline(1000);
        let mix = crate::catalog::MIXES[0];
        let sources = sources_for_workload(&Workload::Mix(mix), &config, 3);
        assert_eq!(sources.len(), 8);
    }
}
