//! Loading custom workload definitions from spec files.
//!
//! The calibrated generators are parameterized by exactly four quantities
//! (footprint, MPKI, hot rows, write fraction — see [`crate::generator`]),
//! so users can define new workloads in a simple text format without
//! recompiling:
//!
//! ```text
//! # my_workloads.spec — one stanza per workload
//! workload my_kernel
//! footprint_mb 256
//! mpki 7.5
//! hot_rows 100
//! write_fraction 0.25
//!
//! workload my_stream
//! footprint_mb 2048
//! mpki 22
//! ```
//!
//! Unspecified fields default to `hot_rows 0` and `write_fraction 0.3`.
//! Loaded specs carry [`Suite::Custom`].

use std::fmt;
use std::path::Path;

use crate::catalog::{Suite, WorkloadSpec};

/// Errors from spec-file parsing.
#[derive(Debug)]
pub enum SpecFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed (1-based line number, content).
    Parse(usize, String),
    /// A field appeared before any `workload <name>` header.
    FieldOutsideWorkload(usize),
    /// A numeric field failed to parse.
    BadNumber(usize, String),
}

impl fmt::Display for SpecFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecFileError::Io(e) => write!(f, "spec file i/o error: {e}"),
            SpecFileError::Parse(n, l) => write!(f, "cannot parse spec line {n}: {l:?}"),
            SpecFileError::FieldOutsideWorkload(n) => {
                write!(f, "line {n}: field before any `workload <name>` header")
            }
            SpecFileError::BadNumber(n, l) => write!(f, "line {n}: bad number in {l:?}"),
        }
    }
}

impl std::error::Error for SpecFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SpecFileError {
    fn from(e: std::io::Error) -> Self {
        SpecFileError::Io(e)
    }
}

/// Parses workload specs from text.
///
/// # Errors
///
/// Returns [`SpecFileError`] describing the offending line.
pub fn parse_specs(text: &str) -> Result<Vec<WorkloadSpec>, SpecFileError> {
    let mut specs: Vec<WorkloadSpec> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| SpecFileError::Parse(i + 1, line.into()))?;
        let value = value.trim();
        let num = |v: &str| -> Result<f64, SpecFileError> {
            v.parse()
                .map_err(|_| SpecFileError::BadNumber(i + 1, line.to_string()))
        };
        if key == "workload" {
            specs.push(WorkloadSpec {
                // Spec names live for the program's lifetime (bounded by
                // the number of stanzas in user config files).
                name: Box::leak(value.to_string().into_boxed_str()),
                suite: Suite::Custom,
                footprint_bytes: 64 << 20,
                mpki: 1.0,
                hot_rows: 0,
                write_fraction: 0.3,
                in_table3: false,
            });
            continue;
        }
        let current = specs
            .last_mut()
            .ok_or(SpecFileError::FieldOutsideWorkload(i + 1))?;
        match key {
            "footprint_mb" => current.footprint_bytes = (num(value)? * (1 << 20) as f64) as u64,
            "footprint_gb" => current.footprint_bytes = (num(value)? * (1 << 30) as f64) as u64,
            "mpki" => current.mpki = num(value)?,
            "hot_rows" => current.hot_rows = num(value)? as u32,
            "write_fraction" => current.write_fraction = num(value)?.clamp(0.0, 1.0),
            _ => return Err(SpecFileError::Parse(i + 1, line.into())),
        }
    }
    Ok(specs)
}

/// Loads workload specs from a file.
///
/// # Errors
///
/// Returns [`SpecFileError`] on I/O or parse failures.
pub fn load_specs(path: impl AsRef<Path>) -> Result<Vec<WorkloadSpec>, SpecFileError> {
    parse_specs(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# two custom workloads
workload my_kernel
footprint_mb 256
mpki 7.5
hot_rows 100
write_fraction 0.25

workload my_stream
footprint_gb 2
mpki 22
";

    #[test]
    fn parses_full_and_defaulted_stanzas() {
        let specs = parse_specs(SAMPLE).unwrap();
        assert_eq!(specs.len(), 2);
        let k = &specs[0];
        assert_eq!(k.name, "my_kernel");
        assert_eq!(k.footprint_bytes, 256 << 20);
        assert_eq!(k.mpki, 7.5);
        assert_eq!(k.hot_rows, 100);
        assert_eq!(k.write_fraction, 0.25);
        assert_eq!(k.suite, Suite::Custom);
        let s = &specs[1];
        assert_eq!(s.name, "my_stream");
        assert_eq!(s.footprint_bytes, 2 << 30);
        assert_eq!(s.hot_rows, 0, "defaults apply");
        assert_eq!(s.write_fraction, 0.3);
    }

    #[test]
    fn rejects_fields_outside_a_workload() {
        match parse_specs("mpki 5\n") {
            Err(SpecFileError::FieldOutsideWorkload(1)) => {}
            other => panic!("expected header error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_keys_and_bad_numbers() {
        assert!(matches!(
            parse_specs("workload w\nfrobnicate 3\n"),
            Err(SpecFileError::Parse(2, _))
        ));
        assert!(matches!(
            parse_specs("workload w\nmpki banana\n"),
            Err(SpecFileError::BadNumber(2, _))
        ));
    }

    #[test]
    fn loaded_specs_drive_the_generator() {
        use crate::generator::{GenParams, SyntheticWorkload};
        use rrs_mem_ctrl::mapping::AddressMapper;
        use rrs_sim::trace::TraceSource;

        let specs = parse_specs(SAMPLE).unwrap();
        let mapper = AddressMapper::new(rrs_dram::geometry::DramGeometry::asplos22_baseline());
        let params = GenParams {
            epoch_cycles: 2_048_000,
            cores: 8,
            assumed_ipc: 2.5,
            hot_act_threshold: 8,
            core_burst: 16,
        };
        let mut g = SyntheticWorkload::new(&specs[0], 0, params, &mapper, 1);
        for _ in 0..100 {
            let r = g.next_record();
            assert!(r.addr < mapper.address_space());
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = parse_specs("garbage\n").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
