#![warn(missing_docs)]

//! Workloads for the RRS reproduction: the 78-workload benign population
//! calibrated to the paper's Table 3, and the attack patterns of §2/§5/§8.
//!
//! * [`catalog`] — workload specs (28 Table-3 + 44 cold + 6 mixes),
//! * [`generator`] — calibrated synthetic trace generation,
//! * [`attacks`] — Row Hammer attack patterns (classic, Half-Double,
//!   swap-chasing, DoS, ...).
//!
//! # Example
//!
//! ```
//! use rrs_workloads::catalog::{all_workloads, spec_by_name};
//!
//! assert_eq!(all_workloads().len(), 78);
//! assert_eq!(spec_by_name("hmmer").unwrap().hot_rows, 1675);
//! ```

pub mod attacks;
pub mod catalog;
pub mod generator;
pub mod specfile;

pub use attacks::{Attack, AttackKind, IdleFiller};
pub use catalog::{
    all_workloads, spec_by_name, table3_workloads, MixSpec, Suite, Workload, WorkloadSpec, COLD,
    MIXES, TABLE3,
};
pub use generator::{sources_for_workload, GenParams, SyntheticWorkload};
pub use specfile::{load_specs, parse_specs, SpecFileError};
