//! The workload catalog: 72 single-program workloads + 6 mixes = 78, the
//! population the paper evaluates (§3).
//!
//! The 28 workloads of the paper's Table 3 carry the *published* per-
//! workload characteristics — memory footprint, MPKI, and the number of
//! rows receiving 800+ activations per 64 ms window — and the synthetic
//! generators are calibrated to them (see DESIGN.md: the performance
//! results of Figures 5/6/10/11 are driven by exactly these three
//! quantities). The remaining 44 singles are the suites' other members,
//! which the paper reports encounter no row swaps (Figure 5 caption); their
//! MPKI/footprints are plausible values with `hot_rows = 0`.

/// Benchmark suite of origin (§3 lists SPEC2006, SPEC2017, GAP, BIOBENCH,
/// PARSEC and COMMERCIAL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec2006,
    /// SPEC CPU2017.
    Spec2017,
    /// GAP graph benchmarks.
    Gap,
    /// BIOBENCH bioinformatics suite.
    Biobench,
    /// PARSEC parallel benchmarks.
    Parsec,
    /// USIMM's commercial traces.
    Commercial,
    /// Multiprogrammed mixes.
    Mix,
    /// User-defined workloads loaded from spec files.
    Custom,
}

impl Suite {
    /// Display label matching the paper's figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            Suite::Spec2006 => "SPEC2006",
            Suite::Spec2017 => "SPEC2017",
            Suite::Gap => "GAP",
            Suite::Biobench => "BIOBENCH",
            Suite::Parsec => "PARSEC",
            Suite::Commercial => "COMMERCIAL",
            Suite::Mix => "MIX",
            Suite::Custom => "CUSTOM",
        }
    }
}

/// Characteristics of one single-program workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (paper naming, e.g. `xz_17`).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Memory footprint in bytes.
    pub footprint_bytes: u64,
    /// Misses per kilo-instruction reaching main memory.
    pub mpki: f64,
    /// Rows receiving 800+ activations per 64 ms (Table 3's "Rows
    /// ACT-800+"); 0 for workloads that never trigger a swap.
    pub hot_rows: u32,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Whether this row appears in the paper's Table 3.
    pub in_table3: bool,
}

const GB: u64 = 1 << 30;

const fn gb(x: f64) -> u64 {
    (x * GB as f64) as u64
}

macro_rules! hot_spec {
    ($name:literal, $suite:ident, $fp:expr, $mpki:expr, $hot:expr) => {
        WorkloadSpec {
            name: $name,
            suite: Suite::$suite,
            footprint_bytes: gb($fp),
            mpki: $mpki,
            hot_rows: $hot,
            write_fraction: 0.3,
            in_table3: true,
        }
    };
}

macro_rules! cold_spec {
    ($name:literal, $suite:ident, $fp:expr, $mpki:expr) => {
        WorkloadSpec {
            name: $name,
            suite: Suite::$suite,
            footprint_bytes: gb($fp),
            mpki: $mpki,
            hot_rows: 0,
            write_fraction: 0.3,
            in_table3: false,
        }
    };
}

/// The 28 workloads of the paper's Table 3, with published characteristics.
pub const TABLE3: &[WorkloadSpec] = &[
    hot_spec!("hmmer", Spec2006, 0.01, 0.84, 1675),
    hot_spec!("bzip2", Spec2006, 2.41, 5.57, 1150),
    hot_spec!("h264", Spec2006, 0.05, 0.52, 1136),
    hot_spec!("calculix", Spec2006, 0.16, 1.12, 932),
    hot_spec!("gcc", Spec2006, 0.09, 4.42, 818),
    hot_spec!("zeusmp", Spec2006, 0.55, 2.00, 405),
    hot_spec!("astar", Spec2006, 0.04, 1.04, 352),
    hot_spec!("sphinx", Spec2006, 0.13, 12.90, 242),
    hot_spec!("mummer", Biobench, 2.17, 19.13, 192),
    hot_spec!("ferret", Parsec, 0.79, 5.67, 132),
    hot_spec!("gobmk", Spec2006, 0.2, 1.17, 79),
    hot_spec!("blender_17", Spec2017, 0.24, 1.53, 53),
    hot_spec!("freq", Parsec, 0.59, 2.89, 44),
    hot_spec!("stream", Parsec, 0.63, 3.48, 41),
    hot_spec!("gcc_17", Spec2017, 0.36, 0.55, 38),
    hot_spec!("swapt", Parsec, 0.76, 3.52, 37),
    hot_spec!("black", Parsec, 0.55, 3.08, 37),
    hot_spec!("comm1", Commercial, 1.55, 5.93, 19),
    hot_spec!("xz_17", Spec2017, 0.64, 5.12, 12),
    hot_spec!("comm2", Commercial, 3.37, 6.14, 8),
    hot_spec!("omnetpp_17", Spec2017, 1.55, 9.81, 7),
    hot_spec!("fluid", Parsec, 0.99, 2.70, 7),
    hot_spec!("omnetpp", Spec2006, 1.1, 17.24, 5),
    hot_spec!("face", Parsec, 1.1, 7.18, 3),
    hot_spec!("mcf", Spec2006, 7.71, 107.81, 2),
    hot_spec!("gromacs", Spec2006, 0.06, 0.58, 1),
    hot_spec!("comm5", Commercial, 0.67, 1.48, 1),
    hot_spec!("comm3", Commercial, 1.77, 2.84, 1),
];

/// The suites' remaining members: never trigger swaps (Figure 5 caption:
/// "other 50 workloads do not encounter row-swap" — 44 singles plus the
/// portions of mixes). MPKI/footprints are plausible synthetics.
pub const COLD: &[WorkloadSpec] = &[
    cold_spec!("perlbench", Spec2006, 0.25, 0.9),
    cold_spec!("bwaves", Spec2006, 0.87, 10.2),
    cold_spec!("gamess", Spec2006, 0.03, 0.1),
    cold_spec!("milc", Spec2006, 0.68, 12.2),
    cold_spec!("namd", Spec2006, 0.05, 0.3),
    cold_spec!("dealII", Spec2006, 0.21, 1.8),
    cold_spec!("soplex", Spec2006, 0.44, 21.5),
    cold_spec!("povray", Spec2006, 0.01, 0.05),
    cold_spec!("lbm", Spec2006, 0.41, 26.1),
    cold_spec!("tonto", Spec2006, 0.05, 0.3),
    cold_spec!("wrf", Spec2006, 0.69, 6.6),
    cold_spec!("sjeng", Spec2006, 0.17, 0.5),
    cold_spec!("libquantum", Spec2006, 0.06, 21.7),
    cold_spec!("cactus", Spec2006, 0.42, 4.8),
    cold_spec!("leslie3d", Spec2006, 0.08, 15.6),
    cold_spec!("gems", Spec2006, 0.83, 20.7),
    cold_spec!("perlbench_17", Spec2017, 0.22, 0.8),
    cold_spec!("mcf_17", Spec2017, 3.93, 48.2),
    cold_spec!("lbm_17", Spec2017, 0.40, 27.3),
    cold_spec!("wrf_17", Spec2017, 0.18, 3.1),
    cold_spec!("cam4_17", Spec2017, 0.83, 2.8),
    cold_spec!("pop2_17", Spec2017, 0.61, 3.0),
    cold_spec!("imagick_17", Spec2017, 0.06, 0.2),
    cold_spec!("nab_17", Spec2017, 0.14, 0.6),
    cold_spec!("fotonik3d_17", Spec2017, 0.80, 16.4),
    cold_spec!("roms_17", Spec2017, 0.81, 10.7),
    cold_spec!("x264_17", Spec2017, 0.13, 0.4),
    cold_spec!("deepsjeng_17", Spec2017, 6.78, 0.9),
    cold_spec!("leela_17", Spec2017, 0.04, 0.3),
    cold_spec!("exchange2_17", Spec2017, 0.01, 0.02),
    cold_spec!("bc", Gap, 4.61, 31.9),
    cold_spec!("bfs", Gap, 4.24, 24.3),
    cold_spec!("cc", Gap, 4.19, 34.6),
    cold_spec!("pr", Gap, 4.83, 28.8),
    cold_spec!("sssp", Gap, 5.92, 26.1),
    cold_spec!("tc", Gap, 2.73, 14.2),
    cold_spec!("tigr", Biobench, 0.58, 14.8),
    cold_spec!("fasta", Biobench, 0.04, 6.5),
    cold_spec!("canneal", Parsec, 0.74, 9.4),
    cold_spec!("dedup", Parsec, 1.47, 4.2),
    cold_spec!("vips", Parsec, 0.35, 2.1),
    cold_spec!("bodytrack", Parsec, 0.31, 1.0),
    cold_spec!("raytrace", Parsec, 1.21, 1.6),
    cold_spec!("comm4", Commercial, 1.12, 2.2),
];

/// A multiprogrammed mix: one member benchmark per core slot (wrapping if
/// the machine has more cores than entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSpec {
    /// Mix name (`mix1`..`mix6`).
    pub name: &'static str,
    /// Member benchmark names (resolved against the single-workload catalog).
    pub members: &'static [&'static str],
}

/// The 6 mixed workloads (§3: "we also create 6 mixed workloads by
/// combining randomly selected benchmarks").
pub const MIXES: &[MixSpec] = &[
    MixSpec {
        name: "mix1",
        members: &[
            "hmmer",
            "mcf",
            "libquantum",
            "povray",
            "bzip2",
            "milc",
            "astar",
            "dealII",
        ],
    },
    MixSpec {
        name: "mix2",
        members: &[
            "gcc", "lbm", "sphinx", "namd", "omnetpp", "soplex", "h264", "bwaves",
        ],
    },
    MixSpec {
        name: "mix3",
        members: &[
            "mummer", "ferret", "black", "stream", "calculix", "bc", "vips", "sjeng",
        ],
    },
    MixSpec {
        name: "mix4",
        members: &[
            "comm1", "comm2", "comm3", "comm5", "xz_17", "gcc_17", "gobmk", "freq",
        ],
    },
    MixSpec {
        name: "mix5",
        members: &["bfs", "pr", "cc", "sssp", "tc", "tigr", "fasta", "canneal"],
    },
    MixSpec {
        name: "mix6",
        members: &[
            "zeusmp",
            "fluid",
            "face",
            "swapt",
            "blender_17",
            "omnetpp_17",
            "gromacs",
            "dedup",
        ],
    },
];

/// A workload the harness can run: a single program in rate mode or a mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// All cores run copies of one benchmark (rate mode).
    Single(WorkloadSpec),
    /// One benchmark per core.
    Mix(MixSpec),
}

impl Workload {
    /// The workload's name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Single(s) => s.name,
            Workload::Mix(m) => m.name,
        }
    }

    /// The workload's suite label for grouped reporting.
    pub fn suite(&self) -> Suite {
        match self {
            Workload::Single(s) => s.suite,
            Workload::Mix(_) => Suite::Mix,
        }
    }
}

/// Looks up a single-program spec by name.
pub fn spec_by_name(name: &str) -> Option<WorkloadSpec> {
    TABLE3
        .iter()
        .chain(COLD.iter())
        .find(|s| s.name == name)
        .copied()
}

/// The full 78-workload population: 28 Table-3 + 44 cold + 6 mixes.
pub fn all_workloads() -> Vec<Workload> {
    TABLE3
        .iter()
        .chain(COLD.iter())
        .map(|s| Workload::Single(*s))
        .chain(MIXES.iter().map(|m| Workload::Mix(*m)))
        .collect()
}

/// The 28 Table-3 workloads (those with at least one ACT-800+ row).
pub fn table3_workloads() -> Vec<Workload> {
    TABLE3.iter().map(|s| Workload::Single(*s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_78() {
        assert_eq!(TABLE3.len(), 28);
        assert_eq!(COLD.len(), 44);
        assert_eq!(MIXES.len(), 6);
        assert_eq!(all_workloads().len(), 78);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_workloads().iter().map(|w| w.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate workload names");
    }

    #[test]
    fn table3_rows_match_paper() {
        let hmmer = spec_by_name("hmmer").unwrap();
        assert_eq!(hmmer.hot_rows, 1675);
        assert!((hmmer.mpki - 0.84).abs() < 1e-9);
        let mcf = spec_by_name("mcf").unwrap();
        assert_eq!(mcf.hot_rows, 2);
        assert!((mcf.footprint_bytes as f64 / (1u64 << 30) as f64 - 7.71).abs() < 0.01);
    }

    #[test]
    fn every_mix_member_resolves() {
        for mix in MIXES {
            assert_eq!(mix.members.len(), 8);
            for m in mix.members {
                assert!(spec_by_name(m).is_some(), "unknown mix member {m}");
            }
        }
    }

    #[test]
    fn cold_workloads_have_no_hot_rows() {
        assert!(COLD.iter().all(|s| s.hot_rows == 0));
        assert!(TABLE3.iter().all(|s| s.hot_rows >= 1));
    }

    #[test]
    fn suite_labels_cover_all() {
        for w in all_workloads() {
            assert!(!w.suite().label().is_empty());
        }
    }
}
