#![warn(missing_docs)]

//! Row Hammer mitigations under one interface.
//!
//! Every defense evaluated in the paper (and this reproduction's ablations)
//! implements [`rrs_mem_ctrl::Mitigation`], so they are interchangeable in
//! the controller and the experiment harness:
//!
//! | Module | Defense | Paper role |
//! |---|---|---|
//! | [`rrs`] | Randomized Row-Swap | the contribution (§4) |
//! | [`blockhammer`] | BlockHammer (BL=512/1K) | aggressor-focused baseline (§8.1, Fig. 11) |
//! | [`victim_refresh`] | Idealized victim-focused refresh | Table 7 baseline; Half-Double victim (§2.5) |
//! | [`graphene`] | Graphene (real Misra-Gries + victim refresh) | the tracker RRS builds on, as originally deployed |
//! | [`para`] | PARA | stateless victim-focused baseline (§2.4) |
//! | [`prob_rrs`] | Probabilistic row-swap | footnote-1 ablation |
//! | [`rrs_mem_ctrl::NoMitigation`] | nothing | undefended baseline |
//!
//! # Example
//!
//! ```
//! use rrs_mitigations::factory;
//! use rrs_dram::geometry::DramGeometry;
//! use rrs_dram::timing::TimingParams;
//!
//! let g = DramGeometry::tiny_test();
//! let t = TimingParams::ddr4_3200();
//! for kind in factory::MitigationKind::ALL {
//!     let m = factory::build(*kind, 4_800, g, &t);
//!     assert!(!m.name().is_empty());
//! }
//! ```

pub mod blockhammer;
pub mod graphene;
pub mod para;
pub mod prob_rrs;
pub mod rrs;
pub mod victim_refresh;

pub use blockhammer::{BlockHammer, BlockHammerConfig};
pub use graphene::{Graphene, GrapheneConfig};
pub use para::Para;
pub use prob_rrs::ProbabilisticRrs;
pub use rrs::RrsMitigation;
pub use victim_refresh::{VictimRefresh, VictimRefreshConfig};

/// Convenience constructors for experiment harnesses.
pub mod factory {
    use rrs_dram::geometry::DramGeometry;
    use rrs_dram::timing::TimingParams;
    use rrs_mem_ctrl::mitigation::{Mitigation, NoMitigation};

    use super::*;

    /// Which defense to build.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum MitigationKind {
        /// No defense.
        None,
        /// Randomized Row-Swap at the secure design point for `T_RH`.
        Rrs,
        /// BlockHammer with blacklist threshold 512.
        BlockHammer512,
        /// BlockHammer with blacklist threshold 1024.
        BlockHammer1k,
        /// Idealized victim-focused refresh, distance 1.
        VictimRefresh,
        /// Graphene proper: bounded Misra-Gries tracker + victim refresh.
        Graphene,
        /// PARA.
        Para,
        /// Probabilistic (stateless) row-swap ablation.
        ProbabilisticRrs,
    }

    impl MitigationKind {
        /// Every defense kind, for sweeps.
        pub const ALL: &'static [MitigationKind] = &[
            MitigationKind::None,
            MitigationKind::Rrs,
            MitigationKind::BlockHammer512,
            MitigationKind::BlockHammer1k,
            MitigationKind::VictimRefresh,
            MitigationKind::Graphene,
            MitigationKind::Para,
            MitigationKind::ProbabilisticRrs,
        ];

        /// Canonical short slug — the CLI's `--defense` vocabulary, also
        /// used in campaign cell ids and result filenames.
        pub fn name(&self) -> &'static str {
            match self {
                MitigationKind::None => "none",
                MitigationKind::Rrs => "rrs",
                MitigationKind::BlockHammer512 => "bh-512",
                MitigationKind::BlockHammer1k => "bh-1k",
                MitigationKind::VictimRefresh => "vfm",
                MitigationKind::Graphene => "graphene",
                MitigationKind::Para => "para",
                MitigationKind::ProbabilisticRrs => "prob-rrs",
            }
        }
    }

    /// Builds the defense for a Row Hammer threshold of `t_rh` on
    /// `geometry` under `timing` (the epoch length parameterizes windowed
    /// defenses). The RRS design point follows §4.5's derivation with
    /// `ACT_max` computed from `timing`.
    pub fn build(
        kind: MitigationKind,
        t_rh: u64,
        geometry: DramGeometry,
        timing: &TimingParams,
    ) -> Box<dyn Mitigation> {
        let act_max = timing.max_activations_per_epoch();
        let seed = 0xBEEF_CAFE;
        match kind {
            MitigationKind::None => Box::new(NoMitigation::new()),
            MitigationKind::Rrs => Box::new(RrsMitigation::new(
                rrs_core::RrsConfig::for_threshold(t_rh, act_max, geometry.rows_per_bank as u64),
                geometry,
            )),
            // Blacklist thresholds scale with T_RH (512 and 1024 at the
            // paper's 4.8K point), clamped into the safe range.
            MitigationKind::BlockHammer512 => Box::new(BlockHammer::new(
                BlockHammerConfig {
                    t_rh,
                    blacklist_threshold: (512 * t_rh / 4_800).clamp(1, (t_rh / 4).max(1)),
                    counters_per_bank: 32_768,
                    hashes: 3,
                    window: timing.epoch,
                },
                geometry,
                seed,
            )),
            MitigationKind::BlockHammer1k => Box::new(BlockHammer::new(
                BlockHammerConfig {
                    t_rh,
                    blacklist_threshold: (1_024 * t_rh / 4_800).clamp(1, (t_rh / 4).max(1)),
                    counters_per_bank: 32_768,
                    hashes: 3,
                    window: timing.epoch,
                },
                geometry,
                seed,
            )),
            MitigationKind::VictimRefresh => Box::new(VictimRefresh::new(
                VictimRefreshConfig::for_threshold(t_rh),
                geometry,
            )),
            MitigationKind::Graphene => Box::new(Graphene::new(
                GrapheneConfig::for_threshold(t_rh, act_max),
                geometry,
            )),
            MitigationKind::Para => Box::new(Para::for_threshold(t_rh, geometry, seed)),
            MitigationKind::ProbabilisticRrs => {
                let t_rrs = (t_rh / rrs_core::DEFAULT_K).max(1);
                Box::new(ProbabilisticRrs::for_t_rrs(t_rrs, act_max, geometry, seed))
            }
        }
    }
}
