//! PARA: probabilistic adjacent-row activation (Kim et al. 2014).
//!
//! The stateless victim-focused baseline of §2.4: on every activation, with
//! probability `p`, refresh the immediate neighbours. Security is
//! probabilistic — an aggressor sustaining `A` activations escapes
//! mitigation with probability `(1 - p)^A` — so `p` must grow as `T_RH`
//! shrinks, which is why the paper's footnote 1 dismisses stateless
//! approaches at low thresholds (the same argument applies to a stateless
//! probabilistic row-swap; see `prob_rrs`).

use rrs_core::prng::PrinceCtrRng;
use rrs_dram::geometry::{DramGeometry, RowAddr};
use rrs_dram::timing::Cycle;
use rrs_mem_ctrl::mitigation::{Mitigation, MitigationAction};

/// The PARA defense.
#[derive(Debug, Clone)]
pub struct Para {
    p: f64,
    geometry: DramGeometry,
    prng: PrinceCtrRng,
    name: String,
    refreshes_issued: u64,
}

impl Para {
    /// Creates PARA with mitigation probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn new(p: f64, geometry: DramGeometry, seed: u128) -> Self {
        assert!(p > 0.0 && p <= 1.0, "probability out of range");
        Para {
            p,
            geometry,
            prng: PrinceCtrRng::new(seed ^ 0x5041_5241), // "PARA"
            name: format!("para-p{p:.4}"),
            refreshes_issued: 0,
        }
    }

    /// Chooses `p` so that an aggressor sustaining `T_RH / 2` activations
    /// escapes with probability below ~1e-11: `p = 50 / T_RH`.
    pub fn for_threshold(t_rh: u64, geometry: DramGeometry, seed: u128) -> Self {
        Self::new((50.0 / t_rh as f64).min(1.0), geometry, seed)
    }

    /// The configured mitigation probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Total neighbour refreshes issued.
    pub fn refreshes_issued(&self) -> u64 {
        self.refreshes_issued
    }
}

impl Mitigation for Para {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_activation(&mut self, row: RowAddr, _at: Cycle, actions: &mut Vec<MitigationAction>) {
        if self.prng.next_bool(self.p) {
            for victim in row.neighbors(1, &self.geometry) {
                actions.push(MitigationAction::TargetedRefresh(victim));
                self.refreshes_issued += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitigation_rate_tracks_probability() {
        let mut m = Para::new(0.1, DramGeometry::tiny_test(), 42);
        let row = RowAddr::new(0, 0, 0, 100);
        let mut fired = 0;
        for _ in 0..10_000 {
            let mut actions = Vec::new();
            m.on_activation(row, 0, &mut actions);
            if !actions.is_empty() {
                fired += 1;
            }
        }
        assert!((800..=1_200).contains(&fired), "fired {fired} of 10000");
    }

    #[test]
    fn for_threshold_scales_inversely() {
        let g = DramGeometry::tiny_test();
        let low = Para::for_threshold(4_800, g, 0);
        let high = Para::for_threshold(48_000, g, 0);
        assert!(low.probability() > high.probability());
        assert!((low.probability() - 50.0 / 4_800.0).abs() < 1e-12);
    }

    #[test]
    fn refresh_targets_are_neighbors() {
        let mut m = Para::new(1.0, DramGeometry::tiny_test(), 7);
        let row = RowAddr::new(0, 0, 0, 100);
        let mut actions = Vec::new();
        m.on_activation(row, 0, &mut actions);
        assert_eq!(
            actions,
            vec![
                MitigationAction::TargetedRefresh(row.with_row(99)),
                MitigationAction::TargetedRefresh(row.with_row(101)),
            ]
        );
        assert_eq!(m.refreshes_issued(), 2);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn zero_probability_rejected() {
        Para::new(0.0, DramGeometry::tiny_test(), 0);
    }
}
