//! Victim-focused mitigation (VFM) with idealized tracking.
//!
//! This is the baseline of Table 7: a defense that counts activations per
//! row with perfect accuracy (no tracker cost or aliasing — the strongest
//! possible version of Graphene/TWiCe/CRA-style proposals) and refreshes
//! the immediate neighbours whenever an aggressor's count crosses a multiple
//! of the refresh threshold.
//!
//! Its structural weakness is the paper's motivation: the mitigation itself
//! activates the neighbour rows, so a Half-Double access pattern can drive
//! bit flips at distance 2 *through* the defense (§2.5). Setting
//! `victim_distance = 2` refreshes two neighbours on each side, which the
//! paper notes is still insufficient — the blast radius just moves to
//! distance 3 as devices scale (§1).

use rrs_dram::geometry::{DramGeometry, RowAddr};
use rrs_dram::timing::Cycle;
use rrs_flat::FlatMap;
use rrs_mem_ctrl::mitigation::{Mitigation, MitigationAction};

/// Packs a [`RowAddr`] into one word for the flat activation table.
#[inline]
fn pack(addr: RowAddr) -> u64 {
    (u64::from(addr.channel.0) << 48)
        | (u64::from(addr.rank.0) << 40)
        | (u64::from(addr.bank.0) << 32)
        | u64::from(addr.row.0)
}

/// Configuration of the idealized victim-focused defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimRefreshConfig {
    /// Refresh neighbours every time an aggressor's per-epoch activation
    /// count crosses a multiple of this threshold.
    pub refresh_threshold: u64,
    /// How many rows on each side to refresh (1 = classic TRR).
    pub victim_distance: u32,
}

impl VictimRefreshConfig {
    /// A conservative threshold for a given Row Hammer threshold: mitigate
    /// at `T_RH / 4` so double-sided patterns are caught with margin.
    pub fn for_threshold(t_rh: u64) -> Self {
        VictimRefreshConfig {
            refresh_threshold: (t_rh / 4).max(1),
            victim_distance: 1,
        }
    }
}

/// Idealized victim-focused mitigation.
#[derive(Debug, Clone)]
pub struct VictimRefresh {
    config: VictimRefreshConfig,
    geometry: DramGeometry,
    counts: FlatMap<u64>,
    name: String,
}

impl VictimRefresh {
    /// Creates the defense.
    pub fn new(config: VictimRefreshConfig, geometry: DramGeometry) -> Self {
        VictimRefresh {
            name: format!(
                "vfm-ideal-t{}-d{}",
                config.refresh_threshold, config.victim_distance
            ),
            config,
            geometry,
            counts: FlatMap::new(),
        }
    }

    /// The defense's configuration.
    pub fn config(&self) -> VictimRefreshConfig {
        self.config
    }

    /// Per-epoch activation count currently recorded for `row`.
    pub fn count_of(&self, row: RowAddr) -> u64 {
        self.counts.get(pack(row)).copied().unwrap_or(0)
    }
}

impl Mitigation for VictimRefresh {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_activation(&mut self, row: RowAddr, _at: Cycle, actions: &mut Vec<MitigationAction>) {
        let c = self.counts.get_or_insert_with(pack(row), || 0);
        *c += 1;
        if (*c).is_multiple_of(self.config.refresh_threshold) {
            for d in 1..=self.config.victim_distance {
                for victim in row.neighbors(d, &self.geometry) {
                    actions.push(MitigationAction::TargetedRefresh(victim));
                }
            }
        }
    }

    fn on_epoch_end(&mut self, _now: Cycle, _actions: &mut Vec<MitigationAction>) {
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vfm(threshold: u64, distance: u32) -> VictimRefresh {
        VictimRefresh::new(
            VictimRefreshConfig {
                refresh_threshold: threshold,
                victim_distance: distance,
            },
            DramGeometry::tiny_test(),
        )
    }

    #[test]
    fn refreshes_both_neighbors_at_threshold() {
        let mut m = vfm(10, 1);
        let row = RowAddr::new(0, 0, 0, 100);
        let mut actions = Vec::new();
        for _ in 0..10 {
            actions.clear();
            m.on_activation(row, 0, &mut actions);
        }
        assert_eq!(
            actions,
            vec![
                MitigationAction::TargetedRefresh(row.with_row(99)),
                MitigationAction::TargetedRefresh(row.with_row(101)),
            ]
        );
    }

    #[test]
    fn fires_at_every_multiple() {
        let mut m = vfm(10, 1);
        let row = RowAddr::new(0, 0, 0, 100);
        let mut total = 0;
        for _ in 0..35 {
            let mut actions = Vec::new();
            m.on_activation(row, 0, &mut actions);
            total += actions.len();
        }
        assert_eq!(total, 6); // 3 crossings × 2 victims
    }

    #[test]
    fn distance_two_refreshes_four_rows() {
        let mut m = vfm(5, 2);
        let row = RowAddr::new(0, 0, 0, 100);
        let mut actions = Vec::new();
        for _ in 0..5 {
            actions.clear();
            m.on_activation(row, 0, &mut actions);
        }
        assert_eq!(actions.len(), 4);
    }

    #[test]
    fn epoch_end_resets_counts() {
        let mut m = vfm(10, 1);
        let row = RowAddr::new(0, 0, 0, 100);
        let mut actions = Vec::new();
        for _ in 0..9 {
            m.on_activation(row, 0, &mut actions);
        }
        m.on_epoch_end(0, &mut actions);
        assert_eq!(m.count_of(row), 0);
    }

    #[test]
    fn for_threshold_derives_quarter() {
        let c = VictimRefreshConfig::for_threshold(4_800);
        assert_eq!(c.refresh_threshold, 1_200);
        assert_eq!(c.victim_distance, 1);
    }

    #[test]
    fn edge_rows_clip_victims() {
        let mut m = vfm(1, 1);
        let row = RowAddr::new(0, 0, 0, 0);
        let mut actions = Vec::new();
        m.on_activation(row, 0, &mut actions);
        assert_eq!(actions.len(), 1); // only the row above exists
    }
}
