//! The Randomized Row-Swap defense, adapted to the controller's
//! [`Mitigation`] interface.

use rrs_core::rrs::{Rrs, RrsAction, RrsConfig};
use rrs_dram::geometry::{DramGeometry, RowAddr};
use rrs_dram::timing::Cycle;
use rrs_mem_ctrl::mitigation::{Mitigation, MitigationAction};

/// RRS as a pluggable mitigation: RIT-resolved accesses, tracker-driven
/// random swaps, optional detector escalation.
#[derive(Debug, Clone)]
pub struct RrsMitigation {
    engine: Rrs,
    name: String,
}

impl RrsMitigation {
    /// Creates the defense for `geometry` at the given design point.
    pub fn new(config: RrsConfig, geometry: DramGeometry) -> Self {
        RrsMitigation {
            name: format!("rrs-t{}", config.t_rrs),
            engine: Rrs::new(config, geometry),
        }
    }

    /// The paper's baseline design point for `geometry`.
    pub fn asplos22(geometry: DramGeometry) -> Self {
        Self::new(RrsConfig::asplos22(), geometry)
    }

    /// The underlying engine, for inspection.
    pub fn engine(&self) -> &Rrs {
        &self.engine
    }
}

impl Mitigation for RrsMitigation {
    fn name(&self) -> &str {
        &self.name
    }

    fn resolve(&self, row: RowAddr) -> RowAddr {
        self.engine.resolve(row)
    }

    fn access_latency(&self) -> Cycle {
        self.engine.access_latency()
    }

    fn on_activation(&mut self, row: RowAddr, _at: Cycle, actions: &mut Vec<MitigationAction>) {
        for action in self.engine.on_activation(row) {
            match action {
                RrsAction::Swap(ps) => actions.push(MitigationAction::RowSwap {
                    a: row.with_row(ps.row_a as u32),
                    b: row.with_row(ps.row_b as u32),
                }),
                RrsAction::Unswap(ps) => actions.push(MitigationAction::RowUnswap {
                    a: row.with_row(ps.row_a as u32),
                    b: row.with_row(ps.row_b as u32),
                }),
                RrsAction::Alarm { .. } => actions.push(MitigationAction::FullRefresh),
            }
        }
    }

    fn on_epoch_end(&mut self, _now: Cycle, _actions: &mut Vec<MitigationAction>) {
        self.engine.end_epoch();
    }

    fn attach_telemetry(&mut self, telemetry: &rrs_telemetry::Telemetry) {
        self.engine.attach_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RrsMitigation {
        RrsMitigation::new(
            RrsConfig::for_threshold(60, 1_000, 1_024),
            DramGeometry::tiny_test(),
        )
    }

    #[test]
    fn resolves_identity_until_swapped() {
        let mut m = small();
        let row = RowAddr::new(0, 0, 0, 7);
        assert_eq!(m.resolve(row), row);
        let mut actions = Vec::new();
        for _ in 0..10 {
            actions.clear();
            m.on_activation(row, 0, &mut actions);
        }
        assert!(matches!(actions[0], MitigationAction::RowSwap { .. }));
        assert_ne!(m.resolve(row), row);
    }

    #[test]
    fn swap_actions_stay_in_bank() {
        let mut m = small();
        let row = RowAddr::new(0, 0, 1, 3);
        let mut actions = Vec::new();
        for _ in 0..10 {
            actions.clear();
            m.on_activation(row, 0, &mut actions);
        }
        if let MitigationAction::RowSwap { a, b } = actions[0] {
            assert_eq!(a.bank, row.bank);
            assert_eq!(b.bank, row.bank);
        } else {
            panic!("expected a swap");
        }
    }

    #[test]
    fn charges_rit_lookup_latency() {
        let m = small();
        assert_eq!(m.access_latency(), 4);
    }

    #[test]
    fn epoch_end_resets_tracker_state() {
        let mut m = small();
        let row = RowAddr::new(0, 0, 0, 7);
        let mut actions = Vec::new();
        for _ in 0..9 {
            m.on_activation(row, 0, &mut actions);
        }
        m.on_epoch_end(0, &mut actions);
        // Counter reset: 9 more activations do not reach the threshold.
        actions.clear();
        for _ in 0..9 {
            m.on_activation(row, 0, &mut actions);
        }
        assert!(actions.is_empty());
    }
}
