//! Graphene (Park et al., MICRO 2020): the state-of-the-art victim-focused
//! defense the paper builds its tracker on.
//!
//! A per-bank Misra-Gries tracker — the same algorithm RRS reuses for its
//! HRT (§4.2) — fires at every multiple of the tracking threshold and
//! refreshes the aggressor's immediate neighbours. Unlike
//! [`crate::victim_refresh::VictimRefresh`] (the *idealized* tracker of
//! Table 7), this is the real structure: bounded entries, spill counter,
//! over-estimating counts.
//!
//! Being victim-focused, it shares the family's structural weakness: the
//! Half-Double pattern flips bits at distance 2 straight through it (§2.5).

use rrs_core::tracker::{CamTracker, HotRowTracker, TrackerConfig};
use rrs_dram::geometry::{DramGeometry, RowAddr};
use rrs_dram::timing::Cycle;
use rrs_mem_ctrl::mitigation::{Mitigation, MitigationAction};

/// Graphene parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrapheneConfig {
    /// Mitigation threshold: refresh neighbours at every multiple.
    pub threshold: u64,
    /// Tracker entries per bank (`ceil(ACT_max / threshold)` for the
    /// Misra-Gries guarantee).
    pub entries: usize,
}

impl GrapheneConfig {
    /// Derives a secure configuration: threshold `T_RH / 4` (double-sided
    /// margin), entries per the Misra-Gries bound.
    pub fn for_threshold(t_rh: u64, act_max: u64) -> Self {
        let threshold = (t_rh / 4).max(1);
        GrapheneConfig {
            threshold,
            entries: act_max.div_ceil(threshold) as usize,
        }
    }
}

/// The Graphene defense: per-bank Misra-Gries tracking + victim refresh.
#[derive(Debug, Clone)]
pub struct Graphene {
    config: GrapheneConfig,
    geometry: DramGeometry,
    trackers: Vec<CamTracker>,
    name: String,
    refreshes: u64,
}

impl Graphene {
    /// Creates the defense for `geometry`.
    pub fn new(config: GrapheneConfig, geometry: DramGeometry) -> Self {
        let tc = TrackerConfig {
            entries: config.entries,
            threshold: config.threshold,
        };
        Graphene {
            name: format!("graphene-t{}", config.threshold),
            config,
            geometry,
            trackers: (0..geometry.total_banks())
                .map(|_| CamTracker::new(tc))
                .collect(),
            refreshes: 0,
        }
    }

    /// The defense's configuration.
    pub fn config(&self) -> GrapheneConfig {
        self.config
    }

    /// Victim refreshes issued so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// The tracker of one bank (for inspection).
    pub fn tracker(&self, addr: RowAddr) -> &CamTracker {
        &self.trackers[addr.bank_index(&self.geometry)]
    }
}

impl Mitigation for Graphene {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_activation(&mut self, row: RowAddr, _at: Cycle, actions: &mut Vec<MitigationAction>) {
        let tracker = &mut self.trackers[row.bank_index(&self.geometry)];
        if tracker.record_access(row.row.0 as u64).swap_due {
            for victim in row.neighbors(1, &self.geometry) {
                actions.push(MitigationAction::TargetedRefresh(victim));
                self.refreshes += 1;
            }
        }
    }

    fn on_epoch_end(&mut self, _now: Cycle, _actions: &mut Vec<MitigationAction>) {
        for t in &mut self.trackers {
            t.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graphene() -> Graphene {
        Graphene::new(
            GrapheneConfig {
                threshold: 10,
                entries: 64,
            },
            DramGeometry::tiny_test(),
        )
    }

    #[test]
    fn refreshes_neighbors_at_threshold_multiples() {
        let mut g = graphene();
        let row = RowAddr::new(0, 0, 0, 100);
        let mut total = 0;
        for _ in 0..35 {
            let mut actions = Vec::new();
            g.on_activation(row, 0, &mut actions);
            total += actions.len();
        }
        assert_eq!(total, 6); // multiples 10, 20, 30 × 2 neighbours
        assert_eq!(g.refreshes(), 6);
    }

    #[test]
    fn tracker_is_bounded_unlike_ideal_vfm() {
        let mut g = graphene();
        for r in 0..10_000u32 {
            let mut actions = Vec::new();
            g.on_activation(RowAddr::new(0, 0, 0, r), 0, &mut actions);
        }
        assert!(g.tracker(RowAddr::new(0, 0, 0, 0)).len() <= 64);
        // The spill counter absorbed the overflow.
        assert!(g.tracker(RowAddr::new(0, 0, 0, 0)).spill() > 0);
    }

    #[test]
    fn banks_track_independently() {
        let mut g = graphene();
        let a = RowAddr::new(0, 0, 0, 5);
        let b = RowAddr::new(0, 0, 1, 5);
        let mut actions = Vec::new();
        for _ in 0..9 {
            g.on_activation(a, 0, &mut actions);
        }
        assert!(actions.is_empty());
        // Bank 1's counter is separate: 9 + 1 accesses there don't fire
        // until its own 10th.
        for _ in 0..9 {
            g.on_activation(b, 0, &mut actions);
        }
        assert!(actions.is_empty());
        g.on_activation(b, 0, &mut actions);
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn epoch_reset_clears_all_trackers() {
        let mut g = graphene();
        let row = RowAddr::new(0, 0, 0, 100);
        let mut actions = Vec::new();
        for _ in 0..9 {
            g.on_activation(row, 0, &mut actions);
        }
        g.on_epoch_end(0, &mut actions);
        for _ in 0..9 {
            g.on_activation(row, 0, &mut actions);
        }
        assert!(actions.is_empty(), "counts must reset per epoch");
    }

    #[test]
    fn config_derivation_matches_misra_gries_bound() {
        let c = GrapheneConfig::for_threshold(4_800, 1_360_000);
        assert_eq!(c.threshold, 1_200);
        assert_eq!(c.entries, 1_134); // ceil(1.36M / 1200)
    }
}
