//! BlockHammer: blacklist-and-throttle mitigation (Yağlıkçı et al.,
//! HPCA 2021), the paper's only other aggressor-focused baseline (§8.1).
//!
//! BlockHammer tracks activation rates with per-bank *counting Bloom
//! filters* (CBFs) and, once a row's estimated count crosses the
//! *blacklisting threshold* `N_BL`, spaces further activations of that row
//! (and of every row aliasing to the same filter buckets) so the row can
//! never reach `T_RH` activations within the window:
//!
//! ```text
//! t_delay = window / (T_RH − N_BL)
//! ```
//!
//! At `T_RH = 4.8 K` this is tens of microseconds per activation — the
//! denial-of-service exposure §8.1 demonstrates (~200× worst-case slowdown,
//! vs. ~2× for RRS).
//!
//! Two CBFs are kept per bank and reset alternately at epoch boundaries
//! (time-interleaving), so blacklist evidence always spans at least one full
//! epoch; both filters are incremented, decisions use the older one.

use rrs_core::prince::Prince;
use rrs_dram::geometry::{DramGeometry, RowAddr};
use rrs_dram::timing::Cycle;
use rrs_flat::FlatMap;
use rrs_mem_ctrl::mitigation::{Mitigation, MitigationAction};

/// BlockHammer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHammerConfig {
    /// The Row Hammer threshold being defended against.
    pub t_rh: u64,
    /// Blacklisting threshold `N_BL` (the paper evaluates 512 and 1 K).
    pub blacklist_threshold: u64,
    /// Counting-Bloom-filter buckets per bank.
    pub counters_per_bank: usize,
    /// Hash functions per filter.
    pub hashes: usize,
    /// Tracking window (one refresh epoch).
    pub window: Cycle,
}

impl BlockHammerConfig {
    /// The §8.1 evaluation point: `T_RH` = 4.8 K with the given blacklist
    /// threshold (512 or 1024) over a 64 ms window.
    pub fn asplos22(blacklist_threshold: u64, window: Cycle) -> Self {
        BlockHammerConfig {
            t_rh: 4_800,
            blacklist_threshold,
            counters_per_bank: 32_768,
            hashes: 3,
            window,
        }
    }

    /// Minimum spacing imposed on blacklisted-row activations.
    ///
    /// Sized so a blacklisted row's window total stays below `T_RH / 2`
    /// (a victim of a double-sided pattern receives disturbance from *two*
    /// aggressors): `N_BL` unthrottled activations plus at most
    /// `window / t_delay` throttled ones, with a 2-activation margin for
    /// boundary effects. At the paper's design point this is ≈34 µs —
    /// the "approximately 20 microseconds" magnitude §8.1 quotes.
    pub fn t_delay(&self) -> Cycle {
        let budget = (self.t_rh / 2)
            .saturating_sub(self.blacklist_threshold)
            .saturating_sub(2)
            .max(1);
        self.window / budget
    }
}

#[derive(Debug, Clone)]
struct BankFilters {
    /// Two time-interleaved counting Bloom filters.
    filters: [Vec<u32>; 2],
    /// Index of the older filter (used for blacklist decisions).
    older: usize,
    /// Exact last-activation time per *blacklisted* row (BlockHammer's
    /// activation-history buffer): spacing is enforced per row, while the
    /// Bloom filters decide — with aliasing collateral — who is throttled.
    /// Keyed by the in-bank row number (the filters are already per bank).
    last_act: FlatMap<Cycle>,
}

impl BankFilters {
    fn new(m: usize) -> Self {
        BankFilters {
            filters: [vec![0; m], vec![0; m]],
            older: 0,
            last_act: FlatMap::new(),
        }
    }
}

/// The BlockHammer defense.
#[derive(Debug, Clone)]
pub struct BlockHammer {
    config: BlockHammerConfig,
    geometry: DramGeometry,
    hashers: Vec<Prince>,
    banks: Vec<BankFilters>,
    name: String,
    /// Total delay cycles imposed (DoS accounting).
    delay_cycles: Cycle,
    /// Activations that were throttled.
    throttled: u64,
}

impl BlockHammer {
    /// Creates the defense for `geometry`.
    pub fn new(config: BlockHammerConfig, geometry: DramGeometry, seed: u128) -> Self {
        let hashers = (0..config.hashes)
            .map(|i| Prince::new(seed ^ 0x424c_4f43_4b48 ^ ((i as u128 + 1) << 64)))
            .collect();
        let banks = (0..geometry.total_banks())
            .map(|_| BankFilters::new(config.counters_per_bank))
            .collect();
        BlockHammer {
            name: format!("blockhammer-bl{}", config.blacklist_threshold),
            config,
            geometry,
            hashers,
            banks,
            delay_cycles: 0,
            throttled: 0,
        }
    }

    /// The defense's configuration.
    pub fn config(&self) -> BlockHammerConfig {
        self.config
    }

    /// Total stall cycles imposed so far.
    pub fn delay_cycles(&self) -> Cycle {
        self.delay_cycles
    }

    /// Activations that hit the throttle.
    pub fn throttled(&self) -> u64 {
        self.throttled
    }

    fn buckets(&self, row: RowAddr) -> Vec<usize> {
        let m = self.config.counters_per_bank;
        self.hashers
            .iter()
            .map(|h| (h.encrypt(row.row.0 as u64) as usize) % m)
            .collect()
    }

    /// Estimated activation count of `row` (min over its buckets in the
    /// older filter — the standard CBF upper-bound estimate).
    pub fn estimate(&self, row: RowAddr) -> u64 {
        let bank = &self.banks[row.bank_index(&self.geometry)];
        self.buckets(row)
            .iter()
            .map(|&b| bank.filters[bank.older][b] as u64)
            .min()
            .unwrap_or(0)
    }
}

impl Mitigation for BlockHammer {
    fn name(&self) -> &str {
        &self.name
    }

    fn activation_delay(&mut self, row: RowAddr, now: Cycle) -> Cycle {
        if self.estimate(row) < self.config.blacklist_threshold {
            return 0;
        }
        let t_delay = self.config.t_delay();
        let bank = &self.banks[row.bank_index(&self.geometry)];
        let earliest = bank
            .last_act
            .get(u64::from(row.row.0))
            .map(|&t| t + t_delay)
            .unwrap_or(0);
        let delay = earliest.saturating_sub(now);
        if delay > 0 {
            self.delay_cycles += delay;
            self.throttled += 1;
        }
        delay
    }

    fn on_activation(&mut self, row: RowAddr, at: Cycle, _actions: &mut Vec<MitigationAction>) {
        let idx = row.bank_index(&self.geometry);
        let buckets = self.buckets(row);
        let blacklisted = self.estimate(row) >= self.config.blacklist_threshold;
        let bank = &mut self.banks[idx];
        for &b in &buckets {
            bank.filters[0][b] = bank.filters[0][b].saturating_add(1);
            bank.filters[1][b] = bank.filters[1][b].saturating_add(1);
        }
        if blacklisted {
            let t = bank.last_act.get_or_insert_with(u64::from(row.row.0), || 0);
            *t = (*t).max(at);
        }
    }

    fn on_epoch_end(&mut self, now: Cycle, _actions: &mut Vec<MitigationAction>) {
        let horizon = now.saturating_sub(2 * self.config.window);
        for bank in &mut self.banks {
            // The older filter has covered its full lifetime: reset it and
            // promote the other. The activation-history buffer persists
            // across the boundary (clearing it would hand every throttled
            // row a free unspaced activation each window); only entries
            // older than the full tracking horizon are pruned.
            let o = bank.older;
            bank.filters[o].iter_mut().for_each(|c| *c = 0);
            bank.older = 1 - o;
            bank.last_act.retain(|_, &mut t| t >= horizon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bh(blacklist: u64) -> BlockHammer {
        let window = rrs_dram::timing::TimingParams::ddr4_3200().epoch;
        BlockHammer::new(
            BlockHammerConfig::asplos22(blacklist, window),
            DramGeometry::tiny_test(),
            99,
        )
    }

    #[test]
    fn t_delay_matches_paper_magnitude() {
        // §8.1: "at T_RH of 4.8K, we would need to delay memory requests for
        // approximately 20 microseconds per activation." Our per-victim
        // disturbance accounting treats a double-sided victim as receiving
        // both aggressors' activations, so the safe per-row budget is
        // T_RH/2 and the delay lands at ~42 µs — the same tens-of-µs
        // magnitude that drives the paper's DoS argument.
        let window = rrs_dram::timing::TimingParams::ddr4_3200().epoch;
        let cfg = BlockHammerConfig::asplos22(512, window);
        let us = cfg.t_delay() as f64 / 3_200.0; // cycles -> µs at 3.2 GHz
        assert!((15.0..60.0).contains(&us), "t_delay = {us} µs");
    }

    #[test]
    fn below_blacklist_no_delay() {
        let mut m = bh(512);
        let row = RowAddr::new(0, 0, 0, 100);
        let mut actions = Vec::new();
        for t in 0..500u64 {
            assert_eq!(m.activation_delay(row, t * 144), 0);
            m.on_activation(row, t * 144, &mut actions);
        }
        assert_eq!(m.throttled(), 0);
    }

    #[test]
    fn blacklisted_row_is_throttled_hard() {
        let mut m = bh(512);
        let row = RowAddr::new(0, 0, 0, 100);
        let mut actions = Vec::new();
        let mut now = 0;
        for _ in 0..600 {
            now += 144; // tRC pace
            now += m.activation_delay(row, now);
            m.on_activation(row, now, &mut actions);
        }
        assert!(m.throttled() > 0);
        // Once blacklisted, spacing is t_delay ≈ 48 K cycles, not 144.
        let mut prev = now;
        now += 144;
        let d = m.activation_delay(row, now);
        assert!(d > 10_000, "delay = {d}");
        prev = prev.max(now + d);
        let _ = prev;
    }

    #[test]
    fn aliasing_rows_share_punishment() {
        // Another row hitting the same buckets as a blacklisted one gets
        // delayed too (the collateral-damage effect behind Figure 11's tail).
        let mut m = bh(512);
        let hot = RowAddr::new(0, 0, 0, 100);
        let mut actions = Vec::new();
        let mut now = 0;
        for _ in 0..600 {
            now += 144;
            now += m.activation_delay(hot, now);
            m.on_activation(hot, now, &mut actions);
        }
        // Find a row aliasing on all buckets is unlikely; instead verify the
        // estimate is driven by buckets, i.e. the hot row's estimate counts.
        assert!(m.estimate(hot) >= 512);
    }

    #[test]
    fn epoch_rotation_eventually_forgives() {
        let mut m = bh(512);
        let row = RowAddr::new(0, 0, 0, 100);
        let mut actions = Vec::new();
        let mut now = 0;
        for _ in 0..600 {
            now += 144;
            m.on_activation(row, now, &mut actions);
        }
        assert!(m.estimate(row) >= 512);
        m.on_epoch_end(now, &mut actions);
        m.on_epoch_end(now, &mut actions);
        // After both filters rotate, the evidence is gone.
        assert_eq!(m.estimate(row), 0);
    }

    #[test]
    fn banks_are_isolated() {
        let mut m = bh(512);
        let hot = RowAddr::new(0, 0, 0, 100);
        let other_bank = RowAddr::new(0, 0, 1, 100);
        let mut actions = Vec::new();
        for t in 0..600u64 {
            m.on_activation(hot, t * 144, &mut actions);
        }
        assert!(m.estimate(hot) >= 512);
        assert_eq!(m.estimate(other_bank), 0);
    }
}
