//! Probabilistic (stateless) row-swap — the footnote-1 ablation.
//!
//! §4.2 footnote 1: "one could have a probabilistic version of RRS, similar
//! to PARA, where the row-swap is triggered with probability p on each row
//! activation. Unfortunately, the rate of swap with such state-less methods
//! is much higher than with a tracker, making them unsuitable for low
//! Row-Hammer Threshold."
//!
//! This module implements that strawman so the ablation benches can
//! quantify the claim: with `p = 1/T_RRS` (needed so an aggressor is
//! expected to be swapped within `T_RRS` activations), *every* activation
//! rolls the dice, so total swaps scale with total traffic instead of with
//! the number of genuinely hot rows.

use rrs_core::prng::PrinceCtrRng;
use rrs_core::rit::RowIndirectionTable;
use rrs_dram::geometry::{DramGeometry, RowAddr};
use rrs_dram::timing::Cycle;
use rrs_mem_ctrl::mitigation::{Mitigation, MitigationAction};

/// One bank's state.
#[derive(Debug, Clone)]
struct BankState {
    rit: RowIndirectionTable,
    prng: PrinceCtrRng,
}

/// Stateless probabilistic row-swap.
#[derive(Debug, Clone)]
pub struct ProbabilisticRrs {
    p: f64,
    rows_per_bank: u64,
    geometry: DramGeometry,
    banks: Vec<BankState>,
    swaps: u64,
    name: String,
}

impl ProbabilisticRrs {
    /// Creates the defense with swap probability `p` per activation and an
    /// RIT of `rit_tuples` per bank.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn new(p: f64, rit_tuples: usize, geometry: DramGeometry, seed: u128) -> Self {
        assert!(p > 0.0 && p <= 1.0, "probability out of range");
        let banks = (0..geometry.total_banks())
            .map(|i| BankState {
                rit: RowIndirectionTable::new(rit_tuples, seed ^ ((i as u128) << 64)),
                prng: PrinceCtrRng::new(seed ^ 0x50524f42 ^ ((i as u128) << 32)),
            })
            .collect();
        ProbabilisticRrs {
            p,
            rows_per_bank: geometry.rows_per_bank as u64,
            geometry,
            banks,
            swaps: 0,
            name: format!("prob-rrs-p{p:.5}"),
        }
    }

    /// Equivalent design point to a tracked RRS with threshold `t_rrs`:
    /// `p = 1 / T_RRS`, RIT sized for the expected swap volume.
    pub fn for_t_rrs(t_rrs: u64, act_max: u64, geometry: DramGeometry, seed: u128) -> Self {
        let expected_swaps = (act_max / t_rrs.max(1)) as usize;
        Self::new(
            1.0 / t_rrs as f64,
            4 * expected_swaps.max(1),
            geometry,
            seed,
        )
    }

    /// Swap probability per activation.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Total swaps triggered.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }
}

impl Mitigation for ProbabilisticRrs {
    fn name(&self) -> &str {
        &self.name
    }

    fn resolve(&self, row: RowAddr) -> RowAddr {
        let bank = &self.banks[row.bank_index(&self.geometry)];
        row.with_row(bank.rit.resolve(row.row.0 as u64) as u32)
    }

    fn access_latency(&self) -> Cycle {
        4 // same RIT lookup as tracked RRS
    }

    fn on_activation(&mut self, row: RowAddr, _at: Cycle, actions: &mut Vec<MitigationAction>) {
        let idx = row.bank_index(&self.geometry);
        let rows = self.rows_per_bank;
        let bank = &mut self.banks[idx];
        if !bank.prng.next_bool(self.p) {
            return;
        }
        // Make room (up to two tuples), then swap to a random fresh row.
        while bank.rit.tuples_in_use() + 2 > bank.rit.tuple_capacity() {
            let pick = bank.prng.next_u64();
            match bank.rit.evict_one(pick) {
                Some(ps) => actions.push(MitigationAction::RowUnswap {
                    a: row.with_row(ps.row_a as u32),
                    b: row.with_row(ps.row_b as u32),
                }),
                None => return,
            }
        }
        let logical = row.row.0 as u64;
        for _ in 0..64 {
            let dest = bank.prng.next_below(rows);
            if dest != logical && !bank.rit.involves(dest) {
                if let Ok(ps) = bank.rit.swap(logical, dest) {
                    self.swaps += 1;
                    actions.push(MitigationAction::RowSwap {
                        a: row.with_row(ps.row_a as u32),
                        b: row.with_row(ps.row_b as u32),
                    });
                }
                return;
            }
        }
    }

    fn on_epoch_end(&mut self, _now: Cycle, _actions: &mut Vec<MitigationAction>) {
        for bank in &mut self.banks {
            bank.rit.end_epoch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_rate_tracks_probability() {
        let mut m = ProbabilisticRrs::new(0.05, 256, DramGeometry::tiny_test(), 3);
        let mut actions = Vec::new();
        for i in 0..4_000u32 {
            // Spread over rows so the RIT does not saturate.
            m.on_activation(RowAddr::new(0, 0, 0, i % 500), 0, &mut actions);
        }
        let swaps = m.swaps();
        assert!((120..=300).contains(&swaps), "swaps = {swaps}");
    }

    #[test]
    fn stateless_swaps_far_exceed_tracked_for_uniform_traffic() {
        // The footnote-1 claim: for traffic with no hot rows, tracked RRS
        // performs zero swaps while the stateless variant swaps ~p per ACT.
        let g = DramGeometry::tiny_test();
        let mut prob = ProbabilisticRrs::for_t_rrs(10, 1_000, g, 5);
        let mut tracked =
            crate::rrs::RrsMitigation::new(rrs_core::RrsConfig::for_threshold(60, 1_000, 1_024), g);
        let mut pa = Vec::new();
        let mut ta = Vec::new();
        for i in 0..900u32 {
            // Every row touched at most 9 times: below the tracked threshold.
            let row = RowAddr::new(0, 0, 0, i % 100);
            prob.on_activation(row, 0, &mut pa);
            tracked.on_activation(row, 0, &mut ta);
        }
        let tracked_swaps = ta
            .iter()
            .filter(|a| matches!(a, MitigationAction::RowSwap { .. }))
            .count();
        assert_eq!(tracked_swaps, 0);
        assert!(prob.swaps() > 20, "prob swaps = {}", prob.swaps());
    }

    #[test]
    fn resolve_follows_swaps() {
        let mut m = ProbabilisticRrs::new(1.0, 64, DramGeometry::tiny_test(), 11);
        let row = RowAddr::new(0, 0, 0, 5);
        let mut actions = Vec::new();
        m.on_activation(row, 0, &mut actions);
        assert_eq!(m.swaps(), 1);
        assert_ne!(m.resolve(row), row);
    }
}
