//! Telemetry-spine overhead benchmarks.
//!
//! The spine's contract is that a *disabled* spine (the default every
//! un-instrumented caller gets) costs nothing measurable: `run` delegates
//! to `run_probed` with a null spine, so `sim/null_spine` here must stay
//! within 1% of the pre-spine serial numbers, and the primitive benches
//! bound what each probe site pays when tracing is off.

use std::hint::black_box;

use bench::harness::Harness;
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::telemetry::{Event, Telemetry, DEFAULT_TRACE_CAPACITY};
use rrs::workloads::catalog::{spec_by_name, Workload};

fn bench_primitives(h: &mut Harness) {
    h.bench("telemetry/counter_inc", |b| {
        let t = Telemetry::new();
        let c = t.counter("bench.counter");
        b.iter(|| {
            c.inc();
            black_box(c.get())
        })
    });
    h.bench("telemetry/histogram_record", |b| {
        let t = Telemetry::new();
        let hist = t.histogram("bench.histogram");
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            hist.record(v >> 32);
            black_box(hist.count())
        })
    });
    // The hot-path pattern is `if telemetry.tracing() { emit(...) }`, so
    // the disabled cost every instrumented site pays is one flag load.
    h.bench("telemetry/tracing_check_disabled", |b| {
        let t = Telemetry::new();
        let mut at = 0u64;
        b.iter(|| {
            at += 1;
            if t.tracing() {
                t.emit(Event::Refresh { at });
            }
            black_box(at)
        })
    });
    h.bench("telemetry/emit_traced", |b| {
        let t = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
        let mut at = 0u64;
        b.iter(|| {
            at += 1;
            if t.tracing() {
                t.emit(Event::Refresh { at });
            }
            black_box(t.events_recorded())
        })
    });
}

fn bench_sim_overhead(h: &mut Harness) {
    let cfg = ExperimentConfig::smoke_test().with_instructions(50_000);
    let w = Workload::Single(spec_by_name("sphinx").unwrap());
    // Null spine: the exact path every pre-existing caller takes.
    h.bench("sim/null_spine", |b| {
        b.iter(|| black_box(cfg.run_workload(&w, MitigationKind::Rrs)))
    });
    // Tracing spine: full event recording on, bounding the opt-in cost.
    h.bench("sim/traced_spine", |b| {
        b.iter(|| {
            let t = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
            black_box(cfg.run_workload_probed(&w, MitigationKind::Rrs, &t))
        })
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_primitives(&mut h);
    bench_sim_overhead(&mut h);
    h.finish();
}
