//! Criterion end-to-end benchmarks: memory-controller access paths and
//! full simulation slices under each mitigation, plus the ablations
//! DESIGN.md calls out (CAM vs CAT tracker, buffered vs RowClone swaps,
//! tracked vs probabilistic RRS).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rrs::core::swap::{SwapEngine, SwapMode};
use rrs::core::tracker::{CamTracker, CatTracker, HotRowTracker, TrackerConfig};
use rrs::dram::geometry::RowAddr;
use rrs::dram::timing::TimingParams;
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::mem_ctrl::controller::{ControllerConfig, MemoryController};
use rrs::mem_ctrl::mitigation::NoMitigation;
use rrs::workloads::catalog::{spec_by_name, Workload};

fn bench_controller_paths(c: &mut Criterion) {
    c.bench_function("controller/row_hit_stream", |b| {
        let mut mc =
            MemoryController::new(ControllerConfig::test_config(), Box::new(NoMitigation::new()));
        let mut now = 0;
        let mut col = 0u64;
        b.iter(|| {
            col = (col + 1) % 128;
            now = mc.access(col * 128, false, now);
            black_box(now)
        })
    });
    c.bench_function("controller/row_miss_pingpong", |b| {
        let mut mc =
            MemoryController::new(ControllerConfig::test_config(), Box::new(NoMitigation::new()));
        let mapper = *mc.mapper();
        let a = mapper.row_base(RowAddr::new(0, 0, 0, 100));
        let bb = mapper.row_base(RowAddr::new(0, 0, 0, 500));
        let mut now = 0;
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            now = mc.access(if flip { a } else { bb }, false, now);
            black_box(now)
        })
    });
}

fn bench_mitigated_epochs(c: &mut Criterion) {
    // One scaled attack epoch under each mitigation: measures simulator
    // throughput including the defense's bookkeeping.
    let cfg = ExperimentConfig::smoke_test();
    let mut group = c.benchmark_group("attack_epoch");
    group.sample_size(10);
    for kind in [
        MitigationKind::None,
        MitigationKind::Rrs,
        MitigationKind::VictimRefresh,
        MitigationKind::BlockHammer512,
    ] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| {
                black_box(cfg.run_attack(
                    rrs::workloads::AttackKind::DoubleSided,
                    kind,
                    1,
                ))
            })
        });
    }
    group.finish();
}

fn bench_benign_slice(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke_test().with_instructions(50_000);
    let w = Workload::Single(spec_by_name("sphinx").unwrap());
    let mut group = c.benchmark_group("benign_slice");
    group.sample_size(10);
    for kind in [MitigationKind::None, MitigationKind::Rrs] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| black_box(cfg.run_workload(&w, kind)))
        });
    }
    group.finish();
}

/// Ablation: the Graphene CAM formulation vs the paper's scalable CAT
/// tracker (§6: the CAM "is not scalable beyond a few dozens of entries"
/// in hardware; in software the comparison shows the cost of the SetMin
/// bookkeeping).
fn bench_ablation_trackers(c: &mut Criterion) {
    let cfg = TrackerConfig {
        entries: 1_700,
        threshold: 800,
    };
    let mut group = c.benchmark_group("ablation_tracker");
    group.bench_function("cam", |b| {
        b.iter_batched(
            || CamTracker::new(cfg),
            |mut t| {
                let mut row = 0u64;
                for i in 0..5_000u64 {
                    row = (row + 7_919) % 16_384;
                    t.record_access(if i % 3 == 0 { 7 } else { row });
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("cat", |b| {
        b.iter_batched(
            || CatTracker::new(cfg),
            |mut t| {
                let mut row = 0u64;
                for i in 0..5_000u64 {
                    row = (row + 7_919) % 16_384;
                    t.record_access(if i % 3 == 0 { 7 } else { row });
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Ablation: buffered swaps vs RowClone-accelerated swaps (§8.1).
fn bench_ablation_swap_modes(c: &mut Criterion) {
    let timing = TimingParams::ddr4_3200();
    let mut group = c.benchmark_group("ablation_swap_mode");
    for (name, mode) in [("buffered", SwapMode::Buffered), ("rowclone", SwapMode::RowClone)] {
        group.bench_function(name, |b| {
            let mut engine = SwapEngine::new(&timing, 8 * 1024, mode);
            let mut now = 0u64;
            b.iter(|| {
                now += 36_000; // T_RRS activations' worth of time
                now = engine.record_swap(now);
                black_box(now)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_controller_paths,
    bench_mitigated_epochs,
    bench_benign_slice,
    bench_ablation_trackers,
    bench_ablation_swap_modes
);
criterion_main!(benches);
