//! End-to-end benchmarks: memory-controller access paths and full
//! simulation slices under each mitigation, plus the ablations DESIGN.md
//! calls out (CAM vs CAT tracker, buffered vs RowClone swaps, tracked vs
//! probabilistic RRS).

use std::hint::black_box;

use bench::harness::Harness;
use rrs::core::swap::{SwapEngine, SwapMode};
use rrs::core::tracker::{CamTracker, CatTracker, HotRowTracker, TrackerConfig};
use rrs::dram::geometry::RowAddr;
use rrs::dram::timing::TimingParams;
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::mem_ctrl::controller::{ControllerConfig, MemoryController};
use rrs::mem_ctrl::mitigation::NoMitigation;
use rrs::workloads::catalog::{spec_by_name, Workload};

fn bench_controller_paths(h: &mut Harness) {
    h.bench("controller/row_hit_stream", |b| {
        let mut mc = MemoryController::new(
            ControllerConfig::test_config(),
            Box::new(NoMitigation::new()),
        );
        let mut now = 0;
        let mut col = 0u64;
        b.iter(|| {
            col = (col + 1) % 128;
            now = mc.access(col * 128, false, now);
            black_box(now)
        })
    });
    h.bench("controller/row_miss_pingpong", |b| {
        let mut mc = MemoryController::new(
            ControllerConfig::test_config(),
            Box::new(NoMitigation::new()),
        );
        let mapper = *mc.mapper();
        let a = mapper.row_base(RowAddr::new(0, 0, 0, 100));
        let bb = mapper.row_base(RowAddr::new(0, 0, 0, 500));
        let mut now = 0;
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            now = mc.access(if flip { a } else { bb }, false, now);
            black_box(now)
        })
    });
}

fn bench_mitigated_epochs(h: &mut Harness) {
    // One scaled attack epoch under each mitigation: measures simulator
    // throughput including the defense's bookkeeping.
    let cfg = ExperimentConfig::smoke_test();
    for kind in [
        MitigationKind::None,
        MitigationKind::Rrs,
        MitigationKind::VictimRefresh,
        MitigationKind::BlockHammer512,
    ] {
        h.bench(&format!("attack_epoch/{kind:?}"), |b| {
            b.iter(|| black_box(cfg.run_attack(rrs::workloads::AttackKind::DoubleSided, kind, 1)))
        });
    }
}

fn bench_benign_slice(h: &mut Harness) {
    let cfg = ExperimentConfig::smoke_test().with_instructions(50_000);
    let w = Workload::Single(spec_by_name("sphinx").unwrap());
    for kind in [MitigationKind::None, MitigationKind::Rrs] {
        h.bench(&format!("benign_slice/{kind:?}"), |b| {
            b.iter(|| black_box(cfg.run_workload(&w, kind)))
        });
    }
}

/// Ablation: the Graphene CAM formulation vs the paper's scalable CAT
/// tracker (§6: the CAM "is not scalable beyond a few dozens of entries"
/// in hardware; in software the comparison shows the cost of the SetMin
/// bookkeeping).
fn bench_ablation_trackers(h: &mut Harness) {
    let cfg = TrackerConfig {
        entries: 1_700,
        threshold: 800,
    };
    h.bench("ablation_tracker/cam", |b| {
        b.iter_batched(
            || CamTracker::new(cfg),
            |mut t| {
                let mut row = 0u64;
                for i in 0..5_000u64 {
                    row = (row + 7_919) % 16_384;
                    t.record_access(if i % 3 == 0 { 7 } else { row });
                }
                t
            },
        )
    });
    h.bench("ablation_tracker/cat", |b| {
        b.iter_batched(
            || CatTracker::new(cfg),
            |mut t| {
                let mut row = 0u64;
                for i in 0..5_000u64 {
                    row = (row + 7_919) % 16_384;
                    t.record_access(if i % 3 == 0 { 7 } else { row });
                }
                t
            },
        )
    });
}

/// Ablation: buffered swaps vs RowClone-accelerated swaps (§8.1).
fn bench_ablation_swap_modes(h: &mut Harness) {
    let timing = TimingParams::ddr4_3200();
    for (name, mode) in [
        ("buffered", SwapMode::Buffered),
        ("rowclone", SwapMode::RowClone),
    ] {
        h.bench(&format!("ablation_swap_mode/{name}"), |b| {
            let mut engine = SwapEngine::new(&timing, 8 * 1024, mode);
            let mut now = 0u64;
            b.iter(|| {
                now += 36_000; // T_RRS activations' worth of time
                now = engine.record_swap(now);
                black_box(now)
            })
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_controller_paths(&mut h);
    bench_mitigated_epochs(&mut h);
    bench_benign_slice(&mut h);
    bench_ablation_trackers(&mut h);
    bench_ablation_swap_modes(&mut h);
    h.finish();
}
