//! Criterion micro-benchmarks of the RRS hardware structures: the latency-
//! critical operations the paper budgets (RIT lookup on every access,
//! tracker update on every activation, PRINCE < 2 ns in hardware).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rrs::core::cat::{Cat, CatConfig};
use rrs::core::prince::Prince;
use rrs::core::prng::PrinceCtrRng;
use rrs::core::rit::RowIndirectionTable;
use rrs::core::rrs::{BankRrs, RrsConfig};
use rrs::core::swap::{SwapEngine, SwapMode};
use rrs::core::tracker::{CatTracker, HotRowTracker, TrackerConfig};
use rrs::dram::timing::TimingParams;

fn bench_prince(c: &mut Criterion) {
    let cipher = Prince::new(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
    c.bench_function("prince/encrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(cipher.encrypt(x))
        })
    });
    c.bench_function("prince/decrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(cipher.decrypt(x))
        })
    });
    let mut rng = PrinceCtrRng::new(42);
    c.bench_function("prng/next_below_128k", |b| {
        b.iter(|| black_box(rng.next_below(128 * 1024)))
    });
}

fn bench_cat(c: &mut Criterion) {
    // The paper's RIT shape: 2 tables x 256 sets x 20 ways.
    let cfg = CatConfig::rit_asplos22();
    let mut cat: Cat<u64> = Cat::new(cfg);
    for tag in 0..6_000u64 {
        cat.insert(tag, tag).unwrap();
    }
    c.bench_function("cat/lookup_hit", |b| {
        let mut tag = 0u64;
        b.iter(|| {
            tag = (tag + 1) % 6_000;
            black_box(cat.get(tag))
        })
    });
    c.bench_function("cat/lookup_miss", |b| {
        let mut tag = 1_000_000u64;
        b.iter(|| {
            tag += 1;
            black_box(cat.get(tag))
        })
    });
    c.bench_function("cat/insert_remove", |b| {
        let mut tag = 2_000_000u64;
        b.iter(|| {
            tag += 1;
            cat.insert(tag, 0).unwrap();
            black_box(cat.remove(tag))
        })
    });
}

fn bench_tracker(c: &mut Criterion) {
    let cfg = TrackerConfig {
        entries: 1_700,
        threshold: 800,
    };
    c.bench_function("tracker/hot_row_access", |b| {
        let mut t = CatTracker::new(cfg);
        b.iter(|| black_box(t.record_access(7)))
    });
    c.bench_function("tracker/scattered_access", |b| {
        let mut t = CatTracker::new(cfg);
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 12_345) % 131_072;
            black_box(t.record_access(row))
        })
    });
}

fn bench_rit(c: &mut Criterion) {
    c.bench_function("rit/resolve_mapped", |b| {
        let mut rit = RowIndirectionTable::new(3_400, 0x1234);
        for i in 0..1_000u64 {
            rit.swap(i, 100_000 + i).unwrap();
        }
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) % 1_000;
            black_box(rit.resolve(row))
        })
    });
    c.bench_function("rit/swap_and_back", |b| {
        let mut rit = RowIndirectionTable::new(3_400, 0x5678);
        b.iter(|| {
            rit.swap(1, 2).unwrap();
            black_box(rit.swap(1, 2).unwrap())
        })
    });
}

fn bench_bank_rrs(c: &mut Criterion) {
    let cfg = RrsConfig::asplos22();
    c.bench_function("bank_rrs/activation_cold", |b| {
        let mut bank = BankRrs::new(cfg, 0);
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 9_973) % 131_072;
            black_box(bank.on_activation(row))
        })
    });
    c.bench_function("bank_rrs/hammer_with_swaps", |b| {
        b.iter_batched(
            || BankRrs::new(cfg, 0),
            |mut bank| {
                for _ in 0..1_600 {
                    black_box(bank.on_activation(7));
                }
                bank
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_swap_engine(c: &mut Criterion) {
    let timing = TimingParams::ddr4_3200();
    c.bench_function("swap_engine/record_swap", |b| {
        let mut e = SwapEngine::new(&timing, 8 * 1024, SwapMode::Buffered);
        let mut now = 0;
        b.iter(|| {
            now += 100_000;
            black_box(e.record_swap(now))
        })
    });
}

criterion_group!(
    benches,
    bench_prince,
    bench_cat,
    bench_tracker,
    bench_rit,
    bench_bank_rrs,
    bench_swap_engine
);
criterion_main!(benches);
