//! Micro-benchmarks of the RRS hardware structures: the latency-critical
//! operations the paper budgets (RIT lookup on every access, tracker
//! update on every activation, PRINCE < 2 ns in hardware).

use std::hint::black_box;

use bench::harness::Harness;
use rrs::core::cat::{Cat, CatConfig};
use rrs::core::prince::Prince;
use rrs::core::prng::PrinceCtrRng;
use rrs::core::rit::RowIndirectionTable;
use rrs::core::rrs::{BankRrs, RrsConfig};
use rrs::core::swap::{SwapEngine, SwapMode};
use rrs::core::tracker::{CatTracker, HotRowTracker, TrackerConfig};
use rrs::dram::timing::TimingParams;

fn bench_prince(h: &mut Harness) {
    let cipher = Prince::new(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
    h.bench("prince/encrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(cipher.encrypt(x))
        })
    });
    h.bench("prince/decrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(cipher.decrypt(x))
        })
    });
    let mut rng = PrinceCtrRng::new(42);
    h.bench("prng/next_below_128k", |b| {
        b.iter(|| black_box(rng.next_below(128 * 1024)))
    });
}

fn bench_cat(h: &mut Harness) {
    // The paper's RIT shape: 2 tables x 256 sets x 20 ways.
    let cfg = CatConfig::rit_asplos22();
    let mut cat: Cat<u64> = Cat::new(cfg);
    for tag in 0..6_000u64 {
        cat.insert(tag, tag).unwrap();
    }
    h.bench("cat/lookup_hit", |b| {
        let mut tag = 0u64;
        b.iter(|| {
            tag = (tag + 1) % 6_000;
            black_box(cat.get(tag))
        })
    });
    h.bench("cat/lookup_miss", |b| {
        let mut tag = 1_000_000u64;
        b.iter(|| {
            tag += 1;
            black_box(cat.get(tag))
        })
    });
    h.bench("cat/insert_remove", |b| {
        let mut tag = 2_000_000u64;
        b.iter(|| {
            tag += 1;
            cat.insert(tag, 0).unwrap();
            black_box(cat.remove(tag))
        })
    });
}

fn bench_tracker(h: &mut Harness) {
    let cfg = TrackerConfig {
        entries: 1_700,
        threshold: 800,
    };
    h.bench("tracker/hot_row_access", |b| {
        let mut t = CatTracker::new(cfg);
        b.iter(|| black_box(t.record_access(7)))
    });
    h.bench("tracker/scattered_access", |b| {
        let mut t = CatTracker::new(cfg);
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 12_345) % 131_072;
            black_box(t.record_access(row))
        })
    });
}

fn bench_rit(h: &mut Harness) {
    h.bench("rit/resolve_mapped", |b| {
        let mut rit = RowIndirectionTable::new(3_400, 0x1234);
        for i in 0..1_000u64 {
            rit.swap(i, 100_000 + i).unwrap();
        }
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) % 1_000;
            black_box(rit.resolve(row))
        })
    });
    h.bench("rit/swap_and_back", |b| {
        let mut rit = RowIndirectionTable::new(3_400, 0x5678);
        b.iter(|| {
            rit.swap(1, 2).unwrap();
            black_box(rit.swap(1, 2).unwrap())
        })
    });
}

fn bench_bank_rrs(h: &mut Harness) {
    let cfg = RrsConfig::asplos22();
    h.bench("bank_rrs/activation_cold", |b| {
        let mut bank = BankRrs::new(cfg, 0);
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 9_973) % 131_072;
            black_box(bank.on_activation(row))
        })
    });
    h.bench("bank_rrs/hammer_with_swaps", |b| {
        b.iter_batched(
            || BankRrs::new(cfg, 0),
            |mut bank| {
                for _ in 0..1_600 {
                    black_box(bank.on_activation(7));
                }
                bank
            },
        )
    });
}

fn bench_swap_engine(h: &mut Harness) {
    let timing = TimingParams::ddr4_3200();
    h.bench("swap_engine/record_swap", |b| {
        let mut e = SwapEngine::new(&timing, 8 * 1024, SwapMode::Buffered);
        let mut now = 0;
        b.iter(|| {
            now += 100_000;
            black_box(e.record_swap(now))
        })
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_prince(&mut h);
    bench_cat(&mut h);
    bench_tracker(&mut h);
    bench_rit(&mut h);
    bench_bank_rrs(&mut h);
    bench_swap_engine(&mut h);
    h.finish();
}
