//! Campaign-engine scaling: wall-clock for the same smoke-scale grid run
//! serially (1 thread) and in parallel (available cores).
//!
//! Campaign cells are independent simulations, so the grid should scale
//! close to linearly until the core count exceeds the cell count; this
//! bench reports the measured speedup (recorded in EXPERIMENTS.md).
//!
//! `cargo bench -p bench --bench campaign [-- --quick]`

use std::time::Instant;

use rrs::campaign::{Campaign, RunOptions};
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::workloads::catalog::table3_workloads;

fn smoke_grid(workloads: usize) -> Campaign {
    let mut cfg = ExperimentConfig::smoke_test();
    cfg.instructions_per_core = 60_000;
    let mut campaign = Campaign::new();
    for w in table3_workloads().into_iter().take(workloads) {
        campaign.normalized_pair(cfg, w, MitigationKind::Rrs);
    }
    campaign
}

fn time_run(campaign: &Campaign, threads: usize) -> f64 {
    let opts = RunOptions::quiet().with_threads(threads);
    let start = Instant::now();
    let run = campaign.run(&opts);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(run.len(), campaign.len());
    elapsed
}

fn main() {
    let quick =
        std::env::args().any(|a| a == "--quick") || std::env::var_os("RRS_BENCH_QUICK").is_some();
    let workloads = if quick { 4 } else { 8 };
    let campaign = smoke_grid(workloads);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "campaign grid: {} cells ({} workloads x 2 defenses), {} cores available",
        campaign.len(),
        workloads,
        cores
    );
    // Warm-up run so first-touch costs (page faults, allocator growth)
    // don't land on the serial measurement.
    time_run(&campaign, cores);

    let serial = time_run(&campaign, 1);
    let parallel = time_run(&campaign, cores);
    println!("serial   (1 thread)  : {serial:>8.2} s");
    println!("parallel ({cores:>2} threads): {parallel:>8.2} s");
    println!("speedup              : {:>8.2}x", serial / parallel);
}
