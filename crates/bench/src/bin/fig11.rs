//! Figure 11: performance S-curve of RRS vs BlockHammer (blacklist 512 and
//! 1K) over the workload population (§8.1).
//!
//! Paper: BlockHammer worst case 21.7% slowdown with 10–25 workloads above
//! 5%, average ≈2%; RRS worst case 7.6% with only 3 workloads above 5%,
//! average 0.4%.
//!
//! `cargo run --release -p bench --bin fig11 [--workloads all] [--scale N]`

use bench::{header, Args};
use rrs::campaign::Campaign;
use rrs::experiments::{geomean, MitigationKind};

fn main() {
    let args = Args::parse();
    header("Figure 11: S-Curve, RRS vs BlockHammer", &args.config);

    let kinds = [
        ("rrs", MitigationKind::Rrs),
        ("bh-512", MitigationKind::BlockHammer512),
        ("bh-1k", MitigationKind::BlockHammer1k),
    ];
    // One campaign for all three defenses: the no-defense baseline cells
    // are shared, so they run once instead of three times.
    let mut campaign = Campaign::new();
    let grid: Vec<(&str, Vec<(usize, usize)>)> = kinds
        .iter()
        .map(|(name, kind)| {
            (
                *name,
                args.workloads
                    .iter()
                    .map(|w| campaign.normalized_pair(args.config, *w, *kind))
                    .collect(),
            )
        })
        .collect();
    let run = campaign.run(&args.run_opts);
    let mut curves: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, pairs) in grid {
        let mut norms: Vec<f64> = pairs
            .iter()
            .map(|&(base, mitigated)| run.normalized(mitigated, base))
            .collect();
        norms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        curves.push((name, norms));
    }

    println!("sorted normalized performance (S-curve):");
    print!("{:<10}", "rank");
    for (name, _) in &curves {
        print!(" {name:>10}");
    }
    println!();
    println!("{}", "-".repeat(10 + 11 * curves.len()));
    let n = curves[0].1.len();
    for i in 0..n {
        print!("{:<10}", i + 1);
        for (_, c) in &curves {
            print!(" {:>10.4}", c[i]);
        }
        println!();
    }
    println!("{}", "-".repeat(10 + 11 * curves.len()));
    for (name, c) in &curves {
        let worst = (1.0 - c[0]) * 100.0;
        let avg = (1.0 - geomean(c)) * 100.0;
        let above5 = c.iter().filter(|&&v| v < 0.95).count();
        println!(
            "{name:<8} worst {worst:>5.1}%  avg {avg:>5.2}%  workloads >5% slowdown: {above5}"
        );
    }
    println!(
        "\npaper: bh-512/bh-1k worst 21.7%, 10-25 workloads over 5%, avg ~2%;\n\
         rrs worst 7.6%, 3 workloads over 5%, avg 0.4%."
    );
}
