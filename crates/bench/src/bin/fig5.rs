//! Figure 5: average number of row-swaps per 64 ms window per workload
//! (§4.6; log-scale bars, detailed for the 28 workloads with at least one
//! swap, suite means on the right).
//!
//! `cargo run --release -p bench --bin fig5 [--workloads all] [--scale N]`

use bench::{header, run_suite, Args};
use rrs::experiments::{mean, MitigationKind};

fn main() {
    let args = Args::parse();
    header("Figure 5: Row-Swaps per 64 ms Window", &args.config);
    let results = run_suite(
        &args.config,
        &args.workloads,
        MitigationKind::Rrs,
        &args.run_opts,
    );

    println!(
        "{:<12} {:>14} {:>14}   bar (log2)",
        "Workload", "swaps/epoch", "paper-shape"
    );
    println!("{}", "-".repeat(72));
    let mut per_suite: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    let mut all = Vec::new();
    let mut csv = vec![vec![
        "workload".to_string(),
        "suite".to_string(),
        "swaps_per_epoch".to_string(),
        "paper_hot_rows".to_string(),
    ]];
    for (w, r) in args.workloads.iter().zip(&results) {
        let swaps = r.stats.mean_swaps_per_epoch();
        let hot = match w {
            rrs::workloads::catalog::Workload::Single(s) => s.hot_rows,
            _ => 0,
        };
        let bar = "#".repeat((swaps.max(1.0).log2().max(0.0) as usize).min(24));
        println!(
            "{:<12} {:>14.1} {:>14}   {}",
            w.name(),
            swaps,
            if hot > 0 {
                format!("~{}", hot)
            } else {
                "0".to_string()
            },
            bar
        );
        per_suite.entry(w.suite().label()).or_default().push(swaps);
        all.push(swaps);
        csv.push(vec![
            w.name().to_string(),
            w.suite().label().to_string(),
            format!("{swaps:.2}"),
            hot.to_string(),
        ]);
    }
    args.write_csv(&csv);
    println!("{}", "-".repeat(72));
    for (suite, vals) in &per_suite {
        println!("{:<12} {:>14.1}   (suite mean)", suite, mean(vals));
    }
    println!(
        "{:<12} {:>14.1}   (overall mean; paper: 68 across all 78 workloads)",
        "ALL",
        mean(&all)
    );
    println!(
        "\npaper shape: hmmer/bzip2 near 1000 swaps; large-footprint workloads\n\
         (mcf, GAP) below 5; ~50 workloads with zero swaps. 'paper-shape' lists\n\
         each workload's published ACT-800+ row count, the direct driver of its\n\
         swap count (one swap per threshold crossing)."
    );
}
