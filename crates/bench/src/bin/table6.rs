//! Table 6: extra power consumption of RRS per rank (§7.2).
//!
//! The DRAM overhead is measured from the simulator's command counts over
//! the workload pool; the SRAM figure comes from the first-order Cacti
//! substitute (DESIGN.md documents the substitution).
//!
//! `cargo run --release -p bench --bin table6 [--workloads all]`

use bench::{header, run_suite, Args};
use rrs::analysis::power::Table6;
use rrs::experiments::{mean, MitigationKind};

fn main() {
    let args = Args::parse();
    header(
        "Table 6: Extra Power Consumption in RRS Per Rank",
        &args.config,
    );

    let geometry = rrs::dram::geometry::DramGeometry::asplos22_baseline();
    let timing = args.config.timing();
    // Scale normalization: swaps-per-window are scale-invariant (they track
    // the hot-row population) while demand traffic per window shrinks by
    // the scale factor, so the full-scale overhead is the measured ratio
    // divided by the scale.
    let mut fractions = Vec::new();
    let results = run_suite(
        &args.config,
        &args.workloads,
        MitigationKind::Rrs,
        &args.run_opts,
    );
    for r in &results {
        let report = r.power_report(&timing, geometry.lines_per_row(), 1);
        fractions.push(report.swap_overhead_fraction() / args.config.scale as f64);
    }
    let t6 = Table6::from_measured(mean(&fractions));

    println!("{:<44} Average", "Type of Power Overhead");
    println!("{}", "-".repeat(58));
    println!(
        "{:<44} {:.2}%   (paper: 0.5%)",
        "DRAM Power Overhead (Row-Swap)",
        100.0 * t6.dram_overhead_fraction
    );
    println!(
        "{:<44} {:.0} mW  (paper: 903 mW)",
        "SRAM Power Overhead (RRS Structures)", t6.sram_power_mw
    );
    println!(
        "\nmeasured over {} workloads; per-workload swap-energy fractions ranged\n\
         {:.3}% – {:.3}%",
        fractions.len(),
        100.0 * fractions.iter().cloned().fold(f64::INFINITY, f64::min),
        100.0 * fractions.iter().cloned().fold(0.0f64, f64::max),
    );
}
