//! Table 7: comparison of RRS with victim-focused mitigation (§8.2).
//!
//! Runs the classic and Half-Double patterns against the idealized VFM and
//! RRS on the cycle-level simulator, and measures both defenses' benign
//! slowdown on a workload sample.
//!
//! `cargo run --release -p bench --bin table7 [--epochs N]`

use bench::{header, Args};
use rrs::campaign::Campaign;
use rrs::experiments::{geomean, MitigationKind};
use rrs::workloads::AttackKind;

fn main() {
    let args = Args::parse();
    header("Table 7: RRS vs Victim-Focused Mitigation", &args.config);

    // One campaign holds the whole table: the 6 attack cells plus both
    // defenses' benign sample (which shares its no-defense baselines).
    let mut campaign = Campaign::new();
    let attack_grid: Vec<usize> = [
        (AttackKind::DoubleSided, MitigationKind::VictimRefresh),
        (AttackKind::SingleSided, MitigationKind::VictimRefresh),
        (AttackKind::HalfDouble, MitigationKind::VictimRefresh),
        (AttackKind::DoubleSided, MitigationKind::Rrs),
        (AttackKind::SingleSided, MitigationKind::Rrs),
        (AttackKind::HalfDouble, MitigationKind::Rrs),
    ]
    .into_iter()
    .map(|(attack, kind)| campaign.attack(args.config, attack, kind, args.epochs))
    .collect();
    // Benign slowdown on a sample (the paper reports <0.1% for ideal VFM,
    // 0.4% for RRS over the full population).
    let sample: Vec<_> = args.workloads.iter().copied().take(6).collect();
    let benign_grid: Vec<Vec<(usize, usize)>> =
        [MitigationKind::VictimRefresh, MitigationKind::Rrs]
            .into_iter()
            .map(|kind| {
                sample
                    .iter()
                    .map(|w| campaign.normalized_pair(args.config, *w, kind))
                    .collect()
            })
            .collect();
    let run = campaign.run(&args.run_opts);

    let survives = |cell: usize| -> bool { run.get(cell).bit_flips.is_empty() };
    let slowdown = |pairs: &[(usize, usize)]| -> f64 {
        let norms: Vec<f64> = pairs
            .iter()
            .map(|&(base, mitigated)| run.normalized(mitigated, base))
            .collect();
        (1.0 - geomean(&norms)) * 100.0
    };

    let vfm_classic = survives(attack_grid[0]) && survives(attack_grid[1]);
    let vfm_hd = survives(attack_grid[2]);
    let rrs_classic = survives(attack_grid[3]) && survives(attack_grid[4]);
    let rrs_hd = survives(attack_grid[5]);
    let vfm_slow = slowdown(&benign_grid[0]);
    let rrs_slow = slowdown(&benign_grid[1]);

    let yn = |b: bool| if b { "yes" } else { "NO" };
    println!("{:<44} {:>14} {:>8}", "Attribute", "Victim-Focused", "RRS");
    println!("{}", "-".repeat(70));
    println!(
        "{:<44} {:>13.1}% {:>7.1}%",
        "Slowdown (sample geomean)", vfm_slow, rrs_slow
    );
    println!(
        "{:<44} {:>14} {:>8}",
        "Mitigates Classic Rowhammer",
        yn(vfm_classic),
        yn(rrs_classic)
    );
    println!(
        "{:<44} {:>14} {:>8}",
        "Mitigates Complex Patterns (Half-Double)",
        yn(vfm_hd),
        yn(rrs_hd)
    );
    println!(
        "{:<44} {:>14} {:>8}",
        "Works Without Knowing DRAM Mapping", "NO", "yes"
    );
    println!("\npaper: VFM <0.1% / yes / NO / NO;  RRS 0.4% / yes / yes / yes");
}
