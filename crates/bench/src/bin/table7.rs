//! Table 7: comparison of RRS with victim-focused mitigation (§8.2).
//!
//! Runs the classic and Half-Double patterns against the idealized VFM and
//! RRS on the cycle-level simulator, and measures both defenses' benign
//! slowdown on a workload sample.
//!
//! `cargo run --release -p bench --bin table7 [--epochs N]`

use bench::{header, run_normalized, Args};
use rrs::experiments::{geomean, MitigationKind};
use rrs::workloads::AttackKind;

fn main() {
    let args = Args::parse();
    header("Table 7: RRS vs Victim-Focused Mitigation", &args.config);

    let survives = |attack: AttackKind, kind: MitigationKind| -> bool {
        !args
            .config
            .run_attack(attack, kind, args.epochs)
            .attack_succeeded()
    };

    // Benign slowdown on a sample (the paper reports <0.1% for ideal VFM,
    // 0.4% for RRS over the full population).
    let sample: Vec<_> = args.workloads.iter().copied().take(6).collect();
    let slowdown = |kind: MitigationKind| -> f64 {
        let runs = run_normalized(&args.config, &sample, kind, |_| {});
        let norms: Vec<f64> = runs.iter().map(|r| r.normalized()).collect();
        (1.0 - geomean(&norms)) * 100.0
    };

    let vfm_classic = survives(AttackKind::DoubleSided, MitigationKind::VictimRefresh)
        && survives(AttackKind::SingleSided, MitigationKind::VictimRefresh);
    let rrs_classic = survives(AttackKind::DoubleSided, MitigationKind::Rrs)
        && survives(AttackKind::SingleSided, MitigationKind::Rrs);
    let vfm_hd = survives(AttackKind::HalfDouble, MitigationKind::VictimRefresh);
    let rrs_hd = survives(AttackKind::HalfDouble, MitigationKind::Rrs);
    let vfm_slow = slowdown(MitigationKind::VictimRefresh);
    let rrs_slow = slowdown(MitigationKind::Rrs);

    let yn = |b: bool| if b { "yes" } else { "NO" };
    println!("{:<44} {:>14} {:>8}", "Attribute", "Victim-Focused", "RRS");
    println!("{}", "-".repeat(70));
    println!(
        "{:<44} {:>13.1}% {:>7.1}%",
        "Slowdown (sample geomean)", vfm_slow, rrs_slow
    );
    println!(
        "{:<44} {:>14} {:>8}",
        "Mitigates Classic Rowhammer",
        yn(vfm_classic),
        yn(rrs_classic)
    );
    println!(
        "{:<44} {:>14} {:>8}",
        "Mitigates Complex Patterns (Half-Double)",
        yn(vfm_hd),
        yn(rrs_hd)
    );
    println!(
        "{:<44} {:>14} {:>8}",
        "Works Without Knowing DRAM Mapping", "NO", "yes"
    );
    println!(
        "\npaper: VFM <0.1% / yes / NO / NO;  RRS 0.4% / yes / yes / yes"
    );
}
