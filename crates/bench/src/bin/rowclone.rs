//! RowClone ablation (§8.1): "The RRS slowdown under attack can be reduced
//! even further with DRAM-based techniques for faster copying of rows,
//! such as RowClone, which could considerably reduce the row-swap latency."
//!
//! Compares buffered swaps (≈1.46 µs) with RowClone-accelerated in-DRAM
//! copies (4×tRC ≈ 0.18 µs) under (a) an aggressive low-threshold design
//! point where benign swaps are frequent (Figure 10's 0.25× point) and
//! (b) a sustained hammering attack where the swap rate is maximal.
//!
//! `cargo run --release -p bench --bin rowclone [--workloads N]`

use bench::{header, run_normalized, suite_geomeans, Args};
use rrs::campaign::Campaign;
use rrs::experiments::MitigationKind;
use rrs::workloads::AttackKind;

fn main() {
    let args = Args::parse();
    // Low-threshold point: swaps are 6x more frequent than the baseline.
    let low_t = args.config.with_t_rh(1_200);
    header("RowClone ablation (swap latency: 1.46 µs vs 4×tRC)", &low_t);

    let sample: Vec<_> = args.workloads.iter().copied().take(8).collect();
    println!("-- benign slowdown at T_RH = 1.2K (swap-heavy design point) --");
    println!("{:<12} {:>12}", "swap mode", "slowdown");
    for (label, cfg) in [("buffered", low_t), ("rowclone", low_t.with_rowclone())] {
        let runs = run_normalized(&cfg, &sample, MitigationKind::Rrs, &args.run_opts);
        let overall = suite_geomeans(&runs).last().unwrap().1;
        println!("{:<12} {:>11.2}%", label, (1.0 - overall) * 100.0);
    }

    println!("\n-- attacker throughput under sustained hammering --");
    println!("(full 1.46 µs swap latency: this experiment is about the cost itself)");
    println!("{:<12} {:>14} {:>12}", "swap mode", "cycles", "vs none");
    let atk = args.config.with_full_swap_cost();
    let mut campaign = Campaign::new();
    let base_cell = campaign.attack(atk, AttackKind::Dos, MitigationKind::None, 1);
    let modes: Vec<(&str, usize)> = [("buffered", atk), ("rowclone", atk.with_rowclone())]
        .into_iter()
        .map(|(label, cfg)| {
            (
                label,
                campaign.attack(cfg, AttackKind::Dos, MitigationKind::Rrs, 1),
            )
        })
        .collect();
    let run = campaign.run(&args.run_opts);
    let base = run.get(base_cell);
    println!("{:<12} {:>14} {:>9.4}x", "none", base.cycles, 1.0);
    for (label, cell) in modes {
        let r = run.get(cell);
        assert!(r.bit_flips.is_empty(), "RRS must stay secure in both modes");
        println!(
            "{:<12} {:>14} {:>9.4}x",
            label,
            r.cycles,
            r.cycles as f64 / base.cycles as f64
        );
    }
    println!(
        "\nRowClone does not change what gets swapped (security identical);\n\
         it shrinks each swap's channel-blocking time ~8x, which matters\n\
         exactly where the paper says it does: under attack and at low T_RH."
    );
}
