//! Security-margin ablation: how the choice of `k = T_RH / T_RRS`
//! (§5.3.2's central trade-off) moves the expected attack time and the
//! success-probability curve — Table 4 extended across every admissible
//! design point, with the performance cost of each.
//!
//! `cargo run --release -p bench --bin security_sweep [--workloads N]`

use bench::{header, human_time, run_normalized, sci, suite_geomeans, Args};
use rrs::analysis::attack_model::AttackModel;
use rrs::experiments::MitigationKind;

fn main() {
    let args = Args::parse();
    let model = AttackModel::asplos22();

    println!("== Security-margin sweep: k = T_RH / T_RRS (§5.3.2 ablation) ==\n");
    println!(
        "{:<6} {:<8} {:>8} {:>14} {:>16} {:>12}",
        "k", "T_RRS", "D", "AT_iter", "attack time", "P(1 year)"
    );
    println!("{}", "-".repeat(70));
    for row in model.k_sweep(1..=8) {
        let p_year = model.success_probability_within(row.t, row.duty_cycle, 365.25 * 86_400.0);
        println!(
            "{:<6} {:<8} {:>8.3} {:>14} {:>16} {:>12.2e}",
            row.k,
            row.t,
            row.duty_cycle,
            sci(row.attack_iterations),
            human_time(row.attack_time_seconds),
            p_year
        );
    }
    println!(
        "\nThe paper picks k = 6 (T_RRS = 800): the smallest k protecting for\n\
         over a year of continuous attack (3.8 years expected)."
    );

    // Success-probability curve for the chosen design point.
    println!("\n-- P(success within time), T_RRS = 800 --");
    let d = model.duty_cycle(800);
    for (label, seconds) in [
        ("1 hour", 3_600.0),
        ("1 day", 86_400.0),
        ("1 month", 30.0 * 86_400.0),
        ("1 year", 365.25 * 86_400.0),
        ("3.8 years", 3.8 * 365.25 * 86_400.0),
        ("10 years", 10.0 * 365.25 * 86_400.0),
    ] {
        println!(
            "{:<10} {:>12.4e}",
            label,
            model.success_probability_within(800, d, seconds)
        );
    }

    // Optional: measure the performance side of the trade-off.
    if !args.workloads.is_empty() {
        let sample: Vec<_> = args.workloads.iter().copied().take(6).collect();
        println!(
            "\n-- Performance cost per design point (sample of {} workloads) --",
            sample.len()
        );
        header("", &args.config);
        println!("{:<6} {:>12}", "k", "slowdown");
        for k in [3u64, 6, 8] {
            // Keep T_RH fixed, shrink T_RRS by adjusting k: emulate via the
            // threshold sweep (T_RRS = T_RH / k is derived inside the
            // config from DEFAULT_K; scale T_RH to move T_RRS instead).
            let cfg = args.config.with_t_rh(4_800 * rrs::core::DEFAULT_K / k);
            let runs = run_normalized(&cfg, &sample, MitigationKind::Rrs, &args.run_opts);
            let overall = suite_geomeans(&runs).last().unwrap().1;
            println!("{:<6} {:>11.2}%", k, (1.0 - overall) * 100.0);
        }
        println!("(larger k = smaller T_RRS = more frequent swaps = more slowdown)");
    }
}
