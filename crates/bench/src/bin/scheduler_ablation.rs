//! Scheduling-policy ablation: FCFS (the paper's §3 configuration) vs
//! FR-FCFS on recorded workload traces, open-loop.
//!
//! Two purposes:
//!
//! 1. quantify how much row-hit-first arbitration changes the row-buffer
//!    hit rate for the calibrated workloads;
//! 2. validate the synchronous controller's burst approximation: its hit
//!    rates should land between strict per-request FCFS and FR-FCFS.
//!
//! `cargo run --release -p bench --bin scheduler_ablation [--workloads N]`

use bench::{header, run_suite, Args};
use rrs::experiments::MitigationKind;
use rrs::mem_ctrl::scheduler::{QueuedController, SchedPolicy};
use rrs::workloads::generator::sources_for_workload;

fn main() {
    let args = Args::parse();
    header("Scheduler ablation: FCFS vs FR-FCFS", &args.config);
    let sys = args.config.system_config();
    let records_per_core = 20_000usize;

    // The closed-loop synchronous-controller runs (burst-batched FCFS)
    // come from the campaign engine; the open-loop replay below is a
    // custom per-policy queue and stays inline.
    let pool: Vec<_> = args.workloads.iter().copied().take(8).collect();
    let sync_results = run_suite(&args.config, &pool, MitigationKind::None, &args.run_opts);

    println!(
        "{:<12} {:>12} {:>12} {:>14}",
        "workload", "fcfs hits", "frfcfs hits", "sync-ctrl hits"
    );
    println!("{}", "-".repeat(54));
    for (w, sync) in pool.iter().zip(&sync_results) {
        // Record per-core traces once, replay under each policy.
        let mut sources = sources_for_workload(w, &sys, args.config.seed);
        let traces: Vec<Vec<_>> = sources
            .iter_mut()
            .map(|s| (0..records_per_core).map(|_| s.next_record()).collect())
            .collect();

        let open_loop = |policy: SchedPolicy| -> f64 {
            let mut qc =
                QueuedController::new(sys.controller.geometry, sys.controller.timing, policy, 64);
            // Interleave cores round-robin with their gap-derived arrival
            // times; drain in windows to bound the queue.
            let mut times = vec![0u64; traces.len()];
            let mut id = 0u64;
            let total = traces[0].len();
            for i in 0..total {
                for (c, t) in traces.iter().enumerate() {
                    let r = t[i];
                    times[c] += (r.gap as u64) / 4 + 1;
                    id += 1;
                    while !qc.submit(id, r.addr, r.is_write, times[c]) {
                        // Backpressure: service everything already queued
                        // (their arrivals may be ahead of this core's time).
                        qc.drain_until(u64::MAX);
                    }
                }
                if i % 32 == 0 {
                    // Periodic service keeps the queue at realistic depth
                    // without reordering across the whole trace.
                    qc.drain_until(*times.iter().max().unwrap());
                }
            }
            qc.drain_until(u64::MAX);
            qc.hit_rate()
        };

        let fcfs = open_loop(SchedPolicy::Fcfs);
        let frfcfs = open_loop(SchedPolicy::FrFcfs);
        println!(
            "{:<12} {:>11.1}% {:>11.1}% {:>13.1}%",
            w.name(),
            100.0 * fcfs,
            100.0 * frfcfs,
            100.0 * sync.stats.row_hit_rate()
        );
    }
    println!(
        "\nFR-FCFS recovers row locality that strict FCFS destroys under\n\
         interleaving; the synchronous controller's burst batching lands\n\
         between the two — the approximation DESIGN.md documents."
    );
}
