//! Table 1: Row Hammer threshold over time (§2.3).
//!
//! `cargo run --release -p bench --bin table1`

use rrs::dram::hammer::RH_THRESHOLDS;

fn main() {
    println!("== Table 1: Row Hammer Threshold Over Time ==\n");
    println!("{:<14} {:>12}   Source", "Generation", "RH-Threshold");
    println!("{}", "-".repeat(60));
    for e in RH_THRESHOLDS {
        println!(
            "{:<14} {:>12}   {}",
            e.generation,
            format!("{:.1}K", e.threshold as f64 / 1000.0),
            e.source
        );
    }
    println!(
        "\nThe reproduction targets the lowest published threshold: {} activations\n\
         (LPDDR4-new), exactly as the paper's design point.",
        RH_THRESHOLDS.last().unwrap().threshold
    );
}
