//! Full-scale (paper-parameter) security spot check: T_RH = 4800, 64 ms
//! epochs, 1.46 µs swaps — no scaling anywhere. Slower than the scaled
//! harness (each epoch is ~1.4 M attacker accesses) but exercises the
//! exact design point of the paper.
//!
//! `cargo run --release -p bench --bin fullscale_attack [--epochs N]`

use bench::Args;
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::workloads::AttackKind;

fn main() {
    let args = Args::parse();
    let cfg = ExperimentConfig::default()
        .with_scale(1)
        .with_full_swap_cost();
    println!("== Full-scale security check (T_RH = {}, 64 ms epochs) ==\n", cfg.t_rh());
    println!(
        "{:<16} {:<12} {:>8} {:>10} {:>10}",
        "attack", "defense", "flips", "swaps", "refreshes"
    );
    println!("{}", "-".repeat(60));
    let cases = [
        (AttackKind::DoubleSided, MitigationKind::None, 1),
        (AttackKind::DoubleSided, MitigationKind::VictimRefresh, 1),
        (AttackKind::DoubleSided, MitigationKind::Rrs, 1),
        (AttackKind::HalfDouble, MitigationKind::VictimRefresh, 2),
        (AttackKind::HalfDouble, MitigationKind::Rrs, 2),
        (cfg.swap_chasing_attack(), MitigationKind::Rrs, 2),
    ];
    for (attack, defense, epochs) in cases {
        let o = cfg.run_attack(attack, defense, epochs.max(args.epochs.min(4)));
        println!(
            "{:<16} {:<12} {:>8} {:>10} {:>10}",
            attack.name(),
            o.result.mitigation,
            o.bit_flips.len(),
            o.result.stats.swaps,
            o.result.stats.targeted_refreshes
        );
    }
    println!(
        "\nexpected: double-sided flips only undefended; half-double flips\n\
         only through victim refresh; RRS never flips (incl. swap-chasing)."
    );
}
