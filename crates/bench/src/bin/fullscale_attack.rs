//! Full-scale (paper-parameter) security spot check: T_RH = 4800, 64 ms
//! epochs, 1.46 µs swaps — no scaling anywhere. Slower than the scaled
//! harness (each epoch is ~1.4 M attacker accesses) but exercises the
//! exact design point of the paper.
//!
//! `cargo run --release -p bench --bin fullscale_attack [--epochs N]`

use bench::Args;
use rrs::campaign::Campaign;
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::workloads::AttackKind;

fn main() {
    let args = Args::parse();
    let cfg = ExperimentConfig::default()
        .with_scale(1)
        .with_full_swap_cost();
    println!(
        "== Full-scale security check (T_RH = {}, 64 ms epochs) ==\n",
        cfg.t_rh()
    );
    println!(
        "{:<16} {:<12} {:>8} {:>10} {:>10}",
        "attack", "defense", "flips", "swaps", "refreshes"
    );
    println!("{}", "-".repeat(60));
    let cases = [
        (AttackKind::DoubleSided, MitigationKind::None, 1),
        (AttackKind::DoubleSided, MitigationKind::VictimRefresh, 1),
        (AttackKind::DoubleSided, MitigationKind::Rrs, 1),
        (AttackKind::HalfDouble, MitigationKind::VictimRefresh, 2),
        (AttackKind::HalfDouble, MitigationKind::Rrs, 2),
        (cfg.swap_chasing_attack(), MitigationKind::Rrs, 2),
    ];
    let mut campaign = Campaign::new();
    let cells: Vec<(AttackKind, usize)> = cases
        .into_iter()
        .map(|(attack, defense, epochs)| {
            let epochs = epochs.max(args.epochs.min(4));
            (attack, campaign.attack(cfg, attack, defense, epochs))
        })
        .collect();
    let run = campaign.run(&args.run_opts);
    for (attack, cell) in cells {
        let r = run.get(cell);
        println!(
            "{:<16} {:<12} {:>8} {:>10} {:>10}",
            attack.name(),
            r.mitigation,
            r.bit_flips.len(),
            r.stats.swaps,
            r.stats.targeted_refreshes
        );
    }
    println!(
        "\nexpected: double-sided flips only undefended; half-double flips\n\
         only through victim refresh; RRS never flips (incl. swap-chasing)."
    );
}
