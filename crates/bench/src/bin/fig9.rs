//! Figure 9: installs required to cause a conflict in the CAT vs. extra
//! ways (§6.2; 64 sets, 14 demand ways; Monte-Carlo for small extra-way
//! counts, continued-squaring extrapolation beyond — exactly the paper's
//! methodology).
//!
//! `cargo run --release -p bench --bin fig9 [--mc-budget N]`

use rrs::analysis::cat_model::CatModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mc_budget = args
        .iter()
        .position(|a| a == "--mc-budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000_000u64);

    println!("== Figure 9: Installs to CAT Conflict vs Extra Ways ==");
    println!("(64 sets, 14 demand ways; MC budget {mc_budget} installs, 5 trials)\n");

    let m = CatModel::figure9();
    let series = m.figure9_series(6, mc_budget, 5, 2024);
    println!(
        "{:<12} {:>16} {:>10}",
        "extra ways", "installs (log10)", "method"
    );
    println!("{}", "-".repeat(42));
    let mut last_mc = 0usize;
    for (e, log10) in &series {
        let method = {
            let est = m.mean_installs_to_conflict(*e, 1, mc_budget, 7 + *e as u64);
            if est.lower_bound_only {
                "extrapolated"
            } else {
                last_mc = *e;
                "monte-carlo"
            }
        };
        println!("{e:<12} {log10:>16.1} {method:>12}");
    }
    // The caption's aside: "numbers are similar for 256 sets" (the RIT's
    // shape). Verify with the same methodology.
    let m256 = CatModel {
        sets: 256,
        demand_ways: 14,
    };
    let series256 = m256.figure9_series(6, mc_budget, 3, 4242);
    println!("\n256-set variant (the RIT shape):");
    for ((e, a), (_, b)) in series.iter().zip(&series256) {
        println!("  extra ways {e}: 64 sets 1e{a:.1} vs 256 sets 1e{b:.1}");
    }

    println!(
        "\npaper: with 6 extra ways ~1e30 installs — at one install per 10 µs,\n\
         10^18 years to a conflict ('more than the lifetime of the universe').\n\
         Monte-Carlo anchors extra ways <= {last_mc}; each further way squares the\n\
         count (MIRAGE Eq. 6-7). Analytic layered-induction cross-check at 6\n\
         extra ways: 1e{:.1}.",
        m.analytic_installs_log10(6)
    );
}
