//! Table 5: storage overhead per bank (§7.1).
//!
//! `cargo run --release -p bench --bin table5`

use rrs::analysis::storage::table5;

fn main() {
    println!("== Table 5: Storage Overhead Per Bank ==\n");
    let t = table5();
    println!(
        "{:<14} {:>12} {:>10} {:>10}   paper",
        "Structure", "Entry bits", "Entries", "Cost"
    );
    println!("{}", "-".repeat(64));
    let paper = ["35KB", "6.9KB", "1KB"];
    for (row, p) in t.rows.iter().zip(paper) {
        println!(
            "{:<14} {:>12} {:>10} {:>9.1}K   {}",
            row.structure, row.entry_bits, row.entries, row.kib_per_bank, p
        );
    }
    println!("{}", "-".repeat(64));
    println!(
        "{:<14} {:>12} {:>10} {:>9.1}K   42.9KB",
        "Total",
        "",
        "",
        t.total_kib_per_bank()
    );
    println!(
        "\nPer rank (16 banks): {:.0} KiB   (paper: 686KB)",
        t.total_kib_per_rank(16)
    );
}
