//! §8.1 denial-of-service comparison: worst-case slowdown under attack.
//!
//! BlockHammer delays every activation of a blacklisted row by tens of
//! microseconds — ~200× slowdown for the attacking (or victimized) thread.
//! RRS costs one row swap per T_RRS activations — ~2× worst case. This
//! bench drives the DoS pattern through both defenses and reports attacker
//! throughput.
//!
//! `cargo run --release -p bench --bin dos [--epochs N] [--scale N]`

use bench::{header, Args};
use rrs::campaign::Campaign;
use rrs::experiments::MitigationKind;
use rrs::workloads::AttackKind;

fn main() {
    let mut args = Args::parse();
    // This experiment is about the absolute mitigation latencies (20 µs
    // delays vs 1.46 µs swaps), so the swap cost is not scaled.
    args.config = args.config.with_full_swap_cost();
    header(
        "§8.1: Denial-of-Service Exposure Under Attack",
        &args.config,
    );

    let mut campaign = Campaign::new();
    let base_cell = campaign.attack(
        args.config,
        AttackKind::Dos,
        MitigationKind::None,
        args.epochs,
    );
    let defended: Vec<(usize, &str)> = [
        (MitigationKind::Rrs, "~2x"),
        (MitigationKind::BlockHammer512, "~200x"),
        (MitigationKind::BlockHammer1k, "~200x"),
    ]
    .into_iter()
    .map(|(kind, paper)| {
        (
            campaign.attack(args.config, AttackKind::Dos, kind, args.epochs),
            paper,
        )
    })
    .collect();
    let run = campaign.run(&args.run_opts);

    let base = run.get(base_cell);
    println!(
        "{:<14} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "defense", "cycles", "slowdown", "paper", "p50 lat", "p99 lat"
    );
    println!("{}", "-".repeat(56));
    println!(
        "{:<14} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "none",
        base.cycles,
        "1.0x",
        "1x",
        base.read_latency.p50(),
        base.read_latency.p99()
    );
    for (cell, paper) in defended {
        let r = run.get(cell);
        assert_eq!(r.total_instructions, base.total_instructions);
        println!(
            "{:<14} {:>14} {:>11.1}x {:>12} {:>10} {:>10}",
            r.mitigation,
            r.cycles,
            r.cycles as f64 / base.cycles as f64,
            paper,
            r.read_latency.p50(),
            r.read_latency.p99()
        );
    }
    println!(
        "\npaper: BlockHammer ≈200x (20 µs per 100 ns access); RRS ≈2x\n\
         (36 µs of activations per ≈3 µs of swaps)."
    );
}
