//! Figure 6: performance of RRS normalized to the no-defense baseline
//! (§4.7; geometric means per suite on the right; paper: 0.4% average
//! slowdown, worst cases ≈5% for bzip2/gcc/xz_17).
//!
//! `cargo run --release -p bench --bin fig6 [--workloads all] [--scale N]`

use bench::{header, run_normalized, suite_geomeans, Args};
use rrs::experiments::MitigationKind;

fn main() {
    let args = Args::parse();
    header("Figure 6: Normalized Performance of RRS", &args.config);

    let runs = run_normalized(
        &args.config,
        &args.workloads,
        MitigationKind::Rrs,
        &args.run_opts,
    );

    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "Workload", "norm perf", "swaps/epoch", "base IPC"
    );
    println!("{}", "-".repeat(50));
    for r in &runs {
        println!(
            "{:<12} {:>10.4} {:>12.1} {:>12.3}",
            r.workload.name(),
            r.normalized(),
            r.mitigated.stats.mean_swaps_per_epoch(),
            r.base.aggregate_ipc()
        );
    }
    println!("{}", "-".repeat(50));
    for (suite, g) in suite_geomeans(&runs) {
        println!("{suite:<12} {g:>10.4}   (geomean)");
    }
    let mut csv = vec![vec![
        "workload".into(),
        "suite".into(),
        "normalized".into(),
        "swaps_per_epoch".into(),
        "base_ipc".into(),
    ]];
    for r in &runs {
        csv.push(vec![
            r.workload.name().into(),
            r.workload.suite().label().into(),
            format!("{:.6}", r.normalized()),
            format!("{:.2}", r.mitigated.stats.mean_swaps_per_epoch()),
            format!("{:.4}", r.base.aggregate_ipc()),
        ]);
    }
    args.write_csv(&csv);
    let overall = suite_geomeans(&runs).last().unwrap().1;
    println!(
        "\noverall slowdown: {:.2}%   (paper: 0.4% average over 78 workloads,\n\
         worst ≈5%, driven by swap count × MPKI)",
        (1.0 - overall) * 100.0
    );
}
