//! Table 4: attack iterations and attack time to cause T_RH = 4800
//! activations on one row (§5.3.2), plus the all-bank variant and a
//! Monte-Carlo validation of the bucket-and-balls model.
//!
//! `cargo run --release -p bench --bin table4 [--all-bank] [--validate]`

use bench::{human_time, sci, Args};
use rrs::analysis::attack_model::AttackModel;

fn main() {
    let args = Args::parse();
    let model = AttackModel::asplos22();
    println!("== Table 4: Attack Iterations and Attack Time (T_RH = 4800) ==\n");
    println!(
        "{:<18} {:>4} {:>8} {:>14} {:>14}   AT_time",
        "RRS Threshold (T)", "k", "D", "AT_iter", "paper"
    );
    println!("{}", "-".repeat(76));
    let paper = [9.3e6, 1.9e9, 3.8e11];
    for (row, p) in model.table4().iter().zip(paper) {
        println!(
            "{:<18} {:>4} {:>8.3} {:>14} {:>14}   {}",
            row.t,
            row.k,
            row.duty_cycle,
            sci(row.attack_iterations),
            sci(p),
            human_time(row.attack_time_seconds)
        );
    }
    println!("\npaper: 960 -> 6.9 days, 800 -> 3.8 years, 685 -> 762 years");

    println!("\n-- All-bank attack (§5.3.2: D = 0.55, 16 banks) --");
    let t = 800;
    let single = model.attack_time_seconds(t, model.duty_cycle(t));
    let all = model.all_bank_attack_time_seconds(t, 16);
    println!("single-bank (k=6): {}", human_time(single));
    println!(
        "all-bank    (k=6): {}  (paper: 3.8 -> 5.1 years)",
        human_time(all)
    );

    if args.has_flag("--validate") {
        println!("\n-- Monte-Carlo validation (reduced space, small k) --");
        let mut m = model;
        m.rows_per_bank = 4_096;
        m.act_max = 80_000;
        let d = m.duty_cycle(800);
        println!("{:<4} {:>14} {:>14}", "k", "analytic", "monte-carlo");
        for k in [1u64, 2, 3] {
            let analytic = m.rows_per_bank as f64 * m.p_k(800, k, d);
            let mc = m.monte_carlo_rows_with_k(800, k, d, 400, 99);
            println!("{k:<4} {:>14} {:>14}", sci(analytic), sci(mc));
        }
    }
}
