//! Tracking-mechanism ablation (§4.2): RRS works with *any* tracker, but
//! the tracker determines the swap rate, which determines the overhead.
//!
//! Compares, under identical access streams:
//!
//! * the paper's Misra-Gries CAT tracker (exact over-estimates, bounded
//!   entries),
//! * a counting-Bloom-filter tracker (never underestimates either, but
//!   aliasing fires spurious swaps),
//! * the footnote-1 stateless probabilistic trigger (handled by the
//!   `prob_rrs` mitigation; see the `end_to_end` bench).
//!
//! `cargo run --release -p bench --bin tracker_ablation`

use rrs::core::rrs::{BankRrs, RrsConfig};
use rrs::core::tracker::CbfTracker;

fn main() {
    // A scaled design point: T_RH = 300, T_RRS = 50.
    let config = RrsConfig::for_threshold(300, 40_000, 128 * 1024);
    println!("== Tracker ablation: swaps triggered per tracker ==");
    println!(
        "design point: T_RRS = {}, tracker entries (MG) = {}\n",
        config.t_rrs, config.tracker_entries
    );

    // Workload: a few genuinely hot rows + background noise.
    let stream = |i: u64| -> u64 {
        let x = i
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if i.is_multiple_of(4) {
            x % 8 // 8 hot rows get 25% of traffic
        } else {
            1_000 + (x >> 40) % 50_000
        }
    };
    let accesses = 40_000u64;

    let mut mg = BankRrs::new(config, 0);
    for i in 0..accesses {
        mg.on_activation(stream(i));
    }

    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "tracker", "swaps", "unswaps", "stalls"
    );
    println!("{}", "-".repeat(58));
    let s = mg.stats();
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "misra-gries (paper)", s.swaps, s.unswaps, s.capacity_stalls
    );

    for (label, counters) in [
        ("cbf 8192x3", 8_192usize),
        ("cbf 2048x3", 2_048),
        ("cbf 512x3", 512),
    ] {
        let tracker = CbfTracker::new(config.t_rrs, counters, 3, 0xAB1A7E);
        let mut cbf = BankRrs::with_tracker(config, 0, tracker);
        for i in 0..accesses {
            cbf.on_activation(stream(i));
        }
        let s = cbf.stats();
        println!(
            "{:<24} {:>10} {:>10} {:>10}",
            label, s.swaps, s.unswaps, s.capacity_stalls
        );
    }

    println!(
        "\nBoth trackers never underestimate (security holds); the Bloom\n\
         filter's aliasing inflates the swap rate as it shrinks — the reason\n\
         the paper pairs RRS with Misra-Gries tracking, and smaller filters\n\
         make it worse. Every swap is ~1.46 µs of blocked channel."
    );
}
