//! Attack-detection co-design study — the future work of §5.3.2 fn. 2.
//!
//! "A trivial mechanism to detect an attack on RRS is to count the number
//! of swaps in 64 ms for each swapped row … When an imminent attack on RRS
//! is flagged, a preemptive refresh of the entire DRAM can prevent the
//! attack, thus providing higher security than RRS alone."
//!
//! Two questions the paper leaves open, answered empirically:
//!
//! 1. **False positives**: across the benign workload population, how
//!    often does any row get swapped repeatedly within one window? (It
//!    must be never, or the 2.8 ms full-refresh penalty hits benign runs.)
//! 2. **Detection latency**: under the §5.3 swap-chasing attack, how many
//!    activations does the attacker get before the alarm?
//!
//! `cargo run --release -p bench --bin detector_study [--workloads N]`

use bench::{header, Args};
use rrs::core::detector::DetectorConfig;
use rrs::core::rrs::RrsConfig;
use rrs::mitigations::RrsMitigation;
use rrs::sim::TraceSource;
use rrs::workloads::attacks::{Attack, AttackKind};

fn main() {
    let args = Args::parse();
    header("Attack-detection study (§5.3.2 footnote 2)", &args.config);

    let sys = args.config.system_config();
    let act_max = sys.controller.timing.max_activations_per_epoch();
    let geometry = sys.controller.geometry;
    let mk_rrs = |alarm: u32| {
        RrsMitigation::new(
            RrsConfig::for_threshold(args.config.t_rh(), act_max, geometry.rows_per_bank as u64)
                .with_detector(DetectorConfig {
                    swaps_per_row_alarm: alarm,
                }),
            geometry,
        )
    };

    // 1. False positives over the benign population.
    println!("-- false positives (alarm at 2 same-row swaps per window) --");
    let mut total_alarms = 0u64;
    let mut runs = 0u64;
    for w in args.workloads.iter().take(20) {
        let sources = rrs::workloads::generator::sources_for_workload(w, &sys, args.config.seed);
        let r = rrs::sim::run(&sys, Box::new(mk_rrs(2)), sources, w.name());
        total_alarms += r.stats.full_refreshes;
        runs += 1;
    }
    println!(
        "{runs} workloads, {total_alarms} alarms (expect 0: benign rows are\n\
         swapped at most once per window)\n"
    );

    // 2. Detection latency under the optimal attack, per alarm threshold.
    println!("-- detection latency vs alarm threshold (swap-chasing attack) --");
    println!(
        "{:<18} {:>16} {:>18}",
        "alarm threshold", "detected?", "accesses to alarm"
    );
    let attack = args.config.swap_chasing_attack();
    for alarm in [2u32, 3, 4] {
        let mut attack_sys = sys.clone();
        let timing = attack_sys.controller.timing;
        attack_sys.cores = 1;
        attack_sys.instructions_per_core = 2 * timing.epoch / timing.t_rc;
        let mapper = rrs::mem_ctrl::mapping::AddressMapper::new(geometry);
        let attacker: Vec<Box<dyn TraceSource>> =
            vec![Box::new(Attack::new(attack, mapper, args.config.seed))];
        let r = rrs::sim::run(
            &attack_sys,
            Box::new(mk_rrs(alarm)),
            attacker,
            "swap-chasing",
        );
        let detected = r.stats.full_refreshes > 0;
        println!(
            "{:<18} {:>16} {:>18}",
            alarm,
            if detected { "yes" } else { "no" },
            if detected {
                // The alarm needs `alarm` swaps of one row = alarm × T_RRS
                // activations of it; swap-chasing revisits a row only by
                // chance, so detection tracks the attack's re-hit rate.
                format!("{}", r.stats.reads.min(r.total_instructions))
            } else {
                "-".into()
            }
        );
    }
    println!(
        "\nNote: the *swap-chasing* attack deliberately avoids re-hammering\n\
         the same logical row, so per-row swap counting detects it only when\n\
         random picks repeat within a window. A same-row re-hammer attack\n\
         (DoS pattern) alarms within alarm × T_RRS activations:"
    );
    let mut attack_sys = sys;
    let timing = attack_sys.controller.timing;
    attack_sys.cores = 1;
    attack_sys.instructions_per_core = timing.epoch / timing.t_rc;
    let mapper = rrs::mem_ctrl::mapping::AddressMapper::new(geometry);
    let attacker: Vec<Box<dyn TraceSource>> = vec![Box::new(Attack::new(
        AttackKind::Dos,
        mapper,
        args.config.seed,
    ))];
    let r = rrs::sim::run(&attack_sys, Box::new(mk_rrs(3)), attacker, "dos");
    println!(
        "  dos attack, alarm=3: {} full refreshes over {} accesses",
        r.stats.full_refreshes,
        r.stats.reads + r.stats.writes
    );
}
