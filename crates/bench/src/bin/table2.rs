//! Table 2: baseline system configuration (§3).
//!
//! `cargo run --release -p bench --bin table2`

use rrs::sim::SystemConfig;

fn main() {
    let c = SystemConfig::asplos22_baseline(1_000_000_000);
    let g = c.controller.geometry;
    let t = c.controller.timing;
    println!("== Table 2: Baseline System Configuration ==\n");
    let rows: Vec<(&str, String)> = vec![
        ("Cores (OoO)", c.cores.to_string()),
        ("Processor clock speed", format!("{} GHz", t.cpu_ghz)),
        ("ROB size", c.rob_size.to_string()),
        ("Fetch and Retire width", c.fetch_width.to_string()),
        (
            "Last Level Cache (Shared)",
            "8MB, 16-Way, 64B lines (optional: traces are post-cache)".to_string(),
        ),
        (
            "Memory size",
            format!("{} GB - DDR4", g.total_bytes() >> 30),
        ),
        (
            "Memory bus speed",
            format!("{} GHz ({} GHz DDR)", t.bus_ghz, 2.0 * t.bus_ghz),
        ),
        (
            "tRCD-tRP-tCAS",
            format!(
                "{:.0}-{:.0}-{:.0} ns",
                t.cycles_to_ns(t.t_rcd),
                t.cycles_to_ns(t.t_rp),
                t.cycles_to_ns(t.t_cas)
            ),
        ),
        (
            "tRC, tRFC, tREFI",
            format!(
                "{:.0} ns, {:.0} ns, {:.1} us",
                t.cycles_to_ns(t.t_rc),
                t.cycles_to_ns(t.t_rfc),
                t.cycles_to_ns(t.t_refi) / 1000.0
            ),
        ),
        (
            "Banks x Ranks x Channels",
            format!(
                "{} x {} x {}",
                g.banks_per_rank, g.ranks_per_channel, g.channels
            ),
        ),
        ("Rows per bank", format!("{}K", g.rows_per_bank / 1024)),
        ("Size of row", format!("{}KB", g.row_size_bytes / 1024)),
        (
            "Max activations per bank per 64ms",
            format!("{:.2}M", t.max_activations_per_epoch() as f64 / 1e6),
        ),
    ];
    for (k, v) in rows {
        println!("{k:<36} {v}");
    }
}
