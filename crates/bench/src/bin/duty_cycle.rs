//! Empirical duty-cycle measurement — §5.3.1/§5.3.2's `D`.
//!
//! The security analysis assumes a bank under sustained attack is
//! available for activations a fraction `D` of the window: 0.925 when one
//! bank is attacked (swaps every `T_RRS` activations eat 2.9 µs each) and
//! 0.55 when the attacker drives all 16 banks of a channel (swaps from
//! every bank contend on the shared channel). This bench *measures* `D`
//! on the cycle-level simulator instead of trusting the closed form.
//!
//! Runs at full scale (the duty cycle is a ratio of *unscaled* quantities:
//! `T_RRS · tRC` activations against 2.9 µs of swapping).
//!
//! `cargo run --release -p bench --bin duty_cycle`

use bench::Args;
use rrs::analysis::attack_model::AttackModel;
use rrs::dram::geometry::RowAddr;
use rrs::experiments::MitigationKind;
use rrs::sim::{TraceRecord, TraceSource};

/// Attacker that hammers aggressor pairs in `banks` banks of channel 0,
/// round-robin — bank-parallel activations, maximal pressure.
struct MultiBankAttack {
    addrs: Vec<u64>,
    cursor: usize,
}

impl MultiBankAttack {
    fn new(mapper: &rrs::mem_ctrl::AddressMapper, banks: u8) -> Self {
        let mut addrs = Vec::new();
        // Visit banks in round-robin so every access activates and banks
        // overlap their row cycles; two rows per bank defeat the buffer.
        for flip in 0..2u32 {
            for b in 0..banks {
                addrs.push(mapper.row_base(RowAddr::new(0, 0, b, 5_000 + flip * 1_000)));
            }
        }
        MultiBankAttack { addrs, cursor: 0 }
    }
}

impl TraceSource for MultiBankAttack {
    fn next_record(&mut self) -> TraceRecord {
        let a = self.addrs[self.cursor % self.addrs.len()];
        self.cursor += 1;
        TraceRecord::read(0, a)
    }

    fn name(&self) -> &str {
        "multi-bank-attack"
    }
}

fn main() {
    let args = Args::parse();
    // Full scale, full swap latency: the duty cycle is a ratio of
    // unscaled quantities.
    let cfg = args.config.with_scale(1).with_full_swap_cost();
    let sys_base = cfg.system_config();
    let timing = sys_base.controller.timing;
    let act_max = timing.max_activations_per_epoch();

    println!("== Duty cycle under sustained attack (§5.3.1–§5.3.2) ==");
    println!(
        "scale 1/{}: T_RRS = {}, ACT_max = {} per bank per epoch\n",
        cfg.scale,
        cfg.t_rh() / rrs::core::DEFAULT_K,
        act_max
    );

    let model = AttackModel::asplos22();
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "attack", "measured D", "model D", "paper D"
    );
    println!("{}", "-".repeat(54));
    for (label, banks, model_d, paper_d) in [
        ("single-bank", 1u8, model.duty_cycle(800), 0.925),
        ("all-bank", 16u8, AttackModel::ALL_BANK_DUTY_CYCLE, 0.55),
    ] {
        let mut sys = sys_base.clone();
        sys.cores = 1;
        // Enough accesses to span ~2 epochs of pure activations.
        sys.instructions_per_core = 2 * banks as u64 * timing.epoch / timing.t_rc;
        let mapper = rrs::mem_ctrl::AddressMapper::new(sys.controller.geometry);
        let attacker: Vec<Box<dyn TraceSource>> =
            vec![Box::new(MultiBankAttack::new(&mapper, banks))];
        let r = rrs::sim::run(
            &sys,
            cfg.build_mitigation(MitigationKind::Rrs),
            attacker,
            label,
        );
        // D = achieved activations / the tRC-limited maximum over the
        // attacked banks for the elapsed time.
        let epochs = r.cycles as f64 / timing.epoch as f64;
        let possible = banks as f64 * act_max as f64 * epochs;
        let measured_d = r.stats.activations as f64 / possible;
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.3}",
            label, measured_d, model_d, paper_d
        );
        assert!(r.bit_flips.is_empty(), "RRS must hold during measurement");
    }
    println!(
        "\nThe all-bank attack gains 16× more targets but pays for it in\n\
         channel-serialized swaps — the paper's argument for why it is\n\
         *slower* overall (3.8 → 5.1 years at k = 6)."
    );
}
