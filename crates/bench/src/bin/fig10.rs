//! Figure 10: performance of RRS across Row Hammer thresholds (§7.3).
//!
//! Sweeps T_RH over {0.25×, 0.5×, 1×, 2×, 4×} of the 4.8 K baseline,
//! re-deriving every design parameter per point (T_RRS, tracker entries,
//! RIT tuples), exactly as the paper does. Paper: 4.5%, 2.2%, 0.4%, ~0, ~0
//! average slowdown.
//!
//! `cargo run --release -p bench --bin fig10 [--workloads all] [--scale N]`

use bench::{header, run_normalized, suite_geomeans, Args};
use rrs::experiments::MitigationKind;

fn main() {
    let args = Args::parse();
    header(
        "Figure 10: Performance of RRS across RH-Threshold",
        &args.config,
    );

    let paper = [4.5, 2.2, 0.4, 0.0, 0.0];
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "T_RH", "T_RRS", "slowdown", "paper"
    );
    println!("{}", "-".repeat(52));
    for (mult, p) in [
        (0.25, paper[0]),
        (0.5, paper[1]),
        (1.0, paper[2]),
        (2.0, paper[3]),
        (4.0, paper[4]),
    ] {
        let t_rh_full = (4_800.0 * mult) as u64;
        let cfg = args.config.with_t_rh(t_rh_full);
        let runs = run_normalized(&cfg, &args.workloads, MitigationKind::Rrs, &args.run_opts);
        let overall = suite_geomeans(&runs).last().unwrap().1;
        println!(
            "{:<12} {:>10} {:>11.2}% {:>13.1}%",
            format!("{}K ({mult}x)", t_rh_full as f64 / 1000.0),
            cfg.t_rh() / rrs::core::DEFAULT_K,
            (1.0 - overall) * 100.0,
            p
        );
    }
    println!(
        "\npaper shape: slowdown grows as the threshold shrinks (more frequent\n\
         swaps, larger structures) but stays moderate even at 1.2K."
    );
}
