//! Table 3: workload characteristics — footprint, MPKI, rows with 800+
//! activations per 64 ms window (§3).
//!
//! Runs each workload on the scaled simulator with no mitigation and
//! reports the *measured* MPKI and hot-row count next to the paper's
//! published values (hot rows scale with the configured threshold).
//!
//! `cargo run --release -p bench --bin table3 [--scale N] [--instr N] [--workloads all]`

use bench::{header, run_suite, Args};
use rrs::experiments::MitigationKind;
use rrs::workloads::catalog::Workload;

fn main() {
    let args = Args::parse();
    header(
        "Table 3: Workload Characteristics (Rows ACT-800+)",
        &args.config,
    );
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "Workload", "Footprint", "MPKI", "MPKI", "Hot rows", "Hot rows"
    );
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "", "(GB)", "(paper)", "(meas)", "(paper)", "(measured)"
    );
    println!("{}", "-".repeat(68));
    let results = run_suite(
        &args.config,
        &args.workloads,
        MitigationKind::None,
        &args.run_opts,
    );
    for (w, r) in args.workloads.iter().zip(&results) {
        let measured_mpki =
            (r.stats.reads + r.stats.writes) as f64 / (r.total_instructions as f64 / 1000.0);
        let hot_max = r
            .stats
            .epoch_hot_row_history
            .iter()
            .max()
            .copied()
            .unwrap_or(0);
        let (fp, mpki, hot) = match w {
            Workload::Single(s) => (
                s.footprint_bytes as f64 / (1u64 << 30) as f64,
                s.mpki,
                s.hot_rows,
            ),
            Workload::Mix(_) => (0.0, 0.0, 0),
        };
        println!(
            "{:<12} {:>10.2} {:>8.2} {:>8.2} {:>12} {:>12}",
            w.name(),
            fp,
            mpki,
            measured_mpki,
            hot,
            hot_max
        );
    }
    println!(
        "\nNote: measured hot rows use the scaled threshold ({} ACTs per scaled\n\
         epoch ≙ 800 per 64 ms) and depend on how many full epochs the run covers;\n\
         the paper's counts are per-64 ms averages over 1B-instruction runs.",
        args.config.system_config().controller.act_stat_threshold
    );
}
