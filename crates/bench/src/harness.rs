//! Minimal wall-clock benchmark harness.
//!
//! The build environment has no access to crates.io, so the Criterion-style
//! benches in `benches/` run on this hand-rolled harness instead. It keeps
//! the parts that matter for our use: automatic iteration-count calibration,
//! per-iteration setup (`iter_batched`), name filtering from the command
//! line, and a stable one-line-per-benchmark report.
//!
//! Usage from a `harness = false` bench target:
//!
//! ```ignore
//! let mut h = Harness::from_args();
//! h.bench("prince/encrypt", |b| b.iter(|| cipher.encrypt(7)));
//! h.finish();
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-export so benches only need one import for the common idiom.
pub use std::hint::black_box as bb;

/// Target measurement time per benchmark (after calibration).
const TARGET: Duration = Duration::from_millis(120);
/// Calibration threshold: double the iteration count until one run takes
/// at least this long.
const CALIBRATE_MIN: Duration = Duration::from_millis(12);
/// Number of measurement samples; the median is reported.
const SAMPLES: usize = 5;

/// Per-benchmark timing context handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` outside the clock for each
    /// iteration (the `iter_batched` pattern for non-reusable state).
    pub fn iter_batched<S, T>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// One benchmark result.
pub struct Record {
    /// Benchmark name (e.g. `"prince/encrypt"`).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per measurement sample.
    pub iters: u64,
}

/// The benchmark runner: collects, filters, times, and reports.
#[derive(Default)]
pub struct Harness {
    filter: Option<String>,
    quick: bool,
    records: Vec<Record>,
}

impl Harness {
    /// Builds a harness from `cargo bench` command-line arguments: the
    /// first non-flag argument is a substring filter; `--quick` (or the
    /// `RRS_BENCH_QUICK` env var) shortens measurement for smoke runs.
    pub fn from_args() -> Self {
        let mut h = Harness::default();
        for arg in std::env::args().skip(1) {
            if arg == "--quick" {
                h.quick = true;
            } else if !arg.starts_with('-') && h.filter.is_none() {
                h.filter = Some(arg);
            }
            // Other cargo-injected flags (--bench, --exact, ...) are ignored.
        }
        if std::env::var_os("RRS_BENCH_QUICK").is_some() {
            h.quick = true;
        }
        h
    }

    /// A harness for programmatic use (`rrs bench-report`): no argv
    /// filtering, quick mode by explicit choice.
    pub fn programmatic(quick: bool) -> Self {
        Harness {
            filter: None,
            quick,
            records: Vec::new(),
        }
    }

    fn target(&self) -> Duration {
        if self.quick {
            TARGET / 10
        } else {
            TARGET
        }
    }

    /// Runs one benchmark unless it is filtered out.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate: double iters until one sample is long enough to trust.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= CALIBRATE_MIN || iters >= (1 << 30) {
                let per_iter = b.elapsed.as_nanos().max(1) as f64 / iters as f64;
                let budget = self.target().as_nanos() as f64 / SAMPLES as f64;
                iters = ((budget / per_iter) as u64).clamp(1, 1 << 32);
                break;
            }
            iters *= 2;
        }
        // Measure: report the median of SAMPLES runs.
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let ns = samples[SAMPLES / 2];
        println!("{name:<40} {:>12}/iter  ({iters} iters/sample)", fmt_ns(ns));
        self.records.push(Record {
            name: name.to_string(),
            ns_per_iter: ns,
            iters,
        });
    }

    /// All results so far (for benches that post-process, e.g. speedups).
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Prints the trailer. Call last.
    pub fn finish(self) {
        println!("\n{} benchmarks run", self.records.len());
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_records() {
        let mut h = Harness {
            quick: true,
            ..Harness::default()
        };
        h.bench("smoke/add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        assert_eq!(h.records().len(), 1);
        assert!(h.records()[0].ns_per_iter > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            filter: Some("only-this".into()),
            quick: true,
            records: Vec::new(),
        };
        h.bench("other/thing", |b| b.iter(|| 1));
        assert!(h.records().is_empty());
    }

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
