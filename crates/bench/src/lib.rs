//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--scale N`     — time-scale factor (must divide 800; default 100).
//!   `--scale 1` is the paper's full-scale parameterization.
//! * `--instr N`     — instructions per core for benign runs.
//! * `--workloads W` — `table3` (default: the paper's 28 hot workloads),
//!   `all` (the full 78-workload population), or a number (first N).
//! * `--epochs N`    — refresh windows for attack campaigns.
//! * `--out DIR`     — per-cell result cache (default `results`); reruns
//!   load finished cells instead of recomputing them.
//! * `--force`       — re-run cells even when a cached result exists.
//! * `--threads N`   — campaign worker threads (default: the
//!   `RAYON_NUM_THREADS` convention, then available parallelism).
//! * `--quiet`       — suppress per-cell progress lines.
//!
//! Results print as aligned text tables with the paper's reference values
//! alongside, ready to paste into EXPERIMENTS.md. All simulation grids run
//! through [`rrs::campaign`]: cells execute in parallel, shared baselines
//! dedupe, and every cell lands in the `--out` cache.

pub mod harness;
pub mod suite;

use rrs::campaign::{Campaign, RunOptions};
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::sim::SimResult;
use rrs::workloads::catalog::{all_workloads, table3_workloads, Workload};

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Experiment configuration derived from flags.
    pub config: ExperimentConfig,
    /// Which workloads to run.
    pub workloads: Vec<Workload>,
    /// Attack campaign length in (scaled) refresh windows.
    pub epochs: u64,
    /// Where to write machine-readable CSV output (`--csv <path>`).
    pub csv: Option<String>,
    /// How campaigns execute (threads, result cache, force, quiet).
    pub run_opts: RunOptions,
    /// Extra free-form flags (binary-specific, e.g. `--all-bank`).
    pub flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`, with harness-wide defaults.
    pub fn parse() -> Args {
        let mut scale = 100u64;
        let mut instr = 2_000_000u64;
        let mut workloads = String::from("table3");
        let mut epochs = 2u64;
        let mut csv = None;
        let mut out = String::from("results");
        let mut run_opts = RunOptions::default();
        let mut flags = Vec::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let take = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).cloned().unwrap_or_default()
            };
            match argv[i].as_str() {
                "--scale" => scale = take(&mut i).parse().expect("--scale N"),
                "--instr" => instr = take(&mut i).parse().expect("--instr N"),
                "--workloads" => workloads = take(&mut i),
                "--epochs" => epochs = take(&mut i).parse().expect("--epochs N"),
                "--csv" => csv = Some(take(&mut i)),
                "--out" => out = take(&mut i),
                "--threads" => run_opts.threads = Some(take(&mut i).parse().expect("--threads N")),
                "--force" => run_opts.force = true,
                "--quiet" => run_opts.quiet = true,
                other => flags.push(other.to_string()),
            }
            i += 1;
        }
        run_opts.out_dir = Some(out.into());
        let config = ExperimentConfig::default()
            .with_scale(scale)
            .with_instructions(instr);
        let pool = match workloads.as_str() {
            "all" => all_workloads(),
            "table3" => table3_workloads(),
            n => {
                let count: usize = n.parse().unwrap_or(8);
                all_workloads().into_iter().take(count).collect()
            }
        };
        Args {
            config,
            workloads: pool,
            epochs,
            csv,
            run_opts,
            flags,
        }
    }

    /// Writes CSV rows to the `--csv` path, if one was given. The first
    /// row should be the header. Errors are reported, not fatal.
    pub fn write_csv(&self, rows: &[Vec<String>]) {
        let Some(path) = &self.csv else { return };
        let mut out = String::new();
        for row in rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        match std::fs::write(path, out) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    /// Whether a free-form flag was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Prints the standard experiment header.
pub fn header(title: &str, config: &ExperimentConfig) {
    println!("== {title} ==");
    println!(
        "scale 1/{} (T_RH = {}, epoch = {:.3} ms), {} instr/core, {} cores\n",
        config.scale,
        config.t_rh(),
        config.timing().cycles_to_ns(config.timing().epoch) / 1e6,
        config.instructions_per_core,
        config.cores,
    );
}

/// A benign run pair (baseline + mitigated) for normalized-performance
/// figures.
pub struct NormalizedRun {
    /// The workload run.
    pub workload: Workload,
    /// Baseline (no-defense) result.
    pub base: SimResult,
    /// Mitigated result.
    pub mitigated: SimResult,
}

impl NormalizedRun {
    /// Normalized performance (Figure 6's y-axis).
    pub fn normalized(&self) -> f64 {
        self.mitigated.normalized_to(&self.base)
    }
}

/// Runs `kind` against every workload (each paired with its no-defense
/// baseline) through one parallel campaign, returning per-workload pairs.
pub fn run_normalized(
    config: &ExperimentConfig,
    workloads: &[Workload],
    kind: MitigationKind,
    opts: &RunOptions,
) -> Vec<NormalizedRun> {
    let mut campaign = Campaign::new();
    let pairs: Vec<(Workload, (usize, usize))> = workloads
        .iter()
        .map(|w| (*w, campaign.normalized_pair(*config, *w, kind)))
        .collect();
    let run = campaign.run(opts);
    pairs
        .into_iter()
        .map(|(workload, (base, mitigated))| NormalizedRun {
            workload,
            base: run.get(base).clone(),
            mitigated: run.get(mitigated).clone(),
        })
        .collect()
}

/// Runs `kind` against every workload through one parallel campaign (no
/// baseline pairing), returning results in workload order.
pub fn run_suite(
    config: &ExperimentConfig,
    workloads: &[Workload],
    kind: MitigationKind,
    opts: &RunOptions,
) -> Vec<SimResult> {
    let mut campaign = Campaign::new();
    let cells: Vec<usize> = workloads
        .iter()
        .map(|w| campaign.workload(*config, *w, kind))
        .collect();
    let run = campaign.run(opts);
    cells.into_iter().map(|i| run.get(i).clone()).collect()
}

/// Geometric mean over normalized performances, grouped by suite; returns
/// `(suite label, geomean)` pairs in first-seen order plus the overall one.
pub fn suite_geomeans(runs: &[NormalizedRun]) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::BTreeMap<String, Vec<f64>> =
        std::collections::BTreeMap::new();
    for r in runs {
        let label = r.workload.suite().label().to_string();
        if !groups.contains_key(&label) {
            order.push(label.clone());
        }
        groups.entry(label).or_default().push(r.normalized());
    }
    let mut out: Vec<(String, f64)> = order
        .into_iter()
        .map(|label| {
            let g = rrs::experiments::geomean(&groups[&label]);
            (label, g)
        })
        .collect();
    let all: Vec<f64> = runs.iter().map(|r| r.normalized()).collect();
    out.push(("ALL".to_string(), rrs::experiments::geomean(&all)));
    out
}

/// Formats a large count in engineering notation (`1.9e9`).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e4 {
        format!("{x:.1e}")
    } else {
        format!("{x:.1}")
    }
}

/// Formats a duration given in seconds the way Table 4 does (days/years).
pub fn human_time(seconds: f64) -> String {
    let days = seconds / 86_400.0;
    let years = days / 365.25;
    if years >= 1.0 {
        format!("{years:.1} years")
    } else if days >= 1.0 {
        format!("{days:.1} days")
    } else if seconds >= 3600.0 {
        format!("{:.1} hours", seconds / 3600.0)
    } else {
        format!("{seconds:.1} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats_reasonably() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(42.0), "42.0");
        assert_eq!(sci(1.9e9), "1.9e9");
    }

    #[test]
    fn human_time_picks_units() {
        assert_eq!(human_time(10.0), "10.0 s");
        assert!(human_time(7.0 * 86_400.0).contains("days"));
        assert!(human_time(4.0 * 365.25 * 86_400.0).contains("years"));
    }

    #[test]
    fn suite_geomeans_include_overall() {
        let mut cfg = ExperimentConfig::smoke_test();
        cfg.instructions_per_core = 20_000;
        let pool: Vec<Workload> = table3_workloads().into_iter().take(2).collect();
        let runs = run_normalized(&cfg, &pool, MitigationKind::Rrs, &RunOptions::quiet());
        let means = suite_geomeans(&runs);
        assert_eq!(means.last().unwrap().0, "ALL");
        assert!(means.last().unwrap().1 > 0.0);
    }

    #[test]
    fn run_suite_keeps_workload_order() {
        let mut cfg = ExperimentConfig::smoke_test();
        cfg.instructions_per_core = 20_000;
        let pool: Vec<Workload> = table3_workloads().into_iter().take(3).collect();
        let results = run_suite(&cfg, &pool, MitigationKind::None, &RunOptions::quiet());
        let names: Vec<&str> = results.iter().map(|r| r.workload.as_str()).collect();
        let expect: Vec<&str> = pool.iter().map(|w| w.name()).collect();
        assert_eq!(names, expect);
    }
}
