//! The standard cross-layer benchmark suite behind `rrs bench-report`.
//!
//! One programmatic registry of the operations whose regressions matter:
//! the per-access hardware structures (PRINCE, RIT lookup, tracker
//! update), the swap engine, trace serialization/parsing, telemetry
//! emission, and one end-to-end smoke cell. `rrs bench-report` runs this
//! suite and snapshots the medians into `BENCH_*.json`, so the perf
//! trajectory across PRs is a diffable artifact instead of folklore.
//!
//! The selection deliberately mirrors the `benches/` targets (same names
//! where the operation is the same) but stays small enough for a `--smoke`
//! run in CI.

use std::hint::black_box;

use rrs::core::prince::Prince;
use rrs::core::prng::PrinceCtrRng;
use rrs::core::rrs::{BankRrs, RrsConfig};
use rrs::core::swap::{SwapEngine, SwapMode};
use rrs::core::tracker::{CatTracker, HotRowTracker, TrackerConfig};
use rrs::dram::timing::TimingParams;
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::telemetry::{Event, Telemetry};
use rrs_json::Json;

use crate::harness::Harness;

/// Registers the standard suite on `h`.
pub fn standard_suite(h: &mut Harness) {
    bench_prince(h);
    bench_rrs_engine(h);
    bench_swap_engine(h);
    bench_telemetry(h);
    bench_json(h);
    bench_sim_cell(h);
}

fn bench_prince(h: &mut Harness) {
    let cipher = Prince::new(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
    h.bench("prince/encrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(cipher.encrypt(x))
        })
    });
    let mut rng = PrinceCtrRng::new(42);
    h.bench("prng/next_below_128k", |b| {
        b.iter(|| black_box(rng.next_below(128 * 1024)))
    });
}

fn bench_rrs_engine(h: &mut Harness) {
    // Paper-scale bank engine: every activation resolves through the RIT.
    let cfg = RrsConfig::for_threshold(4_800, 1 << 17, 1 << 17);
    let mut bank = BankRrs::new(cfg, 3);
    h.bench("rrs/activation_resolve", |b| {
        let mut row = 0u64;
        b.iter(|| {
            row = (row + 1) % 4096;
            black_box(bank.on_activation(row))
        })
    });
    let tracker_cfg = TrackerConfig {
        entries: 1_700,
        threshold: 800,
    };
    h.bench("tracker/scattered_access", |b| {
        let mut t = CatTracker::new(tracker_cfg);
        let mut row = 0u64;
        b.iter(|| {
            row = row.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            black_box(t.record_access(row >> 40))
        })
    });
}

fn bench_swap_engine(h: &mut Harness) {
    let timing = TimingParams::ddr4_3200();
    h.bench("swap/record_swap_of", |b| {
        let mut e = SwapEngine::new(&timing, 8 * 1024, SwapMode::Buffered);
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            black_box(e.record_swap_of(now, 0, 10, 900))
        })
    });
}

fn bench_telemetry(h: &mut Harness) {
    // Emission on a live spine: the per-event cost of tracing a run.
    h.bench("telemetry/emit_traced", |b| {
        let spine = Telemetry::with_trace(1 << 12);
        let mut at = 0u64;
        b.iter(|| {
            at += 1;
            spine.emit(Event::Activation {
                at,
                bank: at % 16,
                row: at % 4096,
            });
        })
    });
    // The disabled fast path (one branch) — must stay near-free.
    h.bench("telemetry/emit_disabled", |b| {
        let spine = Telemetry::new();
        let mut at = 0u64;
        b.iter(|| {
            at += 1;
            spine.emit(Event::Activation {
                at,
                bank: 0,
                row: 0,
            });
        })
    });
}

fn bench_json(h: &mut Harness) {
    let line = "{\"kind\":\"swap_start\",\"at\":123456,\"bank\":7,\"row_a\":100,\"row_b\":90000}";
    h.bench("json/parse_event_line", |b| {
        b.iter(|| black_box(Json::parse(line).unwrap()))
    });
    let event = Event::SwapStart {
        at: 123_456,
        bank: 7,
        row_a: 100,
        row_b: 90_000,
    };
    h.bench("json/serialize_event", |b| {
        b.iter(|| black_box(event.to_json().to_string_compact()))
    });
}

fn bench_sim_cell(h: &mut Harness) {
    // One tiny end-to-end attack cell: catches regressions that only
    // appear when all layers interact.
    let mut cfg = ExperimentConfig::smoke_test();
    cfg.instructions_per_core = 5_000;
    h.bench("sim/smoke_attack_cell", |b| {
        b.iter(|| {
            black_box(cfg.run_attack(
                rrs::workloads::AttackKind::DoubleSided,
                MitigationKind::Rrs,
                1,
            ))
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_registers_and_runs_quick() {
        let mut h = Harness::programmatic(true);
        standard_suite(&mut h);
        assert!(h.records().len() >= 8, "suite covers the layers");
        let mut names: Vec<&str> = h.records().iter().map(|r| r.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), h.records().len(), "bench names are unique");
        assert!(h.records().iter().all(|r| r.ns_per_iter > 0.0));
    }
}
