//! Deterministic metric primitives — counters, gauges, log₂ histograms,
//! per-epoch series — behind cheap shared handles registered by name.
//!
//! Handles are `Rc`-backed: cloning a [`Counter`] shares the underlying
//! cell, so a component can hold its handle and bump it with a single
//! interior-mutability store — no registry lookup, no `RefCell` borrow —
//! while the [`Registry`] retains the name → handle index for export.
//! Registration is idempotent by name, which lets several components (for
//! example each per-bank RRS engine) share one aggregate counter.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rrs_json::Json;

/// Number of log₂ buckets in a [`Histogram`]. Bucket `i` holds values whose
/// bit length is `i` (i.e. `2^(i-1) ≤ v < 2^i`, with `v = 0` in bucket 0);
/// values of 2^39 cycles (≈3.4 min of DDR4-3200 time) or more saturate into
/// the last bucket. Matches `rrs-sim`'s `LatencyStats` layout exactly so a
/// latency snapshot is a plain copy.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Cap on retained epoch-aligned samples: enough for ~19 hours of simulated
/// 64 ms epochs; beyond it samples are counted but dropped (bounded memory).
pub const MAX_EPOCH_SAMPLES: usize = 16_384;

/// A monotonically increasing `u64` metric.
///
/// Cloning shares the value. `add` is a load + store on a `Cell` — cheap
/// enough for per-access hot paths. Overflow behaves like the plain `u64`
/// stat fields this type replaced: checked in debug/overflow-check builds.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.set(self.0.get() + delta);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Returns the value and resets it to zero (snapshot-drain semantics,
    /// the registry equivalent of `mem::take` on a stat field).
    pub fn take(&self) -> u64 {
        self.0.replace(0)
    }
}

/// A current-value metric that may move both ways (occupancies, depths).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<u64>>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.set(value);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.set(self.0.get() + delta);
    }

    /// Subtracts `delta`, saturating at zero.
    #[inline]
    pub fn sub(&self, delta: u64) {
        self.0.set(self.0.get().saturating_sub(delta));
    }
}

/// An owned copy of a histogram's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (log₂ buckets, see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (`u128`: 2⁶⁴ cycles × many samples overflows u64).
    pub sum: u128,
    /// Largest sample observed.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// A log₂-bucketed distribution metric (latencies, queue waits).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<HistogramSnapshot>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let mut d = self.0.borrow_mut();
        let idx = (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        if let Some(b) = d.buckets.get_mut(idx) {
            *b += 1;
        }
        d.count += 1;
        d.sum += value as u128;
        d.max = d.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    /// An owned copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        *self.0.borrow()
    }

    /// Returns the state and resets the histogram.
    pub fn take(&self) -> HistogramSnapshot {
        self.0.replace(HistogramSnapshot::default())
    }
}

/// An append-only sequence of `u64` samples (one per epoch, typically).
#[derive(Debug, Clone, Default)]
pub struct Series(Rc<RefCell<Vec<u64>>>);

impl Series {
    /// Appends one sample.
    pub fn push(&self, value: u64) {
        self.0.borrow_mut().push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// Whether no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// An owned copy of the samples.
    pub fn values(&self) -> Vec<u64> {
        self.0.borrow().clone()
    }

    /// Returns the samples and resets the series.
    pub fn take(&self) -> Vec<u64> {
        std::mem::take(&mut *self.0.borrow_mut())
    }
}

/// One epoch-aligned sample row: the value of every registered counter at
/// an epoch boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSample {
    /// Zero-based index of the epoch that just completed.
    pub epoch: u64,
    /// Cycle of the epoch boundary.
    pub at: u64,
    /// Counter values, in registration order (see
    /// [`Registry::counter_names`]).
    pub values: Vec<u64>,
}

/// The metric registry: the name → handle index behind one [`Telemetry`]
/// spine, plus the epoch-aligned time series of counter samples.
///
/// [`Telemetry`]: crate::Telemetry
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
    series: Vec<(String, Series)>,
    epoch_samples: Vec<EpochSample>,
    epoch_samples_dropped: u64,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or finds) the counter named `name` and returns a handle.
    pub fn counter(&mut self, name: &str) -> Counter {
        if let Some((_, c)) = self.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        self.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Registers (or finds) the gauge named `name` and returns a handle.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        if let Some((_, g)) = self.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        self.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Registers (or finds) the histogram named `name` and returns a handle.
    pub fn histogram(&mut self, name: &str) -> Histogram {
        if let Some((_, h)) = self.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::default();
        self.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Registers (or finds) the series named `name` and returns a handle.
    pub fn series(&mut self, name: &str) -> Series {
        if let Some((_, s)) = self.series.iter().find(|(n, _)| n == name) {
            return s.clone();
        }
        let s = Series::default();
        self.series.push((name.to_string(), s.clone()));
        s
    }

    /// Counter names in registration order (the column order of
    /// [`EpochSample::values`]).
    pub fn counter_names(&self) -> Vec<String> {
        self.counters.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Current value of every counter, in registration order.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect()
    }

    /// Records an epoch-aligned sample of every registered counter. Keeps
    /// at most [`MAX_EPOCH_SAMPLES`] rows; further rows are counted in
    /// [`Registry::epoch_samples_dropped`] and discarded.
    pub fn sample_epoch(&mut self, epoch: u64, at: u64) {
        if self.epoch_samples.len() >= MAX_EPOCH_SAMPLES {
            self.epoch_samples_dropped += 1;
            return;
        }
        let values = self.counters.iter().map(|(_, c)| c.get()).collect();
        self.epoch_samples.push(EpochSample { epoch, at, values });
    }

    /// The retained epoch-aligned samples.
    pub fn epoch_samples(&self) -> &[EpochSample] {
        &self.epoch_samples
    }

    /// Epoch samples discarded after the retention cap was hit.
    pub fn epoch_samples_dropped(&self) -> u64 {
        self.epoch_samples_dropped
    }

    /// The full registry state as a JSON object with stable field order:
    /// `counters`, `gauges`, `histograms`, `series`, `epoch_series` (each
    /// in registration order — deterministic by construction).
    pub fn snapshot_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), Json::u64(c.get())))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), Json::u64(g.get())))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let s = h.snapshot();
                let fields = vec![
                    (
                        "buckets".to_string(),
                        Json::Arr(s.buckets.iter().map(|&b| Json::u64(b)).collect()),
                    ),
                    ("count".to_string(), Json::u64(s.count)),
                    ("sum".to_string(), Json::u128(s.sum)),
                    ("max".to_string(), Json::u64(s.max)),
                ];
                (n.clone(), Json::Obj(fields))
            })
            .collect();
        let series = self
            .series
            .iter()
            .map(|(n, s)| {
                (
                    n.clone(),
                    Json::Arr(s.values().iter().map(|&v| Json::u64(v)).collect()),
                )
            })
            .collect();
        let epoch_series = Json::Obj(vec![
            (
                "names".to_string(),
                Json::Arr(self.counter_names().into_iter().map(Json::str).collect()),
            ),
            (
                "samples".to_string(),
                Json::Arr(
                    self.epoch_samples
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("epoch".to_string(), Json::u64(s.epoch)),
                                ("at".to_string(), Json::u64(s.at)),
                                (
                                    "values".to_string(),
                                    Json::Arr(s.values.iter().map(|&v| Json::u64(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("dropped".to_string(), Json::u64(self.epoch_samples_dropped)),
        ]);
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
            ("series".to_string(), Json::Obj(series)),
            ("epoch_series".to_string(), epoch_series),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.counter_values(), vec![("x".to_string(), 4)]);
        assert_eq!(a.take(), 4);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn registration_is_idempotent_and_ordered() {
        let mut r = Registry::new();
        r.counter("b");
        r.counter("a");
        r.counter("b");
        assert_eq!(r.counter_names(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn histogram_matches_log2_bucketing() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(u64::MAX); // saturates into the last bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.count, 5);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, 6 + u64::MAX as u128);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::default();
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), 0, "sub saturates at zero");
    }

    #[test]
    fn epoch_sampling_is_bounded() {
        let mut r = Registry::new();
        let c = r.counter("acts");
        for e in 0..(MAX_EPOCH_SAMPLES as u64 + 10) {
            c.inc();
            r.sample_epoch(e, e * 100);
        }
        assert_eq!(r.epoch_samples().len(), MAX_EPOCH_SAMPLES);
        assert_eq!(r.epoch_samples_dropped(), 10);
        let first = &r.epoch_samples()[0];
        assert_eq!(first.values, vec![1]);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let build = || {
            let mut r = Registry::new();
            r.counter("reads").add(7);
            r.gauge("occ").set(3);
            r.histogram("lat").record(100);
            r.series("swaps").push(2);
            r.sample_epoch(0, 640_000);
            r.snapshot_json().to_string_compact()
        };
        assert_eq!(build(), build());
        assert!(build().contains("\"reads\":7"));
    }
}
