//! The structured event vocabulary of the telemetry spine.
//!
//! Every observable state transition in the simulated memory system is one
//! [`Event`] variant: demand activations, row-swap lifecycle, hot-row
//! tracker (HRT) installs and evictions, CAT cuckoo relocations, epoch
//! rollovers, the three refresh flavours, scheduler stalls, and LLC hits
//! and misses. Events are plain `Copy` data stamped with the emitting
//! component's cycle clock, and serialize to one deterministic JSON line
//! each (`kind` first, `at` second, then payload fields).

use rrs_json::Json;

/// One observable state transition, stamped with the cycle it happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A demand row activation (physical, post-RIT row).
    Activation {
        /// Cycle of the activation.
        at: u64,
        /// Flat bank index.
        bank: u64,
        /// Physical row number within the bank.
        row: u64,
    },
    /// A mitigation-issued row swap began occupying the channel.
    SwapStart {
        /// Cycle the swap transfer started.
        at: u64,
        /// First row of the pair.
        row_a: u64,
        /// Second row of the pair.
        row_b: u64,
    },
    /// A row swap finished (channel released).
    SwapDone {
        /// Cycle the swap transfer completed.
        at: u64,
        /// First row of the pair.
        row_a: u64,
        /// Second row of the pair.
        row_b: u64,
    },
    /// A row pair was unswapped (RIT eviction restoring home locations).
    Unswap {
        /// Cycle the unswap started.
        at: u64,
        /// First row of the pair.
        row_a: u64,
        /// Second row of the pair.
        row_b: u64,
    },
    /// The hot-row tracker installed a new entry.
    HrtInstall {
        /// Cycle of the install (emitting component's clock).
        at: u64,
        /// Row installed.
        row: u64,
        /// Estimated activation count at install time.
        count: u64,
    },
    /// The hot-row tracker evicted an entry (Misra-Gries decrement-out or
    /// explicit minimum eviction).
    HrtEvict {
        /// Cycle of the eviction.
        at: u64,
        /// Row evicted.
        row: u64,
        /// Estimated count the entry held when evicted.
        count: u64,
    },
    /// The CAT's cuckoo insert displaced entries to alternate slots.
    CatRelocation {
        /// Cycle of the insert that caused the relocations.
        at: u64,
        /// Number of entries moved by this insert.
        moves: u64,
    },
    /// An epoch (refresh window) completed.
    EpochRollover {
        /// Cycle of the boundary.
        at: u64,
        /// Zero-based index of the epoch that just completed.
        epoch: u64,
    },
    /// A periodic (tREFI) refresh pulse.
    Refresh {
        /// Cycle the refresh started.
        at: u64,
    },
    /// A targeted (victim-row) refresh issued by a mitigation.
    TargetedRefresh {
        /// Cycle of the refresh.
        at: u64,
        /// Refreshed row number.
        row: u64,
    },
    /// A full-memory preemptive refresh (detector escalation).
    FullRefresh {
        /// Cycle the full refresh started.
        at: u64,
    },
    /// The queued scheduler rejected a request because its channel queue
    /// was full (backpressure).
    SchedulerStall {
        /// Cycle of the rejected submission.
        at: u64,
        /// Total requests queued across channels at that moment.
        queued: u64,
    },
    /// A last-level-cache hit.
    LlcHit {
        /// Cycle of the access (emitting component's clock).
        at: u64,
        /// Physical byte address.
        addr: u64,
    },
    /// A last-level-cache miss.
    LlcMiss {
        /// Cycle of the access.
        at: u64,
        /// Physical byte address.
        addr: u64,
    },
}

impl Event {
    /// The event's stable kind tag (the `kind` field of its JSON line).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Activation { .. } => "activation",
            Event::SwapStart { .. } => "swap_start",
            Event::SwapDone { .. } => "swap_done",
            Event::Unswap { .. } => "unswap",
            Event::HrtInstall { .. } => "hrt_install",
            Event::HrtEvict { .. } => "hrt_evict",
            Event::CatRelocation { .. } => "cat_relocation",
            Event::EpochRollover { .. } => "epoch_rollover",
            Event::Refresh { .. } => "refresh",
            Event::TargetedRefresh { .. } => "targeted_refresh",
            Event::FullRefresh { .. } => "full_refresh",
            Event::SchedulerStall { .. } => "scheduler_stall",
            Event::LlcHit { .. } => "llc_hit",
            Event::LlcMiss { .. } => "llc_miss",
        }
    }

    /// The cycle the event is stamped with.
    pub fn at(&self) -> u64 {
        match *self {
            Event::Activation { at, .. }
            | Event::SwapStart { at, .. }
            | Event::SwapDone { at, .. }
            | Event::Unswap { at, .. }
            | Event::HrtInstall { at, .. }
            | Event::HrtEvict { at, .. }
            | Event::CatRelocation { at, .. }
            | Event::EpochRollover { at, .. }
            | Event::Refresh { at }
            | Event::TargetedRefresh { at, .. }
            | Event::FullRefresh { at }
            | Event::SchedulerStall { at, .. }
            | Event::LlcHit { at, .. }
            | Event::LlcMiss { at, .. } => at,
        }
    }

    /// The event as a JSON object with stable field order: `kind`, `at`,
    /// then payload fields in declaration order.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind".to_string(), Json::str(self.kind())),
            ("at".to_string(), Json::u64(self.at())),
        ];
        let mut push = |name: &str, v: u64| fields.push((name.to_string(), Json::u64(v)));
        match *self {
            Event::Activation { bank, row, .. } => {
                push("bank", bank);
                push("row", row);
            }
            Event::SwapStart { row_a, row_b, .. }
            | Event::SwapDone { row_a, row_b, .. }
            | Event::Unswap { row_a, row_b, .. } => {
                push("row_a", row_a);
                push("row_b", row_b);
            }
            Event::HrtInstall { row, count, .. } | Event::HrtEvict { row, count, .. } => {
                push("row", row);
                push("count", count);
            }
            Event::CatRelocation { moves, .. } => push("moves", moves),
            Event::EpochRollover { epoch, .. } => push("epoch", epoch),
            Event::Refresh { .. } | Event::FullRefresh { .. } => {}
            Event::TargetedRefresh { row, .. } => push("row", row),
            Event::SchedulerStall { queued, .. } => push("queued", queued),
            Event::LlcHit { addr, .. } | Event::LlcMiss { addr, .. } => push("addr", addr),
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_stable() {
        let e = Event::Activation {
            at: 7,
            bank: 2,
            row: 500,
        };
        assert_eq!(
            e.to_json().to_string_compact(),
            "{\"kind\":\"activation\",\"at\":7,\"bank\":2,\"row\":500}"
        );
        let s = Event::SwapStart {
            at: 10,
            row_a: 1,
            row_b: 2,
        };
        assert_eq!(
            s.to_json().to_string_compact(),
            "{\"kind\":\"swap_start\",\"at\":10,\"row_a\":1,\"row_b\":2}"
        );
    }

    #[test]
    fn kind_and_at_cover_every_variant() {
        let all = [
            Event::Activation {
                at: 1,
                bank: 0,
                row: 0,
            },
            Event::SwapStart {
                at: 2,
                row_a: 0,
                row_b: 1,
            },
            Event::SwapDone {
                at: 3,
                row_a: 0,
                row_b: 1,
            },
            Event::Unswap {
                at: 4,
                row_a: 0,
                row_b: 1,
            },
            Event::HrtInstall {
                at: 5,
                row: 9,
                count: 1,
            },
            Event::HrtEvict {
                at: 6,
                row: 9,
                count: 1,
            },
            Event::CatRelocation { at: 7, moves: 2 },
            Event::EpochRollover { at: 8, epoch: 0 },
            Event::Refresh { at: 9 },
            Event::TargetedRefresh { at: 10, row: 3 },
            Event::FullRefresh { at: 11 },
            Event::SchedulerStall { at: 12, queued: 64 },
            Event::LlcHit { at: 13, addr: 64 },
            Event::LlcMiss { at: 14, addr: 128 },
        ];
        let mut kinds: Vec<&str> = all.iter().map(|e| e.kind()).collect();
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.at(), i as u64 + 1);
        }
        kinds.dedup();
        assert_eq!(kinds.len(), all.len(), "kind tags are distinct");
    }
}
