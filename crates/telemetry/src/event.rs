//! The structured event vocabulary of the telemetry spine.
//!
//! Every observable state transition in the simulated memory system is one
//! [`Event`] variant: demand activations, row-swap lifecycle, hot-row
//! tracker (HRT) installs and evictions, CAT cuckoo relocations, epoch
//! rollovers, the three refresh flavours, scheduler stalls, and LLC hits
//! and misses. Events are plain `Copy` data stamped with the emitting
//! component's cycle clock, and serialize to one deterministic JSON line
//! each (`kind` first, `at` second, then payload fields).

use rrs_json::Json;

/// One observable state transition, stamped with the cycle it happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A demand row activation (physical, post-RIT row).
    Activation {
        /// Cycle of the activation.
        at: u64,
        /// Flat bank index.
        bank: u64,
        /// Physical row number within the bank.
        row: u64,
    },
    /// A mitigation-issued row swap began occupying the channel.
    SwapStart {
        /// Cycle the swap transfer started.
        at: u64,
        /// Flat bank index the pair lives in (swaps never cross banks).
        bank: u64,
        /// First row of the pair.
        row_a: u64,
        /// Second row of the pair.
        row_b: u64,
    },
    /// A row swap finished (channel released).
    SwapDone {
        /// Cycle the swap transfer completed.
        at: u64,
        /// Flat bank index the pair lives in.
        bank: u64,
        /// First row of the pair.
        row_a: u64,
        /// Second row of the pair.
        row_b: u64,
    },
    /// A row pair was unswapped (RIT eviction restoring home locations).
    Unswap {
        /// Cycle the unswap started.
        at: u64,
        /// Flat bank index the pair lives in.
        bank: u64,
        /// First row of the pair.
        row_a: u64,
        /// Second row of the pair.
        row_b: u64,
    },
    /// The hot-row tracker installed a new entry.
    HrtInstall {
        /// Cycle of the install (emitting component's clock).
        at: u64,
        /// Row installed.
        row: u64,
        /// Estimated activation count at install time.
        count: u64,
    },
    /// The hot-row tracker evicted an entry (Misra-Gries decrement-out or
    /// explicit minimum eviction).
    HrtEvict {
        /// Cycle of the eviction.
        at: u64,
        /// Row evicted.
        row: u64,
        /// Estimated count the entry held when evicted.
        count: u64,
    },
    /// The CAT's cuckoo insert displaced entries to alternate slots.
    CatRelocation {
        /// Cycle of the insert that caused the relocations.
        at: u64,
        /// Number of entries moved by this insert.
        moves: u64,
    },
    /// An epoch (refresh window) completed.
    EpochRollover {
        /// Cycle of the boundary.
        at: u64,
        /// Zero-based index of the epoch that just completed.
        epoch: u64,
    },
    /// A periodic (tREFI) refresh pulse.
    Refresh {
        /// Cycle the refresh started.
        at: u64,
    },
    /// A targeted (victim-row) refresh issued by a mitigation.
    TargetedRefresh {
        /// Cycle of the refresh.
        at: u64,
        /// Flat bank index of the refreshed row.
        bank: u64,
        /// Refreshed row number.
        row: u64,
    },
    /// A full-memory preemptive refresh (detector escalation).
    FullRefresh {
        /// Cycle the full refresh started.
        at: u64,
    },
    /// The queued scheduler rejected a request because its channel queue
    /// was full (backpressure).
    SchedulerStall {
        /// Cycle of the rejected submission.
        at: u64,
        /// Total requests queued across channels at that moment.
        queued: u64,
    },
    /// A last-level-cache hit.
    LlcHit {
        /// Cycle of the access (emitting component's clock).
        at: u64,
        /// Physical byte address.
        addr: u64,
    },
    /// A last-level-cache miss.
    LlcMiss {
        /// Cycle of the access.
        at: u64,
        /// Physical byte address.
        addr: u64,
    },
}

impl Event {
    /// The event's stable kind tag (the `kind` field of its JSON line).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Activation { .. } => "activation",
            Event::SwapStart { .. } => "swap_start",
            Event::SwapDone { .. } => "swap_done",
            Event::Unswap { .. } => "unswap",
            Event::HrtInstall { .. } => "hrt_install",
            Event::HrtEvict { .. } => "hrt_evict",
            Event::CatRelocation { .. } => "cat_relocation",
            Event::EpochRollover { .. } => "epoch_rollover",
            Event::Refresh { .. } => "refresh",
            Event::TargetedRefresh { .. } => "targeted_refresh",
            Event::FullRefresh { .. } => "full_refresh",
            Event::SchedulerStall { .. } => "scheduler_stall",
            Event::LlcHit { .. } => "llc_hit",
            Event::LlcMiss { .. } => "llc_miss",
        }
    }

    /// The cycle the event is stamped with.
    pub fn at(&self) -> u64 {
        match *self {
            Event::Activation { at, .. }
            | Event::SwapStart { at, .. }
            | Event::SwapDone { at, .. }
            | Event::Unswap { at, .. }
            | Event::HrtInstall { at, .. }
            | Event::HrtEvict { at, .. }
            | Event::CatRelocation { at, .. }
            | Event::EpochRollover { at, .. }
            | Event::Refresh { at }
            | Event::TargetedRefresh { at, .. }
            | Event::FullRefresh { at }
            | Event::SchedulerStall { at, .. }
            | Event::LlcHit { at, .. }
            | Event::LlcMiss { at, .. } => at,
        }
    }

    /// The event as a JSON object with stable field order: `kind`, `at`,
    /// then payload fields in declaration order.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind".to_string(), Json::str(self.kind())),
            ("at".to_string(), Json::u64(self.at())),
        ];
        let mut push = |name: &str, v: u64| fields.push((name.to_string(), Json::u64(v)));
        match *self {
            Event::Activation { bank, row, .. } => {
                push("bank", bank);
                push("row", row);
            }
            Event::SwapStart {
                bank, row_a, row_b, ..
            }
            | Event::SwapDone {
                bank, row_a, row_b, ..
            }
            | Event::Unswap {
                bank, row_a, row_b, ..
            } => {
                push("bank", bank);
                push("row_a", row_a);
                push("row_b", row_b);
            }
            Event::HrtInstall { row, count, .. } | Event::HrtEvict { row, count, .. } => {
                push("row", row);
                push("count", count);
            }
            Event::CatRelocation { moves, .. } => push("moves", moves),
            Event::EpochRollover { epoch, .. } => push("epoch", epoch),
            Event::Refresh { .. } | Event::FullRefresh { .. } => {}
            Event::TargetedRefresh { bank, row, .. } => {
                push("bank", bank);
                push("row", row);
            }
            Event::SchedulerStall { queued, .. } => push("queued", queued),
            Event::LlcHit { addr, .. } | Event::LlcMiss { addr, .. } => push("addr", addr),
        }
        Json::Obj(fields)
    }

    /// Parses the JSON object produced by [`Event::to_json`] back into the
    /// event — the inverse used by trace consumers (the forensics layer).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/malformed field, or the unknown
    /// `kind` tag.
    pub fn from_json(json: &Json) -> Result<Event, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "event line without a string `kind`".to_string())?;
        let field = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind} event missing u64 field {name:?}"))
        };
        let at = field("at")?;
        Ok(match kind {
            "activation" => Event::Activation {
                at,
                bank: field("bank")?,
                row: field("row")?,
            },
            "swap_start" => Event::SwapStart {
                at,
                bank: field("bank")?,
                row_a: field("row_a")?,
                row_b: field("row_b")?,
            },
            "swap_done" => Event::SwapDone {
                at,
                bank: field("bank")?,
                row_a: field("row_a")?,
                row_b: field("row_b")?,
            },
            "unswap" => Event::Unswap {
                at,
                bank: field("bank")?,
                row_a: field("row_a")?,
                row_b: field("row_b")?,
            },
            "hrt_install" => Event::HrtInstall {
                at,
                row: field("row")?,
                count: field("count")?,
            },
            "hrt_evict" => Event::HrtEvict {
                at,
                row: field("row")?,
                count: field("count")?,
            },
            "cat_relocation" => Event::CatRelocation {
                at,
                moves: field("moves")?,
            },
            "epoch_rollover" => Event::EpochRollover {
                at,
                epoch: field("epoch")?,
            },
            "refresh" => Event::Refresh { at },
            "targeted_refresh" => Event::TargetedRefresh {
                at,
                bank: field("bank")?,
                row: field("row")?,
            },
            "full_refresh" => Event::FullRefresh { at },
            "scheduler_stall" => Event::SchedulerStall {
                at,
                queued: field("queued")?,
            },
            "llc_hit" => Event::LlcHit {
                at,
                addr: field("addr")?,
            },
            "llc_miss" => Event::LlcMiss {
                at,
                addr: field("addr")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_stable() {
        let e = Event::Activation {
            at: 7,
            bank: 2,
            row: 500,
        };
        assert_eq!(
            e.to_json().to_string_compact(),
            "{\"kind\":\"activation\",\"at\":7,\"bank\":2,\"row\":500}"
        );
        let s = Event::SwapStart {
            at: 10,
            bank: 3,
            row_a: 1,
            row_b: 2,
        };
        assert_eq!(
            s.to_json().to_string_compact(),
            "{\"kind\":\"swap_start\",\"at\":10,\"bank\":3,\"row_a\":1,\"row_b\":2}"
        );
    }

    fn one_of_each() -> [Event; 14] {
        [
            Event::Activation {
                at: 1,
                bank: 0,
                row: 0,
            },
            Event::SwapStart {
                at: 2,
                bank: 5,
                row_a: 0,
                row_b: 1,
            },
            Event::SwapDone {
                at: 3,
                bank: 5,
                row_a: 0,
                row_b: 1,
            },
            Event::Unswap {
                at: 4,
                bank: 5,
                row_a: 0,
                row_b: 1,
            },
            Event::HrtInstall {
                at: 5,
                row: 9,
                count: 1,
            },
            Event::HrtEvict {
                at: 6,
                row: 9,
                count: 1,
            },
            Event::CatRelocation { at: 7, moves: 2 },
            Event::EpochRollover { at: 8, epoch: 0 },
            Event::Refresh { at: 9 },
            Event::TargetedRefresh {
                at: 10,
                bank: 2,
                row: 3,
            },
            Event::FullRefresh { at: 11 },
            Event::SchedulerStall { at: 12, queued: 64 },
            Event::LlcHit { at: 13, addr: 64 },
            Event::LlcMiss { at: 14, addr: 128 },
        ]
    }

    #[test]
    fn kind_and_at_cover_every_variant() {
        let all = one_of_each();
        let mut kinds: Vec<&str> = all.iter().map(|e| e.kind()).collect();
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.at(), i as u64 + 1);
        }
        kinds.dedup();
        assert_eq!(kinds.len(), all.len(), "kind tags are distinct");
    }

    #[test]
    fn json_round_trips_every_variant() {
        for e in one_of_each() {
            let parsed = Event::from_json(&e.to_json()).unwrap_or_else(|err| {
                panic!("round trip failed for {}: {err}", e.kind());
            });
            assert_eq!(parsed, e);
        }
    }

    #[test]
    fn from_json_reports_bad_input() {
        let missing = Json::parse("{\"kind\":\"activation\",\"at\":1,\"bank\":0}").unwrap();
        assert!(Event::from_json(&missing).unwrap_err().contains("row"));
        let unknown = Json::parse("{\"kind\":\"teleport\",\"at\":1}").unwrap();
        assert!(Event::from_json(&unknown).unwrap_err().contains("teleport"));
        let no_kind = Json::parse("{\"at\":1}").unwrap();
        assert!(Event::from_json(&no_kind).is_err());
    }
}
