//! Probes: where emitted [`Event`]s go.
//!
//! A [`Probe`] is a sink for the event stream. The spine ships two:
//! [`NullProbe`], which discards everything (the default, near-zero-cost
//! configuration — emission is short-circuited before the probe is even
//! consulted), and [`TraceRecorder`], a bounded ring buffer that keeps the
//! most recent events and exports them as JSON lines.

use std::collections::VecDeque;

use crate::event::Event;

/// A sink for telemetry events.
///
/// Implementations must be deterministic: given the same event sequence
/// they must reach the same state, because traces are compared byte-for-
/// byte across runs.
pub trait Probe {
    /// Observes one event.
    fn on_event(&mut self, event: &Event);
}

/// The probe that ignores every event — the disabled-telemetry fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline]
    fn on_event(&mut self, _event: &Event) {}
}

/// A bounded ring buffer of events with JSON-lines export.
///
/// When full, the oldest event is dropped (and counted) so the recorder
/// always holds the most recent window — the useful end of a trace when a
/// run misbehaves late.
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    events: VecDeque<Event>,
    recorded: u64,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the buffer is full.
    pub fn record(&mut self, event: Event) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
        self.recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events observed (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained event count per kind tag, in first-seen order.
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for e in &self.events {
            let kind = e.kind();
            if let Some(slot) = counts.iter_mut().find(|(k, _)| *k == kind) {
                slot.1 += 1;
            } else {
                counts.push((kind, 1));
            }
        }
        counts
    }

    /// The retained events as JSON lines (one compact object per line,
    /// trailing newline when non-empty). Deterministic: same events in,
    /// same bytes out.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }
}

impl Probe for TraceRecorder {
    fn on_event(&mut self, event: &Event) {
        self.record(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut r = TraceRecorder::new(2);
        for at in 0..5 {
            r.record(Event::Refresh { at });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 3);
        let ats: Vec<u64> = r.events().map(|e| e.at()).collect();
        assert_eq!(ats, vec![3, 4], "oldest evicted first");
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let mut r = TraceRecorder::new(8);
        r.record(Event::Refresh { at: 1 });
        r.record(Event::FullRefresh { at: 2 });
        let text = r.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert!(text.starts_with("{\"kind\":\"refresh\",\"at\":1}"));
    }

    #[test]
    fn kind_counts_aggregate() {
        let mut r = TraceRecorder::new(8);
        r.record(Event::Refresh { at: 1 });
        r.record(Event::Refresh { at: 2 });
        r.record(Event::FullRefresh { at: 3 });
        assert_eq!(r.kind_counts(), vec![("refresh", 2), ("full_refresh", 1)]);
    }

    #[test]
    fn null_probe_discards() {
        let mut p = NullProbe;
        p.on_event(&Event::Refresh { at: 1 });
        assert_eq!(p, NullProbe);
    }
}
