//! The telemetry spine: one deterministic observability layer shared by the
//! memory controller, the RRS engine, the scheduler, the LLC, and the
//! runner.
//!
//! # Architecture
//!
//! * [`metrics`] — counter / gauge / log₂-histogram / series primitives
//!   behind a name-indexed [`Registry`], plus epoch-aligned time-series
//!   sampling of every counter.
//! * [`event`] — the structured [`Event`] vocabulary (activations, swap
//!   lifecycle, HRT installs/evictions, CAT relocations, epoch rollovers,
//!   refreshes, scheduler stalls, LLC hits/misses).
//! * [`probe`] — the [`Probe`] sink trait, the discard-everything
//!   [`NullProbe`], and the bounded [`TraceRecorder`] ring buffer with
//!   JSON-lines export.
//!
//! The [`Telemetry`] handle ties these together. It is a cheap `Rc` clone:
//! every component in one simulated system shares the same spine, each
//! holding its own clone plus the metric handles it registered. Metric
//! updates go through [`metrics::Counter`]-style handles (a single `Cell`
//! store — no registry lookup), and event emission is gated on
//! [`Telemetry::tracing`], so the disabled configuration (the `NullProbe`
//! fast path) costs one predictable branch per would-be event.
//!
//! # Determinism contract
//!
//! Everything here is a pure function of the event/metric sequence fed in:
//! no wall-clock time, no hash-seeded iteration, no thread identity.
//! Registration order is construction order (single-threaded and fixed),
//! so snapshots and traces are byte-identical across runs with the same
//! seed — a property the test suite asserts.
//!
//! Handles are intentionally `!Send`: a spine belongs to one simulated
//! system, which the campaign engine always builds and runs on a single
//! worker thread.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod probe;

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use rrs_json::Json;

pub use event::Event;
pub use metrics::{
    Counter, EpochSample, Gauge, Histogram, HistogramSnapshot, Registry, Series, HISTOGRAM_BUCKETS,
};
pub use probe::{NullProbe, Probe, TraceRecorder};

/// Default ring-buffer capacity for [`Telemetry::with_trace`]: large enough
/// for a smoke-scale run's full event stream, bounded for anything bigger.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

struct Shared {
    /// Fast-path gate: false means `emit` returns before constructing any
    /// borrow — the NullProbe configuration.
    active: Cell<bool>,
    /// A cycle clock components without their own notion of time stamp
    /// events with; the controller keeps it current while tracing.
    now: Cell<u64>,
    registry: RefCell<Registry>,
    recorder: RefCell<Option<TraceRecorder>>,
    probes: RefCell<Vec<Box<dyn Probe>>>,
}

/// A shared handle on one telemetry spine (registry + optional probes).
///
/// Cloning is cheap and shares all state. See the crate docs for the
/// architecture and the determinism contract.
#[derive(Clone)]
pub struct Telemetry {
    shared: Rc<Shared>,
}

impl Telemetry {
    /// A spine with metrics only — no trace recorder, no probes, event
    /// emission disabled (the `NullProbe` fast path).
    pub fn new() -> Self {
        Telemetry {
            shared: Rc::new(Shared {
                active: Cell::new(false),
                now: Cell::new(0),
                registry: RefCell::new(Registry::new()),
                recorder: RefCell::new(None),
                probes: RefCell::new(Vec::new()),
            }),
        }
    }

    /// A spine with an attached [`TraceRecorder`] holding at most
    /// `capacity` events; event emission is enabled.
    pub fn with_trace(capacity: usize) -> Self {
        let t = Telemetry::new();
        *t.shared.recorder.borrow_mut() = Some(TraceRecorder::new(capacity));
        t.shared.active.set(true);
        t
    }

    /// Attaches an extra probe and enables event emission.
    pub fn attach_probe(&self, probe: Box<dyn Probe>) {
        self.shared.probes.borrow_mut().push(probe);
        self.shared.active.set(true);
    }

    /// Whether events are being observed. Hot paths check this before
    /// constructing an [`Event`].
    #[inline]
    pub fn tracing(&self) -> bool {
        self.shared.active.get()
    }

    /// Updates the spine's cycle clock (used to stamp events emitted by
    /// components that have no clock of their own, e.g. the trackers).
    #[inline]
    pub fn set_now(&self, at: u64) {
        self.shared.now.set(at);
    }

    /// The spine's cycle clock.
    #[inline]
    pub fn now(&self) -> u64 {
        self.shared.now.get()
    }

    /// Emits one event to the recorder and all attached probes. A no-op
    /// (single branch) when [`Telemetry::tracing`] is false.
    #[inline]
    pub fn emit(&self, event: Event) {
        if !self.tracing() {
            return;
        }
        self.emit_active(event);
    }

    fn emit_active(&self, event: Event) {
        if let Some(r) = self.shared.recorder.borrow_mut().as_mut() {
            r.record(event);
        }
        for p in self.shared.probes.borrow_mut().iter_mut() {
            p.on_event(&event);
        }
    }

    /// Registers (or finds) a counter by name.
    pub fn counter(&self, name: &str) -> Counter {
        self.shared.registry.borrow_mut().counter(name)
    }

    /// Registers (or finds) a gauge by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.shared.registry.borrow_mut().gauge(name)
    }

    /// Registers (or finds) a histogram by name.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.shared.registry.borrow_mut().histogram(name)
    }

    /// Registers (or finds) a series by name.
    pub fn series(&self, name: &str) -> Series {
        self.shared.registry.borrow_mut().series(name)
    }

    /// Records an epoch-aligned sample of every registered counter.
    pub fn sample_epoch(&self, epoch: u64, at: u64) {
        self.shared.registry.borrow_mut().sample_epoch(epoch, at);
    }

    /// Current value of every counter, in registration order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.shared.registry.borrow().counter_values()
    }

    /// The full registry state as a deterministic JSON object.
    pub fn snapshot_json(&self) -> Json {
        self.shared.registry.borrow().snapshot_json()
    }

    /// The recorded trace as JSON lines, if a recorder is attached.
    pub fn trace_jsonl(&self) -> Option<String> {
        self.shared.recorder.borrow().as_ref().map(|r| r.to_jsonl())
    }

    /// Total events the recorder observed (0 without a recorder).
    pub fn events_recorded(&self) -> u64 {
        self.shared
            .recorder
            .borrow()
            .as_ref()
            .map_or(0, |r| r.recorded())
    }

    /// Events the recorder evicted to stay within capacity.
    pub fn events_dropped(&self) -> u64 {
        self.shared
            .recorder
            .borrow()
            .as_ref()
            .map_or(0, |r| r.dropped())
    }

    /// Retained event count per kind, if a recorder is attached.
    pub fn event_kind_counts(&self) -> Vec<(&'static str, u64)> {
        self.shared
            .recorder
            .borrow()
            .as_ref()
            .map_or_else(Vec::new, |r| r.kind_counts())
    }

    /// The retained events (oldest first), if a recorder is attached.
    ///
    /// Events are `Copy`; this clones the ring so downstream consumers
    /// (the forensics reconstructor, exporters) can replay the stream
    /// without holding the spine's interior borrow.
    pub fn events(&self) -> Vec<Event> {
        self.shared
            .recorder
            .borrow()
            .as_ref()
            .map_or_else(Vec::new, |r| r.events().copied().collect())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("tracing", &self.tracing())
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spine_emits_nothing() {
        let t = Telemetry::new();
        assert!(!t.tracing());
        t.emit(Event::Refresh { at: 1 });
        assert_eq!(t.events_recorded(), 0);
        assert!(t.trace_jsonl().is_none());
    }

    #[test]
    fn clones_share_the_spine() {
        let t = Telemetry::with_trace(16);
        let u = t.clone();
        let c = t.counter("x");
        u.counter("x").add(2);
        assert_eq!(c.get(), 2);
        u.emit(Event::Refresh { at: 5 });
        assert_eq!(t.events_recorded(), 1);
    }

    #[test]
    fn custom_probes_observe_emissions() {
        struct CountingProbe(Rc<Cell<u64>>);
        impl Probe for CountingProbe {
            fn on_event(&mut self, _event: &Event) {
                self.0.set(self.0.get() + 1);
            }
        }
        let t = Telemetry::new();
        let seen = Rc::new(Cell::new(0));
        t.attach_probe(Box::new(CountingProbe(seen.clone())));
        assert!(t.tracing(), "attaching a probe enables emission");
        t.emit(Event::FullRefresh { at: 9 });
        t.emit(Event::FullRefresh { at: 10 });
        assert_eq!(seen.get(), 2);
    }

    #[test]
    fn trace_export_is_deterministic() {
        let run = || {
            let t = Telemetry::with_trace(32);
            for at in 0..10 {
                t.emit(Event::Activation {
                    at,
                    bank: at % 2,
                    row: at * 3,
                });
            }
            t.trace_jsonl().unwrap_or_default()
        };
        assert_eq!(run(), run());
        assert_eq!(run().lines().count(), 10);
    }

    #[test]
    fn clock_stamps_are_shared() {
        let t = Telemetry::with_trace(4);
        t.set_now(123);
        let u = t.clone();
        assert_eq!(u.now(), 123);
    }

    #[test]
    fn events_accessor_clones_the_ring() {
        let t = Telemetry::with_trace(4);
        t.emit(Event::Refresh { at: 1 });
        t.emit(Event::FullRefresh { at: 2 });
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0], Event::Refresh { at: 1 });
        assert_eq!(evs[1], Event::FullRefresh { at: 2 });
        assert!(Telemetry::new().events().is_empty());
    }

    /// Feeds one fixed sequence through a fresh spine.
    fn scripted_spine() -> Telemetry {
        let t = Telemetry::with_trace(64);
        let c = t.counter("acts");
        let h = t.histogram("lat");
        for at in 0..12u64 {
            c.add(1);
            h.record(at * at);
            t.emit(Event::Activation {
                at,
                bank: at % 3,
                row: at * 7,
            });
            if at % 4 == 3 {
                t.emit(Event::EpochRollover { at, epoch: at / 4 });
                t.sample_epoch(at / 4, at);
            }
        }
        t.emit(Event::SwapStart {
            at: 12,
            bank: 1,
            row_a: 7,
            row_b: 21,
        });
        t
    }

    #[test]
    fn event_kind_counts_match_the_script() {
        let t = scripted_spine();
        assert_eq!(
            t.event_kind_counts(),
            vec![("activation", 12), ("epoch_rollover", 3), ("swap_start", 1)]
        );
    }

    #[test]
    fn snapshot_json_is_byte_deterministic() {
        let a = scripted_spine().snapshot_json().to_string_pretty();
        let b = scripted_spine().snapshot_json().to_string_pretty();
        assert_eq!(a, b, "identically-scripted spines snapshot identically");
        let ta = scripted_spine().trace_jsonl().unwrap_or_default();
        let tb = scripted_spine().trace_jsonl().unwrap_or_default();
        assert_eq!(ta, tb, "and export byte-identical traces");
    }
}
