//! JSON conversions for [`ControllerStats`], the per-run statistics block
//! embedded in serialized campaign results. Field order is fixed
//! (declaration order) for byte-identical re-serialization.

use rrs_json::{FromJson, Json, JsonError, ToJson};

use crate::controller::ControllerStats;

impl ToJson for ControllerStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("reads".into(), Json::u64(self.reads)),
            ("writes".into(), Json::u64(self.writes)),
            ("activations".into(), Json::u64(self.activations)),
            ("row_hits".into(), Json::u64(self.row_hits)),
            ("swaps".into(), Json::u64(self.swaps)),
            ("unswaps".into(), Json::u64(self.unswaps)),
            (
                "targeted_refreshes".into(),
                Json::u64(self.targeted_refreshes),
            ),
            ("full_refreshes".into(), Json::u64(self.full_refreshes)),
            (
                "mitigation_delay_cycles".into(),
                Json::u64(self.mitigation_delay_cycles),
            ),
            ("swap_busy_cycles".into(), Json::u64(self.swap_busy_cycles)),
            ("epochs_completed".into(), Json::u64(self.epochs_completed)),
            (
                "epoch_swap_history".into(),
                self.epoch_swap_history.to_json(),
            ),
            (
                "epoch_hot_row_history".into(),
                self.epoch_hot_row_history.to_json(),
            ),
        ])
    }
}

impl FromJson for ControllerStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ControllerStats {
            reads: u64::from_json(json.field("reads")?)?,
            writes: u64::from_json(json.field("writes")?)?,
            activations: u64::from_json(json.field("activations")?)?,
            row_hits: u64::from_json(json.field("row_hits")?)?,
            swaps: u64::from_json(json.field("swaps")?)?,
            unswaps: u64::from_json(json.field("unswaps")?)?,
            targeted_refreshes: u64::from_json(json.field("targeted_refreshes")?)?,
            full_refreshes: u64::from_json(json.field("full_refreshes")?)?,
            mitigation_delay_cycles: u64::from_json(json.field("mitigation_delay_cycles")?)?,
            swap_busy_cycles: u64::from_json(json.field("swap_busy_cycles")?)?,
            epochs_completed: u64::from_json(json.field("epochs_completed")?)?,
            epoch_swap_history: Vec::from_json(json.field("epoch_swap_history")?)?,
            epoch_hot_row_history: Vec::from_json(json.field("epoch_hot_row_history")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_stats_round_trip() {
        let s = ControllerStats {
            reads: 10,
            writes: 20,
            activations: 5,
            row_hits: 25,
            swaps: 2,
            unswaps: 1,
            targeted_refreshes: 3,
            full_refreshes: 0,
            mitigation_delay_cycles: 99,
            swap_busy_cycles: 1_000_000,
            epochs_completed: 4,
            epoch_swap_history: vec![0, 1, 0, 1],
            epoch_hot_row_history: vec![2, 2, 3, 1],
        };
        let back = ControllerStats::from_json(&s.to_json()).unwrap();
        assert_eq!(back.reads, s.reads);
        assert_eq!(back.epoch_swap_history, s.epoch_swap_history);
        assert_eq!(back.epoch_hot_row_history, s.epoch_hot_row_history);
        // Re-serialization is byte-identical.
        assert_eq!(
            back.to_json().to_string_compact(),
            s.to_json().to_string_compact()
        );
    }
}
