//! The Row Hammer mitigation interface.
//!
//! Every defense in this workspace — RRS, BlockHammer, victim-focused
//! refresh, PARA, or nothing at all — plugs into the memory controller
//! through [`Mitigation`]. The controller:
//!
//! 1. resolves each access through [`Mitigation::resolve`] (identity unless
//!    the defense remaps rows, as RRS does via its RIT),
//! 2. charges [`Mitigation::access_latency`] on every access (the RIT
//!    lookup cost, §4.7),
//! 3. asks [`Mitigation::activation_delay`] before issuing an activation
//!    (BlockHammer's throttling, §8.1),
//! 4. reports each performed activation via [`Mitigation::on_activation`]
//!    and executes the returned [`MitigationAction`]s, charging their
//!    bank/channel time and feeding the fault model.

use rrs_dram::geometry::RowAddr;
use rrs_dram::timing::Cycle;
use rrs_telemetry::Telemetry;

/// A physical operation requested by a mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationAction {
    /// Refresh a specific (victim) row: restores its charge, costs the bank
    /// one row-cycle, and — crucially — disturbs *its* neighbours (§2.5).
    TargetedRefresh(RowAddr),
    /// Exchange the contents of two physical rows (RRS swap / re-swap);
    /// blocks the channel for the swap-engine latency.
    RowSwap {
        /// One physical row.
        a: RowAddr,
        /// The other physical row.
        b: RowAddr,
    },
    /// Exchange restoring an evicted row home (RIT lazy drain).
    RowUnswap {
        /// One physical row.
        a: RowAddr,
        /// The other physical row.
        b: RowAddr,
    },
    /// Preemptively refresh all of memory (detector escalation,
    /// §5.3.2 fn. 2); costs ≈2.8 ms of full-memory refresh (§2.4).
    FullRefresh,
}

/// A Row Hammer defense as seen by the memory controller.
pub trait Mitigation {
    /// Short human-readable name ("rrs", "blockhammer-512", ...).
    fn name(&self) -> &str;

    /// Maps the requested (logical) row to the physical row to access.
    /// Identity for every defense except RRS.
    fn resolve(&self, row: RowAddr) -> RowAddr {
        row
    }

    /// Extra controller cycles added to every access (e.g. the RIT lookup;
    /// the paper charges 4 cycles, §4.7).
    fn access_latency(&self) -> Cycle {
        0
    }

    /// Cycles to stall an activation of `row` requested at `now`
    /// (BlockHammer's delay-based throttling). Zero for everyone else.
    fn activation_delay(&mut self, row: RowAddr, now: Cycle) -> Cycle {
        let _ = (row, now);
        0
    }

    /// Notification that an activation of logical `row` was issued at `at`;
    /// the mitigation pushes any required actions into `actions`.
    fn on_activation(&mut self, row: RowAddr, at: Cycle, actions: &mut Vec<MitigationAction>);

    /// Notification of an epoch (refresh-window) boundary at `now`.
    fn on_epoch_end(&mut self, now: Cycle, actions: &mut Vec<MitigationAction>) {
        let _ = (now, actions);
    }

    /// Called once when a controller adopts this mitigation: register
    /// counters and event probes on the shared telemetry spine. Defenses
    /// with internal structure (RRS's trackers, RIT, and CAT) forward the
    /// handle inward; the default keeps simple defenses unobserved.
    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let _ = telemetry;
    }
}

/// The undefended baseline: does nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMitigation;

impl NoMitigation {
    /// Creates the no-op mitigation.
    pub fn new() -> Self {
        NoMitigation
    }
}

impl Mitigation for NoMitigation {
    fn name(&self) -> &str {
        "none"
    }

    fn on_activation(&mut self, _row: RowAddr, _at: Cycle, _actions: &mut Vec<MitigationAction>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_mitigation_is_transparent() {
        let mut m = NoMitigation::new();
        let row = RowAddr::new(0, 0, 0, 5);
        assert_eq!(m.resolve(row), row);
        assert_eq!(m.access_latency(), 0);
        assert_eq!(m.activation_delay(row, 100), 0);
        let mut actions = Vec::new();
        m.on_activation(row, 100, &mut actions);
        m.on_epoch_end(1_000, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(m.name(), "none");
    }

    #[test]
    fn mitigation_is_object_safe() {
        let boxed: Box<dyn Mitigation> = Box::new(NoMitigation::new());
        assert_eq!(boxed.name(), "none");
    }
}
