#![warn(missing_docs)]

//! Memory controller for the RRS reproduction.
//!
//! This crate hosts the integration point between workloads and the DRAM
//! device model:
//!
//! * [`mapping`] — physical-address ↔ DRAM-coordinate translation,
//! * [`mitigation`] — the [`Mitigation`] trait every Row Hammer defense
//!   implements, plus the undefended baseline,
//! * [`controller`] — the FCFS [`MemoryController`] that serves accesses,
//!   issues refresh, tracks epochs, executes mitigation actions, and feeds
//!   the Row Hammer fault model.
//!
//! # Example
//!
//! ```
//! use rrs_mem_ctrl::{ControllerConfig, MemoryController, NoMitigation};
//!
//! let mut mc = MemoryController::new(
//!     ControllerConfig::test_config(),
//!     Box::new(NoMitigation::new()),
//! );
//! let done = mc.access(0x1000, false, 0);
//! assert!(done > 0);
//! assert_eq!(mc.stats().reads, 1);
//! ```

pub mod controller;
pub mod json;
pub mod mapping;
pub mod mitigation;
pub mod scheduler;

pub use controller::{ControllerConfig, ControllerStats, MemoryController, PagePolicy};
pub use mapping::{AddressMapper, DecodedAddr};
pub use mitigation::{Mitigation, MitigationAction, NoMitigation};
pub use scheduler::{Completion, QueuedController, SchedPolicy};
