//! The memory controller: request service, refresh, epochs, and mitigation
//! action execution.
//!
//! The controller serves accesses in arrival order (FCFS, as in the paper's
//! USIMM setup), models per-bank timing through [`rrs_dram::Bank`], charges
//! the data bus per channel, issues periodic refresh every `tREFI`, and
//! drives the configured [`Mitigation`] exactly as §4.1 describes: every
//! access resolves through the mitigation (RIT lookup), every activation is
//! reported to it, and returned actions (victim refreshes, row swaps,
//! full-memory refreshes) are executed with their real timing cost and fed
//! to the Row Hammer fault model.

use rrs_dram::bank::Bank;
use rrs_dram::geometry::{DramGeometry, RowAddr};
use rrs_dram::hammer::{BitFlip, HammerConfig, HammerModel};
use rrs_dram::timing::{Cycle, TimingParams};
use rrs_telemetry::{Counter, Event, Series, Telemetry};

use crate::mapping::AddressMapper;
use crate::mitigation::{Mitigation, MitigationAction};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Keep the row open after an access (the paper's FCFS open-page
    /// baseline): later same-row accesses hit the row buffer.
    #[default]
    Open,
    /// Precharge immediately after each access: every access activates.
    /// Trades row-hit locality for lower conflict latency; also a useful
    /// worst-case for Row Hammer studies (maximum activation rate).
    Closed,
}

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Memory geometry.
    pub geometry: DramGeometry,
    /// Device timing.
    pub timing: TimingParams,
    /// Fault-model parameters.
    pub hammer: HammerConfig,
    /// Channel-blocking cycles of one row swap (defaults to the buffered
    /// swap-engine latency for the geometry's row size, ≈1.46 µs).
    pub swap_cycles: Cycle,
    /// Activation-count threshold for the per-epoch "hot rows" statistic
    /// (the paper's ACT-800+ of Table 3). Scale along with the epoch.
    pub act_stat_threshold: u64,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl ControllerConfig {
    /// The paper's baseline configuration (Table 2 + LPDDR4-new fault model).
    pub fn asplos22_baseline() -> Self {
        let geometry = DramGeometry::asplos22_baseline();
        let timing = TimingParams::ddr4_3200();
        ControllerConfig {
            swap_cycles: timing.row_swap_cycles(geometry.row_size_bytes),
            geometry,
            timing,
            hammer: HammerConfig::lpddr4_new(),
            act_stat_threshold: 800,
            page_policy: PagePolicy::Open,
        }
    }

    /// A small configuration for unit tests: tiny geometry, short epoch.
    pub fn test_config() -> Self {
        let geometry = DramGeometry::tiny_test();
        let timing = TimingParams::ddr4_3200().with_epoch_scale(1000); // 64 µs epochs
        ControllerConfig {
            swap_cycles: timing.row_swap_cycles(geometry.row_size_bytes),
            geometry,
            timing,
            hammer: HammerConfig::lpddr4_new(),
            act_stat_threshold: 800,
            page_policy: PagePolicy::Open,
        }
    }
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Default)]
pub struct ControllerStats {
    /// Read accesses served.
    pub reads: u64,
    /// Write accesses served.
    pub writes: u64,
    /// Row activations issued for demand accesses.
    pub activations: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row swaps executed (mitigation-issued).
    pub swaps: u64,
    /// Un-swaps executed (RIT evictions).
    pub unswaps: u64,
    /// Targeted (victim) refreshes executed.
    pub targeted_refreshes: u64,
    /// Full-memory preemptive refreshes (detector escalations).
    pub full_refreshes: u64,
    /// Cycles of activation stalling imposed by the mitigation
    /// (BlockHammer's delays).
    pub mitigation_delay_cycles: Cycle,
    /// Channel-blocked cycles spent swapping rows.
    pub swap_busy_cycles: Cycle,
    /// Completed epochs.
    pub epochs_completed: u64,
    /// Swaps in each completed epoch (Figure 5's quantity).
    pub epoch_swap_history: Vec<u64>,
    /// Rows with ≥ `act_stat_threshold` activations in each completed epoch
    /// (Table 3's "Rows ACT-800+").
    pub epoch_hot_row_history: Vec<usize>,
}

impl ControllerStats {
    /// Mean swaps per completed epoch (Figure 5's y-axis).
    pub fn mean_swaps_per_epoch(&self) -> f64 {
        if self.epoch_swap_history.is_empty() {
            0.0
        } else {
            self.epoch_swap_history.iter().sum::<u64>() as f64
                / self.epoch_swap_history.len() as f64
        }
    }

    /// Mean hot rows per completed epoch (Table 3's quantity).
    pub fn mean_hot_rows_per_epoch(&self) -> f64 {
        if self.epoch_hot_row_history.is_empty() {
            0.0
        } else {
            self.epoch_hot_row_history.iter().sum::<usize>() as f64
                / self.epoch_hot_row_history.len() as f64
        }
    }

    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.activations + self.row_hits;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The controller's registry handles: one [`Counter`]/[`Series`] per field
/// of [`ControllerStats`], registered under `ctrl.*` names. Holding the
/// handles keeps the hot path at one `Cell` store per bump — no registry
/// lookup.
struct CtrlMetrics {
    reads: Counter,
    writes: Counter,
    activations: Counter,
    row_hits: Counter,
    swaps: Counter,
    unswaps: Counter,
    targeted_refreshes: Counter,
    full_refreshes: Counter,
    mitigation_delay_cycles: Counter,
    swap_busy_cycles: Counter,
    epochs_completed: Counter,
    epoch_swap_history: Series,
    epoch_hot_row_history: Series,
}

impl CtrlMetrics {
    fn register(tel: &Telemetry) -> Self {
        CtrlMetrics {
            reads: tel.counter("ctrl.reads"),
            writes: tel.counter("ctrl.writes"),
            activations: tel.counter("ctrl.activations"),
            row_hits: tel.counter("ctrl.row_hits"),
            swaps: tel.counter("ctrl.swaps"),
            unswaps: tel.counter("ctrl.unswaps"),
            targeted_refreshes: tel.counter("ctrl.targeted_refreshes"),
            full_refreshes: tel.counter("ctrl.full_refreshes"),
            mitigation_delay_cycles: tel.counter("ctrl.mitigation_delay_cycles"),
            swap_busy_cycles: tel.counter("ctrl.swap_busy_cycles"),
            epochs_completed: tel.counter("ctrl.epochs_completed"),
            epoch_swap_history: tel.series("ctrl.epoch_swap_history"),
            epoch_hot_row_history: tel.series("ctrl.epoch_hot_row_history"),
        }
    }
}

/// The memory controller.
pub struct MemoryController {
    config: ControllerConfig,
    mapper: AddressMapper,
    mitigation: Box<dyn Mitigation>,
    banks: Vec<Bank>,
    bus_free: Vec<Cycle>,
    channel_blocked: Vec<Cycle>,
    hammer: HammerModel,
    clock: Cycle,
    next_refresh: Cycle,
    next_epoch: Cycle,
    epoch_swaps: u64,
    telemetry: Telemetry,
    metrics: CtrlMetrics,
    /// Reused mitigation-action buffer: activations are the hot path, and
    /// most produce no actions, so allocating a fresh `Vec` each time is
    /// pure overhead.
    action_scratch: Vec<MitigationAction>,
}

impl MemoryController {
    /// Creates a controller driving `mitigation`, with a private telemetry
    /// spine (metrics only, no event probes).
    pub fn new(config: ControllerConfig, mitigation: Box<dyn Mitigation>) -> Self {
        Self::with_telemetry(config, mitigation, Telemetry::new())
    }

    /// Creates a controller publishing onto `telemetry`: all `ctrl.*`
    /// counters register there, events are emitted when it is tracing, and
    /// the mitigation gets [`Mitigation::attach_telemetry`] so its inner
    /// structures (trackers, RIT, CAT) share the same spine.
    pub fn with_telemetry(
        config: ControllerConfig,
        mut mitigation: Box<dyn Mitigation>,
        telemetry: Telemetry,
    ) -> Self {
        let banks = (0..config.geometry.total_banks())
            .map(|_| Bank::new(config.timing))
            .collect();
        let hammer = HammerModel::new(config.hammer.clone(), config.geometry);
        mitigation.attach_telemetry(&telemetry);
        let metrics = CtrlMetrics::register(&telemetry);
        MemoryController {
            mapper: AddressMapper::new(config.geometry),
            banks,
            bus_free: vec![0; config.geometry.channels],
            channel_blocked: vec![0; config.geometry.channels],
            hammer,
            clock: 0,
            next_refresh: config.timing.t_refi,
            next_epoch: config.timing.epoch,
            epoch_swaps: 0,
            telemetry,
            metrics,
            action_scratch: Vec::new(),
            mitigation,
            config,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The address mapper (workload generators use it to aim at rows).
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Name of the installed mitigation.
    pub fn mitigation_name(&self) -> &str {
        self.mitigation.name()
    }

    /// The telemetry spine this controller publishes on.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Accumulated statistics, snapshotted from the telemetry registry.
    /// The returned block carries exactly the values the bespoke
    /// `ControllerStats` fields used to accumulate.
    pub fn stats(&self) -> ControllerStats {
        let m = &self.metrics;
        ControllerStats {
            reads: m.reads.get(),
            writes: m.writes.get(),
            activations: m.activations.get(),
            row_hits: m.row_hits.get(),
            swaps: m.swaps.get(),
            unswaps: m.unswaps.get(),
            targeted_refreshes: m.targeted_refreshes.get(),
            full_refreshes: m.full_refreshes.get(),
            mitigation_delay_cycles: m.mitigation_delay_cycles.get(),
            swap_busy_cycles: m.swap_busy_cycles.get(),
            epochs_completed: m.epochs_completed.get(),
            epoch_swap_history: m.epoch_swap_history.values(),
            epoch_hot_row_history: m
                .epoch_hot_row_history
                .values()
                .into_iter()
                .map(|v| v as usize)
                .collect(),
        }
    }

    /// Takes the accumulated statistics, resetting the controller's
    /// registry metrics — end-of-run consumers use this to drain the epoch
    /// histories without cloning.
    pub fn take_stats(&mut self) -> ControllerStats {
        let m = &self.metrics;
        ControllerStats {
            reads: m.reads.take(),
            writes: m.writes.take(),
            activations: m.activations.take(),
            row_hits: m.row_hits.take(),
            swaps: m.swaps.take(),
            unswaps: m.unswaps.take(),
            targeted_refreshes: m.targeted_refreshes.take(),
            full_refreshes: m.full_refreshes.take(),
            mitigation_delay_cycles: m.mitigation_delay_cycles.take(),
            swap_busy_cycles: m.swap_busy_cycles.take(),
            epochs_completed: m.epochs_completed.take(),
            epoch_swap_history: m.epoch_swap_history.take(),
            epoch_hot_row_history: m
                .epoch_hot_row_history
                .take()
                .into_iter()
                .map(|v| v as usize)
                .collect(),
        }
    }

    /// The fault model (read access).
    pub fn hammer(&self) -> &HammerModel {
        &self.hammer
    }

    /// Drains bit flips recorded by the fault model.
    pub fn take_bit_flips(&mut self) -> Vec<BitFlip> {
        self.hammer.take_bit_flips()
    }

    /// Current internal clock (max of all observed times).
    pub fn now(&self) -> Cycle {
        self.clock
    }

    /// Per-bank command counts (for the power model).
    pub fn command_counts(&self) -> rrs_dram::command::CommandCounts {
        self.banks
            .iter()
            .map(|b| b.counts())
            .fold(rrs_dram::command::CommandCounts::new(), |a, b| a + b)
    }

    fn bank_mut(&mut self, addr: RowAddr) -> &mut Bank {
        let idx = addr.bank_index(&self.config.geometry);
        // lint: allow(index-panic) — `bank_index` is `< geometry.total_banks()` by construction and `banks` has exactly that length
        &mut self.banks[idx]
    }

    /// Serves one access to physical byte address `addr` at time `now`;
    /// returns the cycle the data transfer completes.
    ///
    /// Callers must present requests in (approximately) non-decreasing time
    /// order — the controller is FCFS.
    pub fn access(&mut self, addr: u64, is_write: bool, now: Cycle) -> Cycle {
        self.clock = self.clock.max(now);
        self.maintain();

        let decoded = self.mapper.decode(addr);
        let logical = decoded.row;
        let physical = self.mitigation.resolve(logical);
        debug_assert!(self.config.geometry.contains(physical));

        let ch = physical.channel.0 as usize;
        let mut start = now + self.mitigation.access_latency();
        start = start.max(self.channel_blocked.get(ch).copied().unwrap_or(0));

        let will_activate = self.bank_mut(physical).open_row() != Some(physical.row);
        // Throttling (BlockHammer): the mitigation may require this row's
        // activation to wait until `prospective + delay`, where
        // `prospective` is when the ACT would otherwise issue (so bank
        // queuing is not double-charged). A delayed request is *held
        // aside*: requests behind it proceed — the scheduling-policy
        // cooperation BlockHammer requires (§8.1) — while the requester and
        // the Row Hammer accounting observe the delayed activation time.
        let mut delay = 0;
        if will_activate {
            let prospective = self.bank_mut(physical).earliest_activate(start);
            delay = self.mitigation.activation_delay(logical, prospective);
            self.metrics.mitigation_delay_cycles.add(delay);
        }

        let outcome = self
            .bank_mut(physical)
            .access(physical.row, is_write, start);
        if is_write {
            self.metrics.writes.inc();
        } else {
            self.metrics.reads.inc();
        }

        if let Some(at) = outcome.activated_at {
            let at = at + delay;
            self.metrics.activations.inc();
            if self.telemetry.tracing() {
                self.telemetry.set_now(at);
                self.telemetry.emit(Event::Activation {
                    at,
                    bank: physical.bank_index(&self.config.geometry) as u64,
                    row: physical.row.0 as u64,
                });
            }
            self.hammer.record_activation(physical);
            let mut actions = std::mem::take(&mut self.action_scratch);
            actions.clear();
            self.mitigation.on_activation(logical, at, &mut actions);
            self.execute_actions(&actions, at);
            self.action_scratch = actions;
        } else {
            self.metrics.row_hits.inc();
        }

        if self.config.page_policy == PagePolicy::Closed {
            self.bank_mut(physical).precharge(outcome.data_at);
        }

        // The held-aside (throttled) request must not reserve the shared
        // data bus at its delayed slot — that would head-of-line block the
        // whole channel. The bus is booked at the undelayed time; only the
        // requester observes the delay.
        let bus_slot = outcome
            .data_at
            .max(self.bus_free.get(ch).copied().unwrap_or(0));
        if let Some(slot) = self.bus_free.get_mut(ch) {
            *slot = bus_slot + self.config.timing.line_transfer_cycles();
        }
        let data_at = bus_slot + delay;
        self.clock = self.clock.max(data_at);
        data_at
    }

    /// Advances the controller's notion of time (processing refreshes and
    /// epoch boundaries) without serving an access.
    pub fn advance_to(&mut self, cycle: Cycle) {
        self.clock = self.clock.max(cycle);
        self.maintain();
    }

    /// Forces the current epoch to end now — used by harnesses that want
    /// whole-epoch statistics at the end of a run.
    pub fn flush_epoch(&mut self) {
        self.end_epoch();
    }

    fn maintain(&mut self) {
        while self.next_refresh <= self.clock || self.next_epoch <= self.clock {
            if self.next_epoch <= self.next_refresh {
                let at = self.next_epoch;
                self.clock = self.clock.max(at);
                self.end_epoch();
                let _ = at;
            } else {
                self.do_refresh();
            }
        }
    }

    fn do_refresh(&mut self) {
        let end = self.next_refresh + self.config.timing.t_rfc;
        self.telemetry.emit(Event::Refresh {
            at: self.next_refresh,
        });
        // Banks are laid out `((channel * ranks) + rank) * banks_per_rank +
        // bank`, so walking the vector in order visits each rank's bank 0
        // exactly when `i % banks_per_rank == 0`.
        let banks_per_rank = self.config.geometry.banks_per_rank;
        for (i, bank) in self.banks.iter_mut().enumerate() {
            bank.force_busy_until(end);
            if i % banks_per_rank == 0 {
                bank.record_refresh();
            }
        }
        self.next_refresh += self.config.timing.t_refi;
    }

    fn end_epoch(&mut self) {
        let at = self.next_epoch.min(self.clock.max(self.next_epoch));
        self.metrics.epoch_hot_row_history.push(
            self.hammer
                .rows_with_activations_at_least(self.config.act_stat_threshold) as u64,
        );
        self.metrics
            .epoch_swap_history
            .push(std::mem::take(&mut self.epoch_swaps));
        self.hammer.end_epoch();
        let mut actions = std::mem::take(&mut self.action_scratch);
        actions.clear();
        self.mitigation.on_epoch_end(at, &mut actions);
        self.execute_actions(&actions, at);
        self.action_scratch = actions;
        for b in &mut self.banks {
            b.begin_epoch();
        }
        let epoch = self.metrics.epochs_completed.get();
        self.metrics.epochs_completed.inc();
        if self.telemetry.tracing() {
            self.telemetry.set_now(at);
            self.telemetry.emit(Event::EpochRollover { at, epoch });
            self.telemetry.sample_epoch(epoch, at);
        }
        self.next_epoch += self.config.timing.epoch;
    }

    fn execute_actions(&mut self, actions: &[MitigationAction], at: Cycle) {
        for action in actions {
            match *action {
                MitigationAction::TargetedRefresh(victim) => {
                    if self.config.geometry.contains(victim) {
                        self.bank_mut(victim).targeted_refresh(at);
                        self.hammer.record_targeted_refresh(victim);
                        self.metrics.targeted_refreshes.inc();
                        self.telemetry.emit(Event::TargetedRefresh {
                            at,
                            bank: victim.bank_index(&self.config.geometry) as u64,
                            row: victim.row.0 as u64,
                        });
                    }
                }
                MitigationAction::RowSwap { a, b } | MitigationAction::RowUnswap { a, b } => {
                    let is_swap = matches!(action, MitigationAction::RowSwap { .. });
                    let cost = self.config.swap_cycles;
                    let ch = a.channel.0 as usize;
                    let start = at.max(self.channel_blocked.get(ch).copied().unwrap_or(0));
                    let end = start + cost;
                    if let Some(slot) = self.channel_blocked.get_mut(ch) {
                        *slot = end;
                    }
                    for row in [a, b] {
                        let bank = self.bank_mut(row);
                        bank.force_busy_until(end);
                        // Each row is streamed out and back in: two row
                        // activations' worth of disturbance and two
                        // transfer commands (§4.4).
                        bank.record_swap_transfer();
                        bank.record_swap_transfer();
                        self.hammer.record_activation(row);
                        self.hammer.record_activation(row);
                    }
                    self.metrics.swap_busy_cycles.add(cost);
                    if is_swap {
                        self.metrics.swaps.inc();
                        self.epoch_swaps += 1;
                    } else {
                        self.metrics.unswaps.inc();
                    }
                    if self.telemetry.tracing() {
                        let (row_a, row_b) = (a.row.0 as u64, b.row.0 as u64);
                        // Swaps never cross banks, so `a`'s flat index
                        // identifies the pair's bank.
                        let bank = a.bank_index(&self.config.geometry) as u64;
                        if is_swap {
                            self.telemetry.emit(Event::SwapStart {
                                at: start,
                                bank,
                                row_a,
                                row_b,
                            });
                            self.telemetry.emit(Event::SwapDone {
                                at: end,
                                bank,
                                row_a,
                                row_b,
                            });
                        } else {
                            self.telemetry.emit(Event::Unswap {
                                at: start,
                                bank,
                                row_a,
                                row_b,
                            });
                        }
                    }
                }
                MitigationAction::FullRefresh => {
                    self.hammer.full_refresh();
                    // Minimum time to refresh all of memory: one tRFC per
                    // 8192-row refresh group (§2.4 quotes ≈2.8 ms).
                    let groups = 8_192u64;
                    let end = at + groups * self.config.timing.t_rfc;
                    for bank in &mut self.banks {
                        bank.force_busy_until(end);
                    }
                    for ch in &mut self.channel_blocked {
                        *ch = (*ch).max(end);
                    }
                    self.metrics.full_refreshes.inc();
                    self.telemetry.emit(Event::FullRefresh { at });
                }
            }
        }
    }
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("mitigation", &self.mitigation.name())
            .field("clock", &self.clock)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::NoMitigation;

    fn controller() -> MemoryController {
        MemoryController::new(
            ControllerConfig::test_config(),
            Box::new(NoMitigation::new()),
        )
    }

    #[test]
    fn read_returns_reasonable_latency() {
        let mut c = controller();
        let done = c.access(0, false, 100);
        let t = c.config().timing;
        assert!(done >= 100 + t.t_rcd + t.t_cas);
        assert!(
            done < 100 + 10 * t.t_rc,
            "latency unexpectedly high: {done}"
        );
        assert_eq!(c.stats().reads, 1);
        assert_eq!(c.stats().activations, 1);
    }

    #[test]
    fn same_row_access_hits_row_buffer() {
        let mut c = controller();
        let d1 = c.access(0, false, 0);
        let d2 = c.access(128, false, d1); // same channel, next column
        assert_eq!(c.stats().row_hits, 1);
        assert!(d2 > d1);
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut c = controller();
        let _ = c.access(0, false, 0);
        // tiny_test has 1 channel; use baseline config for this check.
        let mut c2 = MemoryController::new(
            ControllerConfig::asplos22_baseline(),
            Box::new(NoMitigation::new()),
        );
        let a = c2.access(0, false, 0); // channel 0
        let b = c2.access(64, false, 0); // channel 1
                                         // Both complete at the same uncontended latency.
        assert_eq!(a, b);
    }

    #[test]
    fn writes_are_counted() {
        let mut c = controller();
        c.access(0, true, 0);
        assert_eq!(c.stats().writes, 1);
        assert_eq!(c.stats().reads, 0);
    }

    #[test]
    fn epochs_advance_with_time() {
        let mut c = controller();
        let epoch = c.config().timing.epoch;
        c.advance_to(3 * epoch + 1);
        assert_eq!(c.stats().epochs_completed, 3);
        assert_eq!(c.stats().epoch_swap_history.len(), 3);
    }

    #[test]
    fn refresh_blocks_banks() {
        let mut c = controller();
        let t = c.config().timing;
        // Land exactly in a refresh window.
        c.advance_to(t.t_refi);
        let done = c.access(0, false, t.t_refi + 1);
        // Activation cannot begin until tRFC has elapsed.
        assert!(done >= t.t_refi + t.t_rfc + t.t_rcd + t.t_cas);
    }

    #[test]
    fn hammer_model_sees_demand_activations() {
        let mut c = controller();
        let mapper = *c.mapper();
        let row = RowAddr::new(0, 0, 0, 100);
        let other = RowAddr::new(0, 0, 0, 300);
        let mut now = 0;
        for _ in 0..50 {
            // Alternate rows to force activations.
            now = c.access(mapper.row_base(row), false, now);
            now = c.access(mapper.row_base(other), false, now);
        }
        assert_eq!(c.hammer().activations_of(row), 50);
    }

    #[test]
    fn classic_attack_flips_bits_with_no_mitigation() {
        // Use a long-enough epoch that 2 × 4800 activations (at tRC pace)
        // fit inside one refresh window.
        let mut cfg = ControllerConfig::test_config();
        cfg.timing = TimingParams::ddr4_3200().with_epoch_scale(10);
        let mut c = MemoryController::new(cfg, Box::new(NoMitigation::new()));
        let mapper = *c.mapper();
        let a = mapper.row_base(RowAddr::new(0, 0, 0, 500));
        let b = mapper.row_base(RowAddr::new(0, 0, 0, 700));
        let mut now = 0;
        for _ in 0..4_800 {
            now = c.access(a, false, now);
            now = c.access(b, false, now);
        }
        assert!(
            !c.take_bit_flips().is_empty(),
            "undefended hammering must flip bits"
        );
    }

    #[test]
    fn targeted_refresh_action_protects_victims() {
        // A mitigation that refreshes neighbours on every activation.
        struct EagerVfm(DramGeometry);
        impl Mitigation for EagerVfm {
            fn name(&self) -> &str {
                "eager-vfm"
            }
            fn on_activation(
                &mut self,
                row: RowAddr,
                _at: Cycle,
                actions: &mut Vec<MitigationAction>,
            ) {
                for n in row.neighbors(1, &self.0) {
                    actions.push(MitigationAction::TargetedRefresh(n));
                }
            }
        }
        let cfg = ControllerConfig::test_config();
        let mut c = MemoryController::new(cfg.clone(), Box::new(EagerVfm(cfg.geometry)));
        let mapper = *c.mapper();
        let a = mapper.row_base(RowAddr::new(0, 0, 0, 500));
        let b = mapper.row_base(RowAddr::new(0, 0, 0, 700));
        let mut now = 0;
        for _ in 0..6_000 {
            now = c.access(a, false, now);
            now = c.access(b, false, now);
        }
        // Distance-1 victims survive; (distance-2 disturbance from refreshes
        // is exactly the Half-Double risk, but 6K acts are not enough here.)
        let flips = c.take_bit_flips();
        assert!(flips.is_empty(), "eager VFM should stop classic hammering");
        assert!(c.stats().targeted_refreshes > 0);
    }

    #[test]
    fn row_swap_action_blocks_channel_and_costs_time() {
        struct SwapOnce {
            done: bool,
        }
        impl Mitigation for SwapOnce {
            fn name(&self) -> &str {
                "swap-once"
            }
            fn on_activation(
                &mut self,
                row: RowAddr,
                _at: Cycle,
                actions: &mut Vec<MitigationAction>,
            ) {
                if !self.done {
                    self.done = true;
                    actions.push(MitigationAction::RowSwap {
                        a: row,
                        b: row.with_row(row.row.0 + 50),
                    });
                }
            }
        }
        let mut c = MemoryController::new(
            ControllerConfig::test_config(),
            Box::new(SwapOnce { done: false }),
        );
        let d1 = c.access(0, false, 0);
        assert_eq!(c.stats().swaps, 1);
        assert!(c.stats().swap_busy_cycles > 4_000); // ~1.46 µs at 3.2 GHz
                                                     // Next access on the channel waits out the swap.
        let d2 = c.access(1 << 20, false, d1);
        assert!(d2 >= c.stats().swap_busy_cycles);
    }

    #[test]
    fn closed_page_policy_never_hits() {
        let mut cfg = ControllerConfig::test_config();
        cfg.page_policy = PagePolicy::Closed;
        let mut c = MemoryController::new(cfg, Box::new(NoMitigation::new()));
        let mut now = 0;
        for _ in 0..20 {
            now = c.access(0, false, now); // same line every time
        }
        assert_eq!(c.stats().row_hits, 0, "closed page must never row-hit");
        assert_eq!(c.stats().activations, 20);
        // Open page on the same stream hits after the first access.
        let mut open = MemoryController::new(
            ControllerConfig::test_config(),
            Box::new(NoMitigation::new()),
        );
        let mut now = 0;
        for _ in 0..20 {
            now = open.access(0, false, now);
        }
        assert_eq!(open.stats().row_hits, 19);
    }

    #[test]
    fn epoch_histories_record_hot_rows() {
        let mut cfg = ControllerConfig::test_config();
        cfg.act_stat_threshold = 10;
        let mut c = MemoryController::new(cfg, Box::new(NoMitigation::new()));
        let mapper = *c.mapper();
        let hot = mapper.row_base(RowAddr::new(0, 0, 0, 5));
        let cold = mapper.row_base(RowAddr::new(0, 0, 0, 800));
        let mut now = 0;
        for _ in 0..20 {
            now = c.access(hot, false, now);
            now = c.access(cold, false, now);
        }
        c.flush_epoch();
        // Both rows got 20 activations >= 10.
        assert_eq!(c.stats().epoch_hot_row_history.last(), Some(&2));
    }

    #[test]
    fn full_refresh_blocks_everything_for_milliseconds() {
        struct PanicButton;
        impl Mitigation for PanicButton {
            fn name(&self) -> &str {
                "panic"
            }
            fn on_activation(
                &mut self,
                _row: RowAddr,
                _at: Cycle,
                actions: &mut Vec<MitigationAction>,
            ) {
                actions.push(MitigationAction::FullRefresh);
            }
        }
        let mut c = MemoryController::new(ControllerConfig::test_config(), Box::new(PanicButton));
        let d1 = c.access(0, false, 0);
        assert_eq!(c.stats().full_refreshes, 1);
        let d2 = c.access(1 << 20, false, d1);
        let t = c.config().timing;
        assert!(d2 >= 8_192 * t.t_rfc, "full refresh must cost ~2.8 ms");
    }
}
