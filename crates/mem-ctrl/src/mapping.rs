//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! The default scheme matches common controller practice (and USIMM's
//! cache-line channel interleaving): from least to most significant,
//!
//! ```text
//! | line offset (6) | channel | column | bank | rank | row |
//! ```
//!
//! so consecutive cache lines alternate channels, consecutive lines within a
//! channel walk a row (row-buffer locality), and row bits are on top.

use rrs_dram::geometry::{DramGeometry, RowAddr};

/// A fully decoded physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// The DRAM row coordinates.
    pub row: RowAddr,
    /// Column (cache-line index within the row).
    pub column: u32,
}

/// Address mapper for a fixed geometry.
#[derive(Debug, Clone, Copy)]
pub struct AddressMapper {
    geometry: DramGeometry,
    channel_bits: u32,
    column_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    row_bits: u32,
}

const LINE_BITS: u32 = 6;

fn bits_for(n: usize) -> u32 {
    assert!(
        n.is_power_of_two(),
        "geometry dimensions must be powers of two"
    );
    n.trailing_zeros()
}

impl AddressMapper {
    /// Creates a mapper for `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if any geometry dimension is not a power of two.
    pub fn new(geometry: DramGeometry) -> Self {
        AddressMapper {
            geometry,
            channel_bits: bits_for(geometry.channels),
            column_bits: bits_for(geometry.row_size_bytes / 64),
            bank_bits: bits_for(geometry.banks_per_rank),
            rank_bits: bits_for(geometry.ranks_per_channel),
            row_bits: bits_for(geometry.rows_per_bank),
        }
    }

    /// The geometry this mapper serves.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Total addressable bytes.
    pub fn address_space(&self) -> u64 {
        self.geometry.total_bytes()
    }

    /// Decodes a physical byte address.
    ///
    /// Addresses beyond the capacity wrap (the simulator's workloads are
    /// generated in range; wrapping keeps fuzzed inputs harmless).
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        let mut a = (addr % self.address_space()) >> LINE_BITS;
        let mut take = |bits: u32| -> u64 {
            let v = a & ((1 << bits) - 1);
            a >>= bits;
            v
        };
        let channel = take(self.channel_bits) as u8;
        let column = take(self.column_bits) as u32;
        let bank = take(self.bank_bits) as u8;
        let rank = take(self.rank_bits) as u8;
        let row = take(self.row_bits) as u32;
        DecodedAddr {
            row: RowAddr::new(channel, rank, bank, row),
            column,
        }
    }

    /// Encodes DRAM coordinates back into a physical byte address
    /// (line-aligned).
    pub fn encode(&self, d: DecodedAddr) -> u64 {
        let mut addr = 0u64;
        let mut shift = LINE_BITS;
        let mut put = |v: u64, bits: u32| {
            addr |= v << shift;
            shift += bits;
        };
        put(d.row.channel.0 as u64, self.channel_bits);
        put(d.column as u64, self.column_bits);
        put(d.row.bank.0 as u64, self.bank_bits);
        put(d.row.rank.0 as u64, self.rank_bits);
        put(d.row.row.0 as u64, self.row_bits);
        addr
    }

    /// The byte address of column 0 of a row — handy for workload
    /// generators that think in rows.
    pub fn row_base(&self, row: RowAddr) -> u64 {
        self.encode(DecodedAddr { row, column: 0 })
    }

    /// Total DRAM rows in the system.
    pub fn total_rows(&self) -> u64 {
        (self.geometry.total_banks() * self.geometry.rows_per_bank) as u64
    }

    /// Enumerates rows in a canonical order (channel fastest, then bank,
    /// then rank, then row index), so that consecutive indices spread
    /// across channels and banks the way consecutive OS pages do. Indices
    /// wrap at [`AddressMapper::total_rows`].
    pub fn nth_row(&self, index: u64) -> RowAddr {
        let g = &self.geometry;
        let mut i = index % self.total_rows();
        let channel = (i % g.channels as u64) as u8;
        i /= g.channels as u64;
        let bank = (i % g.banks_per_rank as u64) as u8;
        i /= g.banks_per_rank as u64;
        let rank = (i % g.ranks_per_channel as u64) as u8;
        i /= g.ranks_per_channel as u64;
        RowAddr::new(channel, rank, bank, i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_baseline_geometry() {
        let m = AddressMapper::new(DramGeometry::asplos22_baseline());
        for addr in [0u64, 64, 4096, 1 << 20, (32u64 << 30) - 64] {
            let d = m.decode(addr);
            assert_eq!(m.encode(d), addr, "round trip of {addr:#x}");
        }
    }

    #[test]
    fn consecutive_lines_interleave_channels() {
        let m = AddressMapper::new(DramGeometry::asplos22_baseline());
        let a = m.decode(0);
        let b = m.decode(64);
        assert_ne!(a.row.channel, b.row.channel);
        let c = m.decode(128);
        assert_eq!(a.row.channel, c.row.channel);
    }

    #[test]
    fn lines_within_channel_walk_a_row() {
        let m = AddressMapper::new(DramGeometry::asplos22_baseline());
        let a = m.decode(0);
        let c = m.decode(128); // same channel, next column
        assert_eq!(a.row, c.row);
        assert_eq!(c.column, a.column + 1);
    }

    #[test]
    fn row_changes_only_past_bank_bits() {
        let m = AddressMapper::new(DramGeometry::asplos22_baseline());
        // Stride of one full row (8 KB) * channels * banks * ranks walks rows.
        let g = DramGeometry::asplos22_baseline();
        let stride =
            (g.row_size_bytes * g.channels * g.banks_per_rank * g.ranks_per_channel) as u64;
        let a = m.decode(0);
        let b = m.decode(stride);
        assert_eq!(a.row.bank, b.row.bank);
        assert_eq!(b.row.row.0, a.row.row.0 + 1);
    }

    #[test]
    fn decode_stays_in_geometry() {
        let g = DramGeometry::tiny_test();
        let m = AddressMapper::new(g);
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let d = m.decode(x);
            assert!(g.contains(d.row), "decoded {:?} out of range", d.row);
        }
    }

    #[test]
    fn addresses_beyond_capacity_wrap() {
        let g = DramGeometry::tiny_test();
        let m = AddressMapper::new(g);
        assert_eq!(m.decode(g.total_bytes()), m.decode(0));
    }

    #[test]
    fn nth_row_enumerates_all_rows_uniquely() {
        let g = DramGeometry::tiny_test();
        let m = AddressMapper::new(g);
        let total = m.total_rows();
        assert_eq!(total, 2 * 1024);
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            let r = m.nth_row(i);
            assert!(g.contains(r), "row {i} out of range: {r:?}");
            assert!(seen.insert(r), "duplicate row at index {i}");
        }
        // Wraps.
        assert_eq!(m.nth_row(total), m.nth_row(0));
    }

    #[test]
    fn nth_row_spreads_consecutive_indices_across_banks() {
        let m = AddressMapper::new(DramGeometry::asplos22_baseline());
        let a = m.nth_row(0);
        let b = m.nth_row(1);
        assert_ne!(a.channel, b.channel);
        let c = m.nth_row(2);
        assert_ne!((a.channel, a.bank), (c.channel, c.bank));
    }

    #[test]
    fn row_base_is_column_zero() {
        let m = AddressMapper::new(DramGeometry::tiny_test());
        let row = RowAddr::new(0, 0, 1, 42);
        let d = m.decode(m.row_base(row));
        assert_eq!(d.row, row);
        assert_eq!(d.column, 0);
    }
}
