//! Queue-based memory-request scheduler: FCFS and FR-FCFS.
//!
//! The main [`crate::MemoryController`] serves requests synchronously in
//! arrival order with burst batching — a faithful, fast abstraction of the
//! paper's FCFS setup. This module provides the explicit alternative: a
//! [`QueuedController`] holding a real per-channel request queue and
//! arbitrating each issue slot under a [`SchedPolicy`]:
//!
//! * **FCFS** — strictly oldest-first (the paper's §3 policy),
//! * **FR-FCFS** — first-ready (row hit) first, then oldest; the classic
//!   open-page scheduler most controllers implement.
//!
//! It is open-loop (callers submit timestamped requests and drain
//! completions), which makes it ideal for scheduler studies over recorded
//! traces: the `scheduler_ablation` bench uses it to quantify how much
//! row-hit-first arbitration matters and to validate the burst
//! approximation of the synchronous controller.

use std::collections::VecDeque;

use rrs_dram::bank::Bank;
use rrs_dram::geometry::DramGeometry;
use rrs_dram::timing::{Cycle, TimingParams};
use rrs_telemetry::{Counter, Event, Telemetry};

use crate::mapping::{AddressMapper, DecodedAddr};

/// Arbitration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Oldest request first (the paper's configuration).
    #[default]
    Fcfs,
    /// Row hits first, then oldest (first-ready FCFS).
    FrFcfs,
}

/// A completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Caller-assigned request id.
    pub id: u64,
    /// Cycle the data burst finished.
    pub done_at: Cycle,
    /// Whether the access hit the open row.
    pub row_hit: bool,
}

#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    decoded: DecodedAddr,
    is_write: bool,
    arrival: Cycle,
}

/// Per-channel queued controller with pluggable arbitration.
#[derive(Debug)]
pub struct QueuedController {
    geometry: DramGeometry,
    timing: TimingParams,
    policy: SchedPolicy,
    mapper: AddressMapper,
    banks: Vec<Bank>,
    queues: Vec<VecDeque<Pending>>,
    bus_free: Vec<Cycle>,
    completions: Vec<Completion>,
    queue_capacity: usize,
    telemetry: Telemetry,
    row_hits: Counter,
    activations: Counter,
    stalls: Counter,
}

impl QueuedController {
    /// Creates a controller with a private telemetry spine.
    pub fn new(
        geometry: DramGeometry,
        timing: TimingParams,
        policy: SchedPolicy,
        queue_capacity: usize,
    ) -> Self {
        Self::with_telemetry(geometry, timing, policy, queue_capacity, Telemetry::new())
    }

    /// Creates a controller publishing `sched.*` counters (and
    /// [`Event::SchedulerStall`] events, when tracing) on `telemetry`.
    pub fn with_telemetry(
        geometry: DramGeometry,
        timing: TimingParams,
        policy: SchedPolicy,
        queue_capacity: usize,
        telemetry: Telemetry,
    ) -> Self {
        QueuedController {
            mapper: AddressMapper::new(geometry),
            banks: (0..geometry.total_banks())
                .map(|_| Bank::new(timing))
                .collect(),
            queues: (0..geometry.channels).map(|_| VecDeque::new()).collect(),
            bus_free: vec![0; geometry.channels],
            completions: Vec::new(),
            queue_capacity: queue_capacity.max(1),
            row_hits: telemetry.counter("sched.row_hits"),
            activations: telemetry.counter("sched.activations"),
            stalls: telemetry.counter("sched.stalls"),
            telemetry,
            geometry,
            timing,
            policy,
        }
    }

    /// The arbitration policy in force.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Row-buffer hits served so far.
    pub fn row_hits(&self) -> u64 {
        self.row_hits.get()
    }

    /// Activations issued so far.
    pub fn activations(&self) -> u64 {
        self.activations.get()
    }

    /// Submissions rejected because the target channel queue was full.
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }

    /// Row-buffer hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits() + self.activations();
        if total == 0 {
            0.0
        } else {
            self.row_hits() as f64 / total as f64
        }
    }

    /// Submits a request; returns `false` (and drops it) when the target
    /// channel queue is full — callers model backpressure by retrying.
    pub fn submit(&mut self, id: u64, addr: u64, is_write: bool, arrival: Cycle) -> bool {
        let decoded = self.mapper.decode(addr);
        let ch = decoded.row.channel.0 as usize;
        let Some(q) = self.queues.get_mut(ch) else {
            return false;
        };
        if q.len() >= self.queue_capacity {
            self.stalls.inc();
            if self.telemetry.tracing() {
                let queued = self.queued() as u64;
                self.telemetry.emit(Event::SchedulerStall {
                    at: arrival,
                    queued,
                });
            }
            return false;
        }
        q.push_back(Pending {
            id,
            decoded,
            is_write,
            arrival,
        });
        true
    }

    /// Total queued requests.
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Services queues until every request whose arrival is `<= horizon`
    /// has been issued, then returns all completions so far (drained).
    /// Requests arriving after `horizon` stay queued.
    pub fn drain_until(&mut self, horizon: Cycle) -> Vec<Completion> {
        for ch in 0..self.queues.len() {
            while let Some(slot) = self.pick(ch, horizon) {
                self.issue(ch, slot);
            }
        }
        std::mem::take(&mut self.completions)
    }

    /// Chooses the next queue index to issue on `ch`, honouring the policy.
    fn pick(&self, ch: usize, horizon: Cycle) -> Option<usize> {
        let q = self.queues.get(ch)?;
        let eligible = |p: &Pending| p.arrival <= horizon;
        match self.policy {
            SchedPolicy::Fcfs => {
                // Strictly oldest eligible.
                q.iter()
                    .enumerate()
                    .filter(|(_, p)| eligible(p))
                    .min_by_key(|(_, p)| p.arrival)
                    .map(|(i, _)| i)
            }
            SchedPolicy::FrFcfs => {
                // Oldest *row-hitting* eligible request, else oldest.
                let hit = q
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| eligible(p))
                    .filter(|(_, p)| {
                        let idx = p.decoded.row.bank_index(&self.geometry);
                        self.banks.get(idx).and_then(|b| b.open_row()) == Some(p.decoded.row.row)
                    })
                    .min_by_key(|(_, p)| p.arrival)
                    .map(|(i, _)| i);
                hit.or_else(|| {
                    q.iter()
                        .enumerate()
                        .filter(|(_, p)| eligible(p))
                        .min_by_key(|(_, p)| p.arrival)
                        .map(|(i, _)| i)
                })
            }
        }
    }

    fn issue(&mut self, ch: usize, slot: usize) {
        // `pick` only returns occupied slots of existing queues; if the
        // structures ever disagree, the request is simply not issued.
        let Some(p) = self.queues.get_mut(ch).and_then(|q| q.remove(slot)) else {
            return;
        };
        let idx = p.decoded.row.bank_index(&self.geometry);
        let Some(bank) = self.banks.get_mut(idx) else {
            return;
        };
        let outcome = bank.access(p.decoded.row.row, p.is_write, p.arrival);
        if outcome.row_hit {
            self.row_hits.inc();
        } else {
            self.activations.inc();
        }
        let data = outcome
            .data_at
            .max(self.bus_free.get(ch).copied().unwrap_or(0));
        if let Some(slot) = self.bus_free.get_mut(ch) {
            *slot = data + self.timing.line_transfer_cycles();
        }
        self.completions.push(Completion {
            id: p.id,
            done_at: data,
            row_hit: outcome.row_hit,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_dram::geometry::RowAddr;

    fn controller(policy: SchedPolicy) -> QueuedController {
        QueuedController::new(
            DramGeometry::tiny_test(),
            TimingParams::ddr4_3200(),
            policy,
            64,
        )
    }

    fn addr_of(row: u32, col: u32) -> u64 {
        let mapper = AddressMapper::new(DramGeometry::tiny_test());
        mapper.encode(DecodedAddr {
            row: RowAddr::new(0, 0, 0, row),
            column: col,
        })
    }

    #[test]
    fn completes_submitted_requests() {
        let mut c = controller(SchedPolicy::Fcfs);
        assert!(c.submit(1, addr_of(5, 0), false, 0));
        assert!(c.submit(2, addr_of(5, 1), false, 10));
        let done = c.drain_until(1_000);
        assert_eq!(done.len(), 2);
        assert!(done[0].done_at > 0);
        assert_eq!(c.queued(), 0);
    }

    #[test]
    fn horizon_gates_future_arrivals() {
        let mut c = controller(SchedPolicy::Fcfs);
        c.submit(1, addr_of(5, 0), false, 0);
        c.submit(2, addr_of(6, 0), false, 10_000);
        let done = c.drain_until(100);
        assert_eq!(done.len(), 1);
        assert_eq!(c.queued(), 1);
        let rest = c.drain_until(20_000);
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn backpressure_when_queue_full() {
        let mut c = QueuedController::new(
            DramGeometry::tiny_test(),
            TimingParams::ddr4_3200(),
            SchedPolicy::Fcfs,
            2,
        );
        assert!(c.submit(1, addr_of(1, 0), false, 0));
        assert!(c.submit(2, addr_of(2, 0), false, 0));
        assert!(!c.submit(3, addr_of(3, 0), false, 0), "queue is full");
    }

    #[test]
    fn frfcfs_prefers_row_hits() {
        // Interleaved rows A,B,A,B...: FCFS ping-pongs (all activations
        // after the first), FR-FCFS reorders to serve each row's requests
        // together (half the activations).
        let pattern: Vec<(u32, u32)> = (0..16)
            .map(|i| (if i % 2 == 0 { 5 } else { 9 }, i / 2))
            .collect();
        let run = |policy| {
            let mut c = controller(policy);
            for (i, (row, col)) in pattern.iter().enumerate() {
                c.submit(i as u64, addr_of(*row, *col), false, i as u64);
            }
            c.drain_until(1_000_000);
            (c.activations(), c.hit_rate())
        };
        let (fcfs_acts, fcfs_rate) = run(SchedPolicy::Fcfs);
        let (fr_acts, fr_rate) = run(SchedPolicy::FrFcfs);
        assert_eq!(fcfs_acts, 16, "FCFS ping-pong activates every time");
        assert_eq!(fr_acts, 2, "FR-FCFS serves each row in one open stretch");
        assert!(fr_rate > fcfs_rate);
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut c = controller(SchedPolicy::Fcfs);
        for i in 0..8u64 {
            c.submit(i, addr_of(i as u32, 0), false, i * 100);
        }
        let done = c.drain_until(1_000_000);
        let ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn frfcfs_never_starves_forever() {
        // Even with a steady row-hit stream, the oldest conflicting request
        // is served once the hit stream is exhausted at the horizon.
        let mut c = controller(SchedPolicy::FrFcfs);
        c.submit(0, addr_of(1, 0), false, 0); // opens row 1
        c.submit(1, addr_of(2, 0), false, 1); // conflicting
        for i in 0..10u64 {
            c.submit(10 + i, addr_of(1, 1 + i as u32), false, 2 + i);
        }
        let done = c.drain_until(1_000_000);
        assert_eq!(done.len(), 12);
        assert!(done.iter().any(|d| d.id == 1), "conflicting request served");
    }
}
