//! Property-based tests for address mapping and controller behaviour.

use rrs_check::{check, Gen};
use rrs_dram::geometry::DramGeometry;
use rrs_mem_ctrl::controller::{ControllerConfig, MemoryController};
use rrs_mem_ctrl::mapping::AddressMapper;
use rrs_mem_ctrl::mitigation::NoMitigation;

/// Draws a valid (power-of-two) geometry.
fn geometry(g: &mut Gen) -> DramGeometry {
    DramGeometry {
        channels: 1 << g.u32_in(0..2),
        ranks_per_channel: 1 << g.u32_in(0..2),
        banks_per_rank: 1 << g.u32_in(1..5),
        rows_per_bank: 1 << g.u32_in(8..12),
        row_size_bytes: 8 * 1024,
    }
}

/// decode/encode round-trips for any in-range line-aligned address on
/// any valid geometry.
#[test]
fn mapper_round_trips() {
    check(|g| {
        let geom = geometry(g);
        let raw = g.u64();
        let m = AddressMapper::new(geom);
        let addr = (raw % m.address_space()) & !63;
        let d = m.decode(addr);
        assert!(geom.contains(d.row));
        assert_eq!(m.encode(d), addr);
    });
}

/// nth_row enumerates a bijection over all rows of any geometry.
#[test]
fn nth_row_is_a_bijection() {
    check(|g| {
        let geom = geometry(g);
        let m = AddressMapper::new(geom);
        let total = m.total_rows();
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            assert!(seen.insert(m.nth_row(i)), "duplicate at {}", i);
        }
        assert_eq!(seen.len() as u64, total);
    });
}

/// Distinct line-aligned addresses decode to distinct (row, column)
/// coordinates — the mapping never aliases.
#[test]
fn mapping_never_aliases() {
    check(|g| {
        let m = AddressMapper::new(DramGeometry::asplos22_baseline());
        let a = (g.u64() % m.address_space()) & !63;
        let b = (g.u64() % m.address_space()) & !63;
        if a == b {
            return;
        }
        assert_ne!(m.decode(a), m.decode(b));
    });
}

/// Controller causality: completions are strictly after requests, and
/// requests presented in non-decreasing time order never produce
/// out-of-thin-air early completions.
#[test]
fn controller_is_causal() {
    check(|g| {
        let reqs = g.vec(1..80, |g| (g.u64(), g.bool(), g.u64_in(0..2_000)));
        let mut mc = MemoryController::new(
            ControllerConfig::test_config(),
            Box::new(NoMitigation::new()),
        );
        let mut now = 0u64;
        for (addr, is_write, gap) in reqs {
            now += gap;
            let done = mc.access(addr, is_write, now);
            assert!(done > now, "completion {} <= request {}", done, now);
        }
    });
}

/// Statistics conservation: reads + writes equals requests served, and
/// every access is either a row hit or an activation.
#[test]
fn controller_stats_conserve() {
    check(|g| {
        let reqs = g.vec(1..100, |g| (g.u64(), g.bool()));
        let mut mc = MemoryController::new(
            ControllerConfig::test_config(),
            Box::new(NoMitigation::new()),
        );
        let mut now = 0u64;
        for (addr, is_write) in &reqs {
            now = mc.access(*addr, *is_write, now);
        }
        let s = mc.stats();
        assert_eq!(s.reads + s.writes, reqs.len() as u64);
        assert_eq!(s.activations + s.row_hits, reqs.len() as u64);
    });
}
