//! Property-based tests for address mapping and controller behaviour.

use proptest::collection::vec;
use proptest::prelude::*;

use rrs_dram::geometry::DramGeometry;
use rrs_mem_ctrl::controller::{ControllerConfig, MemoryController};
use rrs_mem_ctrl::mapping::AddressMapper;
use rrs_mem_ctrl::mitigation::NoMitigation;

/// Strategy over valid (power-of-two) geometries.
fn geometries() -> impl Strategy<Value = DramGeometry> {
    (0u32..2, 0u32..2, 1u32..5, 8u32..12).prop_map(|(ch, rk, bk, rows)| DramGeometry {
        channels: 1 << ch,
        ranks_per_channel: 1 << rk,
        banks_per_rank: 1 << bk,
        rows_per_bank: 1 << rows,
        row_size_bytes: 8 * 1024,
    })
}

proptest! {
    /// decode/encode round-trips for any in-range line-aligned address on
    /// any valid geometry.
    #[test]
    fn mapper_round_trips(g in geometries(), raw in any::<u64>()) {
        let m = AddressMapper::new(g);
        let addr = (raw % m.address_space()) & !63;
        let d = m.decode(addr);
        prop_assert!(g.contains(d.row));
        prop_assert_eq!(m.encode(d), addr);
    }

    /// nth_row enumerates a bijection over all rows of any geometry.
    #[test]
    fn nth_row_is_a_bijection(g in geometries()) {
        let m = AddressMapper::new(g);
        let total = m.total_rows();
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            prop_assert!(seen.insert(m.nth_row(i)), "duplicate at {}", i);
        }
        prop_assert_eq!(seen.len() as u64, total);
    }

    /// Distinct line-aligned addresses decode to distinct (row, column)
    /// coordinates — the mapping never aliases.
    #[test]
    fn mapping_never_aliases(a in any::<u64>(), b in any::<u64>()) {
        let m = AddressMapper::new(DramGeometry::asplos22_baseline());
        let a = (a % m.address_space()) & !63;
        let b = (b % m.address_space()) & !63;
        prop_assume!(a != b);
        prop_assert_ne!(m.decode(a), m.decode(b));
    }

    /// Controller causality: completions are strictly after requests, and
    /// requests presented in non-decreasing time order never produce
    /// out-of-thin-air early completions.
    #[test]
    fn controller_is_causal(reqs in vec((any::<u64>(), any::<bool>(), 0u64..2_000), 1..80)) {
        let mut mc = MemoryController::new(
            ControllerConfig::test_config(),
            Box::new(NoMitigation::new()),
        );
        let mut now = 0u64;
        for (addr, is_write, gap) in reqs {
            now += gap;
            let done = mc.access(addr, is_write, now);
            prop_assert!(done > now, "completion {} <= request {}", done, now);
        }
    }

    /// Statistics conservation: reads + writes equals requests served, and
    /// every access is either a row hit or an activation.
    #[test]
    fn controller_stats_conserve(reqs in vec((any::<u64>(), any::<bool>()), 1..100)) {
        let mut mc = MemoryController::new(
            ControllerConfig::test_config(),
            Box::new(NoMitigation::new()),
        );
        let mut now = 0u64;
        for (addr, is_write) in &reqs {
            now = mc.access(*addr, *is_write, now);
        }
        let s = mc.stats();
        prop_assert_eq!(s.reads + s.writes, reqs.len() as u64);
        prop_assert_eq!(s.activations + s.row_hits, reqs.len() as u64);
    }
}
