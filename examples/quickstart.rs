//! Quickstart: the RRS mechanism in isolation.
//!
//! Builds a single-bank Randomized Row-Swap engine at a small design point,
//! hammers one row, and shows the tracker firing, the swap happening, and
//! the Row Indirection Table redirecting subsequent accesses.
//!
//! Run with: `cargo run --example quickstart`

use rrs::core::rrs::{BankRrs, RrsAction, RrsConfig};
use rrs::core::tracker::HotRowTracker;

fn main() {
    // A scaled design point: defend T_RH = 60 by swapping every
    // T_RRS = 10 activations, in a 1024-row bank.
    let config = RrsConfig::for_threshold(60, 1_000, 1_024);
    println!("== Randomized Row-Swap quickstart ==");
    println!(
        "design point: T_RH = {}, T_RRS = {}, tracker entries = {}, RIT tuples = {}",
        config.t_rh, config.t_rrs, config.tracker_entries, config.rit_tuples
    );

    let mut bank = BankRrs::new(config, 0);
    let aggressor = 7u64;

    println!("\nhammering logical row {aggressor}:");
    for act in 1..=30u64 {
        let actions = bank.on_activation(aggressor);
        for action in &actions {
            match action {
                RrsAction::Swap(ps) => println!(
                    "  ACT #{act:>2}: tracker hit a multiple of T_RRS -> swapped \
                     physical rows {} <-> {}",
                    ps.row_a, ps.row_b
                ),
                RrsAction::Unswap(ps) => println!(
                    "  ACT #{act:>2}: RIT eviction -> un-swapped {} <-> {}",
                    ps.row_a, ps.row_b
                ),
                RrsAction::Alarm { row } => println!("  ACT #{act:>2}: detector alarm on {row}"),
            }
        }
        if actions.is_empty() && act % 10 == 1 {
            println!(
                "  ACT #{act:>2}: row {} currently lives at physical row {}",
                aggressor,
                bank.resolve(aggressor)
            );
        }
    }

    let stats = bank.stats();
    println!("\nafter 30 activations:");
    println!("  swaps performed        : {}", stats.swaps);
    println!("  resolved location of 7 : {}", bank.resolve(aggressor));
    println!("  RIT tuples in use      : {}", bank.rit().tuples_in_use());
    println!(
        "  tracker count for row 7: {:?}",
        bank.tracker().count_of(aggressor)
    );

    println!("\nending the epoch (tracker reset, RIT locks cleared)...");
    let epoch_swaps = bank.end_epoch();
    println!("  swaps in the epoch     : {epoch_swaps}");
    println!(
        "  mapping persists       : row 7 still at physical {}",
        bank.resolve(aggressor)
    );
    println!("\nThe aggressor never accumulated more than T_RRS activations at any");
    println!("single physical location: the spatial correlation between aggressor");
    println!("and victim rows is broken, which is the core idea of the paper.");
}
