//! Attack lab: every attack pattern against every defense.
//!
//! Reproduces the security story of the paper's Table 7 and §5 end to end
//! on the cycle-level simulator: classic Row Hammer flips undefended
//! memory; victim-focused mitigation stops classic patterns but is
//! defeated by Half-Double; RRS stops everything, including the §5.3
//! swap-chasing attack tailored against it.
//!
//! Run with: `cargo run --release --example attack_lab`

use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::workloads::AttackKind;

fn main() {
    // Scale 100: epochs of 0.64 ms, T_RH = 48. Every threshold ratio of the
    // paper's design point is preserved (see DESIGN.md on scaling).
    let cfg = ExperimentConfig::default()
        .with_scale(100)
        .with_instructions(200_000);
    println!(
        "== Attack lab (scale 1/{}: T_RH = {}) ==",
        cfg.scale,
        cfg.t_rh()
    );

    let attacks = [
        AttackKind::SingleSided,
        AttackKind::DoubleSided,
        AttackKind::HalfDouble,
        AttackKind::ManySided(6),
        AttackKind::Blacksmith { n: 4 },
        cfg.swap_chasing_attack(),
    ];
    let defenses = [
        MitigationKind::None,
        MitigationKind::VictimRefresh,
        MitigationKind::Rrs,
    ];

    println!(
        "\n{:<18} {:>12} {:>12} {:>12}",
        "attack", "none", "vfm-ideal", "rrs"
    );
    for attack in attacks {
        print!("{:<18}", attack.name());
        for defense in defenses {
            let outcome = cfg.run_attack(attack, defense, 2);
            let cell = if outcome.attack_succeeded() {
                format!("FLIPS({})", outcome.bit_flips.len())
            } else {
                "safe".to_string()
            };
            print!(" {cell:>12}");
        }
        println!();
    }

    println!("\nExpected shape (Table 7):");
    println!("  - no defense      : every hammering pattern flips bits");
    println!("  - victim-focused  : stops classic patterns, LOSES to half-double");
    println!("                      (and to sustained blacksmith-style patterns,");
    println!("                      whose own victim refreshes assist the attack —");
    println!("                      exactly how Blacksmith later broke TRR)");
    println!("  - RRS             : stops everything, including swap-chasing");
}
