//! Paper walkthrough: the conceptual figures of the paper, executed.
//!
//! * Figure 3 — the 3-entry Misra-Gries tracker example, step by step,
//!   exactly with the paper's state (A:6, X:3, Y:9, spill 2);
//! * Figure 4 — a row swap through the swap buffers, with its timing;
//! * Figure 2 — the access flow ①–⑤ through RIT and HRT;
//! * Figure 7 — one round of the attacker's optimal strategy.
//!
//! Run with: `cargo run --example paper_walkthrough`

use rrs::core::rrs::{BankRrs, RrsAction, RrsConfig};
use rrs::core::swap::{SwapEngine, SwapMode};
use rrs::core::tracker::{CamTracker, HotRowTracker, TrackerConfig};
use rrs::dram::timing::TimingParams;

fn main() {
    figure3();
    figure4();
    figure2_flow();
    figure7_attacker_round();
}

/// Figure 3: "Operation of Misra-Gries Tracker with 3-entries."
fn figure3() {
    println!("== Figure 3: Misra-Gries tracker, 3 entries ==");
    let mut t = CamTracker::new(TrackerConfig {
        entries: 3,
        threshold: 1_000,
    });
    // Paper's initial state: {Row-A: 6, Row-X: 3, Row-Y: 9}, spill = 2.
    for _ in 0..6 {
        t.record_access(0xA);
    }
    for _ in 0..3 {
        t.record_access(0x5); // Row-X
    }
    // Building Y to 9 pushes the spill; rebuild the exact paper state by
    // constructing counts directly through accesses:
    for _ in 0..9 {
        t.record_access(0x9); // Row-Y
    }
    // Two misses to bump the spill counter to 2 (min is 3 at this point).
    t.record_access(0xB0);
    // the install filled nothing: entries are full, min=3 > spill=0 -> spill=1
    t.record_access(0xB1); // spill=2
    println!(
        "  state: A={:?} X={:?} Y={:?}, spill={}",
        t.count_of(0xA),
        t.count_of(0x5),
        t.count_of(0x9),
        t.spill()
    );

    // "When Row-A arrives, as it is present, the count is incremented 6->7."
    t.record_access(0xA);
    println!("  Row-A arrives: count -> {:?}", t.count_of(0xA).unwrap());

    // "When Row-B arrives ... min (3) > spill (2): only the spill counter is
    // incremented."
    t.record_access(0xB);
    println!(
        "  Row-B arrives: not installed (tracked? {}), spill -> {}",
        t.contains(0xB),
        t.spill()
    );

    // "When Row-C arrives ... min == spill: Row-X is replaced with Row-C and
    // its count set to spill+1 = 4."
    t.record_access(0xC);
    println!(
        "  Row-C arrives: Row-X evicted (tracked? {}), Row-C count = {:?}\n",
        t.contains(0x5),
        t.count_of(0xC).unwrap()
    );
}

/// Figure 4: the four-transfer row swap and its §4.4 timing.
fn figure4() {
    println!("== Figure 4: row swap through the swap buffers ==");
    let timing = TimingParams::ddr4_3200();
    let row_bytes = 8 * 1024;
    let transfer_ns = timing.cycles_to_ns(timing.row_transfer_cycles(row_bytes));
    println!("  (a) Row-X -> Swap-Buffer-1   {transfer_ns:.0} ns");
    println!("  (b) Row-Y -> Swap-Buffer-2   {transfer_ns:.0} ns");
    println!("  (c) Buffer-1 -> Row-Y        {transfer_ns:.0} ns");
    println!("  (d) Buffer-2 -> Row-X        {transfer_ns:.0} ns, RIT <- (X,Y)");
    let mut engine = SwapEngine::new(&timing, row_bytes, SwapMode::Buffered);
    let done = engine.record_swap(0);
    println!(
        "  total: {:.2} µs per swap (paper: ~1.46 µs); swap+unswap: {:.2} µs\n",
        timing.cycles_to_ns(done) / 1e3,
        timing.cycles_to_ns(timing.swap_plus_unswap_cycles(row_bytes)) / 1e3,
    );
}

/// Figure 2: the access flow ① index RIT+HRT, ② redirect, ④ swap verdict,
/// ⑤ randomized destination.
fn figure2_flow() {
    println!("== Figure 2: access flow through RIT and HRT ==");
    let config = RrsConfig::for_threshold(60, 1_000, 1_024);
    let mut bank = BankRrs::new(config, 0);
    let row = 42u64;
    println!("  ① access row {row}: RIT lookup -> {}", bank.resolve(row));
    for i in 1..=10 {
        let actions = bank.on_activation(row);
        if let Some(RrsAction::Swap(ps)) = actions.first() {
            println!("  ④ HRT: activation #{i} crossed T_RRS={}", config.t_rrs);
            println!(
                "  ⑤ PRNG destination chosen; physical {} <-> {}",
                ps.row_a, ps.row_b
            );
        }
    }
    println!(
        "  ② next access to row {row} redirects to physical {}\n",
        bank.resolve(row)
    );
}

/// Figure 7: one round of the optimal attacker — T activations, a swap,
/// and the attacker forced to re-roll.
fn figure7_attacker_round() {
    println!("== Figure 7: the attacker's best strategy, one round ==");
    let config = RrsConfig::for_threshold(60, 1_000, 1 << 17);
    let mut bank = BankRrs::new(config, 0);
    let target = 7_777u64;
    let mut acts = 0;
    loop {
        acts += 1;
        let actions = bank.on_activation(target);
        if !actions.is_empty() {
            break;
        }
    }
    println!("  attacker hammered row {target} exactly {acts} times (T_RRS)");
    println!(
        "  row now lives at physical {} — unknown to the attacker, who must\n  \
         pick another random row and hope it lands on a previously swapped\n  \
         location (needs k={} hits on one location; expected time at the\n  \
         paper's design point: 3.8 years, Table 4).",
        bank.resolve(target),
        config.k(),
    );
}
