//! Epoch inspector: the life cycle of RRS state across refresh windows.
//!
//! Drives a multi-epoch run and prints per-epoch dynamics — tracker resets,
//! RIT lock/lazy-drain behaviour (§4.3), swap counts, and the attack
//! detector extension (§5.3.2 footnote 2) flagging a swap-chasing attack.
//!
//! Run with: `cargo run --release --example epoch_inspector`

use rrs::core::detector::DetectorConfig;
use rrs::core::rrs::{BankRrs, RrsAction, RrsConfig};

fn main() {
    let mut config = RrsConfig::for_threshold(60, 2_000, 4_096).with_detector(DetectorConfig {
        swaps_per_row_alarm: 3,
    });
    // Shrink the RIT so the lazy-drain phase actually has to evict.
    config.rit_tuples = 60;
    println!("== Epoch inspector ==");
    println!(
        "T_RRS = {}, tracker entries = {}, RIT tuples = {}, detector alarms at {} same-row swaps/epoch",
        config.t_rrs,
        config.tracker_entries,
        config.rit_tuples,
        config.detector.unwrap().swaps_per_row_alarm
    );

    let mut bank = BankRrs::new(config, 0);

    // Phase 1: benign-ish traffic — a few warm rows, below the threshold.
    println!("\n-- epoch 0: benign traffic (rows 10..20, 8 ACTs each) --");
    for row in 10..20u64 {
        for _ in 0..8 {
            bank.on_activation(row);
        }
    }
    report(&bank, "after benign traffic");
    let swaps = bank.end_epoch();
    println!("  epoch 0 closed: {swaps} swaps, locks cleared");

    // Phase 2: one hot row — swaps accumulate, mapping persists.
    println!("\n-- epoch 1: one hot row (row 42, 35 ACTs) --");
    for _ in 0..35 {
        bank.on_activation(42);
    }
    report(&bank, "after hot row");
    println!(
        "  row 42 now resolves to physical {} (was 42)",
        bank.resolve(42)
    );
    let swaps = bank.end_epoch();
    println!("  epoch 1 closed: {swaps} swaps; mapping persists (lazy drain)");
    println!("  row 42 still resolves to {}", bank.resolve(42));

    // Phase 3: an attacker repeatedly re-hammering the same row — the
    // detector extension fires.
    println!("\n-- epoch 2: attacker re-hammers row 42 --");
    let mut alarms = 0;
    for _ in 0..60 {
        for action in bank.on_activation(42) {
            if let RrsAction::Alarm { row } = action {
                alarms += 1;
                println!("  !! detector alarm: row {row} swapped repeatedly this epoch");
            }
        }
    }
    report(&bank, "after attack burst");
    println!("  alarms raised: {alarms} (escalation: preemptive full-memory refresh)");

    // Phase 4: RIT drains lazily under fresh traffic.
    println!("\n-- epoch 3: fresh traffic forces lazy drain --");
    bank.end_epoch();
    let before = bank.rit().tuples_in_use();
    for row in 100..140u64 {
        for _ in 0..10 {
            bank.on_activation(row);
        }
    }
    let after = bank.rit().tuples_in_use();
    println!("  RIT tuples: {before} -> {after} (evictions un-swap old epochs' rows)");
    println!("  unswaps so far: {}", bank.stats().unswaps);
}

fn report(bank: &BankRrs, label: &str) {
    use rrs::core::tracker::HotRowTracker;
    let s = bank.stats();
    println!(
        "  [{label}] tracker rows: {}, RIT tuples: {} (locked {}), swaps: {}, retries: {}",
        bank.tracker().len(),
        bank.rit().tuples_in_use(),
        bank.rit().locked_count(),
        s.swaps,
        s.destination_retries,
    );
}
