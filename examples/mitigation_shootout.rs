//! Mitigation shootout: benign-workload performance comparison.
//!
//! Runs a sample of the calibrated workload population under no defense,
//! RRS, and BlockHammer, and prints normalized performance — a miniature
//! of the paper's Figures 6 and 11 (RRS: ~0.4% average slowdown;
//! BlockHammer: larger, with a heavy tail on hot-row workloads).
//!
//! Run with: `cargo run --release --example mitigation_shootout`

use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::workloads::catalog::{spec_by_name, Workload};

fn main() {
    let cfg = ExperimentConfig::default()
        .with_scale(100)
        .with_instructions(6_000_000);
    println!(
        "== Mitigation shootout (scale 1/{}, {} instr/core, {} cores) ==",
        cfg.scale, cfg.instructions_per_core, cfg.cores
    );

    // A spread of behaviours: many hot rows (hmmer/bzip2), moderate (gcc),
    // memory-bound with few hot rows (sphinx), and fully cold (libquantum).
    let names = ["hmmer", "bzip2", "gcc", "sphinx", "libquantum"];
    let defenses = [
        MitigationKind::Rrs,
        MitigationKind::Graphene,
        MitigationKind::BlockHammer512,
        MitigationKind::BlockHammer1k,
    ];

    println!(
        "\n{:<12} {:>10} {:>8} | {:>9} {:>9} {:>9} {:>9}",
        "workload", "base IPC", "swaps", "rrs", "graphene", "bh-512", "bh-1k"
    );
    for name in names {
        let w = Workload::Single(spec_by_name(name).expect("known workload"));
        let base = cfg.run_workload(&w, MitigationKind::None);
        print!("{:<12} {:>10.3}", name, base.aggregate_ipc());
        let mut swaps_shown = false;
        for d in defenses {
            let r = cfg.run_workload(&w, d);
            if !swaps_shown {
                print!(" {:>8}", r.stats.swaps);
                print!(" |");
                swaps_shown = true;
            }
            print!(" {:>9.4}", r.normalized_to(&base));
        }
        println!();
    }

    println!("\nnormalized performance: 1.0 = no-defense baseline; higher is better.");
    println!("Expected shape (Figures 6 & 11): RRS stays within a few percent of");
    println!("1.0 everywhere; BlockHammer degrades hot-row workloads noticeably.");
}
