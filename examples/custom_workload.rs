//! Custom workloads end to end: define a workload in a spec file, run it
//! against RRS, capture its trace, and replay the trace deterministically.
//!
//! This is the adoption path for users who want to study their own access
//! patterns rather than the paper's 78-workload population.
//!
//! Run with: `cargo run --release --example custom_workload`

use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::sim::TraceSource;
use rrs::workloads::catalog::Workload;
use rrs::workloads::generator::{GenParams, SyntheticWorkload};

const SPEC: &str = "\
# A pointer-chasing kernel with a small hot index structure.
workload chasing_kernel
footprint_mb 512
mpki 9.0
hot_rows 64
write_fraction 0.2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Custom workloads: spec file -> run -> capture -> replay ==\n");

    // 1. Parse the spec (normally from a file via rrs_workloads::load_specs).
    let specs = rrs::workloads::parse_specs(SPEC)?;
    let spec = specs[0];
    println!(
        "parsed {:?}: footprint {} MB, MPKI {}, {} hot rows",
        spec.name,
        spec.footprint_bytes >> 20,
        spec.mpki,
        spec.hot_rows
    );

    // 2. Run it under no defense and under RRS.
    let cfg = ExperimentConfig::default()
        .with_scale(100)
        .with_instructions(3_000_000);
    let workload = Workload::Single(spec);
    let base = cfg.run_workload(&workload, MitigationKind::None);
    let rrs_run = cfg.run_workload(&workload, MitigationKind::Rrs);
    println!(
        "\nrun: base IPC {:.3}, RRS normalized {:.4}, swaps/epoch {:.1}",
        base.aggregate_ipc(),
        rrs_run.normalized_to(&base),
        rrs_run.stats.mean_swaps_per_epoch()
    );
    println!(
        "multiprogram metrics vs baseline: weighted speedup {:.2}/{} cores, fairness {:.3}",
        rrs_run.weighted_speedup(&base).unwrap_or(f64::NAN),
        cfg.cores,
        rrs_run.fairness(&base).unwrap_or(f64::NAN)
    );

    // 3. Capture one core's trace and save it in both formats.
    let sys = cfg.system_config();
    let mapper = rrs::mem_ctrl::mapping::AddressMapper::new(sys.controller.geometry);
    let mut generator =
        SyntheticWorkload::new(&spec, 0, GenParams::from_system(&sys), &mapper, cfg.seed);
    let records = rrs_trace_capture(&mut generator, 50_000);
    let dir = std::env::temp_dir().join("rrs_custom_workload");
    std::fs::create_dir_all(&dir)?;
    let bin_path = dir.join("chasing_kernel.rrst");
    rrs_trace::save(&bin_path, &records, rrs_trace::TraceFormat::Binary)?;
    println!(
        "\ncaptured {} records -> {} ({} bytes)",
        records.len(),
        bin_path.display(),
        std::fs::metadata(&bin_path)?.len()
    );

    // 4. Replay the trace through the simulator: identical behaviour.
    let mut live_sys = sys.clone();
    live_sys.cores = 1;
    live_sys.instructions_per_core = 200_000;
    let live = rrs::sim::run(
        &live_sys,
        cfg.build_mitigation(MitigationKind::Rrs),
        vec![Box::new(SyntheticWorkload::new(
            &spec,
            0,
            GenParams::from_system(&sys),
            &mapper,
            cfg.seed,
        ))],
        "live",
    );
    let replayed = rrs::sim::run(
        &live_sys,
        cfg.build_mitigation(MitigationKind::Rrs),
        vec![Box::new(rrs_trace::ReplaySource::new(
            rrs_trace::load(&bin_path)?,
            "replay",
        ))],
        "replay",
    );
    println!(
        "replay check: live {} cycles vs replayed {} cycles ({})",
        live.cycles,
        replayed.cycles,
        if live.cycles == replayed.cycles {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    assert_eq!(live.cycles, replayed.cycles);
    Ok(())
}

/// Local alias to keep the example self-contained.
fn rrs_trace_capture(source: &mut dyn TraceSource, n: usize) -> Vec<rrs::sim::TraceRecord> {
    rrs_trace::capture(source, n)
}
