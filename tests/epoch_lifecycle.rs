//! Epoch life-cycle integration tests: tracker reset, RIT lock discipline,
//! lazy drain, and the detector escalation path, across multiple refresh
//! windows of the full controller stack (§4.1, §4.3, §5.3.2 fn. 2).

use rrs::core::detector::DetectorConfig;
use rrs::core::rrs::RrsConfig;
use rrs::dram::geometry::{DramGeometry, RowAddr};
use rrs::dram::hammer::HammerConfig;
use rrs::dram::timing::TimingParams;
use rrs::mem_ctrl::controller::{ControllerConfig, MemoryController};
use rrs::mitigations::RrsMitigation;

fn controller_with_rrs(detector: bool) -> MemoryController {
    let geometry = DramGeometry::tiny_test();
    let timing = TimingParams::ddr4_3200().with_epoch_scale(800); // 80 µs epochs
    let mut rrs_cfg = RrsConfig::for_threshold(
        6 * 10,
        timing.max_activations_per_epoch(),
        geometry.rows_per_bank as u64,
    );
    if detector {
        rrs_cfg = rrs_cfg.with_detector(DetectorConfig {
            swaps_per_row_alarm: 3,
        });
    }
    let cfg = ControllerConfig {
        swap_cycles: timing.row_swap_cycles(geometry.row_size_bytes),
        geometry,
        timing,
        hammer: HammerConfig::for_threshold(60),
        act_stat_threshold: 10,
        page_policy: Default::default(),
    };
    MemoryController::new(cfg, Box::new(RrsMitigation::new(rrs_cfg, geometry)))
}

/// Hammers `row` (alternating with a partner to force activations) for
/// `count` activations each, returning the final time.
fn hammer(mc: &mut MemoryController, row: u32, partner: u32, count: u32, mut now: u64) -> u64 {
    let mapper = *mc.mapper();
    let a = mapper.row_base(RowAddr::new(0, 0, 0, row));
    let b = mapper.row_base(RowAddr::new(0, 0, 0, partner));
    for _ in 0..count {
        now = mc.access(a, false, now);
        now = mc.access(b, false, now);
    }
    now
}

#[test]
fn epochs_complete_and_record_swap_history() {
    let mut mc = controller_with_rrs(false);
    let epoch = mc.config().timing.epoch;
    let mut now = 0;
    for _ in 0..3 {
        now = hammer(&mut mc, 100, 300, 40, now);
        now = (now / epoch + 1) * epoch + 1;
        mc.advance_to(now);
    }
    assert!(mc.stats().epochs_completed >= 3);
    let swaps: u64 = mc.stats().epoch_swap_history.iter().sum();
    assert!(swaps > 0, "hammering across epochs must swap");
}

#[test]
fn mapping_persists_across_epochs_without_bulk_unswap() {
    // §4.3: "We do not do a bulk reset for the RIT". After an epoch
    // boundary the hammered row must still resolve to its swapped location,
    // observable as continued redirection (no unswap storm).
    let mut mc = controller_with_rrs(false);
    let epoch = mc.config().timing.epoch;
    let now = hammer(&mut mc, 100, 300, 40, 0);
    let swaps_before = mc.stats().swaps;
    let unswaps_before = mc.stats().unswaps;
    assert!(swaps_before > 0);
    mc.advance_to((now / epoch + 1) * epoch + 1);
    // Crossing the boundary does not unswap anything by itself.
    assert_eq!(mc.stats().unswaps, unswaps_before);
}

#[test]
fn tracker_resets_each_epoch() {
    // Activations below T_RRS in each of two epochs never swap, even
    // though their sum exceeds T_RRS — the tracker is epoch-scoped (§4.1).
    let mut mc = controller_with_rrs(false);
    let epoch = mc.config().timing.epoch;
    let mut now = hammer(&mut mc, 100, 300, 4, 0); // 4 < T_RRS = 10
    now = (now / epoch + 1) * epoch + 1;
    mc.advance_to(now);
    hammer(&mut mc, 100, 300, 4, now);
    assert_eq!(mc.stats().swaps, 0, "epoch-scoped counting must not swap");
}

#[test]
fn detector_escalates_to_full_refresh_under_repeated_reswaps() {
    let mut mc = controller_with_rrs(true);
    // Re-hammer one row far past several swap thresholds within one epoch.
    hammer(&mut mc, 100, 300, 200, 0);
    assert!(
        mc.stats().full_refreshes > 0,
        "detector must trigger a preemptive full refresh"
    );
    assert!(mc.take_bit_flips().is_empty());
}

#[test]
fn epoch_hot_row_statistic_is_recorded_per_epoch() {
    let mut mc = controller_with_rrs(false);
    let epoch = mc.config().timing.epoch;
    let now = hammer(&mut mc, 100, 300, 30, 0); // 30 >= act threshold 10
    mc.advance_to((now / epoch + 1) * epoch + 1);
    let hist = &mc.stats().epoch_hot_row_history;
    assert!(!hist.is_empty());
    assert!(
        hist[0] >= 2,
        "both hammered rows crossed the ACT threshold: {hist:?}"
    );
}

#[test]
fn swap_time_is_bounded_fraction_of_epoch_for_benign_rates() {
    // Figure 5's framing: ~68 swaps of 2.9 µs is ~0.1 ms of 64 ms. A
    // benign mixture (many warm rows below T_RRS, one hot pair) must keep
    // swap-busy cycles a small fraction of the elapsed time.
    let mut mc = controller_with_rrs(false);
    let mut now = 0;
    for pair in 0..50u32 {
        now = hammer(&mut mc, 10 + 4 * pair, 500 + 4 * pair, 4, now);
    }
    now = hammer(&mut mc, 100, 300, 12, now);
    let frac = mc.stats().swap_busy_cycles as f64 / now as f64;
    assert!(mc.stats().swaps > 0);
    assert!(frac < 0.3, "swap busy fraction = {frac}");
}
