//! End-to-end security integration tests: attacks vs. defenses on the full
//! cycle-level stack (generator → controller → fault model → mitigation).
//!
//! These reproduce the paper's Table 7 qualitative claims at a reduced
//! time scale (see DESIGN.md on scaling): thresholds and epoch lengths are
//! scaled together, preserving every ratio in the design.

use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::workloads::AttackKind;

fn cfg() -> ExperimentConfig {
    ExperimentConfig::default().with_scale(200) // T_RH = 24, epoch = 0.32 ms
}

#[test]
fn classic_double_sided_flips_undefended_memory() {
    let outcome = cfg().run_attack(AttackKind::DoubleSided, MitigationKind::None, 1);
    assert!(
        outcome.attack_succeeded(),
        "undefended memory must flip under double-sided hammering"
    );
    // Victims are the rows between/next to the aggressors.
    for flip in &outcome.bit_flips {
        assert_eq!(flip.victim.bank.0, 0, "flips confined to the attacked bank");
    }
}

#[test]
fn single_sided_flips_undefended_memory() {
    let outcome = cfg().run_attack(AttackKind::SingleSided, MitigationKind::None, 1);
    assert!(outcome.attack_succeeded());
}

#[test]
fn victim_refresh_stops_classic_patterns() {
    let c = cfg();
    for attack in [AttackKind::SingleSided, AttackKind::DoubleSided] {
        let outcome = c.run_attack(attack, MitigationKind::VictimRefresh, 1);
        assert!(
            !outcome.attack_succeeded(),
            "{}: idealized victim refresh must stop classic patterns",
            attack.name()
        );
        assert!(outcome.result.stats.targeted_refreshes > 0);
    }
}

#[test]
fn half_double_defeats_victim_refresh() {
    // §2.5: "Half-Double is able to cause more than a hundred bit-flips ...
    // at a distance of 2 away from the aggressor rows" — through the
    // victim-focused mitigation.
    let outcome = cfg().run_attack(AttackKind::HalfDouble, MitigationKind::VictimRefresh, 2);
    assert!(
        outcome.attack_succeeded(),
        "Half-Double must defeat victim-focused mitigation"
    );
}

#[test]
fn rrs_stops_classic_and_half_double() {
    let c = cfg();
    for attack in [
        AttackKind::SingleSided,
        AttackKind::DoubleSided,
        AttackKind::HalfDouble,
        AttackKind::ManySided(6),
    ] {
        let outcome = c.run_attack(attack, MitigationKind::Rrs, 2);
        assert!(
            !outcome.attack_succeeded(),
            "{}: RRS must prevent bit flips (got {})",
            attack.name(),
            outcome.bit_flips.len()
        );
    }
}

#[test]
fn graphene_stops_classic_but_loses_to_half_double() {
    // The real (bounded-tracker) Graphene behaves like its idealized
    // abstraction on both sides of Table 7's comparison.
    let c = cfg();
    for attack in [AttackKind::SingleSided, AttackKind::DoubleSided] {
        let o = c.run_attack(attack, MitigationKind::Graphene, 1);
        assert!(
            !o.attack_succeeded(),
            "{}: Graphene must hold",
            attack.name()
        );
        assert!(o.result.stats.targeted_refreshes > 0);
    }
    let hd = c.run_attack(AttackKind::HalfDouble, MitigationKind::Graphene, 2);
    assert!(hd.attack_succeeded(), "Half-Double must defeat Graphene");
}

#[test]
fn blacksmith_flips_undefended_but_not_rrs() {
    // A Blacksmith-style non-uniform pattern (post-paper attack family):
    // flips undefended memory, and RRS — which tracks *exhaustively*
    // rather than sampling — still stops it.
    let c = cfg();
    let attack = AttackKind::Blacksmith { n: 4 };
    let undefended = c.run_attack(attack, MitigationKind::None, 1);
    assert!(undefended.attack_succeeded(), "blacksmith must flip bits");
    let defended = c.run_attack(attack, MitigationKind::Rrs, 2);
    assert!(!defended.attack_succeeded(), "RRS must stop blacksmith");
}

#[test]
fn rrs_swaps_under_attack_but_not_excessively() {
    let c = cfg();
    let outcome = c.run_attack(AttackKind::DoubleSided, MitigationKind::Rrs, 1);
    let swaps = outcome.result.stats.swaps;
    assert!(swaps > 0, "hammering must trigger swaps");
    // Invariant: at most one swap per T_RRS activations (plus swap-stream
    // activations, which never feed the tracker).
    let t_rrs = c.t_rh() / rrs::core::DEFAULT_K;
    let bound = outcome.result.stats.activations / t_rrs + 1;
    assert!(
        swaps <= bound,
        "swaps {swaps} exceed ACTs/T_RRS bound {bound}"
    );
}

#[test]
fn rrs_survives_the_optimal_swap_chasing_attack() {
    // §5.3: the best strategy against RRS needs ~1.9e9 iterations at the
    // paper's design point; a short campaign must achieve nothing.
    let c = cfg();
    let outcome = c.run_attack(c.swap_chasing_attack(), MitigationKind::Rrs, 3);
    assert!(
        !outcome.attack_succeeded(),
        "swap-chasing must not succeed within a few epochs"
    );
    assert!(
        outcome.result.stats.swaps > 0,
        "the attack does force swaps"
    );
}

#[test]
fn blockhammer_throttles_classic_attack_to_safety() {
    let outcome = cfg().run_attack(AttackKind::DoubleSided, MitigationKind::BlockHammer512, 1);
    assert!(
        !outcome.attack_succeeded(),
        "BlockHammer's delays must keep rows below T_RH"
    );
    assert!(
        outcome.result.stats.mitigation_delay_cycles > 0,
        "the attack must have been throttled"
    );
}

#[test]
fn para_mitigates_classic_attack_at_moderate_threshold() {
    // PARA's stateless protection needs a reasonably large T_RH — exactly
    // the paper's footnote-1 argument against stateless schemes at low
    // thresholds — so this test runs at a milder scale (T_RH = 300).
    let c = ExperimentConfig::default().with_scale(16);
    let outcome = c.run_attack(AttackKind::DoubleSided, MitigationKind::Para, 1);
    assert!(
        !outcome.attack_succeeded(),
        "PARA must stop a classic attack at T_RH = {}",
        c.t_rh()
    );
    assert!(outcome.result.stats.targeted_refreshes > 0);
}

#[test]
fn benign_workload_never_flips_with_or_without_rrs() {
    let c = ExperimentConfig::smoke_test();
    let w = rrs::workloads::catalog::Workload::Single(
        rrs::workloads::catalog::spec_by_name("gcc").unwrap(),
    );
    for kind in [MitigationKind::None, MitigationKind::Rrs] {
        let r = c.run_workload(&w, kind);
        assert!(
            r.bit_flips.is_empty(),
            "benign workload flipped bits under {:?}",
            kind
        );
    }
}
