//! Byte-identity regression for the Perfetto trace exporter.
//!
//! The exporter's output is a contract with external tooling: a file
//! blessed today must load in ui.perfetto.dev forever, and CI diffs of
//! forensics artifacts only work if the bytes are stable. This test
//! replays a small scripted trace that exercises every track the
//! exporter draws — swap lifecycles (matched and unmatched), targeted
//! refreshes, epoch rollovers, scheduler stalls, HRT/CAT churn, and
//! activations — and compares both the trace itself and its Perfetto
//! export byte-for-byte against the goldens under `tests/golden/`.
//!
//! To re-bless after an *intentional* format change:
//!
//! ```text
//! RRS_BLESS=1 cargo test --release -p rrs-forensics --test forensics_golden
//! ```

use std::path::PathBuf;

use rrs_forensics::{export_trace, parse_jsonl, ExportOptions};
use rrs_json::Json;
use rrs_telemetry::Event;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/golden")
}

/// The scripted trace: two banks, one full swap lifecycle, one unswap,
/// one unmatched SwapStart, plus every non-swap kind the exporter maps.
fn scripted_events() -> Vec<Event> {
    vec![
        Event::EpochRollover { at: 0, epoch: 0 },
        Event::HrtInstall {
            at: 10,
            row: 100,
            count: 8,
        },
        Event::Activation {
            at: 20,
            bank: 0,
            row: 100,
        },
        Event::Activation {
            at: 30,
            bank: 0,
            row: 102,
        },
        Event::SwapStart {
            at: 40,
            bank: 0,
            row_a: 100,
            row_b: 913,
        },
        Event::SchedulerStall { at: 45, queued: 9 },
        Event::SwapDone {
            at: 100,
            bank: 0,
            row_a: 100,
            row_b: 913,
        },
        Event::CatRelocation { at: 110, moves: 3 },
        Event::TargetedRefresh {
            at: 120,
            bank: 1,
            row: 55,
        },
        Event::Activation {
            at: 130,
            bank: 1,
            row: 55,
        },
        Event::Unswap {
            at: 140,
            bank: 0,
            row_a: 100,
            row_b: 913,
        },
        Event::LlcHit {
            at: 150,
            addr: 0x00de_ad00,
        },
        Event::FullRefresh { at: 160 },
        // An in-flight swap with no matching SwapDone: exporter must
        // degrade it to an instant, not drop or mispair it.
        Event::SwapStart {
            at: 170,
            bank: 1,
            row_a: 7,
            row_b: 8,
        },
        Event::EpochRollover { at: 200, epoch: 1 },
    ]
}

fn check_golden(label: &str, name: &str, got: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("RRS_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, got).expect("write golden");
        eprintln!("blessed {label}: {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with RRS_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "{label}: output differs from committed golden {} — the exporter \
         format changed; if intentional, re-bless",
        path.display()
    );
}

#[test]
fn perfetto_export_matches_golden() {
    // The source trace itself is a golden: event serialization drift
    // would silently re-bless the Perfetto file too.
    let trace: String = scripted_events()
        .iter()
        .map(|e| e.to_json().to_string_compact())
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    check_golden("scripted trace", "forensics_small.trace.jsonl", &trace);

    let parsed = parse_jsonl(&trace).expect("golden trace parses");
    let perfetto = export_trace(&parsed.events, &ExportOptions { activations: true });
    check_golden(
        "perfetto export",
        "forensics_small.perfetto.json",
        &perfetto,
    );

    // Structural contract, independent of the byte comparison: the file
    // is valid JSON and every entry carries the trace_event required
    // fields (ph, ts, pid).
    let doc = Json::parse(&perfetto).expect("perfetto export is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for entry in events {
        let ph = entry
            .get("ph")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("entry missing ph: {entry:?}"));
        assert!(matches!(ph, "M" | "X" | "i"), "unknown phase {ph}");
        assert!(entry.get("ts").and_then(|v| v.as_u64()).is_some());
        assert!(entry.get("pid").and_then(|v| v.as_u64()).is_some());
        if ph == "X" {
            assert!(entry.get("dur").and_then(|v| v.as_u64()).is_some());
        }
    }
    // The matched swap is a complete slice spanning SwapStart..SwapDone.
    let swap_slice = events
        .iter()
        .find(|e| {
            e.get("ph").and_then(|v| v.as_str()) == Some("X")
                && e.get("ts").and_then(|v| v.as_u64()) == Some(40)
        })
        .expect("matched swap becomes an X slice");
    assert_eq!(swap_slice.get("dur").and_then(|v| v.as_u64()), Some(60));
}
