//! Campaign-engine guarantees: parallel execution is byte-identical to
//! serial execution, and reruns resume from the result cache.
//!
//! These are the properties that make the figure harnesses trustworthy:
//! a grid sharded across threads must report exactly what a laptop run
//! reports, and a crashed campaign must not redo finished cells.

use rrs::campaign::{Campaign, RunOptions};
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::sim::SimResult;
use rrs::workloads::catalog::table3_workloads;
use rrs::workloads::AttackKind;
use rrs_json::ToJson;

fn tiny() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke_test();
    cfg.instructions_per_core = 20_000;
    cfg
}

/// A 3x3 grid (3 workloads x 3 defenses) exercising dedup-free cells.
fn grid() -> Campaign {
    let cfg = tiny();
    let mut campaign = Campaign::new();
    for w in table3_workloads().into_iter().take(3) {
        for kind in [
            MitigationKind::None,
            MitigationKind::Rrs,
            MitigationKind::Para,
        ] {
            campaign.workload(cfg, w, kind);
        }
    }
    campaign
}

/// Serializes every result of a run, in cell order.
fn fingerprint(results: &[&SimResult]) -> String {
    results
        .iter()
        .map(|r| r.to_json().to_string_pretty())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn parallel_equals_serial_byte_for_byte() {
    let campaign = grid();
    let serial = campaign.run(&RunOptions::quiet().with_threads(1));
    let parallel = campaign.run(&RunOptions::quiet().with_threads(4));
    assert_eq!(serial.len(), 9);
    assert_eq!(
        fingerprint(&(0..serial.len()).map(|i| serial.get(i)).collect::<Vec<_>>()),
        fingerprint(
            &(0..parallel.len())
                .map(|i| parallel.get(i))
                .collect::<Vec<_>>()
        ),
        "thread count changed campaign results"
    );
}

#[test]
fn attack_cells_are_schedule_independent_too() {
    let cfg = tiny();
    let mut campaign = Campaign::new();
    for kind in [MitigationKind::None, MitigationKind::Rrs] {
        campaign.attack(cfg, AttackKind::DoubleSided, kind, 1);
    }
    let serial = campaign.run(&RunOptions::quiet().with_threads(1));
    let parallel = campaign.run(&RunOptions::quiet().with_threads(2));
    for i in 0..serial.len() {
        assert_eq!(
            serial.get(i).to_json().to_string_pretty(),
            parallel.get(i).to_json().to_string_pretty()
        );
    }
    // The undefended cell must show flips even through serialization.
    assert!(!serial.get(0).bit_flips.is_empty());
    assert!(serial.get(1).bit_flips.is_empty());
}

#[test]
fn rerun_resumes_from_cache_and_force_overrides() {
    let dir = std::env::temp_dir().join("rrs_campaign_resume_test");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = grid();
    let opts = RunOptions::quiet().with_out_dir(&dir).with_threads(2);

    let first = campaign.run(&opts);
    assert!(first.outcomes().iter().all(|o| !o.from_cache));
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        campaign.len(),
        "every cell must land in the cache"
    );

    // Rerun: every cell resumes from disk, results identical.
    let second = campaign.run(&opts);
    assert!(second.outcomes().iter().all(|o| o.from_cache));
    for i in 0..first.len() {
        assert_eq!(
            first.get(i).to_json().to_string_pretty(),
            second.get(i).to_json().to_string_pretty(),
            "cache round-trip changed cell {i}"
        );
    }

    // A partially cleared cache re-runs only the missing cells.
    let victim = dir.join(format!("{}.json", campaign.cells()[0].id()));
    std::fs::remove_file(&victim).unwrap();
    let third = campaign.run(&opts);
    assert!(!third.outcome(0).from_cache);
    assert_eq!(
        third.outcomes().iter().filter(|o| o.from_cache).count(),
        campaign.len() - 1
    );

    // --force ignores the cache entirely.
    let forced = campaign.run(&RunOptions {
        force: true,
        ..opts.clone()
    });
    assert!(forced.outcomes().iter().all(|o| !o.from_cache));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_recomputed() {
    let dir = std::env::temp_dir().join("rrs_campaign_corrupt_test");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = tiny();
    let mut campaign = Campaign::new();
    campaign.workload(cfg, table3_workloads()[0], MitigationKind::None);
    let opts = RunOptions::quiet().with_out_dir(&dir);

    let first = campaign.run(&opts);
    let path = dir.join(format!("{}.json", campaign.cells()[0].id()));
    std::fs::write(&path, "{ not json").unwrap();
    let second = campaign.run(&opts);
    assert!(!second.outcome(0).from_cache, "corrupt entry must re-run");
    assert_eq!(
        first.get(0).to_json().to_string_pretty(),
        second.get(0).to_json().to_string_pretty()
    );
    // ... and the recomputed result overwrote the corrupt file.
    let third = campaign.run(&opts);
    assert!(third.outcome(0).from_cache);
    let _ = std::fs::remove_dir_all(&dir);
}
