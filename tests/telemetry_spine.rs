//! Integration tests for the telemetry spine: observation must be
//! deterministic and must not perturb the experiment.
//!
//! The spine's two contracts, end to end:
//!
//! 1. **Non-perturbation** — a run on a tracing spine produces a
//!    [`SimResult`] byte-identical (via its canonical JSON) to the same
//!    run on the default null spine.
//! 2. **Determinism** — two tracing runs of the same cell produce the
//!    same JSON-lines trace, byte for byte.

use std::collections::BTreeMap;

use rrs::campaign::{Campaign, RunOptions};
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::sim::SimResult;
use rrs::telemetry::{Telemetry, DEFAULT_TRACE_CAPACITY};
use rrs::workloads::catalog::{spec_by_name, Workload};
use rrs_json::ToJson;

fn canonical(result: &SimResult) -> String {
    result.to_json().to_string_pretty()
}

fn smoke_workload() -> Workload {
    Workload::Single(spec_by_name("hmmer").expect("hmmer is in the catalog"))
}

#[test]
fn tracing_does_not_perturb_the_result() {
    let cfg = ExperimentConfig::smoke_test();
    let w = smoke_workload();
    let plain = cfg.run_workload(&w, MitigationKind::Rrs);
    let spine = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
    let probed = cfg.run_workload_probed(&w, MitigationKind::Rrs, &spine);
    assert_eq!(
        canonical(&plain),
        canonical(&probed),
        "a tracing spine must not change the simulation outcome"
    );
    assert!(spine.events_recorded() > 0, "the run must emit events");
}

#[test]
fn trace_is_deterministic_across_runs() {
    let cfg = ExperimentConfig::smoke_test();
    let w = smoke_workload();
    let a = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
    let b = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
    let ra = cfg.run_workload_probed(&w, MitigationKind::Rrs, &a);
    let rb = cfg.run_workload_probed(&w, MitigationKind::Rrs, &b);
    assert_eq!(canonical(&ra), canonical(&rb));
    let trace = a.trace_jsonl().expect("tracing spine records a trace");
    assert!(!trace.is_empty());
    assert_eq!(
        trace,
        b.trace_jsonl().unwrap(),
        "same seed must reproduce the trace byte for byte"
    );
    assert_eq!(a.counters(), b.counters());
    assert_eq!(a.event_kind_counts(), b.event_kind_counts());
}

#[test]
fn spine_counters_mirror_controller_stats() {
    let cfg = ExperimentConfig::smoke_test();
    let spine = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
    let result = cfg.run_workload_probed(&smoke_workload(), MitigationKind::Rrs, &spine);
    let counters: BTreeMap<String, u64> = spine.counters().into_iter().collect();
    let get = |name: &str| {
        *counters
            .get(name)
            .unwrap_or_else(|| panic!("counter {name:?} must be registered"))
    };
    assert_eq!(get("ctrl.activations"), result.stats.activations);
    assert_eq!(get("ctrl.row_hits"), result.stats.row_hits);
    assert_eq!(get("ctrl.swaps"), result.stats.swaps);
    assert_eq!(get("ctrl.unswaps"), result.stats.unswaps);
    assert_eq!(get("ctrl.epochs_completed"), result.stats.epochs_completed);
    assert_eq!(
        get("ctrl.targeted_refreshes"),
        result.stats.targeted_refreshes
    );
    // RRS's tracker publishes installs/evicts on the spine once attached.
    assert!(get("hrt.installs") > 0, "RRS must install hot rows");
}

#[test]
fn attack_trace_records_swap_events() {
    let cfg = ExperimentConfig::smoke_test();
    let spine = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
    let outcome = cfg.run_attack_probed(
        rrs::workloads::AttackKind::DoubleSided,
        MitigationKind::Rrs,
        1,
        &spine,
    );
    assert!(!outcome.attack_succeeded(), "RRS must defend");
    let kinds: BTreeMap<&'static str, u64> = spine.event_kind_counts().into_iter().collect();
    assert!(kinds.get("activation").copied().unwrap_or(0) > 0);
    assert!(
        kinds.get("hrt_install").copied().unwrap_or(0) > 0,
        "a hammering aggressor must enter the hot-row tracker"
    );
    assert!(
        kinds.get("epoch_rollover").copied().unwrap_or(0) > 0,
        "a full epoch must roll over"
    );
}

#[test]
fn campaign_trace_mode_captures_and_merges() {
    let dir = std::env::temp_dir().join("rrs_spine_campaign");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ExperimentConfig::smoke_test();

    // Populate the result cache first, so the traced run below proves it
    // re-simulates (cached JSON carries no telemetry).
    let mut warm = Campaign::new();
    warm.workload(cfg, smoke_workload(), MitigationKind::Rrs);
    let opts = RunOptions::quiet().with_out_dir(&dir);
    let warm_run = warm.run(&opts);
    assert!(warm_run.outcomes().iter().all(|o| o.telemetry.is_none()));

    let mut campaign = Campaign::new();
    let cell = campaign.workload(cfg, smoke_workload(), MitigationKind::Rrs);
    let run = campaign.run(&RunOptions::quiet().with_out_dir(&dir).with_trace());
    let outcome = &run.outcomes()[cell];
    assert!(!outcome.from_cache, "tracing must bypass the result cache");
    let telemetry = outcome
        .telemetry
        .as_ref()
        .expect("trace mode captures per-cell telemetry");
    assert!(telemetry.events_recorded > 0);
    assert!(!telemetry.trace_jsonl.is_empty());
    assert!(telemetry.counters.iter().any(|(n, _)| n == "ctrl.swaps"));

    // The merged view aggregates across cells without losing names.
    let merged = run.merged_counters();
    assert!(!merged.is_empty());
    let (recorded, _dropped) = run.merged_event_totals();
    assert_eq!(recorded, telemetry.events_recorded);

    // The JSON-lines trace lands next to the cached result.
    let trace_path = dir.join(format!("{}.trace.jsonl", outcome.id));
    let on_disk = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert_eq!(on_disk, telemetry.trace_jsonl);

    // ... and so does its exposure report, parseable with a verdict.
    let forensics_path = dir.join(format!("{}.forensics.json", outcome.id));
    let report = std::fs::read_to_string(&forensics_path).expect("forensics file written");
    let report = rrs_json::Json::parse(&report).expect("forensics file is JSON");
    assert!(matches!(
        report.get("verdict").and_then(|v| v.as_str()),
        Some("pass") | Some("fail")
    ));

    // The written trace parses back into the events the ring retained.
    let parsed = rrs::forensics::parse_jsonl(&on_disk).expect("trace re-parses");
    assert_eq!(
        parsed.events.len() as u64,
        telemetry.events_recorded - telemetry.events_dropped
    );

    // A second traced campaign reproduces the trace byte for byte.
    let mut again = Campaign::new();
    again.workload(cfg, smoke_workload(), MitigationKind::Rrs);
    let rerun = again.run(&RunOptions::quiet().with_trace());
    let re_tel = rerun.outcomes()[0].telemetry.as_ref().unwrap();
    assert_eq!(re_tel.trace_jsonl, telemetry.trace_jsonl);
    assert_eq!(re_tel.counters, telemetry.counters);
}

#[test]
fn trace_lines_are_well_formed_json_objects() {
    let cfg = ExperimentConfig::smoke_test();
    let spine = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
    let _ = cfg.run_workload_probed(&smoke_workload(), MitigationKind::Rrs, &spine);
    let trace = spine.trace_jsonl().unwrap();
    for line in trace.lines() {
        let parsed = rrs_json::Json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        assert!(
            matches!(parsed, rrs_json::Json::Obj(_)),
            "each event is a JSON object"
        );
        assert!(parsed.get("kind").and_then(|k| k.as_str()).is_some());
        assert!(parsed.get("at").and_then(|a| a.as_u64()).is_some());
    }
}
