//! Byte-identity regression against committed golden results.
//!
//! The campaign cache (`results/*.json`) and every figure/table binary
//! assume a `SimResult`'s pretty-printed JSON is a stable byte sequence
//! for a given configuration and seed. These tests execute one
//! representative *figure* cell (a benign Table-3 workload under RRS, the
//! Fig. 5 grid shape) and one *table* cell (a double-sided attack under
//! RRS, the Table 7 grid shape) at smoke scale and compare the serialized
//! result byte-for-byte with the goldens committed under `tests/golden/`.
//!
//! Any refactor that changes metric accounting, JSON field order, or
//! number formatting fails here before it can silently invalidate a
//! results cache. To re-bless after an *intentional* change:
//!
//! ```text
//! RRS_BLESS=1 cargo test --release -p rrs --test golden_results
//! ```

use std::path::PathBuf;

use rrs::campaign::{Campaign, Cell, CellAction, RunOptions};
use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::workloads::catalog::table3_workloads;
use rrs::workloads::AttackKind;
use rrs_json::ToJson;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/golden")
}

fn check(label: &str, cell: Cell) {
    let id = cell.id();
    let mut campaign = Campaign::new();
    let idx = campaign.push(cell);
    let run = campaign.run(&RunOptions::quiet());
    let got = run.get(idx).to_json().to_string_pretty();
    let path = golden_dir().join(format!("{id}.json"));
    if std::env::var_os("RRS_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &got).expect("write golden");
        eprintln!("blessed {label}: {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with RRS_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "{label}: serialized result differs from committed golden {} — \
         metric accounting or JSON formatting changed; if intentional, re-bless",
        path.display()
    );
}

/// One Fig. 5-shaped cell: first Table-3 workload under RRS.
#[test]
fn figure_cell_matches_golden() {
    let config = ExperimentConfig::smoke_test();
    let workload = *table3_workloads().first().expect("table3 workloads");
    check(
        "fig5 cell",
        Cell {
            config,
            action: CellAction::Workload(workload),
            mitigation: MitigationKind::Rrs,
        },
    );
}

/// One Table 7-shaped cell: double-sided attack under RRS, 2 epochs.
#[test]
fn table_cell_matches_golden() {
    let config = ExperimentConfig::smoke_test();
    check(
        "table7 cell",
        Cell {
            config,
            action: CellAction::Attack {
                kind: AttackKind::DoubleSided,
                epochs: 2,
            },
            mitigation: MitigationKind::Rrs,
        },
    );
}
