//! Cross-validation between the analytic models (`rrs-analysis`) and the
//! executable structures (`rrs-core`): the models must describe the same
//! system the simulator runs.

use rrs::analysis::attack_model::AttackModel;
use rrs::analysis::cat_model::CatModel;
use rrs::analysis::storage::table5;
use rrs::core::cat::{Cat, CatConfig};
use rrs::core::rrs::RrsConfig;
use rrs::core::swap::{SwapEngine, SwapMode};
use rrs::dram::timing::TimingParams;

#[test]
fn analytic_duty_cycle_matches_swap_engine_accounting() {
    // §5.3.1's D = 0.925: alternate T_RRS activations with a swap+unswap
    // on the engine and compare the measured busy fraction.
    let t = TimingParams::ddr4_3200();
    let model = AttackModel::asplos22();
    let mut engine = SwapEngine::new(&t, 8 * 1024, SwapMode::Buffered);
    let mut now = 0;
    for _ in 0..200 {
        now += 800 * t.t_rc;
        now = engine.record_swap(now);
        now = engine.record_unswap(now);
    }
    let measured_d = 1.0 - engine.busy_fraction(now);
    let analytic_d = model.duty_cycle(800);
    assert!(
        (measured_d - analytic_d).abs() < 0.01,
        "measured D = {measured_d}, analytic D = {analytic_d}"
    );
}

#[test]
fn table4_attack_times_match_paper_orders_of_magnitude() {
    let model = AttackModel::asplos22();
    let rows = model.table4();
    // Paper Table 4: 9.3e6 / 1.9e9 / 3.8e11 iterations.
    let expect = [(960u64, 9.3e6), (800, 1.9e9), (685, 3.8e11)];
    for (row, (t, iters)) in rows.iter().zip(expect) {
        assert_eq!(row.t, t);
        let ratio = row.attack_iterations / iters;
        assert!(
            (0.3..3.0).contains(&ratio),
            "T={t}: {:.2e} vs paper {iters:.1e}",
            row.attack_iterations
        );
    }
}

#[test]
fn real_cat_structure_matches_conflict_model_qualitatively() {
    // With the paper's 6 extra ways, the executable CAT sustains far more
    // steady-state installs than attackers can issue; with 0 extra ways it
    // conflicts quickly — the Figure 9 contrast, on the real structure.
    let run = |extra: usize, installs: u64| -> Option<u64> {
        let mut cat: Cat<u32> = Cat::new(CatConfig {
            sets: 64,
            demand_ways: 14,
            extra_ways: extra,
            hash_seed: 0x715,
        });
        let capacity = cat.capacity();
        let mut x = 9u64;
        let mut next_tag = 0u64;
        for i in 0..installs {
            if cat.len() >= capacity {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let victim = cat.nth_entry((x >> 33) as usize).map(|(t, _)| t).unwrap();
                cat.remove(victim);
            }
            next_tag += 1;
            if cat.insert(next_tag, 0).is_err() {
                return Some(i);
            }
        }
        None
    };
    let conflict_free = run(6, 200_000);
    assert_eq!(conflict_free, None, "6 extra ways conflicted");
    let conflict_poor = run(0, 200_000);
    assert!(conflict_poor.is_some(), "0 extra ways never conflicted");
}

#[test]
fn monte_carlo_conflict_model_orders_extra_ways() {
    let m = CatModel::figure9();
    let e1 = m.mean_installs_to_conflict(1, 3, 3_000_000, 5);
    let e2 = m.mean_installs_to_conflict(2, 3, 3_000_000, 5);
    assert!(
        e2.mean_installs > 3.0 * e1.mean_installs,
        "e1 = {}, e2 = {}",
        e1.mean_installs,
        e2.mean_installs
    );
}

#[test]
fn storage_model_matches_design_point_structures() {
    // Table 5's entry counts must equal the shapes the executable design
    // actually allocates at the paper's design point.
    let config = RrsConfig::asplos22();
    let t5 = table5();
    // Tracker: 1700 entries fit in the 2x64x20 CAT.
    assert!(config.tracker_entries <= CatConfig::tracker_asplos22().capacity());
    // RIT: 3400 tuples = 6800 directed entries fit in 2x256x20.
    assert!(2 * config.rit_tuples <= CatConfig::rit_asplos22().capacity());
    // Published totals.
    assert!((t5.total_kib_per_bank() - 42.9).abs() < 1.0);
}

#[test]
fn swap_latency_model_matches_timing_derivation() {
    // §4.4's 1.46 µs swap is both a TimingParams derivation and the swap
    // engine's cost; they must agree.
    let t = TimingParams::ddr4_3200();
    let engine = SwapEngine::new(&t, 8 * 1024, SwapMode::Buffered);
    assert_eq!(engine.swap_cost(), t.row_swap_cycles(8 * 1024));
}

#[test]
fn scaled_configs_preserve_design_ratios() {
    // The scaling machinery must keep entries/tuples identical across
    // scales (they depend only on ratios).
    let full = RrsConfig::for_threshold(4_800, 1_360_000, 128 * 1024);
    let scaled = RrsConfig::for_threshold(4_800 / 32, 1_360_000 / 32, 128 * 1024);
    assert_eq!(full.tracker_entries, scaled.tracker_entries);
    assert_eq!(full.rit_tuples, scaled.rit_tuples);
    assert_eq!(full.k(), scaled.k());
}
